"""Memory-system exploration: the Section III-A microbenchmark, hands on.

Sweeps copy sizes across the four implementations (HLS-style, Beethoven,
Beethoven without TLP, hand-written HDL) against the cycle-level DDR model
and prints throughputs plus the Figure-5 style transaction timeline for the
4 KB case.

Run:  python examples/memcpy_bandwidth.py
"""

from repro.baselines.memcpy_experiment import (
    render_timeline,
    run_all,
    run_beethoven_memcpy,
    run_hdl_memcpy,
    run_hls_memcpy,
)


def main() -> None:
    print("== throughput sweep (GB/s of copied data) ==")
    print(f"{'size':>9} {'hls':>7} {'beethoven':>10} {'no-tlp':>8} {'pure-hdl':>9}")
    for size in (65536, 262144, 1048576):
        res = run_all(size)
        assert all(r.verified for r in res.values())
        print(
            f"{size:>9} {res['hls'].gbps:>7.2f} {res['beethoven'].gbps:>10.2f} "
            f"{res['beethoven-notlp'].gbps:>8.2f} {res['pure-hdl'].gbps:>9.2f}"
        )

    print()
    print("== 4KB transaction timelines (Figure 5) ==")
    for result in (
        run_hls_memcpy(4096, burst_beats=16),
        run_beethoven_memcpy(4096, tlp=True, burst_beats=16),
        run_hdl_memcpy(4096, burst_beats=64),
    ):
        print(render_timeline(result))
        print()


if __name__ == "__main__":
    main()
