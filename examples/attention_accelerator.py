"""The A^3 attention accelerator case study (Section III-C), scaled down.

Builds a 4-core A^3 System on the AWS F1 model, loads stationary key/value
matrices into the per-core scratchpads, streams queries through the
three-stage approximate pipeline, and compares the results against both the
bit-exact fixed-point model and exact float attention.

Run:  python examples/attention_accelerator.py
"""

import numpy as np

from repro.core import BeethovenBuild, BuildMode
from repro.kernels.attention import (
    a3_config,
    attention_a3_fixed,
    attention_float,
    scale_log2e_q,
)
from repro.kernels.attention.fixedpoint import quantize_int8
from repro.platforms import AWSF1Platform
from repro.runtime import FpgaHandle

DIM, N_KEYS, N_QUERIES, N_CORES = 64, 320, 32, 4
SCALE = 0.05


def main() -> None:
    build = BeethovenBuild(a3_config(N_CORES, DIM, N_KEYS), AWSF1Platform(), BuildMode.Synthesis)
    print(build.summary())
    handle = FpgaHandle(build.design)

    rng = np.random.default_rng(42)
    keys_f = rng.normal(0, 1, (N_KEYS, DIM)).astype(np.float32)
    values_f = rng.normal(0, 1, (N_KEYS, DIM)).astype(np.float32)
    queries_f = rng.normal(0, 1, (N_QUERIES, DIM)).astype(np.float32)
    keys, values, queries = (
        quantize_int8(m, SCALE) for m in (keys_f, values_f, queries_f)
    )

    pk, pv = handle.malloc(keys.nbytes), handle.malloc(values.nbytes)
    pk.write(keys.tobytes())
    pv.write(values.tobytes())
    handle.copy_to_fpga(pk)
    handle.copy_to_fpga(pv)
    for core in range(N_CORES):
        handle.call("A3", "load_kv", core, key_addr=pk.fpga_addr, value_addr=pv.fpga_addr).get()
    print(f"K/V scratchpads loaded on {N_CORES} cores")

    pq, po = handle.malloc(queries.nbytes), handle.malloc(queries.nbytes)
    pq.write(queries.tobytes())
    handle.copy_to_fpga(pq)
    start = handle.cycle
    handle.call(
        "A3", "attend", 0,
        query_addr=pq.fpga_addr, out_addr=po.fpga_addr,
        n_queries=N_QUERIES, temp_q=scale_log2e_q(DIM, SCALE),
    ).get()
    cycles = handle.cycle - start
    handle.copy_from_fpga(po)
    got = np.frombuffer(po.read(), dtype=np.int8).reshape(N_QUERIES, DIM)

    expected = np.stack([attention_a3_fixed(q, keys, values, SCALE) for q in queries])
    assert (got == expected).all(), "hardware must match the fixed-point model bit-for-bit"

    exact = np.stack([attention_float(q, keys_f, values_f) for q in queries_f])
    approx = got.astype(np.float32) * SCALE
    rel_rms = np.sqrt(np.mean((exact - approx) ** 2)) / np.sqrt(np.mean(exact**2))
    print(f"{N_QUERIES} queries in {cycles} cycles "
          f"({cycles / N_QUERIES:.0f} cycles/query; ideal is ~{N_KEYS})")
    print(f"bit-exact vs fixed-point model; {rel_rms:.1%} relative RMS vs exact "
          f"float attention (int8 approximation error)")


if __name__ == "__main__":
    main()
