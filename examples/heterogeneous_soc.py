"""A heterogeneous accelerator: three different Systems on one device.

The paper's title feature: Beethoven composes *heterogeneous* multi-core
SoCs.  Here one build carries a 2-core vector-add System, a 1-core memcpy
System and a 2-core A^3 attention System; the elaborator floorplans all five
cores together, builds one shared memory network and one command fabric, and
the host drives all three concurrently through a single runtime handle.

Run:  python examples/heterogeneous_soc.py
"""

import numpy as np

from repro.core import BeethovenBuild, BuildMode
from repro.kernels.attention import a3_config, attention_a3_fixed, scale_log2e_q
from repro.kernels.memcpy import memcpy_config
from repro.kernels.vecadd import vector_add_config
from repro.platforms import AWSF1Platform
from repro.runtime import FpgaHandle


def main() -> None:
    build = BeethovenBuild(
        [
            vector_add_config(n_cores=2, name="VecAdd"),
            memcpy_config(n_cores=1, name="Copy"),
            a3_config(n_cores=2, dim=32, n_keys=64, name="Attn"),
        ],
        AWSF1Platform(),
        BuildMode.Synthesis,
    )
    print(build.summary())
    handle = FpgaHandle(build.design)
    rng = np.random.default_rng(11)

    # Prepare operands for all three Systems.
    vec = rng.integers(0, 2**31, 128, dtype=np.uint32)
    p_vec = handle.malloc(vec.nbytes)
    p_vec.write(vec.tobytes())
    handle.copy_to_fpga(p_vec)

    blob = rng.integers(0, 256, 16384, dtype=np.uint8).tobytes()
    p_src, p_dst = handle.malloc(16384), handle.malloc(16384)
    p_src.write(blob)
    handle.copy_to_fpga(p_src)

    keys = rng.integers(-40, 40, (64, 32)).astype(np.int8)
    values = rng.integers(-40, 40, (64, 32)).astype(np.int8)
    queries = rng.integers(-40, 40, (8, 32)).astype(np.int8)
    p_k, p_v = handle.malloc(keys.nbytes), handle.malloc(values.nbytes)
    p_q, p_o = handle.malloc(queries.nbytes), handle.malloc(queries.nbytes)
    for p, m in ((p_k, keys), (p_v, values), (p_q, queries)):
        p.write(m.tobytes())
        handle.copy_to_fpga(p)
    handle.call("Attn", "load_kv", 0, key_addr=p_k.fpga_addr, value_addr=p_v.fpga_addr).get()

    # Fire everything concurrently; the runtime interleaves the dispatches
    # and the shared memory network arbitrates the traffic.
    start = handle.cycle
    futures = [
        handle.call("VecAdd", "my_accel", 0, addend=42, vec_addr=p_vec.fpga_addr, n_eles=128),
        handle.call("Copy", "memcpy", 0, src=p_src.fpga_addr, dst=p_dst.fpga_addr, len_bytes=16384),
        handle.call(
            "Attn", "attend", 0,
            query_addr=p_q.fpga_addr, out_addr=p_o.fpga_addr,
            n_queries=8, temp_q=scale_log2e_q(32, 0.05),
        ),
    ]
    for fut in futures:
        fut.get()
    elapsed = handle.cycle - start

    handle.copy_from_fpga(p_vec)
    assert (np.frombuffer(p_vec.read(), dtype=np.uint32) == vec + 42).all()
    handle.copy_from_fpga(p_dst)
    assert p_dst.read() == blob
    handle.copy_from_fpga(p_o)
    got = np.frombuffer(p_o.read(), dtype=np.int8).reshape(8, 32)
    expected = np.stack([attention_a3_fixed(q, keys, values, 0.05) for q in queries])
    assert (got == expected).all()
    print(f"all three Systems verified; concurrent run took {elapsed} cycles")
    print("generated bindings cover every System:")
    header = build.emit_cpp_header()
    for line in header.splitlines():
        if line.startswith("namespace"):
            print(" ", line)


if __name__ == "__main__":
    main()
