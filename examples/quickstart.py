"""Quickstart: the paper's vector-add walkthrough (Figures 2 and 3).

Builds the one-core vector-add accelerator for the simulation platform,
shows every generated artefact (C++ bindings, Verilog netlist, constraint
file), then drives it through the runtime exactly like Figure 3c:

    fpga_handle_t handle;
    remote_ptr mem = handle.malloc(1024);
    ... copy_to_fpga, my_accel(0, 0xCAFE, mem, 256), resp.get() ...

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import BeethovenBuild, BuildMode
from repro.kernels.vecadd import vector_add_config
from repro.platforms import AWSF1Platform
from repro.runtime import FpgaHandle, bindings_for


def main() -> None:
    # -- Figure 3a: configuration + build -------------------------------
    config = vector_add_config(n_cores=2)
    build = BeethovenBuild(config, AWSF1Platform(), BuildMode.Simulation)
    print(build.summary())
    print()

    # -- Figure 3b: the generated C++ host bindings ----------------------
    print("generated C++ header:")
    print(build.emit_cpp_header())

    # -- a slice of the generated structural Verilog ----------------------
    verilog = build.emit_verilog()
    print(f"generated Verilog: {len(verilog.splitlines())} lines; first module:")
    print("\n".join(verilog.splitlines()[:12]))
    print()

    # -- Figure 3c: the host program -------------------------------------
    handle = FpgaHandle(build.design)
    mem = handle.malloc(1024)
    data = np.arange(256, dtype=np.uint32)
    mem.write(data.tobytes())  # my_init(mem.getHostAddr())
    handle.copy_to_fpga(mem)

    accel = bindings_for(handle, "MyAcceleratorSystem")
    resp = accel.my_accel(0, addend=0xCAFE, vec_addr=mem.fpga_addr, n_eles=256)
    print("response:", resp.get())  # blocks (advances simulation)

    handle.copy_from_fpga(mem)
    result = np.frombuffer(mem.read(), dtype=np.uint32)
    assert (result == data + 0xCAFE).all()
    print(f"vector add verified on-device in {handle.cycle} cycles "
          f"({resp.latency_cycles} cycles of accelerator latency)")


if __name__ == "__main__":
    main()
