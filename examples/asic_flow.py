"""ASIC targeting: ASAP7 memory compilation and ChipKIT integration.

The same vector-add System is retargeted to the ASAP7 platform: on-chip
memories go through the SRAM memory compiler (macro selection, width
cascading, depth banking), and a ChipKIT-style test-chip top is generated
around the fabric using a user-supplied (licensed) ARM M0 source path —
exactly the arrangement the paper describes, since the CPU cannot be
redistributed.

Run:  python examples/asic_flow.py
"""

import os
import tempfile

from repro.asic import MemoryCompiler, ASAP7_MACROS
from repro.core import BeethovenBuild, BuildMode
from repro.hdl import emit_design
from repro.kernels.attention import a3_config
from repro.platforms import Asap7Platform, ChipKitPlatform


def memory_compiler_demo() -> None:
    print("== ASAP7 memory compiler ==")
    compiler = MemoryCompiler(ASAP7_MACROS)
    for width, depth in ((512, 320), (64, 4096), (32, 100), (128, 2048)):
        plan = compiler.compile(width, depth)
        print(
            f"  {width}b x {depth}: {plan.lanes} x {plan.banks} of "
            f"{plan.macro.name} -> {plan.n_macros} macros, "
            f"{plan.area_um2:,.0f} um^2, {plan.efficiency:.0%} bit efficiency"
        )


def asic_build_demo() -> None:
    print()
    print("== A^3 on ASAP7 (2 cores) ==")
    build = BeethovenBuild(a3_config(2, dim=32, n_keys=64), Asap7Platform(), BuildMode.Simulation)
    print(build.summary())
    print("  SRAM macro plans:")
    for path, plan in build.design.macro_plans[:6]:
        print(f"   {path}: {plan.n_macros} x {plan.macro.name} ({plan.area_um2:,.0f} um^2)")


def chipkit_demo() -> None:
    print()
    print("== ChipKIT test-chip top ==")
    # The ARM M0 is licensed: the developer supplies a path to their copy.
    with tempfile.TemporaryDirectory() as tmp:
        m0_path = os.path.join(tmp, "cortex_m0")
        os.makedirs(m0_path)
        platform = ChipKitPlatform(m0_source_path=m0_path)
        build = BeethovenBuild(
            a3_config(1, dim=32, n_keys=64), platform, BuildMode.Simulation
        )
        top = build.emit_chipkit_top()
        verilog = emit_design(top)
        print(f"  generated {len(verilog.splitlines())} lines; top module ports:")
        for port in top.ports:
            print(f"   {port.direction:<7} {port.name}")


if __name__ == "__main__":
    memory_compiler_demo()
    asic_build_demo()
    chipkit_demo()
