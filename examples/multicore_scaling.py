"""Multi-core scaling and runtime-server contention (Section III-B).

Demonstrates the two things Figure 6 is about:

1. scaling a System is a one-argument change (``n_cores=``), with the
   floorplanner, networks and bindings regenerated automatically;
2. measured multi-core throughput falls short of ideal when kernel latency
   is low, because every command serialises through the runtime server —
   shown here with fixed-latency cores swept across latencies.

Run:  python examples/multicore_scaling.py
"""

import numpy as np

from repro.core import BeethovenBuild
from repro.farm import Farm, Job
from repro.kernels.machsuite import stencil3d_config
from repro.kernels.machsuite.fig6 import dispatch_cost_cycles
from repro.kernels.machsuite.reference import stencil3d
from repro.platforms import AWSF1Platform, SimulationPlatform
from repro.runtime import FpgaHandle


def scaling_demo() -> None:
    print("== scaling a Stencil3D System by changing n_cores ==")
    n = 8
    rng = np.random.default_rng(1)
    for n_cores in (1, 2, 4):
        build = BeethovenBuild(stencil3d_config(n_cores=n_cores), SimulationPlatform())
        handle = FpgaHandle(build.design)
        grids = rng.integers(-50, 50, (n_cores, n, n, n)).astype(np.int32)
        futures, ptrs = [], []
        start = handle.cycle
        for core in range(n_cores):
            pg, po = handle.malloc(grids[core].nbytes), handle.malloc(grids[core].nbytes)
            pg.write(grids[core].tobytes())
            handle.copy_to_fpga(pg)
            futures.append(
                handle.call(
                    "Stencil3d", "stencil3d", core,
                    grid_addr=pg.fpga_addr, out_addr=po.fpga_addr, n=n, c0=3, c1=2,
                )
            )
            ptrs.append(po)
        for fut in futures:
            fut.get()
        for core, po in enumerate(ptrs):
            handle.copy_from_fpga(po)
            got = np.frombuffer(po.read(), dtype=np.int32).reshape(n, n, n)
            assert (got == stencil3d(grids[core], 3, 2)).all()
        print(f"  {n_cores} core(s): {n_cores} grids verified in {handle.cycle - start} cycles")


def contention_demo() -> None:
    print()
    print("== runtime-server contention: measured vs ideal ==")
    platform = AWSF1Platform(clock_mhz=125.0)
    n_cores = 16
    d = dispatch_cost_cycles(platform)
    print(f"   per-command host dispatch cost: {d} cycles; {n_cores} cores")
    # The four latency points are independent simulations: shard them across
    # the farm's worker pool (repeat runs are served from its result cache).
    latencies = (500, 2_000, 8_000, 32_000)
    farm = Farm()
    jobs = [
        Job(
            "repro.kernels.machsuite.fig6:simulate_measured",
            (n_cores, latency, platform),
            {"rounds": 3},
            label=f"contention/l{latency}",
        )
        for latency in latencies
    ]
    print(f"   {'kernel cycles':>14} {'measured/ideal':>15} {'source':>8}")
    for latency, res in zip(latencies, farm.run(jobs)):
        ideal = n_cores * platform.clock_mhz * 1e6 / latency
        source = "cache" if res.cache_hit else res.worker
        print(
            f"   {latency:>14} {res.value.ops_per_second / ideal:>14.1%} "
            f"{source:>8}"
        )
    print("   (low-latency kernels contend for the server lock; long kernels don't)")


if __name__ == "__main__":
    scaling_demo()
    contention_demo()
