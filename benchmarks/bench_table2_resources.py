"""Table II: resource utilisation of the 23-core A^3 design.

Prints the Table II breakdown (total with shell, Beethoven region,
interconnect, one core, and the per-primitive rows) from the resource model,
and checks the paper's qualitative results: ~94% CLB utilisation that still
passes the routability model, an interconnect costing a fraction of the
fabric despite 92 memory interfaces, and the 80% spill rule producing mixed
BRAM/URAM scratchpad mappings across identical cores.
"""

from collections import Counter

import pytest

from repro.core import BeethovenBuild, BuildMode
from repro.kernels.attention import a3_config
from repro.platforms import AWSF1Platform


@pytest.fixture(scope="module")
def a3_build():
    return BeethovenBuild(a3_config(23), AWSF1Platform(), BuildMode.Synthesis)


def _fmt(name, v, cap=None):
    util = ""
    if cap is not None:
        u = v.utilisation_of(cap)
        util = f"  (clb {u['clb']:.1%}, lut {u['lut']:.1%}, bram {u['bram']:.1%}, uram {u['uram']:.1%})"
    return (
        f"{name:<24} clb={v.clb:9.0f} lut={v.lut:9.0f} reg={v.reg:9.0f} "
        f"bram={v.bram:6.1f} uram={v.uram:6.1f}{util}"
    )


def test_table2_resources(benchmark, a3_build):
    build = benchmark.pedantic(lambda: a3_build, rounds=1, iterations=1)
    rep = build.resource_report
    cap = build.platform.device.total_capacity()
    print()
    print(_fmt("total (w/ shell)", rep.with_shell, cap))
    print(_fmt("beethoven", rep.total))
    print(_fmt("interconnect", rep.interconnect))
    core_path = sorted(rep.per_core)[0]
    print(_fmt("core (1)", rep.per_core[core_path]))
    for prim in sorted(rep.per_core_breakdown[core_path]):
        print(_fmt("  " + prim, rep.per_core_breakdown[core_path][prim]))
    print(f"memory interfaces: {build.design.n_memory_interfaces}")

    # The paper's 23-core design: 92 memory interfaces, ~94% CLB with shell.
    assert build.design.n_memory_interfaces == 92
    util = rep.with_shell.utilisation_of(cap)
    assert 0.88 < util["clb"] < 0.97
    # It routes — but only thanks to constraints + spill (Synthesis passed).
    assert build.routability.feasible
    # Interconnect is a modest share of the Beethoven region (paper: the
    # host+memory interconnect awareness costs little for what it buys).
    assert rep.interconnect.lut / rep.total.lut < 0.20
    # The spill rule produced a mixed BRAM/URAM mapping of identical
    # scratchpads (Table II's 15-BRAM vs 16-URAM Value SPs).
    kinds = Counter(
        mem.cell_mapping
        for core in build.design.all_cores()
        for name, mem in core.memories
        if name in ("keys", "values")
    )
    print(f"K/V scratchpad mappings: {dict(kinds)}")
    assert kinds["BRAM"] > 0 and kinds["URAM"] > 0
