"""Figure 8: floorplan of the 23-core A^3 accelerator.

Renders the SLR assignment produced by the floorplanner and emits the
placement constraint file.  Checks the paper's shape: all 23 cores placed,
fewest cores on the shell-occupied SLR0, and per-SLR worst utilisation under
the routability limit.
"""

import pytest

from repro.core import BeethovenBuild, BuildMode
from repro.fpga import emit_constraints
from repro.kernels.attention import a3_config
from repro.platforms import AWSF1Platform


@pytest.fixture(scope="module")
def a3_build():
    return BeethovenBuild(a3_config(23), AWSF1Platform(), BuildMode.Synthesis)


def render_floorplan(build) -> str:
    placement = build.placement
    device = build.platform.device
    lines = []
    for slr in reversed(range(device.n_slrs)):
        cores = sorted(
            int(name.rsplit("core", 1)[1]) for name in placement.cores_on(slr)
        )
        shell = " +shell" if slr in device.shell_usage else ""
        free = device.free_capacity(slr)
        util = placement.slr_load[slr].max_utilisation_of(free)
        lines.append(
            f"SLR {slr}{shell:<7} cores {cores}  (worst util {util:.1%})"
        )
    return "\n".join(lines)


def test_fig8_floorplan(benchmark, a3_build):
    build = benchmark.pedantic(lambda: a3_build, rounds=1, iterations=1)
    print()
    print(render_floorplan(build))
    constraints = build.emit_constraints()
    print(f"constraint file: {len(constraints.splitlines())} lines")
    placement = build.placement
    device = build.platform.device
    assert len(placement.assignment) == 23
    counts = {slr: len(placement.cores_on(slr)) for slr in range(device.n_slrs)}
    # Shell on SLR0 (and partially SLR1) pushes cores away from it.
    assert counts[0] == min(counts.values())
    assert counts[2] == max(counts.values())
    # Constraint file pins every core to a pblock.
    assert constraints.count("add_cells_to_pblock") == 23
    for slr in range(device.n_slrs):
        assert f"create_pblock pblock_slr{slr}" in constraints
