"""Multi-tenant serving benchmark: SLO metrics under fair scheduling.

Runs the canonical serving profiles (see :mod:`repro.serve.scenarios`)
through the full stack — admission control, deficit-round-robin release,
kernel-class routing, the runtime server's MMIO arbitration — and reports
per-tenant p50/p99/p999 latency, goodput, rejection rate and Jain's fairness
index:

* ``symmetric``  — three identical closed-loop tenants over a 50/50
  gemm/attn mix on a heterogeneous two-system design.  The fairness gate
  (``--min-jain``, default 0.9) runs here: identical offered load must get
  near-identical goodput.
* ``asymmetric`` — an open-loop flooder with a tight rate quota next to a
  steady and a bursty tenant; shows typed admission rejections shielding the
  well-behaved tenants (the flood tenant absorbs all rejections).

Each profile runs under all four scheduling backends and the report must be
**bit-identical** across them — the serving layer's determinism contract
(seeded simulated-time arrivals, decisions only at pump cycles) makes the
whole SLO report a pure function of the seed.  The benchmark doubles as
that differential check.

Run as a script to emit ``BENCH_serving.json``::

    python benchmarks/bench_serving.py --quick --out BENCH_serving.json
"""

import argparse
import json
import time

from repro.serve.scenarios import run_scenario
from repro.sim import SCHEDULING_MODES


def _run_profile(profile, seed, n_requests):
    """One profile under all four modes; asserts report bit-identity."""
    reports = {}
    walls = {}
    batch = {}
    for mode in SCHEDULING_MODES:
        t0 = time.perf_counter()
        report, service, build = run_scenario(
            profile, seed=seed, mode=mode, n_requests=n_requests
        )
        walls[mode] = round(time.perf_counter() - t0, 6)
        reports[mode] = report.to_dict()
        server = service.handle.server
        batch[mode] = {
            "batch_lock_skips": int(server.batch_lock_skips),
            "batch_cycles_saved": int(server.batch_cycles_saved),
            "coalesced": int(service.scheduler.coalesced),
            "fifo_violations": int(server.fifo_violations),
        }
    canonical = json.dumps(reports[SCHEDULING_MODES[0]], sort_keys=True)
    for mode in SCHEDULING_MODES[1:]:
        if json.dumps(reports[mode], sort_keys=True) != canonical:
            raise AssertionError(
                f"{profile}: serving report differs between "
                f"{SCHEDULING_MODES[0]} and {mode} (determinism contract broken)"
            )
    if json.dumps(batch[SCHEDULING_MODES[0]], sort_keys=True) != json.dumps(
        batch[SCHEDULING_MODES[-1]], sort_keys=True
    ):
        raise AssertionError(f"{profile}: batching counters differ across modes")
    out = dict(reports[SCHEDULING_MODES[0]])
    out["batching"] = batch[SCHEDULING_MODES[0]]
    out["wall_seconds_by_mode"] = walls
    return out


def run_benchmark(seed=42, quick=False):
    return {
        "seed": seed,
        "quick": quick,
        "profiles": {
            "symmetric": _run_profile("symmetric", seed, 12 if quick else 24),
            "asymmetric": _run_profile("asymmetric", seed, 8 if quick else 16),
        },
    }


def render(results) -> str:
    lines = []
    for profile, data in results["profiles"].items():
        lines.append(
            f"{profile}: jain={data['fairness_jain']:.3f} "
            f"elapsed={data['elapsed_cycles']} cycles "
            f"(lock skips {data['batching']['batch_lock_skips']}, "
            f"{data['batching']['batch_cycles_saved']} cycles saved)"
        )
        header = (
            f"  {'tenant':<10} {'ok':>5} {'fail':>5} {'rej':>5} "
            f"{'p50':>7} {'p99':>7} {'p999':>7} {'goodput':>9} {'rej_rate':>8}"
        )
        lines.append(header)
        for name in sorted(data["tenants"]):
            t = data["tenants"][name]
            lines.append(
                f"  {name:<10} {t['completed']:>5} {t['failed']:>5} "
                f"{t['rejected']:>5} {t['p50']:>7} {t['p99']:>7} "
                f"{t['p999']:>7} {t['goodput']:>9.3f} "
                f"{t['rejection_rate']:>8.3f}"
            )
    return "\n".join(lines)


def test_serving_bench_gates():
    """The symmetric profile is fair (Jain >= 0.9) and both profiles are
    bit-identical across all four scheduling backends (enforced inside
    ``_run_profile``)."""
    results = run_benchmark(seed=42, quick=True)
    print()
    print(render(results))
    assert results["profiles"]["symmetric"]["fairness_jain"] >= 0.9
    flood = results["profiles"]["asymmetric"]["tenants"]["flood"]
    assert flood["rejected"] > 0  # admission control actually engaged


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="fewer requests per tenant")
    parser.add_argument("--out", default="BENCH_serving.json")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--min-jain", type=float, default=0.9,
        help="fail unless the symmetric profile's Jain fairness index "
        "reaches this floor (0 disables)",
    )
    args = parser.parse_args()
    results = run_benchmark(seed=args.seed, quick=args.quick)
    print(render(results))
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    jain = results["profiles"]["symmetric"]["fairness_jain"]
    if args.min_jain and jain < args.min_jain:
        raise SystemExit(
            f"symmetric fairness Jain index {jain:.3f} < required {args.min_jain}"
        )
    flood = results["profiles"]["asymmetric"]["tenants"]["flood"]
    if flood["rejected"] == 0:
        raise SystemExit("asymmetric profile produced no admission rejections")


if __name__ == "__main__":
    main()
