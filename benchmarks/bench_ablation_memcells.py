"""Ablation E10: the 80% memory-cell spill rule (Section II-B).

Beethoven's Xilinx backend monitors per-SLR BRAM/URAM utilisation during
generation and maps to the alternative cell type past 80% utilisation.  The
paper credits this with relieving the congestion that would otherwise have
sunk the 96%-utilised A^3 build.  We map a BRAM-hungry design with the rule
on and off and compare the outcome.
"""

import pytest

from repro.farm import Farm, Job
from repro.fpga import MemcellMapper, make_vu9p_aws_f1
from repro.hdl.ir import HdlMemory


def _demand(n_mems: int):
    """A stream of identical BRAM-preferring scratchpads on one SLR."""
    return [HdlMemory(f"sp{i}", 512, 640) for i in range(n_mems)]


def _mapping_outcome(spill: bool):
    """Farm job: map the full demand with the spill rule on or off."""
    device = make_vu9p_aws_f1()
    mapper = MemcellMapper(device, spill_enabled=spill)
    mems = _demand(52)  # 52 x 15 BRAM = 780 > one SLR's 720 BRAM
    for mem in mems:
        mapper.map_memory(mem, slr=2, path=mem.name)
    return mapper, mems


@pytest.fixture(scope="module")
def mapping_outcomes():
    # Two independent mapping runs, one farm job each.
    farm = Farm(cache=False)
    jobs = [Job(_mapping_outcome, (spill,), label=f"memcells/spill{spill}")
            for spill in (True, False)]
    return dict(zip((True, False), farm.map(jobs)))


def test_ablation_memcell_spill(benchmark, mapping_outcomes):
    outcomes = benchmark.pedantic(lambda: mapping_outcomes, rounds=1, iterations=1)
    for spill, (mapper, mems) in outcomes.items():
        kinds = {}
        for mem in mems:
            kinds[mem.cell_mapping] = kinds.get(mem.cell_mapping, 0) + 1
        usage = mapper.usage[2]
        print(
            f"\nspill={'on' if spill else 'off'}: mappings={kinds}, "
            f"bram={usage.bram}, uram={usage.uram}, "
            f"feasible={mapper.feasible}, spills={mapper.spills}"
        )
    on_mapper, on_mems = outcomes[True]
    off_mapper, off_mems = outcomes[False]
    # With the rule: a mixed mapping that fits the device.
    assert on_mapper.feasible
    on_kinds = {m.cell_mapping for m in on_mems}
    assert on_kinds == {"BRAM", "URAM"}
    assert on_mapper.usage[2].bram <= 0.81 * 720
    # Without it: everything piles onto BRAM until the supply is exceeded.
    assert not off_mapper.feasible or off_mapper.usage[2].bram > 720
