"""Figure 5: AXI transaction timelines for a 4KB memcpy.

Reproduces the annotated timing diagrams of Section III-A:
(a) HLS — 4 x 16-beat bursts all on AXI ID 0;
(b) Beethoven — 4 x 16-beat bursts spread over four IDs;
(c) hand-written HDL — a single 64-beat burst per direction.

The harness prints the ASCII timelines and checks the paper's structural
observations: HLS uses one ID for everything, Beethoven spreads IDs and its
writes complete earlier relative to the read stream, pure-HDL issues exactly
one read and one write transaction.
"""

import pytest

from repro.baselines.memcpy_experiment import (
    render_timeline,
    run_beethoven_memcpy,
    run_hdl_memcpy,
    run_hls_memcpy,
    timeline,
)

SIZE = 4096


@pytest.fixture(scope="module")
def fig5_results():
    return {
        "hls": run_hls_memcpy(SIZE, burst_beats=16),
        "beethoven": run_beethoven_memcpy(SIZE, tlp=True, burst_beats=16),
        "pure-hdl": run_hdl_memcpy(SIZE, burst_beats=64),
    }


def test_fig5_timelines(benchmark, fig5_results):
    results = benchmark.pedantic(lambda: fig5_results, rounds=1, iterations=1)
    print()
    for name, result in results.items():
        print(render_timeline(result))
        print()
    hls = timeline(results["hls"])
    beethoven = timeline(results["beethoven"])
    hdl = timeline(results["pure-hdl"])
    # (a) HLS: 4 reads + 4 writes, every transaction on the same AXI ID.
    assert len([r for r in hls if r["kind"] == "read"]) == 4
    assert {r["id"] for r in hls} == {0}
    # (b) Beethoven: 4 reads across distinct AXI IDs.
    b_reads = [r for r in beethoven if r["kind"] == "read"]
    assert len(b_reads) == 4
    assert len({r["id"] for r in b_reads}) == 4
    # "The latency of memory operations grew tremendously for the HLS
    # kernel": same-ID queueing stretches successive HLS reads far more
    # than Beethoven's multi-ID reads.
    def latency_growth(rows):
        lats = [r["complete"] - r["issue"] for r in rows if r["kind"] == "read"]
        return max(lats) / min(lats)

    assert latency_growth(hls) > latency_growth(beethoven)
    # And the whole 4KB copy finishes sooner on Beethoven.
    def span(rows):
        return max(r["complete"] for r in rows) - min(r["issue"] for r in rows)

    assert span(beethoven) < span(hls)
    # Beethoven's writes overlap the read stream ("writes finished early"):
    # its first write is issued before its last read has completed.
    b_writes = [r for r in beethoven if r["kind"] == "write"]
    assert min(w["issue"] for w in b_writes) < max(r["complete"] for r in b_reads)
    # (c) HDL: exactly one 64-beat transaction per direction.
    assert [r["beats"] for r in hdl if r["kind"] == "read"] == [64]
    assert [r["beats"] for r in hdl if r["kind"] == "write"] == [64]
