"""Figure 4: Memcpy microbenchmark throughput on the AWS F1 model.

Reproduces the comparison of Section III-A: Vitis-HLS-style, Beethoven,
Beethoven without TLP, and hand-written HDL, all against the same DRAM
model.  Expected shape (see EXPERIMENTS.md): Beethoven, Beethoven-NoTLP and
pure-HDL within a few percent of each other; HLS clearly behind.
"""

import pytest

from repro.baselines.memcpy_experiment import run_all

SIZES = [65536, 262144, 1048576]


@pytest.fixture(scope="module")
def fig4_results():
    return {size: run_all(size) for size in SIZES}


def test_fig4_memcpy(benchmark, fig4_results):
    def report():
        return fig4_results

    results = benchmark.pedantic(report, rounds=1, iterations=1)
    print()
    print(f"{'size':>9} {'hls':>7} {'beethoven':>10} {'no-tlp':>8} {'pure-hdl':>9}  (GB/s)")
    for size, res in results.items():
        print(
            f"{size:>9} {res['hls'].gbps:>7.2f} {res['beethoven'].gbps:>10.2f} "
            f"{res['beethoven-notlp'].gbps:>8.2f} {res['pure-hdl'].gbps:>9.2f}"
        )
    big = results[SIZES[-1]]
    # Functional: every implementation copied the bytes correctly.
    assert all(r.verified for res in results.values() for r in res.values())
    # Shape: the three long-burst implementations are within 10% of each
    # other; single-ID short-burst HLS is clearly behind all of them.
    beethoven = big["beethoven"].gbps
    assert abs(big["beethoven-notlp"].gbps - beethoven) / beethoven < 0.10
    assert abs(big["pure-hdl"].gbps - beethoven) / beethoven < 0.10
    assert big["hls"].gbps < 0.92 * min(
        beethoven, big["beethoven-notlp"].gbps, big["pure-hdl"].gbps
    )
