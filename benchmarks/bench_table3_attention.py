"""Table III: attention throughput and energy across platforms.

CPU and GPU rows are the documented roofline baselines; the Beethoven row is
the 23-core A^3 FPGA design simulated end to end (K/V scratchpad loading,
query streaming, runtime dispatch); the ASIC row is the original single-core
A^3 at 1 GHz.  Shape checks mirror the paper: Beethoven beats the GPU by
~3x in throughput and by >20x in energy per op, and a single core at
250 MHz is slower than the 1 GHz ASIC while 23 cores are far faster.
"""

import pytest

from repro.baselines.roofline import AsicA3Baseline, measure_numpy_attention
from repro.kernels.attention.reference import BERT_DIM, BERT_KEYS
from repro.kernels.attention.table3 import render_table3, run_beethoven_a3, table3


@pytest.fixture(scope="module")
def table3_rows():
    return table3(n_cores=23, queries_per_core=128)


def test_table3_attention(benchmark, table3_rows):
    rows = benchmark.pedantic(lambda: table3_rows, rounds=1, iterations=1)
    print()
    print(render_table3(rows))
    local = measure_numpy_attention(BERT_DIM, BERT_KEYS)
    print(f"(sanity: single-thread NumPy attention on this host: {local:,.0f} ops/s)")
    cpu, gpu, beethoven, asic = rows
    assert cpu.ops_per_second < gpu.ops_per_second < beethoven.ops_per_second
    # Paper: 3.3x GPU throughput, 34x better energy/op, ~24 W average power.
    assert 2.0 < beethoven.ops_per_second / gpu.ops_per_second < 4.5
    assert gpu.energy_per_op_uj / beethoven.energy_per_op_uj > 20
    assert 15 < beethoven.power_w < 35
    # The 1 GHz single-core ASIC sits between GPU and the multi-core FPGA.
    assert asic.ops_per_second < beethoven.ops_per_second


def test_table3_functional_verification(benchmark):
    """A small multi-core run whose outputs are checked bit-for-bit."""
    result = benchmark.pedantic(
        lambda: run_beethoven_a3(n_cores=4, queries_per_core=32),
        rounds=1,
        iterations=1,
    )
    print(
        f"\n4-core probe: {result.cycles_per_query_per_core:.0f} cycles/query/core, "
        f"verified={result.verified}"
    )
    assert result.verified
    # Steady state approaches one query per n_keys cycles per core.
    assert result.cycles_per_query_per_core < 2.2 * BERT_KEYS


def test_asic_single_core_matches_paper_model(benchmark):
    asic = benchmark.pedantic(AsicA3Baseline, rounds=1, iterations=1)
    # Paper Table III: 2.94M ops/s at 1 GHz for the 320-key configuration.
    assert abs(asic.ops_per_second(BERT_KEYS) - 2.94e6) / 2.94e6 < 0.01
