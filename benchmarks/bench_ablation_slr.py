"""Ablation E9: SLR-aware tree network vs a naive flat crossbar.

Section II-B: without explicit floorplanning and buffered crossings, the
same RTL "consistently yielded poorer quality results and failed timing".
We build the 23-core A^3 memory network both ways and compare the structure
and the routability verdict; we also check that the SLR-aware network's
extra latency costs almost nothing in delivered throughput.
"""

import pytest

from repro.core import BeethovenBuild, BuildMode
from repro.farm import Farm, Job
from repro.fpga import routability_report
from repro.kernels.attention import a3_config
from repro.noc import TreeConfig
from repro.platforms import AWSF1Platform
from dataclasses import replace


def _platform(slr_aware: bool) -> object:
    base = AWSF1Platform()
    tree = TreeConfig(
        fanout=base.tree_config.fanout,
        interior_depth=base.tree_config.interior_depth,
        slr_crossing_latency=base.tree_config.slr_crossing_latency,
        slr_aware=slr_aware,
    )
    return replace(base, tree_config=tree)


def _network_outcome(slr_aware: bool) -> dict:
    """Farm job: build the 23-core A^3 network and return the derived facts
    (a build holds a live simulator, so the job ships numbers, not objects)."""
    build = BeethovenBuild(a3_config(23), _platform(slr_aware), BuildMode.Simulation)
    out = {
        "n_nodes": build.design.network.n_nodes,
        "n_pipes": build.design.network.n_pipes,
        "max_fanout": build.design.network.max_fanout,
        "feasible": build.routability.feasible,
        "reasons": list(build.routability.reasons),
    }
    if not slr_aware:
        report = routability_report(
            build.platform.device,
            build.placement,
            interconnect_per_slr=build.resource_report.interconnect_per_slr,
            max_fanout=build.design.network.max_fanout,
            unbuffered_crossings=build.design.network.n_crossings
            or len({s for s in build.placement.assignment.values()}) - 1,
            constraints_emitted=False,
        )
        out["feasible"] = report.feasible
        out["reasons"] = list(report.reasons)
    return out


@pytest.fixture(scope="module")
def outcomes():
    farm = Farm(cache=False)
    jobs = [Job(_network_outcome, (aware,), label=f"slr/aware{aware}")
            for aware in (True, False)]
    aware, naive = farm.map(jobs)
    return aware, naive


def test_ablation_slr_structure(benchmark, outcomes):
    aware, naive = benchmark.pedantic(lambda: outcomes, rounds=1, iterations=1)
    print()
    print(
        f"SLR-aware: {aware['n_nodes']} nodes, {aware['n_pipes']} bridges, "
        f"max fanout {aware['max_fanout']} -> feasible={aware['feasible']}"
    )
    print(
        f"naive flat: {naive['n_nodes']} nodes, max fanout "
        f"{naive['max_fanout']} -> feasible={naive['feasible']}"
        f" ({'; '.join(naive['reasons'])})"
    )
    # The SLR-aware network bounds fanout and buffers crossings; the naive
    # single crossbar has a 92-way arbiter and unbuffered die crossings.
    assert aware["feasible"]
    assert aware["max_fanout"] <= 8
    assert naive["max_fanout"] == 92
    assert not naive["feasible"]


def test_ablation_slr_throughput_cost(benchmark):
    """Buffered crossings add latency, not bandwidth: throughput holds."""
    job = Job(
        "repro.kernels.attention.table3:run_beethoven_a3",
        (),
        {"n_cores": 4, "queries_per_core": 32},
        label="slr/throughput",
    )
    result = benchmark.pedantic(
        lambda: Farm(cache=False).map([job])[0], rounds=1, iterations=1
    )
    print(f"\n4-core SLR-aware: {result.cycles_per_query_per_core:.0f} cyc/q/core")
    assert result.verified
    assert result.cycles_per_query_per_core < 2.2 * 320
