"""Ablation E9: SLR-aware tree network vs a naive flat crossbar.

Section II-B: without explicit floorplanning and buffered crossings, the
same RTL "consistently yielded poorer quality results and failed timing".
We build the 23-core A^3 memory network both ways and compare the structure
and the routability verdict; we also check that the SLR-aware network's
extra latency costs almost nothing in delivered throughput.
"""

import pytest

from repro.core import BeethovenBuild, BuildMode
from repro.fpga import routability_report
from repro.kernels.attention import a3_config
from repro.kernels.attention.table3 import run_beethoven_a3
from repro.noc import TreeConfig
from repro.platforms import AWSF1Platform
from dataclasses import replace


def _platform(slr_aware: bool) -> object:
    base = AWSF1Platform()
    tree = TreeConfig(
        fanout=base.tree_config.fanout,
        interior_depth=base.tree_config.interior_depth,
        slr_crossing_latency=base.tree_config.slr_crossing_latency,
        slr_aware=slr_aware,
    )
    return replace(base, tree_config=tree)


@pytest.fixture(scope="module")
def builds():
    aware = BeethovenBuild(a3_config(23), _platform(True), BuildMode.Simulation)
    naive = BeethovenBuild(a3_config(23), _platform(False), BuildMode.Simulation)
    return aware, naive


def test_ablation_slr_structure(benchmark, builds):
    aware, naive = benchmark.pedantic(lambda: builds, rounds=1, iterations=1)
    print()
    print(
        f"SLR-aware: {aware.design.network.n_nodes} nodes, "
        f"{aware.design.network.n_pipes} bridges, max fanout "
        f"{aware.design.network.max_fanout} -> feasible={aware.routability.feasible}"
    )
    naive_report = routability_report(
        naive.platform.device,
        naive.placement,
        interconnect_per_slr=naive.resource_report.interconnect_per_slr,
        max_fanout=naive.design.network.max_fanout,
        unbuffered_crossings=naive.design.network.n_crossings
        or len({s for s in naive.placement.assignment.values()}) - 1,
        constraints_emitted=False,
    )
    print(
        f"naive flat: {naive.design.network.n_nodes} nodes, max fanout "
        f"{naive.design.network.max_fanout} -> feasible={naive_report.feasible}"
        f" ({'; '.join(naive_report.reasons)})"
    )
    # The SLR-aware network bounds fanout and buffers crossings; the naive
    # single crossbar has a 92-way arbiter and unbuffered die crossings.
    assert aware.routability.feasible
    assert aware.design.network.max_fanout <= 8
    assert naive.design.network.max_fanout == 92
    assert not naive_report.feasible


def test_ablation_slr_throughput_cost(benchmark):
    """Buffered crossings add latency, not bandwidth: throughput holds."""
    result = benchmark.pedantic(
        lambda: run_beethoven_a3(n_cores=4, queries_per_core=32),
        rounds=1,
        iterations=1,
    )
    print(f"\n4-core SLR-aware: {result.cycles_per_query_per_core:.0f} cyc/q/core")
    assert result.verified
    assert result.cycles_per_query_per_core < 2.2 * 320
