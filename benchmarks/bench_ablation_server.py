"""Ablation E11: userspace vs kernel-module runtime server.

Section II-C: the current runtime "is implemented as a user module...  It
will be expanded to be implemented as a kernel module in the future."  We
implement that future-work variant (``repro.platforms.kernel_mode``) and
measure how much of the Figure 6 ideal-vs-measured gap it recovers for
low-latency kernels.
"""

import pytest

from repro.farm import Farm, Job
from repro.kernels.machsuite.fig6 import dispatch_cost_cycles
from repro.platforms import AWSF1Platform, kernel_mode

N_CORES = 16
LATENCIES = (500, 2_000, 8_000)


@pytest.fixture(scope="module")
def server_sweep():
    # Six independent runtime-server simulations (3 latencies x 2 server
    # modes), sharded across the farm's worker pool.
    user = AWSF1Platform(clock_mhz=125.0)
    kernel = kernel_mode(user)
    grid = [(latency, mode) for latency in LATENCIES for mode in ("user", "kernel")]
    jobs = [
        Job(
            "repro.kernels.machsuite.fig6:simulate_measured",
            (N_CORES, latency, user if mode == "user" else kernel),
            {"rounds": 3},
            label=f"server/{mode}/l{latency}",
        )
        for latency, mode in grid
    ]
    measured = dict(zip(grid, Farm(cache=False).map(jobs)))
    return {
        latency: {
            "user": measured[(latency, "user")],
            "kernel": measured[(latency, "kernel")],
            "ideal": N_CORES * 125e6 / latency,
        }
        for latency in LATENCIES
    }


def test_ablation_server_mode(benchmark, server_sweep):
    sweep = benchmark.pedantic(lambda: server_sweep, rounds=1, iterations=1)
    user_platform = AWSF1Platform(clock_mhz=125.0)
    print()
    print(
        f"dispatch cost: user={dispatch_cost_cycles(user_platform)} cycles, "
        f"kernel={dispatch_cost_cycles(kernel_mode(user_platform))} cycles"
    )
    print(f"{'kernel cycles':>14} {'user meas/ideal':>16} {'kernel meas/ideal':>18}")
    for latency, row in sweep.items():
        u = row["user"].ops_per_second / row["ideal"]
        k = row["kernel"].ops_per_second / row["ideal"]
        print(f"{latency:>14} {u:>15.1%} {k:>17.1%}")
        # The kernel-module runtime never does worse...
        assert k >= u * 0.98
    # ...and recovers a large share of the gap for the lowest-latency kernel.
    low = sweep[LATENCIES[0]]
    user_eff = low["user"].ops_per_second / low["ideal"]
    kernel_eff = low["kernel"].ops_per_second / low["ideal"]
    assert kernel_eff - user_eff > 0.15
