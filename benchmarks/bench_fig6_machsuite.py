"""Figure 6 (and Table I): MachSuite speedups over Vitis HLS.

For each Table I workload: Spatial, Beethoven(Ideal) and Beethoven(Measured)
normalised to the tuned Vitis HLS implementation.  Core counts are derived
by packing cores until the place/route feasibility model fails, reproducing
the paper's account of which resource binds.  The measured bar goes through
the simulated runtime server (or its validated queueing model for
long-latency kernels), so the ideal-vs-measured gap is widest for the
lowest-latency kernels, as in the paper.
"""

import time

import pytest

from repro.analysis import skip_fraction
from repro.baselines.delay_core import delay_config
from repro.core.build import BeethovenBuild, BuildMode
from repro.kernels.machsuite.fig6 import beethoven_kernel_cycles, fig6_all, render_fig6
from repro.kernels.machsuite.workloads import TABLE1
from repro.platforms import AWSF1Platform
from repro.runtime import FpgaHandle


def test_table1_workloads(benchmark):
    """Table I: the selected benchmarks and their parameters."""
    benchmark.pedantic(lambda: TABLE1, rounds=1, iterations=1)
    print()
    print(f"{'benchmark':<12} {'description':<34} {'parallelism':<12}")
    for w in TABLE1.values():
        print(f"{w.name:<12} {w.description:<34} {w.parallelism:<12}")
    assert set(TABLE1) == {"gemm", "nw", "stencil2d", "stencil3d", "md-knn"}
    assert TABLE1["nw"].parallelism == "None"


@pytest.fixture(scope="module")
def fig6_rows():
    # Rows shard across farm workers; results are bit-identical to the
    # serial path (each row is a pure function of bench/platform/max_cores).
    from repro.farm import Farm

    return fig6_all(max_cores=48, farm=Farm(cache=False))


def test_fig6_machsuite(benchmark, fig6_rows):
    rows = benchmark.pedantic(lambda: fig6_rows, rounds=1, iterations=1)
    print()
    print(render_fig6(rows))
    by_name = {r.bench: r for r in rows}
    # Beethoven multi-core beats HLS and Spatial on every workload.
    for r in rows:
        assert r.beethoven_measured_speedup > 1.0
        assert r.beethoven_measured_speedup > r.spatial_speedup
    # NW: ~2x over HLS for even a single core (the paper's headline).
    nw = by_name["nw"]
    assert nw.beethoven_ideal_speedup / nw.n_cores > 1.8
    # Resource limiters match Section III-B: BRAM binds NW and Stencil2D,
    # LUTs bind GeMM and MD-KNN.
    assert by_name["nw"].limiter == "BRAM"
    assert by_name["stencil2d"].limiter == "BRAM"
    assert by_name["gemm"].limiter == "LUT"
    assert by_name["md-knn"].limiter == "LUT"
    # The ideal-vs-measured gap is largest for the lowest-latency kernels.
    gaps = {
        r.bench: 1.0 - r.beethoven_measured_speedup / r.beethoven_ideal_speedup
        for r in rows
    }
    latencies = {r.bench: beethoven_kernel_cycles(r.bench) for r in rows}
    lowest = min(latencies, key=latencies.get)
    highest = max(latencies, key=latencies.get)
    print(f"gaps: { {k: f'{v:.1%}' for k, v in gaps.items()} }")
    assert gaps[lowest] >= gaps[highest]


def _sparse_delay_run(scheduling):
    """One long-latency core on AWS F1, one command outstanding at a time —
    the sparse configuration (low core count, long poll interval) whose
    simulated cycles are almost entirely dead time."""
    kernel_cycles, rounds = 50_000, 4
    build = BeethovenBuild(
        delay_config(1, kernel_cycles),
        AWSF1Platform(),
        BuildMode.Simulation,
        scheduling=scheduling,
    )
    handle = FpgaHandle(build.design)
    t0 = time.perf_counter()
    latencies = []
    for r in range(rounds):
        fut = handle.call("Delay", "run", 0, job=r)
        fut.get(max_cycles=10_000_000)
        latencies.append(fut.latency_cycles)
    wall = time.perf_counter() - t0
    return handle.cycle, latencies, wall, build.design


def test_fast_forward_sparse_speedup():
    """Event-skipping wins >= 3x wall clock on a sparse config, cycle-exactly.

    The skip accounting is read back through the unified metric registry
    (``sim/*`` namespace) rather than from simulator internals.
    """
    naive_cycle, naive_lat, naive_wall, naive_design = _sparse_delay_run("naive")
    fast_cycle, fast_lat, fast_wall, fast_design = _sparse_delay_run("fast_forward")
    speedup = naive_wall / fast_wall
    print()
    print(f"naive: {naive_cycle} cycles in {naive_wall:.3f}s")
    print(f"fast : {fast_cycle} cycles in {fast_wall:.3f}s ({speedup:.1f}x)")
    print(fast_design.metrics_report("sim"))
    assert fast_cycle == naive_cycle
    assert fast_lat == naive_lat
    assert naive_design.registry.value("sim/cycles_skipped") == 0
    assert skip_fraction(fast_design.registry) > 0.9
    assert speedup >= 3.0


def test_selective_sparse_speedup():
    """Selective scheduling matches naive cycle-for-cycle on the same sparse
    configuration and is at least as fast as whole-design fast-forward (it
    performs the same idle-window jumps, plus per-component elision on the
    cycles it does step)."""
    naive_cycle, naive_lat, naive_wall, _ = _sparse_delay_run("naive")
    sel_cycle, sel_lat, sel_wall, sel_design = _sparse_delay_run("selective")
    speedup = naive_wall / sel_wall
    print()
    print(f"naive    : {naive_cycle} cycles in {naive_wall:.3f}s")
    print(f"selective: {sel_cycle} cycles in {sel_wall:.3f}s ({speedup:.1f}x)")
    assert sel_cycle == naive_cycle
    assert sel_lat == naive_lat
    sim = sel_design.sim
    executed = sum(sim.component_ticks(c) for c in sim._components)
    elided_fraction = 1.0 - executed / (sim.cycle * len(sim._components))
    print(f"elided component-tick fraction: {elided_fraction:.1%}")
    assert elided_fraction > 0.9
    assert speedup >= 3.0
