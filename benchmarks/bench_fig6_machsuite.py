"""Figure 6 (and Table I): MachSuite speedups over Vitis HLS.

For each Table I workload: Spatial, Beethoven(Ideal) and Beethoven(Measured)
normalised to the tuned Vitis HLS implementation.  Core counts are derived
by packing cores until the place/route feasibility model fails, reproducing
the paper's account of which resource binds.  The measured bar goes through
the simulated runtime server (or its validated queueing model for
long-latency kernels), so the ideal-vs-measured gap is widest for the
lowest-latency kernels, as in the paper.
"""

import pytest

from repro.kernels.machsuite.fig6 import beethoven_kernel_cycles, fig6_all, render_fig6
from repro.kernels.machsuite.workloads import TABLE1


def test_table1_workloads(benchmark):
    """Table I: the selected benchmarks and their parameters."""
    benchmark.pedantic(lambda: TABLE1, rounds=1, iterations=1)
    print()
    print(f"{'benchmark':<12} {'description':<34} {'parallelism':<12}")
    for w in TABLE1.values():
        print(f"{w.name:<12} {w.description:<34} {w.parallelism:<12}")
    assert set(TABLE1) == {"gemm", "nw", "stencil2d", "stencil3d", "md-knn"}
    assert TABLE1["nw"].parallelism == "None"


@pytest.fixture(scope="module")
def fig6_rows():
    return fig6_all(max_cores=48)


def test_fig6_machsuite(benchmark, fig6_rows):
    rows = benchmark.pedantic(lambda: fig6_rows, rounds=1, iterations=1)
    print()
    print(render_fig6(rows))
    by_name = {r.bench: r for r in rows}
    # Beethoven multi-core beats HLS and Spatial on every workload.
    for r in rows:
        assert r.beethoven_measured_speedup > 1.0
        assert r.beethoven_measured_speedup > r.spatial_speedup
    # NW: ~2x over HLS for even a single core (the paper's headline).
    nw = by_name["nw"]
    assert nw.beethoven_ideal_speedup / nw.n_cores > 1.8
    # Resource limiters match Section III-B: BRAM binds NW and Stencil2D,
    # LUTs bind GeMM and MD-KNN.
    assert by_name["nw"].limiter == "BRAM"
    assert by_name["stencil2d"].limiter == "BRAM"
    assert by_name["gemm"].limiter == "LUT"
    assert by_name["md-knn"].limiter == "LUT"
    # The ideal-vs-measured gap is largest for the lowest-latency kernels.
    gaps = {
        r.bench: 1.0 - r.beethoven_measured_speedup / r.beethoven_ideal_speedup
        for r in rows
    }
    latencies = {r.bench: beethoven_kernel_cycles(r.bench) for r in rows}
    lowest = min(latencies, key=latencies.get)
    highest = max(latencies, key=latencies.get)
    print(f"gaps: { {k: f'{v:.1%}' for k, v in gaps.items()} }")
    assert gaps[lowest] >= gaps[highest]
