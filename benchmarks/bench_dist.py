"""Sharded-simulation benchmark: wall-clock speedup from partitioning one SoC.

A compute-dense many-core design (``SpinCore``: real integer hashing every
busy cycle, so simulation cost scales with core count) is elaborated on a
synthetic multi-die device with deep SLR crossings (latency 32, so slice
barriers are 32 cycles apart) and run three ways:

* ``serial``  — the sharded structure with every partition advanced in one
  process: the bit-identity reference and the speedup baseline (it performs
  the same model work as a single-process build of the same netlist);
* ``fork:N``  — the same design forked over N worker processes that
  exchange bridge deltas at conservative slice barriers (lookahead = the
  SLR-crossing pipe latency).

Every run must agree bit-for-bit on final cycle count and stable metrics —
the benchmark doubles as the differential harness.  Reported per fork run:

* ``speedup``           — serial wall / fork wall (higher is better);
* ``sync_stall_cycles`` — the supervisor's cumulative barrier-wait time
  converted to simulated-cycle equivalents (``barrier_wait_s * cycles /
  wall``): how much of the run was spent waiting on the slowest partition
  (lower is better).

Parallel speedup is bounded by the host: N workers cannot beat serial on
fewer than N CPUs (the processes just timeshare).  The gate therefore
adapts — on hosts with >= 2 CPUs ``--min-speedup`` checks the best run
whose worker count fits the host; on a single-CPU host it degrades to an
*overhead* gate (every fork run must stay within ``OVERHEAD_FLOOR`` of
serial) so barrier-IPC regressions still fail the build.  The JSON records
``host_cpus`` and which gate applied.

Run as a script to emit ``BENCH_dist.json``::

    python benchmarks/bench_dist.py --out BENCH_dist.json
    python benchmarks/bench_dist.py --quick --min-speedup 1.3   # CI floor
    python benchmarks/bench_dist.py --full                      # 256 cores / 8 workers
"""

import argparse
import json
import os
import time

from repro.baselines.spin_core import spin_config
from repro.core.build import BeethovenBuild
from repro.dist import DistConfig
from repro.platforms import multi_die_platform
from repro.runtime import FpgaHandle

# Single-CPU fallback gate: fork may cost at most 1/OVERHEAD_FLOOR x serial.
OVERHEAD_FLOOR = 0.75


def _host_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


def _run_once(n_cores, n_slrs, n_workers, engine, rounds, work_per_tick, latency):
    """One full run; returns (wall_seconds, cycles, stable_metrics, dist)."""
    build = BeethovenBuild(
        spin_config(n_cores, work_per_tick=work_per_tick),
        multi_die_platform(n_slrs, slr_crossing_latency=latency),
        distributed=DistConfig(n_workers=n_workers, engine=engine),
    )
    handle = FpgaHandle(build.design)
    t0 = time.perf_counter()
    futs = [
        handle.call("Spin", "spin", c, rounds=rounds + (c % 7), seed=c + 1)
        for c in range(n_cores)
    ]
    for fut in futs:
        fut.get(max_cycles=50_000_000)
    wall = time.perf_counter() - t0
    design = build.design
    cycles = design.sim.cycle
    stable = design.metrics(stable_only=True)
    dist = design.metrics(prefix="dist/")
    design.sim.shutdown()
    return wall, cycles, stable, dist


def run_benchmark(n_cores, n_slrs, worker_counts, rounds, work_per_tick, latency):
    base_workers = worker_counts[0]
    serial_wall, ref_cycles, ref_stable, _ = _run_once(
        n_cores, n_slrs, base_workers, "serial", rounds, work_per_tick, latency
    )
    runs = {}
    for n_workers in worker_counts:
        wall, cycles, stable, dist = _run_once(
            n_cores, n_slrs, n_workers, "fork", rounds, work_per_tick, latency
        )
        if cycles != ref_cycles:
            raise AssertionError(
                f"fork:{n_workers} cycle count {cycles} != serial {ref_cycles}"
            )
        if stable != ref_stable:
            diff = sorted(
                set(stable) ^ set(ref_stable)
                | {k for k in set(stable) & set(ref_stable) if stable[k] != ref_stable[k]}
            )
            raise AssertionError(
                f"fork:{n_workers} stable metrics diverged from serial "
                f"({len(diff)} keys, first: {diff[:5]})"
            )
        runs[f"workers_{n_workers}"] = {
            "n_workers": n_workers,
            "wall_seconds": round(wall, 4),
            "speedup": round(serial_wall / wall, 3),
            "sync_stall_cycles": int(dist["dist/barrier_wait_s"] * cycles / wall),
            "slices": dist["dist/slices"],
            "slice_width": dist["dist/slice_width"],
            "items_shipped": dist["dist/items_shipped"],
        }
    return {
        "n_cores": n_cores,
        "n_slrs": n_slrs,
        "rounds": rounds,
        "work_per_tick": work_per_tick,
        "slr_crossing_latency": latency,
        "host_cpus": _host_cpus(),
        "cycles": ref_cycles,
        "identical_stable_metrics": True,
        "n_stable_metrics": len(ref_stable),
        "serial_wall_seconds": round(serial_wall, 4),
        "runs": runs,
    }


def apply_gate(results, min_speedup):
    """Return (ok, gate_record).  Speedup gate when the host has the CPUs
    to make parallel wall-clock physically possible, overhead gate else."""
    runs = list(results["runs"].values())
    host_cpus = results["host_cpus"]
    fitting = [r for r in runs if r["n_workers"] <= host_cpus]
    if fitting:
        best = max(r["speedup"] for r in fitting)
        return best >= min_speedup, {
            "mode": "speedup",
            "min_speedup": min_speedup,
            "best_fitting_speedup": best,
        }
    worst = min(r["speedup"] for r in runs)
    return worst >= OVERHEAD_FLOOR, {
        "mode": "overhead",
        "reason": f"host has {host_cpus} CPU(s); parallel speedup impossible",
        "overhead_floor": OVERHEAD_FLOOR,
        "worst_speedup": worst,
    }


def render(results) -> str:
    lines = [
        f"sharded {results['n_cores']}-core spin on "
        f"{results['n_slrs']}-die device (crossing latency "
        f"{results['slr_crossing_latency']}, host CPUs "
        f"{results['host_cpus']}): {results['cycles']} cycles, "
        f"serial {results['serial_wall_seconds']:.2f}s "
        f"({results['n_stable_metrics']} stable metrics, all runs identical)",
        f"{'workers':>8} {'wall(s)':>9} {'speedup':>8} "
        f"{'sync_stall_cyc':>14} {'slices':>7}",
    ]
    for run in results["runs"].values():
        lines.append(
            f"{run['n_workers']:>8} {run['wall_seconds']:>9.2f} "
            f"{run['speedup']:>7.2f}x {run['sync_stall_cycles']:>14} "
            f"{run['slices']:>7}"
        )
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized: 32 cores on 4 dies, 2 workers only",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="ROADMAP point: 256 cores on 8 dies, up to 8 workers",
    )
    parser.add_argument("--out", default="BENCH_dist.json")
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="fail unless the best host-fitting run beats serial by this "
        "factor (0 disables); local target 2.0 at 4 workers, CI floor 1.3 "
        "at 2 workers.  On a single-CPU host this degrades to the overhead "
        f"gate (every run >= {OVERHEAD_FLOOR}x serial).",
    )
    args = parser.parse_args()

    if args.full:
        n_cores, n_slrs, workers, rounds = 256, 8, (2, 4, 8), 1500
    elif args.quick:
        n_cores, n_slrs, workers, rounds = 32, 4, (2,), 800
    else:
        n_cores, n_slrs, workers, rounds = 64, 4, (2, 4), 1500

    results = run_benchmark(
        n_cores, n_slrs, workers, rounds, work_per_tick=256, latency=32
    )
    ok = True
    if args.min_speedup:
        ok, gate = apply_gate(results, args.min_speedup)
        results["gate"] = gate
    print(render(results))
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
    print(f"wrote {args.out}")
    if args.min_speedup:
        detail = json.dumps(results["gate"])
        if not ok:
            raise SystemExit(f"distributed bench gate failed: {detail}")
        print(f"gate passed: {detail}")


if __name__ == "__main__":
    main()
