"""Ablation E8: burst length under TLP (Section III-A).

The paper checked whether HLS's 16-beat bursts alone explained its memcpy
deficit by compiling a 16-beat Beethoven memcpy — and found no degradation,
because TLP across four AXI IDs keeps the controller pipelined even with
short bursts.  This bench sweeps burst length with and without TLP.
"""

import pytest

from repro.farm import Farm, Job

SIZE = 262144


@pytest.fixture(scope="module")
def burst_sweep():
    # The six (burst, tlp) points are independent pure builds: shard them
    # across the farm's worker pool instead of evaluating serially.
    grid = [(burst, tlp) for burst in (16, 32, 64) for tlp in (True, False)]
    jobs = [
        Job(
            "repro.baselines.memcpy_experiment:run_beethoven_memcpy",
            (SIZE,),
            {"tlp": tlp, "burst_beats": burst,
             "label": f"b{burst}-{'tlp' if tlp else 'notlp'}"},
            label=f"burst/b{burst}-{'tlp' if tlp else 'notlp'}",
        )
        for burst, tlp in grid
    ]
    return dict(zip(grid, Farm(cache=False).map(jobs)))


def test_ablation_burst_length(benchmark, burst_sweep):
    results = benchmark.pedantic(lambda: burst_sweep, rounds=1, iterations=1)
    print()
    print(f"{'burst':>6} {'tlp GB/s':>9} {'no-tlp GB/s':>12}")
    for burst in (16, 32, 64):
        print(
            f"{burst:>6} {results[(burst, True)].gbps:>9.2f} "
            f"{results[(burst, False)].gbps:>12.2f}"
        )
    assert all(r.verified for r in results.values())
    # Paper: 16-beat Beethoven (with TLP) shows no degradation vs 64-beat.
    degradation = 1 - results[(16, True)].gbps / results[(64, True)].gbps
    print(f"16-beat TLP degradation vs 64-beat: {degradation:.1%}")
    assert degradation < 0.05
    # Without TLP, short bursts DO hurt: the single-ID pipeline drains.
    no_tlp_degradation = 1 - results[(16, False)].gbps / results[(64, False)].gbps
    print(f"16-beat no-TLP degradation vs 64-beat: {no_tlp_degradation:.1%}")
    assert no_tlp_degradation > degradation
