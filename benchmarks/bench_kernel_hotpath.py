"""Simulation-kernel hot-path microbenchmark: ticks/sec across schedules.

Two 32-core memcpy configurations exercise the scheduling spectrum:

* ``sparse`` — one active core out of 32, continuously streaming: the
  whole-design fast-forward gate is pinned (traffic in flight every cycle)
  while 90+% of components are idle.  This is the configuration selective
  scheduling exists for.
* ``dense``  — all 32 cores streaming concurrently: near-worst case for
  selective scheduling (most components wake most cycles), bounding its
  overhead when there is nothing to elide.  This is the configuration the
  ``compiled`` tick-program backend targets: same wake decisions as
  selective, but with dispatch specialised into closures and commit drains
  flattened, so the per-tick overhead share shrinks.

Each (case, schedule) cell is run twice and the faster repetition is kept
(wall clock only; elaboration excluded).  Cycle counts must be identical
across all four schedules — the benchmark doubles as a differential check.

Run as a script to emit ``BENCH_kernel.json``::

    python benchmarks/bench_kernel_hotpath.py --quick --out BENCH_kernel.json
"""

import argparse
import json
import time

from repro.core.build import BeethovenBuild, BuildMode
from repro.kernels.memcpy import memcpy_config
from repro.platforms import SimulationPlatform
from repro.runtime import FpgaHandle
from repro.sim import SCHEDULING_MODES

N_CORES = 32
REPS = 2  # keep the faster repetition of each cell


def _run_cell(active_cores, size, rounds, scheduling):
    """One (case, schedule) cell: ``rounds`` memcpys per active core."""
    build = BeethovenBuild(
        memcpy_config(n_cores=N_CORES),
        SimulationPlatform(),
        BuildMode.Simulation,
        scheduling=scheduling,
    )
    handle = FpgaHandle(build.design)
    sim = build.design.sim
    bufs = []
    for core in range(active_cores):
        src, dst = handle.malloc(size), handle.malloc(size)
        src.write(bytes((i + core) % 256 for i in range(size)))
        handle.copy_to_fpga(src)
        bufs.append((src, dst))
    start_cycle = handle.cycle
    wall = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        for r in range(rounds):
            futures = [
                handle.call(
                    "Memcpy", "memcpy", core,
                    src=src.fpga_addr, dst=dst.fpga_addr, len_bytes=size,
                )
                for core, (src, dst) in enumerate(bufs)
            ]
            for fut in futures:
                fut.get(max_cycles=50_000_000)
        wall = min(wall, time.perf_counter() - t0)
    cycles = handle.cycle - start_cycle  # total across both repetitions
    executed = sum(sim.component_ticks(c) for c in sim._components)
    possible = sim.cycle * len(sim._components)
    return {
        "cycles": cycles,
        "wall_seconds": round(wall, 6),
        "cycles_per_second": round(cycles / REPS / wall, 1),
        "executed_ticks": executed,
        "elided_tick_fraction": round(1.0 - executed / possible, 4),
        "n_components": len(sim._components),
    }


def _run_case(name, active_cores, size, rounds):
    modes = {}
    for scheduling in SCHEDULING_MODES:
        modes[scheduling] = _run_cell(active_cores, size, rounds, scheduling)
    cycles = {m["cycles"] for m in modes.values()}
    if len(cycles) != 1:
        raise AssertionError(
            f"{name}: schedules disagree on cycle count: "
            f"{ {s: m['cycles'] for s, m in modes.items()} }"
        )
    walls = {s: m["wall_seconds"] for s, m in modes.items()}
    return {
        "active_cores": active_cores,
        "size_bytes": size,
        "rounds": rounds,
        "modes": modes,
        "speedup": {
            "fast_forward_vs_naive": round(walls["naive"] / walls["fast_forward"], 2),
            "selective_vs_naive": round(walls["naive"] / walls["selective"], 2),
            "selective_vs_fast_forward": round(
                walls["fast_forward"] / walls["selective"], 2
            ),
            "compiled_vs_naive": round(walls["naive"] / walls["compiled"], 2),
            "compiled_vs_selective": round(
                walls["selective"] / walls["compiled"], 2
            ),
        },
    }


def run_benchmark(quick=False):
    sparse_size = 32_768
    dense_size = 8_192 if quick else 32_768
    return {
        "n_cores": N_CORES,
        "quick": quick,
        "cases": {
            "sparse": _run_case("sparse", 1, sparse_size, rounds=3),
            "dense": _run_case("dense", N_CORES, dense_size, rounds=1),
        },
    }


def render(results) -> str:
    lines = [
        f"{'case':<8} {'schedule':<14} {'cycles':>8} {'wall(s)':>9} "
        f"{'cyc/s':>10} {'elided':>7}"
    ]
    for case, data in results["cases"].items():
        for sched, m in data["modes"].items():
            lines.append(
                f"{case:<8} {sched:<14} {m['cycles']:>8} "
                f"{m['wall_seconds']:>9.3f} {m['cycles_per_second']:>10.0f} "
                f"{m['elided_tick_fraction']:>6.1%}"
            )
        s = data["speedup"]
        lines.append(
            f"{case:<8} selective speedup: {s['selective_vs_naive']}x vs naive, "
            f"{s['selective_vs_fast_forward']}x vs fast_forward"
        )
        lines.append(
            f"{case:<8} compiled speedup:  {s['compiled_vs_naive']}x vs naive, "
            f"{s['compiled_vs_selective']}x vs selective"
        )
    return "\n".join(lines)


def test_kernel_hotpath_sparse_speedup():
    """Selective scheduling wins >= 3x wall clock over the whole-design
    fast-forward kernel on the sparse 1-of-32 configuration, cycle-exactly
    (cycle equality is enforced inside ``_run_case``)."""
    results = run_benchmark(quick=True)
    print()
    print(render(results))
    sparse = results["cases"]["sparse"]
    assert sparse["speedup"]["selective_vs_fast_forward"] >= 3.0
    # Selective elides the idle 31 cores' fabric almost entirely...
    assert sparse["modes"]["selective"]["elided_tick_fraction"] > 0.8
    # ...while naive by definition elides nothing.
    assert sparse["modes"]["naive"]["elided_tick_fraction"] == 0.0
    # The compiled backend must not be slower than selective on the dense
    # case it exists for (same decisions, specialised dispatch).  The CI
    # regression gate (--min-dense-compiled-speedup) enforces a tighter
    # floor; here we only guard against a wash.
    dense = results["cases"]["dense"]
    assert dense["modes"]["compiled"]["elided_tick_fraction"] > 0.0
    assert dense["speedup"]["compiled_vs_selective"] >= 1.1
    with open("BENCH_kernel.json", "w") as fh:
        json.dump(results, fh, indent=2)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller dense case")
    parser.add_argument("--out", default="BENCH_kernel.json")
    parser.add_argument(
        "--min-sparse-speedup", type=float, default=3.0,
        help="fail unless selective beats fast_forward by this factor "
        "on the sparse case (0 disables)",
    )
    parser.add_argument(
        "--min-dense-compiled-speedup", type=float, default=0.0,
        help="fail unless compiled beats selective by this factor "
        "on the dense case (0 disables); CI uses this as a regression "
        "floor below the measured steady-state ratio",
    )
    args = parser.parse_args()
    results = run_benchmark(quick=args.quick)
    print(render(results))
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
    print(f"wrote {args.out}")
    measured = results["cases"]["sparse"]["speedup"]["selective_vs_fast_forward"]
    if args.min_sparse_speedup and measured < args.min_sparse_speedup:
        raise SystemExit(
            f"sparse selective-vs-fast_forward speedup {measured}x "
            f"< required {args.min_sparse_speedup}x"
        )
    dense_compiled = results["cases"]["dense"]["speedup"]["compiled_vs_selective"]
    if args.min_dense_compiled_speedup and dense_compiled < args.min_dense_compiled_speedup:
        raise SystemExit(
            f"dense compiled-vs-selective speedup {dense_compiled}x "
            f"< required {args.min_dense_compiled_speedup}x"
        )


if __name__ == "__main__":
    main()
