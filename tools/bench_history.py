#!/usr/bin/env python
"""Append benchmark results to a history file and gate on regressions.

CLI over :mod:`repro.obs.regress`.  Two subcommands:

``append``
    Record one ``BENCH_*.json`` result (flattened numeric metrics + git /
    source-tree provenance) as a JSONL line::

        python tools/bench_history.py append \\
            --history bench-history.jsonl --bench BENCH_kernel.json

``check``
    Compare the newest entry for a bench against the mean of the trailing
    window.  With fewer than two history points the check warns and exits 0
    (no baseline yet); once a baseline exists, a perf metric moving against
    its direction by more than ``--tolerance`` exits 1.  CI persists the
    history file through a cache so the gate arms on the second run.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.regress import (
    append_history,
    check_regressions,
    load_history,
    render_check,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser("append", help="record a BENCH_*.json result")
    p_append.add_argument("--history", required=True, help="JSONL history file")
    p_append.add_argument("--bench", required=True, help="BENCH_*.json to record")
    p_append.add_argument(
        "--name", default=None, help="bench name (default: derived from filename)"
    )

    p_check = sub.add_parser("check", help="gate the newest entry vs baseline")
    p_check.add_argument("--history", required=True, help="JSONL history file")
    p_check.add_argument(
        "--name", default=None, help="restrict to one bench name"
    )
    p_check.add_argument(
        "--window", type=int, default=5, help="trailing baseline size"
    )
    p_check.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed relative move against a metric's direction",
    )

    args = parser.parse_args(argv)

    if args.command == "append":
        entry = append_history(args.history, args.bench, name=args.name)
        print(
            f"bench-history: appended {entry['bench']!r} "
            f"({len(entry['metrics'])} metrics, git {entry['git_sha'][:12]})"
        )
        return 0

    entries = load_history(args.history, name=args.name)
    name = args.name or (entries[-1]["bench"] if entries else "?")
    ok, findings, n_baseline = check_regressions(
        entries, window=args.window, tolerance=args.tolerance
    )
    print(render_check(ok, findings, n_baseline, name))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
