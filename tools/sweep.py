#!/usr/bin/env python3
"""Farm-powered sweep CLI (see ``repro.farm``).

Three subcommands:

``fig6``
    The paper's Figure 6 sweep through the farm: one job per Table I
    workload, sharded across workers, memoised in the result cache.

        python tools/sweep.py fig6 --max-cores 48 --workers 4

``cores``
    Core-count sweep of one workload with full per-point provenance
    (build wall-time, cache hit/miss, worker id).

        python tools/sweep.py cores --bench gemm --counts 1:12
        python tools/sweep.py cores --bench nw --counts 1:48 --strategy bisect

``smoke``
    The CI gate: runs a serial reference pass, then the same sweep twice
    through a parallel farm with a fresh cache, and checks three
    invariants — farm results are bit-identical to serial, the second
    parallel run is >= --min-hit-rate cache-served, and (when
    --min-speedup is set) the parallel pass beats serial by that factor.
    Writes ``smoke-stats.json``, ``farm-metrics.json`` and
    ``farm-trace.json`` artefacts into --out.

        python tools/sweep.py smoke --workers 4 --min-speedup 2.0 --out artifacts
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from functools import partial

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.analysis import render_sweep_report, sweep_frame  # noqa: E402
from repro.dse import sweep_cores  # noqa: E402
from repro.farm import Farm, Job  # noqa: E402
from repro.kernels.machsuite.fig6 import (  # noqa: E402
    CONFIG_FACTORIES,
    config_for,
    fig6_all,
    render_fig6,
)
from repro.kernels.machsuite.workloads import BEETHOVEN_CLOCK_MHZ  # noqa: E402
from repro.platforms import AWSF1Platform  # noqa: E402


def _platform() -> AWSF1Platform:
    return AWSF1Platform(clock_mhz=BEETHOVEN_CLOCK_MHZ)


def _make_farm(args, cache: bool = True) -> Farm:
    return Farm(
        n_workers=args.workers,
        cache=cache and not getattr(args, "no_cache", False),
        cache_dir=_cache_dir(args),
    )


def _cache_dir(args):
    """--resume pins the result cache inside --out so an interrupted sweep
    rerun with the same arguments is served its completed jobs and only
    recomputes the remainder."""
    explicit = getattr(args, "cache_dir", None)
    if explicit:
        return explicit
    if getattr(args, "resume", False):
        return os.path.join(args.out or ".", "resume-cache")
    return None


def _parse_counts(spec: str):
    if ":" in spec:
        lo, _, hi = spec.partition(":")
        return list(range(int(lo), int(hi) + 1))
    return [int(x) for x in spec.split(",")]


def _emit_artifacts(farm: Farm, out_dir: str) -> None:
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "farm-stats.json"), "w") as f:
        json.dump(farm.stats(), f, indent=2, sort_keys=True)
    farm.export_metrics(os.path.join(out_dir, "farm-metrics.json"))
    farm.export_chrome_trace(os.path.join(out_dir, "farm-trace.json"))


# ---------------------------------------------------------------- commands
def cmd_fig6(args) -> int:
    farm = _make_farm(args)
    t0 = time.perf_counter()
    rows = fig6_all(platform=_platform(), max_cores=args.max_cores, farm=farm)
    wall = time.perf_counter() - t0
    print(render_fig6(rows))
    stats = farm.stats()
    print(
        f"\n{stats['jobs_submitted']} jobs on {stats['workers']} worker(s) "
        f"in {wall:.1f}s; cache hit rate {stats['cache_hit_rate']:.0%}"
    )
    if args.out:
        _emit_artifacts(farm, args.out)
    return 0


def cmd_cores(args) -> int:
    if args.bench not in CONFIG_FACTORIES:
        print(f"unknown bench {args.bench!r}; choose from {sorted(CONFIG_FACTORIES)}")
        return 2
    farm = _make_farm(args)
    points = sweep_cores(
        partial(config_for, args.bench),
        _parse_counts(args.counts),
        _platform(),
        farm=farm,
        strategy=args.strategy,
    )
    print(render_sweep_report(points))
    if args.out:
        _emit_artifacts(farm, args.out)
    return 0


def _smoke_jobs(max_cores: int):
    """The smoke sweep: Figure 6 rows plus a runtime-contention grid.

    Jobs are ordered longest-first (the nw row dominates) so the pool packs
    them well; all are pure functions, so results compare ``==`` across
    serial, parallel, and cached executions.
    """
    platform = _platform()
    jobs = [
        Job(
            "repro.kernels.machsuite.fig6:fig6_row",
            (bench, platform, max_cores),
            label=f"fig6/{bench}",
        )
        for bench in ("nw", "stencil2d", "gemm", "stencil3d", "md-knn")
    ]
    for latency in (16_000, 8_000, 4_000, 2_000):
        for n_cores in (16, 8, 4):
            jobs.append(
                Job(
                    "repro.kernels.machsuite.fig6:simulate_measured",
                    (n_cores, latency, platform),
                    {"rounds": 8},
                    label=f"contention/n{n_cores}/l{latency}",
                )
            )
    return jobs


def cmd_smoke(args) -> int:
    # A fresh cache per smoke run unless one is supplied: the cold-cache
    # speedup measurement must not be served by a previous invocation.
    # --resume deliberately trades that isolation for restartability: the
    # cache (and a stage log) live in --out, so a killed smoke run picks up
    # where it stopped — completed passes are skipped, the interrupted
    # pass is served its finished jobs.
    cache_dir = _cache_dir(args)
    if cache_dir is None:
        import tempfile

        cache_dir = tempfile.mkdtemp(prefix="repro-farm-smoke-")
    out_dir = args.out or "."
    os.makedirs(out_dir, exist_ok=True)
    stage_log = stage_state = None
    if args.resume:
        import pickle

        from repro.snapshot.store import StageLog

        stage_log = StageLog(
            os.path.join(out_dir, "smoke-stages.json"),
            {"workers": args.workers, "max_cores": args.max_cores},
        )
        state_path = os.path.join(out_dir, "smoke-resume.pkl")
        stage_state = {}
        if os.path.exists(state_path):
            try:
                with open(state_path, "rb") as fh:
                    stage_state = pickle.load(fh)
            except Exception:
                stage_state = {}

    def _stage_done(name):
        return stage_log is not None and stage_log.is_done(name) and name in stage_state

    def _stage_save(name, payload):
        if stage_log is None:
            return
        stage_state[name] = payload
        with open(state_path, "wb") as fh:
            pickle.dump(stage_state, fh)
        stage_log.mark_done(name)

    report = {"workers": args.workers, "max_cores": args.max_cores}

    # Pass 0: serial reference (no cache, no workers) — ground truth.
    if _stage_done("serial"):
        ref_values, report["serial_seconds"] = stage_state["serial"]
        print("resume: serial reference pass already complete")
    else:
        serial_farm = Farm.serial()
        t0 = time.perf_counter()
        reference = serial_farm.run(_smoke_jobs(args.max_cores))
        report["serial_seconds"] = time.perf_counter() - t0
        ref_values = [r.value for r in reference]
        if not all(r.ok for r in reference):
            print("serial reference pass failed:", [r.error for r in reference if not r.ok])
            return 1
        _stage_save("serial", (ref_values, report["serial_seconds"]))

    # Pass 1: parallel, cold cache.
    if _stage_done("run1"):
        run1_values, report["parallel_seconds"], report["run1"] = stage_state["run1"]
        print("resume: parallel pass already complete")
    else:
        farm1 = Farm(n_workers=args.workers, cache_dir=cache_dir)
        t0 = time.perf_counter()
        run1 = farm1.run(_smoke_jobs(args.max_cores))
        report["parallel_seconds"] = time.perf_counter() - t0
        report["run1"] = farm1.stats()
        run1_values = [r.value for r in run1]
        _stage_save("run1", (run1_values, report["parallel_seconds"], report["run1"]))

    # Pass 2: same sweep again — must be served from the cache.
    farm2 = Farm(n_workers=args.workers, cache_dir=cache_dir)
    t0 = time.perf_counter()
    run2 = farm2.run(_smoke_jobs(args.max_cores))
    report["cached_seconds"] = time.perf_counter() - t0
    report["run2"] = farm2.stats()

    speedup = report["serial_seconds"] / max(report["parallel_seconds"], 1e-9)
    hit_rate = report["run2"]["cache_hit_rate"]
    identical = (
        run1_values == ref_values and [r.value for r in run2] == ref_values
    )
    report["speedup"] = speedup
    report["second_run_hit_rate"] = hit_rate
    report["bit_identical"] = identical

    with open(os.path.join(out_dir, "smoke-stats.json"), "w") as f:
        json.dump(report, f, indent=2, sort_keys=True, default=str)
    _emit_artifacts(farm2, out_dir)

    print(
        f"smoke sweep: serial {report['serial_seconds']:.1f}s, "
        f"parallel({args.workers}) {report['parallel_seconds']:.1f}s "
        f"({speedup:.2f}x), cached {report['cached_seconds']:.1f}s; "
        f"second-run hit rate {hit_rate:.0%}; bit-identical: {identical}"
    )

    ok = True
    if not identical:
        print("FAIL: farm results diverge from the serial reference")
        ok = False
    if hit_rate < args.min_hit_rate:
        print(f"FAIL: second-run cache hit rate {hit_rate:.0%} < {args.min_hit_rate:.0%}")
        ok = False
    if args.min_speedup > 0 and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x < {args.min_speedup:.2f}x")
        ok = False
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, cache=True):
        p.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: REPRO_FARM_WORKERS or min(4, cpus))")
        p.add_argument("--out", default="", help="artefact directory (stats/metrics/trace)")
        p.add_argument("--resume", action="store_true",
                       help="keep resume state in --out: an interrupted run rerun "
                       "with the same arguments skips completed work (job cache; "
                       "for smoke, whole completed passes)")
        if cache:
            p.add_argument("--cache-dir", default=None,
                           help="result cache root (default: ~/.cache/repro-farm)")
            p.add_argument("--no-cache", action="store_true", help="disable the result cache")

    p = sub.add_parser("fig6", help="Figure 6 sweep through the farm")
    p.add_argument("--max-cores", type=int, default=48)
    common(p)
    p.set_defaults(fn=cmd_fig6)

    p = sub.add_parser("cores", help="core-count sweep of one workload")
    p.add_argument("--bench", required=True, choices=sorted(CONFIG_FACTORIES))
    p.add_argument("--counts", default="1:16", help="'1:16' range or '1,2,4,8' list")
    p.add_argument("--strategy", choices=("scan", "bisect"), default="scan")
    common(p)
    p.set_defaults(fn=cmd_cores)

    p = sub.add_parser("smoke", help="CI smoke sweep: parallel + cache invariants")
    p.add_argument("--max-cores", type=int, default=48)
    p.add_argument("--min-speedup", type=float, default=0.0,
                   help="fail if parallel speedup vs serial is below this (0 = don't check)")
    p.add_argument("--min-hit-rate", type=float, default=0.9,
                   help="fail if the second run's cache hit rate is below this")
    common(p)
    p.set_defaults(fn=cmd_smoke)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
