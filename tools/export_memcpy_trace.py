#!/usr/bin/env python
"""Run one instrumented memcpy and export every observability artefact.

Drives the full stack (host runtime -> MMIO -> command network -> core ->
AXI tree -> DRAM) with the observability layer on, then writes:

* ``trace.json``   — Chrome/Perfetto trace (load at https://ui.perfetto.dev)
* ``metrics.json`` — flat metric registry dump
* ``metrics.txt``  — human-readable metrics report
* ``profile.txt``  — per-component wall-clock self-time profile

and exits non-zero if the trace fails trace-event schema validation or the
command span is missing its AXI burst children.  CI runs this to keep the
exporters honest; it doubles as the smallest end-to-end usage example.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.build import BeethovenBuild
from repro.kernels.memcpy import memcpy_config
from repro.obs import Observability
from repro.obs.export import validate_chrome_trace
from repro.platforms import AWSF1Platform
from repro.runtime import FpgaHandle


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="obs-artifacts", help="output directory")
    parser.add_argument("--bytes", type=int, default=16384, help="memcpy size")
    parser.add_argument(
        "--scheduling",
        default=None,
        choices=("naive", "fast_forward", "selective", "compiled"),
        help="simulation kernel schedule (default: the design's default)",
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    build = BeethovenBuild(
        memcpy_config(n_cores=1),
        AWSF1Platform(),
        observability=Observability(enabled=True),
        scheduling=args.scheduling,
    )
    handle = FpgaHandle(build.design)
    src, dst = handle.malloc(args.bytes), handle.malloc(args.bytes)
    pattern = bytes((i * 37 + 11) % 256 for i in range(args.bytes))
    src.write(pattern)
    handle.copy_to_fpga(src)
    handle.call(
        "Memcpy", "memcpy", 0,
        src=src.fpga_addr, dst=dst.fpga_addr, len_bytes=args.bytes,
    ).get(max_cycles=2_000_000)
    handle.copy_from_fpga(dst)
    if dst.read() != pattern:
        print("FAIL: memcpy data mismatch", file=sys.stderr)
        return 1

    trace = build.export_chrome_trace(str(out / "trace.json"))
    build.export_metrics(str(out / "metrics.json"))
    (out / "metrics.txt").write_text(build.metrics_report() + "\n")
    (out / "profile.txt").write_text(build.profile_report() + "\n")
    build.export_attribution(str(out / "attribution.json"))
    (out / "attribution.txt").write_text(build.attribution_report_text() + "\n")

    problems = validate_chrome_trace(json.loads((out / "trace.json").read_text()))
    if problems:
        print("FAIL: trace schema problems:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1

    tracer = build.design.tracer
    roots = [s for s in tracer.closed_spans() if s.name.startswith("cmd:")]
    if not roots:
        print("FAIL: no closed command span", file=sys.stderr)
        return 1
    bursts = [
        c for c in tracer.children_of(roots[0].span_id) if c.name.startswith("axi:")
    ]
    if not bursts:
        print("FAIL: command span has no AXI burst children", file=sys.stderr)
        return 1

    n_events = len(trace["traceEvents"])
    print(f"wrote {out}/: trace.json ({n_events} events), metrics.json, "
          f"metrics.txt, profile.txt, attribution.json, attribution.txt")
    print(f"command span {roots[0].name!r}: cycles "
          f"{roots[0].begin_cycle}..{roots[0].end_cycle}, "
          f"{len(bursts)} AXI bursts")
    return 0


if __name__ == "__main__":
    sys.exit(main())
