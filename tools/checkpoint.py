#!/usr/bin/env python
"""Kill-and-resume differential CLI: the snapshot determinism gate.

For every scheduling backend (and the ``dist:fork`` sharded engine) this
runs the :mod:`repro.snapshot.scenario` differential: a checkpointed chaos
memcpy run is SIGKILLed at a seeded point — the whole process for
single-process modes, one worker process for ``dist:fork`` — then resumed
from the surviving checkpoint, and the resumed run must be bit-identical
(outcome, final cycle, fault fingerprint, stable metrics) to an
uninterrupted reference of the same seed.  Writes into ``--out``:

* ``checkpoint-report.txt``   — per-mode/seed differential table
* ``outcomes.json``           — one record per differential
* ``BENCH_checkpoint.json``   — checkpoint_write_seconds / restore_seconds /
                                snapshot_bytes / dist restarts, for the
                                bench-history regression gate
* ``sample.ckpt``             — one snapshot file artefact

and exits 1 on any divergence.  CI runs this; locally it is the snapshot
playground.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.faults.chaos import MODES  # noqa: E402
from repro.snapshot.engine import capture, restore  # noqa: E402
from repro.snapshot.scenario import (  # noqa: E402
    CHUNK,
    _build_memcpy,
    kill_and_resume_differential,
)
from repro.snapshot.store import load, save  # noqa: E402

ALL_MODES = MODES + ("dist:fork",)


def _timing_pass(out: Path, reps: int) -> dict:
    """Measure capture+save and load+restore wall time on a mid-flight run."""
    path = str(out / "sample.ckpt")
    build, handle, futs, _dsts, _pattern = _build_memcpy(0, "selective")
    sim = build.design.sim
    for _ in range(2):
        sim.run(CHUNK)
    write_s = 0.0
    for _ in range(reps):
        t0 = time.perf_counter()
        snap = capture(handle)
        save(snap, path)
        write_s += time.perf_counter() - t0
    snapshot_bytes = os.path.getsize(path)
    getattr(sim, "shutdown", lambda: None)()

    # Restore timing excludes the deterministic rebuild+replay (that cost is
    # the build's, not the snapshot layer's): one skeleton, ``reps`` restores.
    build2, handle2, _futs2, _dsts2, _pattern2 = _build_memcpy(0, "selective")
    restore_s = 0.0
    for _ in range(reps):
        t0 = time.perf_counter()
        restore(handle2, load(path))
        restore_s += time.perf_counter() - t0
    getattr(build2.design.sim, "shutdown", lambda: None)()
    return {
        "checkpoint_write_seconds": write_s / reps,
        "restore_seconds": restore_s / reps,
        "snapshot_bytes": snapshot_bytes,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=3, help="seeds per mode")
    parser.add_argument(
        "--modes", nargs="+", default=list(ALL_MODES), choices=ALL_MODES
    )
    parser.add_argument("--reps", type=int, default=5, help="timing repetitions")
    parser.add_argument("--out", default="checkpoint-artifacts", help="output directory")
    args = parser.parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    workdir = out / "checkpoints"
    workdir.mkdir(exist_ok=True)

    records = []
    lines = [f"kill-and-resume differential: {len(args.modes)} mode(s) x {args.seeds} seed(s)"]
    for mode in args.modes:
        for seed in range(args.seeds):
            r = kill_and_resume_differential(seed, mode, str(workdir))
            records.append({"mode": mode, "seed": seed, **{
                k: r[k] for k in (
                    "match", "killed", "resumed", "outcome", "error",
                    "cycles", "fingerprint", "checkpoints", "restarts",
                )
            }})
            lines.append(
                f"  {mode:<13} seed={seed} match={r['match']} killed={r['killed']} "
                f"resumed={r['resumed']} outcome={r['outcome']} cycles={r['cycles']} "
                f"restarts={r['restarts']}"
            )

    mismatches = [r for r in records if not r["match"]]
    kills = sum(1 for r in records if r["killed"])
    resumes = sum(1 for r in records if r["resumed"])
    dist_restarts = sum(r["restarts"] for r in records)
    lines.append(
        f"  {len(records)} differentials: {kills} killed, {resumes} resumed, "
        f"{len(mismatches)} diverged, {dist_restarts} dist worker restart(s)"
    )

    bench = {
        "differentials": len(records),
        "kills": kills,
        "resumes": resumes,
        "restarts": dist_restarts,
        **_timing_pass(out, max(args.reps, 1)),
    }
    (out / "BENCH_checkpoint.json").write_text(
        json.dumps(bench, indent=2, sort_keys=True) + "\n"
    )
    (out / "outcomes.json").write_text(json.dumps(records, indent=2) + "\n")
    report = "\n".join(lines)
    print(report)
    print(
        f"snapshot: write {bench['checkpoint_write_seconds'] * 1e3:.1f}ms, "
        f"restore {bench['restore_seconds'] * 1e3:.1f}ms, "
        f"{bench['snapshot_bytes']} bytes"
    )
    (out / "checkpoint-report.txt").write_text(report + "\n")

    if mismatches:
        for r in mismatches[:10]:
            print(
                f"FAIL: {r['mode']} seed={r['seed']} resumed run diverged: {r['error']}",
                file=sys.stderr,
            )
        return 1
    if kills == 0:
        print("FAIL: no run was actually killed — the differential proved nothing", file=sys.stderr)
        return 1
    print(f"wrote {out}/: checkpoint-report.txt, outcomes.json, BENCH_checkpoint.json, sample.ckpt")
    return 0


if __name__ == "__main__":
    sys.exit(main())
