#!/usr/bin/env python
"""Emit the cycle-attribution bottleneck report for benchmark points.

Runs two instrumented points under all four scheduling modes and writes the
:mod:`repro.obs.attribution` rollup for each:

* a Figure-6 MachSuite point (``--bench``, default ``md-knn``): the paper's
  delay-calibrated core at its measured kernel latency, several cores and
  rounds, driven through the full host runtime;
* a DRAM-heavy memcpy point (``--memcpy-bytes``, 0 disables), where the
  report attributes most of the critical path to DRAM service.

For every point the tool enforces the attribution contract and exits
non-zero on violation:

* **exact decomposition** — each command's segments sum to its measured
  end-to-end latency exactly (the acceptance bar is 1%; the extractor is
  built to be exact);
* **scheduling invariance** — segment totals and the contention counters are
  identical under naive, fast_forward, selective and compiled scheduling.

Artifacts: ``attribution_<point>.json`` per point plus a combined
``bottleneck_report.json`` under ``--out``; the text reports go to stdout.
CI uploads the directory and feeds the summary to the bench-history tracker.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.baselines.delay_core import delay_config
from repro.core.build import BeethovenBuild, BuildMode
from repro.kernels.machsuite.fig6 import beethoven_kernel_cycles
from repro.kernels.memcpy import memcpy_config
from repro.obs import Observability, extract_command_paths, render_attribution_report
from repro.platforms import AWSF1Platform
from repro.runtime import FpgaHandle

MODES = ("naive", "fast_forward", "selective", "compiled")


def _build(config, mode):
    return BeethovenBuild(
        config,
        AWSF1Platform(),
        BuildMode.Simulation,
        observability=Observability(enabled=True, profile=False),
        scheduling=mode,
    )


def _drive_fig6(build, n_cores, rounds):
    handle = FpgaHandle(build.design)
    for r in range(rounds):
        futs = [
            handle.call("Delay", "run", core, job=r) for core in range(n_cores)
        ]
        for fut in futs:
            fut.get(max_cycles=10_000_000)
    return handle


def _drive_memcpy(build, n_bytes, rounds):
    handle = FpgaHandle(build.design)
    src, dst = handle.malloc(n_bytes), handle.malloc(n_bytes)
    src.write(bytes((i * 37 + 11) % 256 for i in range(n_bytes)))
    handle.copy_to_fpga(src)
    for _ in range(rounds):
        handle.call(
            "Memcpy", "memcpy", 0,
            src=src.fpga_addr, dst=dst.fpga_addr, len_bytes=n_bytes,
        ).get(max_cycles=10_000_000)
    return handle


def run_point(name, config, drive, max_sum_error=0.01):
    """Run one point under all modes; returns (report, problems)."""
    problems = []
    reports = {}
    totals_by_mode = {}
    contention_by_mode = {}
    for mode in MODES:
        build = _build(config, mode)
        drive(build)
        design = build.design
        paths = extract_command_paths(design.tracer, [design.monitor])
        if not paths:
            problems.append(f"{name}/{mode}: no closed command spans")
            continue
        for p in paths:
            total = sum(p.segments.values())
            err = abs(total - p.latency) / p.latency if p.latency else 0.0
            if err > max_sum_error:
                problems.append(
                    f"{name}/{mode}: span {p.span_id} segments sum to {total}, "
                    f"latency {p.latency} ({err:.2%} > {max_sum_error:.0%})"
                )
        report = build.attribution_report()
        reports[mode] = report
        totals_by_mode[mode] = {
            seg: s["cycles"] for seg, s in report["segments"].items()
        }
        contention = report["contention"]
        contention_by_mode[mode] = {
            "dram": {
                k: v for k, v in contention["dram"].items() if isinstance(v, int)
            },
            "noc": contention["noc"],
            "tlp": contention["tlp"],
        }
    ref_mode = MODES[0]
    for mode in MODES[1:]:
        if totals_by_mode.get(mode) != totals_by_mode.get(ref_mode):
            problems.append(
                f"{name}: segment totals differ {ref_mode} vs {mode}: "
                f"{totals_by_mode.get(ref_mode)} != {totals_by_mode.get(mode)}"
            )
        if contention_by_mode.get(mode) != contention_by_mode.get(ref_mode):
            problems.append(
                f"{name}: contention counters differ {ref_mode} vs {mode}"
            )
    report = reports.get(ref_mode, {})
    report["point"] = name
    report["modes_checked"] = list(reports)
    return report, problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="attribution-artifacts")
    parser.add_argument(
        "--bench", default="md-knn",
        choices=("gemm", "nw", "stencil2d", "stencil3d", "md-knn"),
        help="fig6 MachSuite point to attribute",
    )
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument(
        "--memcpy-bytes", type=int, default=16384,
        help="size of the DRAM-heavy memcpy point (0 disables)",
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    kernel_cycles = beethoven_kernel_cycles(args.bench)
    points = [
        (
            f"fig6_{args.bench}",
            delay_config(args.cores, kernel_cycles),
            lambda b: _drive_fig6(b, args.cores, args.rounds),
        )
    ]
    if args.memcpy_bytes:
        points.append(
            (
                "memcpy",
                memcpy_config(n_cores=1),
                lambda b: _drive_memcpy(b, args.memcpy_bytes, args.rounds),
            )
        )

    all_problems = []
    combined = {}
    for name, config, drive in points:
        report, problems = run_point(name, config, drive)
        all_problems.extend(problems)
        combined[name] = report
        with open(out / f"attribution_{name}.json", "w") as f:
            json.dump(report, f, indent=2, sort_keys=True, default=float)
        print(f"== {name} (modes: {', '.join(report.get('modes_checked', []))}) ==")
        print(render_attribution_report(report))
        print()

    with open(out / "bottleneck_report.json", "w") as f:
        json.dump(combined, f, indent=2, sort_keys=True, default=float)

    if all_problems:
        print("FAIL: attribution contract violations:", file=sys.stderr)
        for p in all_problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"wrote {out}/: bottleneck_report.json + per-point attribution JSON")
    return 0


if __name__ == "__main__":
    sys.exit(main())
