#!/usr/bin/env python
"""Multi-tenant serving CLI: run a profile, report SLOs, export artefacts.

Drives one of the canonical serving profiles (``symmetric`` /
``asymmetric`` / ``smoke``, see :mod:`repro.serve.scenarios`) through the
full serving stack — admission control, deficit-round-robin fairness,
kernel-class routing, command batching — and writes into ``--out``:

* ``BENCH_serving.json``      — the per-tenant SLO report (p50/p99/p999,
                                goodput, rejection rate, Jain fairness)
* ``serving-attribution.json``— cycle attribution of the same run with the
                                per-tenant rollup (``tenants`` key), from an
                                instrumented re-run
* ``report.txt``              — the human-readable SLO table

``--smoke`` additionally (a) re-runs the profile under every scheduling
backend and fails unless the reports are bit-identical (the determinism
contract), and (b) runs a small chaos slice over the ``serving`` scenario —
seeded fault schedules through the serving layer must terminate bounded in
ok / degraded / typed-error, identically across modes.  CI runs
``--smoke``; locally this is the serving playground.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from pathlib import Path

from repro.obs import Observability
from repro.serve.scenarios import PROFILES, run_scenario
from repro.sim import SCHEDULING_MODES


def _mode_identity(profile: str, seed: int, n_requests: int) -> dict:
    """Run ``profile`` under every backend; returns the canonical report.

    Raises AssertionError when any backend disagrees bit-for-bit.
    """
    reports = {}
    for mode in SCHEDULING_MODES:
        report, _service, _build = run_scenario(
            profile, seed=seed, mode=mode, n_requests=n_requests
        )
        reports[mode] = report.to_dict()
    canonical = json.dumps(reports[SCHEDULING_MODES[0]], sort_keys=True)
    for mode, rep in reports.items():
        if json.dumps(rep, sort_keys=True) != canonical:
            raise AssertionError(
                f"serving report differs between {SCHEDULING_MODES[0]} and "
                f"{mode} on profile {profile!r}"
            )
    return reports[SCHEDULING_MODES[0]]


def _chaos_slice(seeds: int) -> list:
    """Seeded chaos schedules over the serving scenario, all modes."""
    from repro.faults.chaos import run_serving_chaos

    outcomes = []
    for seed in range(seeds):
        per_mode = []
        for mode in SCHEDULING_MODES:
            o = run_serving_chaos(seed, mode)
            per_mode.append(o)
            outcomes.append(o)
        identity = {
            (o.outcome, o.cycles, o.fingerprint, o.error) for o in per_mode
        }
        if len(identity) != 1:
            raise AssertionError(
                f"serving chaos seed {seed} diverges across modes: {identity}"
            )
    return outcomes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--profile", default="symmetric", choices=PROFILES,
        help="tenant mix preset to run",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--requests", type=int, default=16, help="requests per tenant")
    parser.add_argument("--mode", default=None, choices=SCHEDULING_MODES,
                        help="scheduling backend (default: design default)")
    parser.add_argument("--out", default="serving-artifacts", help="output directory")
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: small mix + all-mode bit-identity + a chaos slice "
        "over the serving scenario",
    )
    parser.add_argument("--chaos-seeds", type=int, default=8,
                        help="seeds for the --smoke chaos slice")
    parser.add_argument("--min-jain", type=float, default=0.0,
                        help="fail unless Jain fairness reaches this floor")
    parser.add_argument(
        "--resume", action="store_true",
        help="keep a stage log in --out and skip stages a previous run with "
        "identical arguments already completed (report / attribution / chaos)",
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    stage_log = None
    if args.resume:
        from repro.snapshot.store import StageLog

        config = {k: v for k, v in vars(args).items() if k != "resume"}
        stage_log = StageLog(str(out / "stages.json"), config)

    def _stage_done(name: str, *artifacts: Path) -> bool:
        return (
            stage_log is not None
            and stage_log.is_done(name)
            and all(p.exists() for p in artifacts)
        )

    def _mark(name: str) -> None:
        if stage_log is not None:
            stage_log.mark_done(name)

    profile = args.profile
    n_requests = min(args.requests, 8) if args.smoke else args.requests
    if args.smoke:
        profile = "smoke" if args.profile == "symmetric" else args.profile

    if _stage_done("report", out / "BENCH_serving.json"):
        report_dict = json.loads((out / "BENCH_serving.json").read_text())
        print("resume: report stage already complete")
    else:
        if args.smoke:
            report_dict = _mode_identity(profile, args.seed, n_requests)
            print(
                f"determinism: profile {profile!r} bit-identical across "
                f"{len(SCHEDULING_MODES)} scheduling backends"
            )
        else:
            report, _service, _build = run_scenario(
                profile, seed=args.seed, mode=args.mode, n_requests=n_requests
            )
            report_dict = report.to_dict()
        (out / "BENCH_serving.json").write_text(
            json.dumps(report_dict, indent=2, sort_keys=True) + "\n"
        )
        _mark("report")

    if _stage_done("attribution", out / "serving-attribution.json", out / "report.txt"):
        text = (out / "report.txt").read_text().rstrip("\n")
        print(text)
        print("resume: attribution stage already complete")
    else:
        # Instrumented re-run of the same profile/seed for the tenant-tagged
        # attribution artefact (the uninstrumented runs above stay cheap).
        report, service, build = run_scenario(
            profile, seed=args.seed, mode=args.mode, n_requests=n_requests,
            observability=Observability(enabled=True, profile=False),
        )
        attribution = build.attribution_report(by_tenant=True)
        (out / "serving-attribution.json").write_text(
            json.dumps(attribution, indent=2, sort_keys=True, default=float) + "\n"
        )
        text = report.render()
        tenants = attribution.get("tenants", {})
        if tenants:
            text += "\n  per-tenant attribution bottleneck: " + ", ".join(
                f"{name or 'untagged'}={t['bottleneck']}" for name, t in tenants.items()
            )
        print(text)
        (out / "report.txt").write_text(text + "\n")
        _mark("attribution")

    if args.smoke:
        if _stage_done("chaos", out / "serving-chaos.json"):
            print("resume: chaos stage already complete")
        else:
            outcomes = _chaos_slice(args.chaos_seeds)
            (out / "serving-chaos.json").write_text(
                json.dumps([asdict(o) for o in outcomes], indent=2) + "\n"
            )
            violations = [o for o in outcomes if o.violates_contract]
            hist: dict = {}
            for o in outcomes:
                hist[o.outcome] = hist.get(o.outcome, 0) + 1
            print(
                f"serving chaos: {len(outcomes)} runs "
                + " ".join(f"{k}={v}" for k, v in sorted(hist.items()))
            )
            if violations:
                for o in violations[:10]:
                    print(
                        f"FAIL: serving chaos seed={o.seed} mode={o.mode}: "
                        f"{o.outcome} ({o.error})",
                        file=sys.stderr,
                    )
                return 1
            _mark("chaos")

    jain = report_dict["fairness_jain"]
    if args.min_jain and jain < args.min_jain:
        print(
            f"FAIL: Jain fairness {jain:.3f} < required {args.min_jain}",
            file=sys.stderr,
        )
        return 1
    print(f"wrote {out}/: BENCH_serving.json, serving-attribution.json, report.txt")
    return 0


if __name__ == "__main__":
    sys.exit(main())
