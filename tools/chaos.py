#!/usr/bin/env python
"""Seeded chaos sweep over the full accelerator stack.

Runs the scenario x mode x seed cross product from ``repro.faults.chaos``
(each seed deterministically derives a ``FaultPlan`` — AXI beat drops and
corruption, DRAM bit-flips, MMIO response loss, core hangs) and checks the
robustness contract: every run must terminate bounded in an allowed outcome
(correct / typed error / degraded-but-correct), never hang and never return
silently corrupted data.  Writes into ``--out``:

* ``report.txt``        — outcome histogram per scenario/mode + violations
* ``outcomes.json``     — one record per run (outcome, cycles, fault
                          fingerprint, watchdog counters)
* ``differential.json`` — empty-FaultPlan no-op check per scheduling mode
* ``sample-trace.json`` / ``sample-metrics.json`` / ``sample-faults.json``
                        — Perfetto trace, metric dump and fault-event log of
                          one instrumented faulty run, for eyeballing what
                          recovery looks like on a timeline

and exits 1 on any contract violation (or a perturbed empty-plan
differential).  CI runs this; locally it is the chaos playground.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from pathlib import Path

from repro.faults import FaultError
from repro.sim import DeadlockError
from repro.faults.chaos import (
    CHAOS_WATCHDOG,
    DIST_MODES,
    MODES,
    SCENARIOS,
    default_plan,
    render_chaos_report,
    run_chaos_sweep,
    run_empty_plan_differential,
)


def _export_sample(out: Path, seed: int, mode: str, export_dump: bool = False) -> None:
    """Re-run one known-faulty memcpy schedule with observability on and
    export its trace/metrics/fault-log artefacts."""
    from repro.core.build import BeethovenBuild
    from repro.kernels.memcpy import memcpy_config
    from repro.obs import Observability
    from repro.platforms import AWSF1Platform
    from repro.runtime import FpgaHandle

    size = 1024
    deadlock_dump = None
    build = BeethovenBuild(
        memcpy_config(n_cores=2),
        AWSF1Platform(),
        scheduling=mode,
        faults=default_plan(seed),
        watchdog=CHAOS_WATCHDOG,
        observability=Observability(enabled=True),
    )
    handle = FpgaHandle(build.design)
    for core in range(2):
        pattern = bytes((i * 131 + 17 + seed) % 256 for i in range(size))
        src, dst = handle.malloc(size), handle.malloc(size)
        src.write(pattern)
        handle.copy_to_fpga(src)
        try:
            handle.call(
                "Memcpy", "memcpy", core,
                src=src.fpga_addr, dst=dst.fpga_addr, len_bytes=size,
            ).get(max_cycles=400_000)
        except DeadlockError as exc:
            deadlock_dump = exc.dump or deadlock_dump
        except FaultError:
            pass  # typed errors are an allowed outcome; the trace still tells the story
    build.export_chrome_trace(str(out / "sample-trace.json"))
    build.export_metrics(str(out / "sample-metrics.json"))
    faults = build.design.faults
    (out / "sample-faults.json").write_text(
        json.dumps(
            {
                "seed": seed,
                "mode": mode,
                "plan": faults.plan.describe(),
                "fingerprint": faults.fingerprint(),
                "events": [asdict(e) for e in faults.events],
            },
            indent=2,
        )
        + "\n"
    )
    if export_dump:
        from repro.sim.trace import compact_state_dump, export_state_dump

        # Prefer the dump a deadlock carried (the interesting moment);
        # otherwise dump the end-of-run state so the flag always delivers.
        dump = deadlock_dump or compact_state_dump(build.design.sim.state_dump())
        export_state_dump(dump, str(out / "sample-state-dump.json"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=50, help="seeds per cell")
    parser.add_argument(
        "--scenarios", nargs="+", default=list(SCENARIOS), choices=SCENARIOS
    )
    parser.add_argument(
        "--modes",
        nargs="+",
        default=list(MODES),
        choices=MODES + DIST_MODES,
        help="scheduling modes and/or sharded modes (dist modes only support "
        "scenarios with memory networks, e.g. memcpy)",
    )
    parser.add_argument("--out", default="chaos-artifacts", help="output directory")
    parser.add_argument(
        "--workers", type=int, default=0, help=">1 shards the sweep over a farm pool"
    )
    parser.add_argument(
        "--no-sample", action="store_true", help="skip the instrumented sample export"
    )
    parser.add_argument(
        "--export-state-dump",
        action="store_true",
        help="also export the sample run's simulator state dump (or the dump "
        "carried by a deadlock, if one fires) as sample-state-dump.json",
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    outcomes = run_chaos_sweep(
        range(args.seeds), args.scenarios, args.modes, workers=args.workers
    )
    report = render_chaos_report(outcomes)
    print(report)
    (out / "report.txt").write_text(report + "\n")
    (out / "outcomes.json").write_text(
        json.dumps([asdict(o) for o in outcomes], indent=2) + "\n"
    )

    diffs = [run_empty_plan_differential(mode) for mode in args.modes]
    (out / "differential.json").write_text(json.dumps(diffs, indent=2) + "\n")
    perturbed = [d for d in diffs if not (d["identical"] and d["data_ok"])]
    for d in perturbed:
        print(
            f"FAIL: empty FaultPlan perturbed {d['mode']}: cycles={d['cycles']} "
            f"mismatched={d['mismatched_keys'][:8]}",
            file=sys.stderr,
        )
    if not perturbed:
        print(f"empty-plan differential: strict no-op in {len(diffs)} mode(s)")

    if not args.no_sample:
        sample = next(
            (
                o
                for o in outcomes
                if o.scenario == "memcpy" and o.n_faults > 0 and not o.violates_contract
            ),
            None,
        )
        if sample is not None:
            _export_sample(out, sample.seed, sample.mode, export_dump=args.export_state_dump)
            print(
                f"sample artefacts: memcpy/{sample.mode} seed={sample.seed} "
                f"({sample.n_faults} faults, outcome={sample.outcome})"
            )

    violations = [o for o in outcomes if o.violates_contract]
    if violations or perturbed:
        print(
            f"FAIL: {len(violations)} contract violation(s), "
            f"{len(perturbed)} perturbed differential(s)",
            file=sys.stderr,
        )
        return 1
    print(f"wrote {out}/: report.txt, outcomes.json, differential.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
