"""Tests for the design-space exploration utilities."""

from repro.dse import evaluate_point, limiting_resource, max_feasible_cores, sweep_cores
from repro.kernels.attention import a3_config
from repro.kernels.vecadd import vector_add_config
from repro.platforms import AWSF1Platform, kernel_mode


def test_sweep_reports_monotone_totals():
    platform = AWSF1Platform()
    points = sweep_cores(lambda n: vector_add_config(n), [1, 2, 4], platform)
    luts = [p.total_lut for p in points]
    assert luts == sorted(luts)
    assert all(p.feasible for p in points)


def test_max_feasible_a3_is_at_least_23():
    """The paper shipped 23 A^3 cores; our model must admit them."""
    n, limiter, build = max_feasible_cores(lambda c: a3_config(c), AWSF1Platform(), limit=32)
    assert n >= 23
    assert limiter in ("LUT", "BRAM")
    assert build is not None


def test_infeasible_point_carries_reasons():
    platform = AWSF1Platform()
    big = evaluate_point(lambda n: a3_config(n), 32, platform)
    if not big.feasible:
        assert big.reasons


def test_limiting_resource_returns_kind():
    platform = AWSF1Platform()
    kind = limiting_resource(lambda n: vector_add_config(n), 2, platform)
    assert kind in ("clb", "lut", "reg", "bram", "uram")


def test_kernel_mode_preserves_platform_identity():
    base = AWSF1Platform()
    km = kernel_mode(base)
    assert km.host.command_lock_cycles < base.host.command_lock_cycles
    assert km.host.mmio_word_cycles < base.host.mmio_word_cycles
    assert km.clock_mhz == base.clock_mhz
    assert km.device is base.device
