"""Tests for the design-space exploration utilities."""

import math

from repro.analysis import render_sweep_report, sweep_frame
from repro.dse import (
    DesignPoint,
    evaluate_point,
    frontier,
    limiting_resource,
    max_feasible_cores,
    sweep_cores,
)
from repro.farm import Farm
from repro.kernels.attention import a3_config
from repro.kernels.vecadd import vector_add_config
from repro.platforms import AWSF1Platform, kernel_mode


def _fake_point(n: int, feasible: bool) -> DesignPoint:
    return DesignPoint(
        n_cores=n,
        feasible=feasible,
        worst_util=0.1 * n,
        reasons=[] if feasible else ["LUT overutilised"],
        total_lut=1000.0 * n,
        total_bram=10.0 * n,
        total_uram=0.0,
        build_seconds=0.01,
    )


def _counting_evaluator(frontier_at, calls):
    """Fake evaluator: feasible iff n <= frontier_at; records every build."""

    def evaluate(factory, n, platform):
        calls.append(n)
        return _fake_point(n, n <= frontier_at)

    return evaluate


def test_sweep_reports_monotone_totals():
    platform = AWSF1Platform()
    points = sweep_cores(lambda n: vector_add_config(n), [1, 2, 4], platform)
    luts = [p.total_lut for p in points]
    assert luts == sorted(luts)
    assert all(p.feasible for p in points)


def test_max_feasible_a3_is_at_least_23():
    """The paper shipped 23 A^3 cores; our model must admit them."""
    n, limiter, build = max_feasible_cores(lambda c: a3_config(c), AWSF1Platform(), limit=32)
    assert n >= 23
    assert limiter in ("LUT", "BRAM")
    assert build is not None


def test_infeasible_point_carries_reasons():
    platform = AWSF1Platform()
    big = evaluate_point(lambda n: a3_config(n), 32, platform)
    if not big.feasible:
        assert big.reasons


def test_limiting_resource_returns_kind():
    platform = AWSF1Platform()
    kind = limiting_resource(lambda n: vector_add_config(n), 2, platform)
    assert kind in ("clb", "lut", "reg", "bram", "uram")


def test_bisect_matches_scan_on_monotone_frontier():
    counts = list(range(1, 33))
    scan_calls, bisect_calls = [], []
    scan = sweep_cores(
        None, counts, None, strategy="scan",
        evaluate=_counting_evaluator(7, scan_calls),
    )
    bisect = sweep_cores(
        None, counts, None, strategy="bisect",
        evaluate=_counting_evaluator(7, bisect_calls),
    )
    assert frontier(scan) == frontier(bisect) == 7
    assert len(scan_calls) == 32
    # Two endpoint probes plus a binary search over 32 candidates.
    assert len(bisect_calls) <= 2 + math.ceil(math.log2(len(counts)))
    # Every point bisect did evaluate agrees with the scan's verdict.
    scan_by_n = {p.n_cores: p.feasible for p in scan}
    assert all(p.feasible == scan_by_n[p.n_cores] for p in bisect)


def test_bisect_falls_back_to_scan_when_frontier_not_monotone():
    counts = list(range(1, 17))
    calls = []

    def evaluate(factory, n, platform):
        calls.append(n)
        # Count 1 infeasible but mid-range counts feasible: non-monotone.
        return _fake_point(n, n != 1 and n <= 7)

    points = sweep_cores(None, counts, None, strategy="bisect", evaluate=evaluate)
    # The lo-endpoint probe voids the monotone hypothesis: full scan results.
    assert [p.n_cores for p in points] == counts
    assert frontier(points) == 7
    assert calls[:2] == [1, 16]  # the probes, then the complete rescan
    assert len(calls) == 2 + len(counts)


def test_bisect_all_feasible_evaluates_endpoints_only():
    calls = []
    points = sweep_cores(
        None, list(range(1, 65)), None, strategy="bisect",
        evaluate=_counting_evaluator(1000, calls),
    )
    assert calls == [1, 64]
    assert [p.n_cores for p in points] == [1, 64]
    assert frontier(points) == 64


def test_bisect_matches_scan_on_real_config():
    """Real resource model: the a3 frontier agrees between strategies."""
    platform = AWSF1Platform()
    counts = [16, 20, 24, 28, 32]
    scan = sweep_cores(a3_config, counts, platform, strategy="scan")
    bisect = sweep_cores(a3_config, counts, platform, strategy="bisect")
    assert frontier(bisect) == frontier(scan)


def test_farm_sweep_stamps_provenance_and_feeds_analysis(tmp_path):
    platform = AWSF1Platform()
    counts = [1, 2, 4]

    def run():
        farm = Farm(n_workers=1, cache_dir=str(tmp_path))
        return sweep_cores(vector_add_config, counts, platform, farm=farm)

    first, second = run(), run()
    assert all(not p.cache_hit and p.fingerprint for p in first)
    assert all(p.cache_hit and p.worker == "cache" for p in second)
    # Cache-served points are value-identical to the built ones.
    for a, b in zip(first, second):
        assert (a.n_cores, a.feasible, a.total_lut) == (b.n_cores, b.feasible, b.total_lut)
        assert b.build_seconds == a.build_seconds > 0.0
    frame = sweep_frame(second)
    assert frame["cache_hit_rate"] == 1.0
    assert frame["build_seconds_saved"] > 0.0
    report = render_sweep_report(second)
    assert "cache" in report and "frontier" in report


def test_kernel_mode_preserves_platform_identity():
    base = AWSF1Platform()
    km = kernel_mode(base)
    assert km.host.command_lock_cycles < base.host.command_lock_cycles
    assert km.host.mmio_word_cycles < base.host.mmio_word_cycles
    assert km.clock_mhz == base.clock_mhz
    assert km.device is base.device
