"""Tests for the generated on-chip networks."""

import pytest

from repro.axi import AxiParams, AxiPort
from repro.memory import Reader, ReaderTuning, ReadRequest, Writer, WriteRequest
from repro.noc import TreeBuilder, TreeConfig, bits_for
from repro.sim import Component, SimulationError
from repro.testing import build_memory_testbench

PARAMS = AxiParams()


def test_bits_for():
    assert bits_for(1) == 0
    assert bits_for(2) == 1
    assert bits_for(8) == 3
    assert bits_for(9) == 4


class _StreamDriver(Component):
    def __init__(self, reader, addr, length):
        super().__init__("drv")
        self.reader = reader
        self.addr = addr
        self.length = length
        self.sent = False
        self.received = bytearray()

    def tick(self, cycle):
        if not self.sent and self.reader.request.can_push():
            self.reader.request.push(ReadRequest(self.addr, self.length))
            self.sent = True
        while self.reader.data.can_pop():
            self.received.extend(self.reader.data.pop())


@pytest.mark.parametrize("n_readers,fanout", [(3, 2), (8, 4), (12, 8)])
def test_tree_delivers_all_streams(n_readers, fanout):
    readers = [Reader(f"r{i}", 64, PARAMS) for i in range(n_readers)]
    tb = build_memory_testbench(
        [r.port for r in readers],
        tree_config=TreeConfig(fanout=fanout),
    )
    patterns = []
    drivers = []
    for i, reader in enumerate(readers):
        base = i * 0x10000
        pat = bytes(((i + 1) * j) % 256 for j in range(4096))
        tb.store.write(base, pat)
        patterns.append(pat)
        drivers.append(_StreamDriver(reader, base, 4096))
        tb.sim.add(reader)
        tb.sim.add(drivers[-1])
    tb.run(200000, until=lambda: all(len(d.received) >= 4096 for d in drivers))
    for drv, pat in zip(drivers, patterns):
        assert bytes(drv.received) == pat


def test_slr_aware_tree_builds_bridges():
    ports = [AxiPort(PARAMS, f"p{i}") for i in range(6)]
    builder = TreeBuilder(TreeConfig(fanout=4, slr_crossing_latency=4), PARAMS)
    from repro.axi import AxiMonitor, MonitoredAxiPort

    target = MonitoredAxiPort(AxiPort(PARAMS, "mem"), AxiMonitor("mem"))
    net = builder.build(
        [(p, i % 3) for i, p in enumerate(ports)], target, child_id_bits=2, root_slr=0
    )
    assert net.n_pipes == 2  # SLR1 and SLR2 each bridge to SLR0
    assert net.n_nodes >= 3  # one subtree node per SLR at least
    assert net.max_fanout <= 4


def test_flat_network_single_arbiter():
    ports = [AxiPort(PARAMS, f"p{i}") for i in range(10)]
    builder = TreeBuilder(TreeConfig(slr_aware=False), PARAMS)
    from repro.axi import AxiMonitor, MonitoredAxiPort

    target = MonitoredAxiPort(AxiPort(PARAMS, "mem"), AxiMonitor("mem"))
    net = builder.build([(p, 0) for p in ports], target, child_id_bits=2)
    assert net.n_nodes == 1
    assert net.max_fanout == 10
    assert net.n_pipes == 0


def test_mixed_readers_writers_share_network():
    reader = Reader("r", 64, PARAMS)
    writer = Writer("w", 64, PARAMS)
    tb = build_memory_testbench([reader.port, writer.port], slrs=[0, 2])
    pattern = bytes(range(256)) * 8
    tb.store.write(0, pattern)

    class Copier(Component):
        def __init__(self):
            super().__init__("copier")
            self.state = 0

        def tick(self, cycle):
            if self.state == 0:
                reader.request.push(ReadRequest(0, 2048))
                writer.request.push(WriteRequest(0x40000, 2048))
                self.state = 1
            if reader.data.can_pop() and writer.data.can_push():
                writer.data.push(reader.data.pop())
            if writer.done.can_pop():
                writer.done.pop()
                self.state = 2

    cop = Copier()
    tb.sim.add(reader)
    tb.sim.add(writer)
    tb.sim.add(cop)
    tb.run(100000, until=lambda: cop.state == 2)
    assert tb.store.read(0x40000, 2048) == pattern


def test_id_compression_preserves_ordering_pressure():
    """Many masters folded onto few controller IDs still all complete."""
    tuning = ReaderTuning(n_axi_ids=4, max_in_flight=4)
    readers = [Reader(f"r{i}", 64, PARAMS, tuning) for i in range(6)]
    tb = build_memory_testbench([r.port for r in readers])
    drivers = []
    for i, reader in enumerate(readers):
        tb.store.write(i * 0x8000, bytes([i + 1] * 8192))
        drivers.append(_StreamDriver(reader, i * 0x8000, 8192))
        tb.sim.add(reader)
        tb.sim.add(drivers[-1])
    tb.run(400000, until=lambda: all(len(d.received) >= 8192 for d in drivers))
    for i, drv in enumerate(drivers):
        assert bytes(drv.received) == bytes([i + 1] * 8192)
    assert tb.monitor.outstanding() == 0


def test_node_rejects_id_overflow():
    from repro.noc import AxiBufferNode

    small = AxiParams(id_bits=2)
    ports = [AxiPort(small, f"p{i}") for i in range(4)]
    down = AxiPort(small, "down")
    with pytest.raises(SimulationError, match="ID bits"):
        AxiBufferNode(ports, down, child_id_bits=2)
