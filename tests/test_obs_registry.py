"""Unit tests for the metric registry (repro.obs.registry)."""

import json

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    attach_all,
)


def test_counter_behaves_like_int():
    c = Counter()
    c += 3
    c.inc()
    assert c == 4
    assert c != 5
    assert c < 5 and c <= 4 and c > 3 and c >= 4
    assert c + 1 == 5 and 1 + c == 5
    assert c - 1 == 3 and 10 - c == 6
    assert c * 2 == 8 and c / 2 == 2.0 and 8 / c == 2.0
    assert int(c) == 4 and float(c) == 4.0 and bool(c)
    assert list(range(10))[c] == 4  # __index__
    assert not Counter()


def test_counter_gauge_cross_comparison():
    assert Counter(3) == Gauge(3)
    assert Counter(3) < Gauge(5)
    g = Gauge()
    g.set(7)
    g.add(-2)
    assert g == 5


def test_histogram_buckets_and_mean():
    h = Histogram(buckets=(1, 4, 16))
    for v in (1, 3, 10, 100):
        h.observe(v)
    assert h.count == 4
    assert h.mean == pytest.approx(114 / 4)
    dump = h.dump_value()
    assert dump["count"] == 4
    assert dump["total"] == 114
    assert dump["buckets"] == {"1": 1, "4": 1, "16": 1}
    assert dump["overflow"] == 1


def test_histogram_rejects_empty_buckets():
    with pytest.raises(ValueError):
        Histogram(buckets=())


def test_registry_namespaces_and_dump():
    reg = MetricRegistry()
    scope = reg.scope("dram/mc")
    scope.counter("row_hits").inc(9)
    scope.scope("bank0").counter("activations").inc(2)
    reg.bind("sim/cycles_total", lambda: 123)
    assert "dram/mc/row_hits" in reg
    assert reg.value("dram/mc/bank0/activations") == 2
    assert reg.value("nonexistent", default=None) is None
    assert reg.names("dram") == ["dram/mc/row_hits", "dram/mc/bank0/activations"]
    assert reg.dump("dram/mc") == {
        "dram/mc/row_hits": 9,
        "dram/mc/bank0/activations": 2,
    }
    assert len(reg) == 3


def test_registry_duplicate_names_get_suffix():
    reg = MetricRegistry()
    a = reg.counter("noc/node/forwarded")
    b = reg.counter("noc/node/forwarded")
    a.inc(1)
    b.inc(2)
    assert reg.value("noc/node/forwarded") == 1
    assert reg.value("noc/node/forwarded#2") == 2


def test_registry_stable_only_drops_volatile():
    reg = MetricRegistry()
    reg.counter("sim/cycles_total").inc(10)
    reg.bind("sim/cycles_skipped", lambda: 7, volatile=True)
    full = reg.dump()
    stable = reg.dump(stable_only=True)
    assert "sim/cycles_skipped" in full
    assert stable == {"sim/cycles_total": 10}


def test_registry_to_json_and_report():
    reg = MetricRegistry()
    reg.counter("a/count").inc(2)
    reg.histogram("a/lat", buckets=(8,)).observe(3)
    loaded = json.loads(reg.to_json())
    assert loaded["a/count"] == 2
    assert loaded["a/lat"]["count"] == 1
    report = reg.render_report()
    assert "a/count" in report and "count=1" in report


def test_attach_all():
    reg = MetricRegistry()
    c, g = Counter(5), Gauge(6)
    attach_all(reg.scope("x"), [("c", c), ("g", g)])
    assert reg.get("x/c") is c
    assert reg.value("x/g") == 6
