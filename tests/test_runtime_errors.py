"""Error-path tests for the host runtime: allocator misuse, out-of-bounds
``RemotePtr`` access, and allocation exhaustion — the paths a chaos run
leans on but unit tests had never pinned down."""

from __future__ import annotations

import pytest

from repro.core.build import BeethovenBuild
from repro.kernels.memcpy import memcpy_config
from repro.platforms import AWSF1Platform
from repro.runtime import AllocationError, FirstFitAllocator, FpgaHandle


@pytest.fixture(scope="module")
def handle():
    build = BeethovenBuild(memcpy_config(n_cores=1), AWSF1Platform())
    return FpgaHandle(build.design)


# ------------------------------------------------------------- allocator
def test_double_free_rejected():
    alloc = FirstFitAllocator(0, 4096)
    addr = alloc.malloc(128)
    alloc.free(addr)
    with pytest.raises(AllocationError, match="unknown address"):
        alloc.free(addr)


def test_free_of_never_allocated_address_rejected():
    alloc = FirstFitAllocator(0, 4096)
    with pytest.raises(AllocationError, match="unknown address"):
        alloc.free(0x40)


def test_out_of_memory_is_typed_and_recoverable():
    alloc = FirstFitAllocator(0, 4096)
    a = alloc.malloc(4096)
    with pytest.raises(AllocationError, match="out of accelerator memory"):
        alloc.malloc(64)
    alloc.free(a)  # the failed malloc must not have corrupted the free list
    assert alloc.malloc(4096) == a


def test_non_positive_allocation_rejected():
    alloc = FirstFitAllocator(0, 4096)
    for n in (0, -1):
        with pytest.raises(AllocationError, match="must be positive"):
            alloc.malloc(n)
    assert alloc.free_bytes == 4096


def test_handle_free_of_foreign_ptr_rejected(handle):
    ptr = handle.malloc(256)
    handle.free(ptr)
    with pytest.raises(AllocationError):
        handle.free(ptr)


# -------------------------------------------------------------- RemotePtr
def test_remote_ptr_write_bounds(handle):
    ptr = handle.malloc(256)
    with pytest.raises(ValueError, match="past end"):
        ptr.write(b"x" * 257)
    with pytest.raises(ValueError, match="past end"):
        ptr.write(b"x" * 16, offset=250)
    with pytest.raises(ValueError, match="negative"):
        ptr.write(b"x", offset=-1)
    handle.free(ptr)


def test_remote_ptr_read_bounds(handle):
    ptr = handle.malloc(256)
    ptr.write(bytes(range(256)))
    with pytest.raises(ValueError, match="past end"):
        ptr.read(length=257)
    with pytest.raises(ValueError, match="past end"):
        ptr.read(length=16, offset=250)
    with pytest.raises(ValueError, match="negative"):
        ptr.read(offset=-8)
    with pytest.raises(ValueError, match="negative"):
        ptr.read(length=-1)
    # In-bounds access still works after the failed probes.
    assert ptr.read(length=4, offset=252) == bytes([252, 253, 254, 255])
    handle.free(ptr)


def test_remote_ptr_offset_bounds(handle):
    ptr = handle.malloc(64)
    assert ptr.offset(64) == ptr.fpga_addr + 64
    for n in (-1, 65):
        with pytest.raises(ValueError, match="outside allocation"):
            ptr.offset(n)
    handle.free(ptr)
