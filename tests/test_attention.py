"""Tests for the A^3 attention accelerator and its numerics."""

import numpy as np
import pytest

from repro.core import BeethovenBuild, BuildMode
from repro.kernels.attention import (
    a3_config,
    attention_a3_fixed,
    attention_error,
    attention_float,
    scale_log2e_q,
)
from repro.kernels.attention.fixedpoint import (
    EXP2_LUT,
    WEIGHT_FRAC_BITS,
    exp2_fixed,
    fixed_weights,
    quantize_int8,
)
from repro.kernels.attention.reference import BERT_DIM, BERT_KEYS, SCALE_FRAC_BITS
from repro.platforms import AWSF1Platform, SimulationPlatform
from repro.runtime import FpgaHandle

RNG = np.random.default_rng(2024)


# --------------------------------------------------------------- fixed point
def test_quantize_clips_and_rounds():
    x = np.array([0.0, 0.049, -0.051, 100.0, -100.0], dtype=np.float32)
    q = quantize_int8(x, 0.05)
    assert list(q) == [0, 1, -1, 127, -128]


def test_exp2_fixed_known_points():
    frac = SCALE_FRAC_BITS
    # 2^0 = 1.0 in Q1.15
    assert exp2_fixed(np.array([0]), frac)[0] == 1 << 15
    # 2^-1 = 0.5
    assert exp2_fixed(np.array([-(1 << frac)]), frac)[0] == 1 << 14
    # Deep negatives underflow to zero, never negative.
    assert exp2_fixed(np.array([-(64 << frac)]), frac)[0] == 0


def test_exp2_fixed_monotone():
    frac = SCALE_FRAC_BITS
    xs = -np.arange(0, 5 << frac, 1 << (frac - 3))
    ys = exp2_fixed(xs, frac)
    assert (np.diff(ys) <= 0).all()


def test_exp2_lut_is_increasing():
    assert (np.diff(EXP2_LUT) > 0).all()


def test_fixed_weights_sum_near_one():
    scores = RNG.integers(-50000, 50000, 320).astype(np.int32)
    w = fixed_weights(scores, scale_log2e_q(64, 0.05), SCALE_FRAC_BITS)
    total = w.sum() / (1 << WEIGHT_FRAC_BITS)
    assert 0.97 < total <= 1.0
    assert (w >= 0).all()


def test_fixed_weights_follow_score_order():
    scores = np.array([100, 5000, -3000, 20000], dtype=np.int32)
    w = fixed_weights(scores, scale_log2e_q(64, 0.05), SCALE_FRAC_BITS)
    assert list(np.argsort(w)) == list(np.argsort(scores))


def test_scale_underflow_rejected():
    with pytest.raises(ValueError):
        scale_log2e_q(64, 1e-9)


# ---------------------------------------------------------------- reference
def test_attention_float_is_convex_combination():
    q = RNG.normal(0, 1, 16).astype(np.float32)
    keys = RNG.normal(0, 1, (40, 16)).astype(np.float32)
    values = RNG.normal(0, 1, (40, 16)).astype(np.float32)
    out = attention_float(q, keys, values)
    assert out.min() >= values.min() - 1e-5
    assert out.max() <= values.max() + 1e-5


def test_a3_approximation_error_bounded():
    errs = []
    for _ in range(4):
        q = RNG.normal(0, 1, BERT_DIM).astype(np.float32)
        keys = RNG.normal(0, 1, (BERT_KEYS, BERT_DIM)).astype(np.float32)
        values = RNG.normal(0, 1, (BERT_KEYS, BERT_DIM)).astype(np.float32)
        errs.append(attention_error(q, keys, values, scale=0.05))
    assert max(errs) < 0.30  # int8 + LUT-exponent approximation regime


def test_a3_fixed_requires_int8():
    with pytest.raises(TypeError):
        attention_a3_fixed(
            np.zeros(8, dtype=np.int32),
            np.zeros((4, 8), dtype=np.int8),
            np.zeros((4, 8), dtype=np.int8),
        )


# ------------------------------------------------------------------ hardware
def run_core(dim, n_keys, n_queries, n_cores=1, core_idx=0):
    build = BeethovenBuild(a3_config(n_cores, dim, n_keys), SimulationPlatform())
    handle = FpgaHandle(build.design)
    keys = RNG.integers(-50, 50, (n_keys, dim)).astype(np.int8)
    values = RNG.integers(-50, 50, (n_keys, dim)).astype(np.int8)
    queries = RNG.integers(-50, 50, (n_queries, dim)).astype(np.int8)
    pk, pv = handle.malloc(keys.nbytes), handle.malloc(values.nbytes)
    pq, po = handle.malloc(queries.nbytes), handle.malloc(queries.nbytes)
    for p, m in ((pk, keys), (pv, values), (pq, queries)):
        p.write(m.tobytes())
        handle.copy_to_fpga(p)
    handle.call("A3", "load_kv", core_idx, key_addr=pk.fpga_addr, value_addr=pv.fpga_addr).get()
    start = handle.cycle
    handle.call(
        "A3", "attend", core_idx,
        query_addr=pq.fpga_addr, out_addr=po.fpga_addr,
        n_queries=n_queries, temp_q=scale_log2e_q(dim, 0.05),
    ).get()
    cycles = handle.cycle - start
    handle.copy_from_fpga(po)
    got = np.frombuffer(po.read(), dtype=np.int8).reshape(n_queries, dim)
    expected = np.stack([attention_a3_fixed(q, keys, values, 0.05) for q in queries])
    return got, expected, cycles


def test_a3_core_bit_exact():
    got, expected, _ = run_core(dim=32, n_keys=48, n_queries=12)
    assert (got == expected).all()


def test_a3_core_on_second_core():
    got, expected, _ = run_core(dim=16, n_keys=24, n_queries=6, n_cores=3, core_idx=2)
    assert (got == expected).all()


def test_a3_pipeline_throughput_near_n_keys():
    """Steady state approaches one query per n_keys cycles (pipelined)."""
    _, _, cycles = run_core(dim=16, n_keys=64, n_queries=48)
    assert cycles / 48 < 64 * 1.6


def test_a3_reload_kv():
    """K/V can be re-loaded between attend commands."""
    dim, nk = 16, 16
    build = BeethovenBuild(a3_config(1, dim, nk), SimulationPlatform())
    handle = FpgaHandle(build.design)
    temp = scale_log2e_q(dim, 0.05)
    outs = []
    for round_i in range(2):
        keys = RNG.integers(-50, 50, (nk, dim)).astype(np.int8)
        values = RNG.integers(-50, 50, (nk, dim)).astype(np.int8)
        queries = RNG.integers(-50, 50, (4, dim)).astype(np.int8)
        pk, pv = handle.malloc(keys.nbytes), handle.malloc(values.nbytes)
        pq, po = handle.malloc(queries.nbytes), handle.malloc(queries.nbytes)
        for p, m in ((pk, keys), (pv, values), (pq, queries)):
            p.write(m.tobytes())
            handle.copy_to_fpga(p)
        handle.call("A3", "load_kv", 0, key_addr=pk.fpga_addr, value_addr=pv.fpga_addr).get()
        handle.call(
            "A3", "attend", 0, query_addr=pq.fpga_addr, out_addr=po.fpga_addr,
            n_queries=4, temp_q=temp,
        ).get()
        handle.copy_from_fpga(po)
        got = np.frombuffer(po.read(), dtype=np.int8).reshape(4, dim)
        expected = np.stack([attention_a3_fixed(q, keys, values, 0.05) for q in queries])
        assert (got == expected).all()
        outs.append(got.copy())
    assert not (outs[0] == outs[1]).all()  # different K/V, different results


def test_a3_config_has_92_interfaces_at_23_cores():
    build = BeethovenBuild(a3_config(23), AWSF1Platform(), BuildMode.Simulation)
    assert build.design.n_memory_interfaces == 92
