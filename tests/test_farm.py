"""Farm failure modes, cache behaviour, and observability.

Covers the ISSUE 3 satellite checklist: a worker crash mid-job recovers via
retry, a hung job hits its timeout and is marked failed without stalling
siblings, and a fingerprint change invalidates only the affected cache
entries.
"""

import os
import time

import pytest

from repro.farm import (
    Farm,
    FarmJobError,
    Job,
    ResultCache,
    canonical,
    current_attempt,
    job_fingerprint,
)
from repro.farm.pool import SerialPool, WorkerPool, multiprocessing_available
from repro.obs.export import validate_chrome_trace

needs_mp = pytest.mark.skipif(
    not multiprocessing_available(), reason="multiprocessing unavailable"
)


# --------------------------------------------------------------- job bodies
# Module-level so worker processes can resolve them by reference.
def _square(x):
    return x * x


def _crash_first_attempt(x):
    if current_attempt() == 1:
        os._exit(13)  # simulated worker death (OOM-kill / segfault stand-in)
    return x + 100


def _always_crash():
    os._exit(13)


def _hang(seconds):
    time.sleep(seconds)
    return "done"


def _raise(msg):
    raise ValueError(msg)


def _call(f):
    return f()


# ----------------------------------------------------------- fingerprinting
def test_fingerprint_is_deterministic_and_content_sensitive():
    fp1 = job_fingerprint(_square, (3,), {})
    assert fp1 == job_fingerprint(_square, (3,), {})
    assert fp1 != job_fingerprint(_square, (4,), {})
    assert fp1 != job_fingerprint(_hang, (3,), {})
    # kwargs order must not matter.
    a = job_fingerprint(_square, (), {"a": 1, "b": 2})
    b = job_fingerprint(_square, (), {"b": 2, "a": 1})
    assert a == b


def test_fingerprint_sees_lambda_bodies():
    fp_double = job_fingerprint(_square, (lambda n: 2 * n,), {})
    fp_triple = job_fingerprint(_square, (lambda n: 3 * n,), {})
    assert fp_double != fp_triple


def test_fingerprint_salt_env_changes_keys(monkeypatch):
    before = job_fingerprint(_square, (3,), {})
    monkeypatch.setenv("REPRO_FARM_SALT", "release-2")
    after = job_fingerprint(_square, (3,), {})
    assert before != after


def test_canonical_handles_dataclasses_and_containers():
    from repro.platforms import AWSF1Platform

    p1 = canonical(AWSF1Platform())
    p2 = canonical(AWSF1Platform())
    assert p1 == p2
    assert canonical({"b": 1, "a": 2}) == canonical({"a": 2, "b": 1})


# ------------------------------------------------------------------- cache
def test_cache_roundtrip_and_corruption(tmp_path):
    cache = ResultCache(str(tmp_path))
    fp = "ab" + "0" * 62
    assert cache.get(fp) == (False, None, {})
    cache.put(fp, {"x": 1}, meta={"wall_seconds": 2.5})
    hit, value, meta = cache.get(fp)
    assert hit and value == {"x": 1} and meta["wall_seconds"] == 2.5
    assert list(cache.entries()) == [fp]
    # Corrupt the entry on disk: next lookup is a miss and the file is gone.
    with open(cache.path_for(fp), "wb") as f:
        f.write(b"not a pickle")
    assert cache.get(fp)[0] is False
    assert fp not in cache


def test_fingerprint_change_invalidates_only_affected_entries(tmp_path):
    farm = Farm(n_workers=1, cache_dir=str(tmp_path))
    job_a, job_b = Job(_square, (2,)), Job(_square, (3,))
    farm.run([job_a, job_b])
    assert len(farm.cache) == 2

    # Change one job's parameters: only that entry misses; the sibling's
    # entry is untouched and still serves.
    farm2 = Farm(n_workers=1, cache_dir=str(tmp_path))
    changed = Job(_square, (4,))
    res = farm2.run([changed, Job(_square, (3,))])
    assert [r.cache_hit for r in res] == [False, True]
    assert len(farm2.cache) == 3  # old entry for (2,) still present
    assert changed.fingerprint != job_a.fingerprint


def test_second_run_served_from_cache(tmp_path):
    jobs = lambda: [Job(_square, (i,)) for i in range(8)]  # noqa: E731
    first = Farm(n_workers=1, cache_dir=str(tmp_path)).run(jobs())
    assert all(not r.cache_hit for r in first)
    again = Farm(n_workers=1, cache_dir=str(tmp_path))
    second = again.run(jobs())
    assert all(r.cache_hit and r.worker == "cache" for r in second)
    assert [r.value for r in second] == [r.value for r in first]
    assert again.stats()["cache_hit_rate"] == 1.0


def test_cache_opt_out_per_job(tmp_path):
    farm = Farm(n_workers=1, cache_dir=str(tmp_path))
    farm.run([Job(_square, (5,), cache=False)])
    assert len(farm.cache) == 0


# ------------------------------------------------------------ failure modes
@needs_mp
def test_worker_crash_recovers_via_retry():
    farm = Farm(n_workers=2, cache=False, backoff_base_s=0.01)
    res = farm.run(
        [Job(_crash_first_attempt, (7,)), Job(_square, (2,)), Job(_square, (3,))]
    )
    crashed = res[0]
    assert crashed.ok and crashed.value == 107
    assert crashed.attempts == 2 and crashed.crashes == 1
    assert [r.value for r in res[1:]] == [4, 9]
    stats = farm.stats()
    assert stats["crashes"] >= 1 and stats["retries"] >= 1


@needs_mp
def test_persistent_crash_fails_after_bounded_attempts():
    farm = Farm(n_workers=2, cache=False, max_attempts=2, backoff_base_s=0.01)
    res = farm.run([Job(_always_crash), Job(_square, (4,))])
    assert not res[0].ok and "crashed" in res[0].error
    assert res[0].attempts == 2
    assert res[1].ok and res[1].value == 16
    with pytest.raises(FarmJobError):
        farm.map([Job(_always_crash)])


@needs_mp
def test_timeout_marks_failed_without_stalling_siblings():
    farm = Farm(n_workers=2, cache=False)
    t0 = time.perf_counter()
    res = farm.run(
        [Job(_hang, (60,), timeout_s=0.5)] + [Job(_square, (i,)) for i in range(4)]
    )
    elapsed = time.perf_counter() - t0
    hung, siblings = res[0], res[1:]
    assert not hung.ok and hung.timed_out and "timed out" in hung.error
    assert [r.value for r in siblings] == [0, 1, 4, 9]
    assert elapsed < 30.0  # nowhere near the 60s hang
    assert farm.stats()["timeouts"] == 1


def test_exceptions_fail_fast_and_propagate_via_map():
    farm = Farm(n_workers=1, cache=False)
    res = farm.run([Job(_raise, ("bad point",)), Job(_square, (6,))])
    assert not res[0].ok and "ValueError: bad point" in res[0].error
    assert res[0].attempts == 1  # deterministic errors are not retried
    assert res[1].ok
    with pytest.raises(FarmJobError) as err:
        farm.map([Job(_raise, ("bad point",))])
    assert "bad point" in str(err.value)


def test_unpicklable_payload_degrades_to_inline():
    farm = Farm(n_workers=4, cache=False)
    res = farm.run([Job(_call, (lambda: 3,), label="closure")])
    # A closure cannot cross a process boundary: the job must still run.
    assert res[0].ok and res[0].value == 3
    assert res[0].worker == "inline"
    assert farm.stats()["inline_fallbacks"] == 1


def test_serial_pool_is_bit_identical_to_workers(tmp_path):
    jobs = lambda: [Job(_square, (i,)) for i in range(6)]  # noqa: E731
    serial = Farm.serial().run(jobs())
    pooled = Farm(n_workers=2, cache=False).run(jobs())
    assert [r.value for r in serial] == [r.value for r in pooled]


def test_pool_selection_falls_back_serially():
    assert isinstance(Farm(n_workers=1, cache=False).pool, SerialPool)
    if multiprocessing_available():
        assert isinstance(Farm(n_workers=2, cache=False).pool, WorkerPool)


# ----------------------------------------------------------- observability
def test_metrics_and_spans_registered_under_farm_namespace(tmp_path):
    farm = Farm(n_workers=1, cache_dir=str(tmp_path))
    farm.run([Job(_square, (i,)) for i in range(3)])
    dump = farm.metrics()
    assert dump["farm/jobs_submitted"] == 3
    assert dump["farm/cache/misses"] == 3
    assert dump["farm/job_wall_seconds"]["count"] == 3
    # One span per job, exportable through the shared Perfetto exporter.
    spans = farm.tracer.closed_spans()
    assert len(spans) == 3
    assert all(s.track.startswith("farm/") for s in spans)
    assert validate_chrome_trace(farm.chrome_trace()) == []
    # Cache-served reruns appear as hit-marked spans.
    farm.run([Job(_square, (0,))])
    hit_spans = [s for s in farm.tracer.closed_spans() if s.args.get("cache_hit")]
    assert len(hit_spans) == 1


def test_artifact_exports(tmp_path):
    farm = Farm(n_workers=1, cache_dir=str(tmp_path / "cache"))
    farm.run([Job(_square, (1,))])
    metrics_path = tmp_path / "metrics.json"
    trace_path = tmp_path / "trace.json"
    farm.export_metrics(str(metrics_path))
    farm.export_chrome_trace(str(trace_path))
    assert metrics_path.exists() and trace_path.exists()
    stats = farm.stats()
    assert stats["cache"]["entries"] == 1
    assert stats["jobs_completed"] == 1
