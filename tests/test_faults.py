"""Targeted tests of the fault-injection machinery and runtime hardening:
deadlock dumps, watchdog timeout/retry, quarantine + reroute, and the typed
error surface of ``ResponseHandle``."""

from __future__ import annotations

from collections import deque

import pytest

from repro.command.rocc import RoccResponse
from repro.core.build import BeethovenBuild
from repro.faults import CommandTimeout, CoreQuarantined, FaultPlan
from repro.kernels.memcpy import memcpy_config
from repro.platforms import AWSF1Platform
from repro.runtime import FpgaHandle, WatchdogConfig
from repro.runtime.server import _Waiter
from repro.sim import DeadlockError, SimulationError


def _build(n_cores=1, plan=None, watchdog=None, scheduling="selective"):
    build = BeethovenBuild(
        memcpy_config(n_cores=n_cores),
        AWSF1Platform(),
        scheduling=scheduling,
        faults=plan,
        watchdog=watchdog,
    )
    return build, FpgaHandle(build.design)


def _memcpy(handle, core, src, dst, size):
    return handle.call(
        "Memcpy", "memcpy", core, src=src.fpga_addr, dst=dst.fpga_addr, len_bytes=size
    )


def _prepare(handle, size=512, n_dst=1, seed=0):
    pattern = bytes((i * 7 + seed) % 256 for i in range(size))
    src = handle.malloc(size)
    dsts = [handle.malloc(size) for _ in range(n_dst)]
    src.write(pattern)
    handle.copy_to_fpga(src)
    return pattern, src, dsts


# A plan whose only fault is dropping the very first R beat: the transfer
# can never complete, so the run hangs until something bounds it.
HANG_PLAN = FaultPlan(seed=0, axi_r_drop_rate=1.0, max_faults_per_site=1)


def test_deadlock_error_carries_structured_dump():
    _, handle = _build(plan=HANG_PLAN)
    pattern, src, (dst,) = _prepare(handle)
    fut = _memcpy(handle, 0, src, dst, 512)
    with pytest.raises(DeadlockError) as ei:
        fut.get(max_cycles=20_000)
    dump = ei.value.dump
    assert dump["scheduling"] == "selective"
    assert dump["cycle"] >= 20_000
    # The stalled components self-describe: the runtime server is waiting.
    assert "server" in dump["components"]
    assert dump["components"]["server"]["waiting"]
    # And the rendered report is embedded in the message for humans.
    assert "did not converge" in str(ei.value)
    assert "channel" in str(ei.value)


def test_deadlock_error_still_a_simulation_error():
    _, handle = _build(plan=HANG_PLAN)
    pattern, src, (dst,) = _prepare(handle)
    fut = _memcpy(handle, 0, src, dst, 512)
    with pytest.raises(SimulationError):
        fut.get(max_cycles=20_000)


def test_get_timeout_cycles_raises_typed_timeout():
    _, handle = _build(plan=HANG_PLAN)
    pattern, src, (dst,) = _prepare(handle)
    fut = _memcpy(handle, 0, src, dst, 512)
    with pytest.raises(CommandTimeout) as ei:
        fut.get(timeout_cycles=5_000)
    assert ei.value.dump  # the kernel's deadlock dump rides along


def test_watchdog_retry_recovers_lost_response():
    # Drop exactly one MMIO response: the watchdog must time out, re-issue,
    # and the second attempt completes with correct data.
    plan = FaultPlan(seed=1, mmio_resp_drop_rate=1.0, max_faults_per_site=1)
    wd = WatchdogConfig(timeout_cycles=3_000, max_retries=2, quarantine_strikes=5)
    _, handle = _build(plan=plan, watchdog=wd)
    pattern, src, (dst,) = _prepare(handle)
    fut = _memcpy(handle, 0, src, dst, 512)
    assert fut.get(max_cycles=100_000) == {"ok": True}
    handle.copy_from_fpga(dst)
    assert dst.read() == pattern
    assert int(handle.server.timeouts) == 1
    assert int(handle.server.retries) == 1
    assert int(handle.server.quarantines) == 0
    assert handle.faults.counts["mmio_resp_drop"] == 1


def _hang_start(plan: FaultPlan, path: str):
    rng = plan.site_rng(f"core/{path}")
    if rng.random() >= plan.core_hang_rate:
        return None
    return rng.randrange(max(plan.core_hang_window, 1))


def _one_core_hang_plan():
    """A seed where core0 wedges immediately and core1 stays healthy."""

    def mk(seed):
        return FaultPlan(
            seed=seed, core_hang_rate=0.6, core_hang_cycles=0, core_hang_window=50
        )

    seed = next(
        s
        for s in range(500)
        if _hang_start(mk(s), "Memcpy/core0") is not None
        and _hang_start(mk(s), "Memcpy/core1") is None
    )
    return mk(seed)


def test_quarantine_reroutes_to_healthy_core():
    plan = _one_core_hang_plan()
    wd = WatchdogConfig(
        timeout_cycles=2_000,
        max_retries=2,
        backoff_base_cycles=64,
        backoff_cap_cycles=256,
        quarantine_strikes=1,
    )
    _, handle = _build(n_cores=2, plan=plan, watchdog=wd)
    pattern, src, (dst,) = _prepare(handle)
    fut = _memcpy(handle, 0, src, dst, 512)  # addressed to the wedged core
    assert fut.get(max_cycles=200_000) == {"ok": True}
    handle.copy_from_fpga(dst)
    assert dst.read() == pattern
    assert handle.degraded_cores == {(0, 0)}
    assert handle.server.quarantined == {(0, 0)}
    assert int(handle.server.rerouted) >= 1
    # Later commands route straight to the healthy core, no new timeouts.
    before = int(handle.server.timeouts)
    fut2 = _memcpy(handle, 0, src, dst, 512)
    assert fut2.get(max_cycles=200_000) == {"ok": True}
    assert int(handle.server.timeouts) == before


def test_all_cores_quarantined_raises_typed_error():
    plan = FaultPlan(seed=3, core_hang_rate=1.0, core_hang_cycles=0, core_hang_window=1)
    wd = WatchdogConfig(
        timeout_cycles=1_500,
        max_retries=3,
        backoff_base_cycles=64,
        backoff_cap_cycles=256,
        quarantine_strikes=1,
    )
    _, handle = _build(n_cores=2, plan=plan, watchdog=wd)
    pattern, src, (dst,) = _prepare(handle)
    fut = _memcpy(handle, 0, src, dst, 512)
    with pytest.raises(CoreQuarantined):
        fut.get(max_cycles=400_000)
    assert handle.degraded_cores == {(0, 0), (0, 1)}


def test_non_retryable_command_times_out_without_retry():
    plan = FaultPlan(seed=1, mmio_resp_drop_rate=1.0, max_faults_per_site=1)
    wd = WatchdogConfig(timeout_cycles=2_000, max_retries=3)
    _, handle = _build(plan=plan, watchdog=wd)
    pattern, src, (dst,) = _prepare(handle)
    fut = handle.call(
        "Memcpy", "memcpy", 0, _retryable=False,
        src=src.fpga_addr, dst=dst.fpga_addr, len_bytes=512,
    )
    with pytest.raises(CommandTimeout) as ei:
        fut.get(max_cycles=100_000)
    assert ei.value.attempts == 1
    assert int(handle.server.retries) == 0


def test_unmatched_response_counts_as_late():
    _, handle = _build()
    server = handle.server
    # A waiter exists for some other core, so the server is polling; the
    # arriving response matches nobody and must be counted, not dropped
    # silently (the pre-hardening server ignored it without a trace).
    server._waiters[(7, 7)] = deque([_Waiter(lambda r: None)])
    for word in RoccResponse(0, 0, 1, 0).encode_words():
        handle.design.mmio.resp_words.push(word)
    handle.run_until(lambda: int(server.responses_received) >= 1, max_cycles=1_000)
    assert int(server.late_responses) == 1
    assert int(server.responses_received) == 1


def test_watchdog_disabled_by_default():
    _, handle = _build()
    assert not handle.server.watchdog.enabled
    pattern, src, (dst,) = _prepare(handle)
    fut = _memcpy(handle, 0, src, dst, 512)
    fut.get(max_cycles=100_000)
    handle.copy_from_fpga(dst)
    assert dst.read() == pattern
    assert int(handle.server.timeouts) == 0


def test_backoff_is_capped_exponential():
    wd = WatchdogConfig(
        timeout_cycles=100, backoff_base_cycles=256, backoff_cap_cycles=1024
    )
    assert [wd.backoff_cycles(a) for a in (1, 2, 3, 4, 5)] == [
        256, 512, 1024, 1024, 1024,
    ]


def test_snapshot_round_trip_preserves_fault_state(tmp_path):
    """Freeze a run mid-flight *while a fault plan is live*, thaw into a
    freshly replayed skeleton, and finish both: injected-fault history, RNG
    positions, output data, final cycle, and stable metrics must all be
    bit-identical.  This is the ``repro.snapshot`` contract exercised on
    this file's own harness rather than the chaos scenario."""
    from repro.faults import FaultError
    from repro.snapshot import capture, load, restore, save

    plan = FaultPlan(
        seed=5,
        dram_read_flip_rate=0.05,
        axi_r_corrupt_rate=0.05,
        max_faults_per_site=4,
    )

    def _start():
        build, handle = _build(plan=plan)
        pattern, src, (dst,) = _prepare(handle, size=2048)
        fut = _memcpy(handle, 0, src, dst, 2048)
        return build, handle, fut, dst

    def _finish(build, handle, fut, dst):
        error = ""
        try:
            fut.get(max_cycles=100_000)
        except (FaultError, DeadlockError) as exc:
            error = type(exc).__name__
        handle.copy_from_fpga(dst)
        return {
            "error": error,
            "data": dst.read(),
            "cycle": build.design.sim.cycle,
            "n_faults": len(handle.faults.events),
            "fingerprint": handle.faults.fingerprint(),
            "stable_metrics": build.design.metrics(stable_only=True),
        }

    path = str(tmp_path / "faults.ckpt")
    build_a, handle_a, fut_a, dst_a = _start()
    build_a.design.sim.run(300)  # mid-flight, before the transfer completes
    save(capture(handle_a), path)
    ref = _finish(build_a, handle_a, fut_a, dst_a)
    assert ref["n_faults"] > 0, "plan injected nothing; the test proves nothing"

    build_b, handle_b, fut_b, dst_b = _start()  # identical replayed skeleton
    restore(handle_b, load(path))
    assert _finish(build_b, handle_b, fut_b, dst_b) == ref
