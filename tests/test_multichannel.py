"""Multi-channel memory configurations (n_channels > 1) and edge cases."""

import numpy as np
import pytest

from repro.command.packing import Address, CommandSpec, EmptyAccelResponse, Field, UInt
from repro.core import (
    AcceleratorConfig,
    BeethovenBuild,
    ReadChannelConfig,
    WriteChannelConfig,
)
from repro.core.accelerator import AcceleratorCore
from repro.memory.types import ReadRequest, WriteRequest
from repro.platforms import SimulationPlatform
from repro.runtime import FpgaHandle


class InterleaveCore(AcceleratorCore):
    """Reads two streams through one named channel group (idx 0 and 1) and
    writes their element-wise XOR."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.io = self.beethoven_io(
            CommandSpec(
                "xor",
                (
                    Field("a_addr", Address()),
                    Field("b_addr", Address()),
                    Field("out_addr", Address()),
                    Field("n_bytes", UInt(20)),
                ),
            ),
            EmptyAccelResponse(),
        )
        self.in_a = self.get_reader_module("ins", 0)
        self.in_b = self.get_reader_module("ins", 1)
        self.out = self.get_writer_module("outs")
        self._active = False

    def tick(self, cycle):
        io = self.io
        if (
            not self._active
            and io.req.can_pop()
            and self.in_a.request.can_push()
            and self.in_b.request.can_push()
            and self.out.request.can_push()
        ):
            cmd = io.req.pop()
            self.in_a.request.push(ReadRequest(cmd["a_addr"], cmd["n_bytes"]))
            self.in_b.request.push(ReadRequest(cmd["b_addr"], cmd["n_bytes"]))
            self.out.request.push(WriteRequest(cmd["out_addr"], cmd["n_bytes"]))
            self._active = True
        if (
            self._active
            and self.in_a.data.can_pop()
            and self.in_b.data.can_pop()
            and self.out.data.can_push()
        ):
            a = self.in_a.data.pop()
            b = self.in_b.data.pop()
            self.out.data.push(bytes(x ^ y for x, y in zip(a, b)))
        if self._active and self.out.done.can_pop() and io.resp.can_push():
            self.out.done.pop()
            io.resp.push({})
            self._active = False


def xor_config():
    return AcceleratorConfig(
        name="Xor",
        n_cores=1,
        module_constructor=InterleaveCore,
        memory_channel_config=(
            ReadChannelConfig("ins", data_bytes=16, n_channels=2),
            WriteChannelConfig("outs", data_bytes=16),
        ),
    )


def test_two_channel_reader_group():
    build = BeethovenBuild(xor_config(), SimulationPlatform())
    handle = FpgaHandle(build.design)
    rng = np.random.default_rng(5)
    a = rng.integers(0, 256, 2048).astype(np.uint8)
    b = rng.integers(0, 256, 2048).astype(np.uint8)
    pa, pb, po = handle.malloc(2048), handle.malloc(2048), handle.malloc(2048)
    pa.write(a.tobytes())
    pb.write(b.tobytes())
    handle.copy_to_fpga(pa)
    handle.copy_to_fpga(pb)
    handle.call(
        "Xor", "xor", 0,
        a_addr=pa.fpga_addr, b_addr=pb.fpga_addr, out_addr=po.fpga_addr, n_bytes=2048,
    ).get()
    handle.copy_from_fpga(po)
    got = np.frombuffer(po.read(), dtype=np.uint8)
    assert (got == (a ^ b)).all()


def test_channel_index_out_of_range():
    class BadCore(InterleaveCore):
        def __init__(self, ctx):
            AcceleratorCore.__init__(self, ctx)
            self.beethoven_io(
                CommandSpec("x", (Field("a", UInt(8)),)), EmptyAccelResponse()
            )
            self.get_reader_module("ins", 5)  # only 2 channels exist

        def tick(self, cycle):
            pass

    cfg = AcceleratorConfig(
        name="Bad",
        n_cores=1,
        module_constructor=BadCore,
        memory_channel_config=(ReadChannelConfig("ins", data_bytes=16, n_channels=2),),
    )
    with pytest.raises(KeyError):
        BeethovenBuild(cfg, SimulationPlatform())


def test_unknown_channel_name():
    class BadCore(AcceleratorCore):
        def __init__(self, ctx):
            super().__init__(ctx)
            self.beethoven_io(
                CommandSpec("x", (Field("a", UInt(8)),)), EmptyAccelResponse()
            )
            self.get_writer_module("nonexistent")

        def tick(self, cycle):
            pass

    cfg = AcceleratorConfig(name="Bad", n_cores=1, module_constructor=BadCore)
    with pytest.raises(KeyError):
        BeethovenBuild(cfg, SimulationPlatform())


def test_n_channels_validation():
    with pytest.raises(ValueError):
        ReadChannelConfig("r", data_bytes=4, n_channels=0)
    with pytest.raises(ValueError):
        WriteChannelConfig("w", data_bytes=4, n_channels=-1)


def test_duplicate_channel_names_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        AcceleratorConfig(
            name="Dup",
            n_cores=1,
            module_constructor=InterleaveCore,
            memory_channel_config=(
                ReadChannelConfig("same", data_bytes=4),
                WriteChannelConfig("same", data_bytes=4),
            ),
        )
