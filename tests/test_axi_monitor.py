"""The AXI monitor must catch protocol violations, not just record traffic."""

import pytest

from repro.axi import (
    ARReq,
    AWReq,
    AxiMonitor,
    AxiParams,
    AxiPort,
    MonitoredAxiPort,
    RBeat,
    WBeat,
)
from repro.sim import SimulationError


def make_port():
    port = AxiPort(AxiParams(), depth=8)
    mon = AxiMonitor("t")
    return port, mon, MonitoredAxiPort(port, mon)


def test_burst_4k_crossing_rejected():
    port, mon, mport = make_port()
    with pytest.raises(ValueError):
        mport.push_ar(0, ARReq(axi_id=0, addr=4096 - 64, length=2))


def test_unaligned_burst_rejected():
    port, mon, mport = make_port()
    with pytest.raises(ValueError):
        mport.push_ar(0, ARReq(axi_id=0, addr=3, length=1))


def test_overlong_burst_rejected():
    params = AxiParams(max_burst_beats=16)
    port = AxiPort(params)
    mport = MonitoredAxiPort(port, AxiMonitor("t"))
    with pytest.raises(ValueError):
        mport.push_aw(0, AWReq(axi_id=0, addr=0, length=17))


def test_same_id_read_reorder_detected():
    port, mon, mport = make_port()
    r1 = ARReq(axi_id=0, addr=0, length=1)
    r2 = ARReq(axi_id=0, addr=64, length=1)
    mport.push_ar(0, r1)
    mport.push_ar(0, r2)
    with pytest.raises(SimulationError, match="reorder"):
        mport.push_r(5, RBeat(axi_id=0, data=b"\0" * 64, last=True, tag=r2.tag))


def test_beat_count_mismatch_detected():
    port, mon, mport = make_port()
    req = ARReq(axi_id=0, addr=0, length=2)
    mport.push_ar(0, req)
    with pytest.raises(SimulationError, match="beats"):
        mport.push_r(5, RBeat(axi_id=0, data=b"\0" * 64, last=True, tag=req.tag))


def test_unknown_read_tag_detected():
    port, mon, mport = make_port()
    with pytest.raises(SimulationError, match="unknown"):
        mport.push_r(0, RBeat(axi_id=0, data=b"", last=True, tag=424242))


def test_w_without_aw_detected():
    port, mon, mport = make_port()
    with pytest.raises(SimulationError, match="no outstanding AW"):
        mport.push_w(0, WBeat(b"\0" * 64, last=True))


def test_w_burst_overrun_detected():
    port, mon, mport = make_port()
    mport.push_aw(0, AWReq(axi_id=0, addr=0, length=1))
    with pytest.raises(SimulationError, match="overran"):
        mport.push_w(0, WBeat(b"\0" * 64, last=False))  # should have been last


def test_w_early_last_detected():
    port, mon, mport = make_port()
    mport.push_aw(0, AWReq(axi_id=0, addr=0, length=2))
    with pytest.raises(SimulationError, match="before burst complete"):
        mport.push_w(0, WBeat(b"\0" * 64, last=True))


def test_txn_records_capture_latency():
    port, mon, mport = make_port()
    req = ARReq(axi_id=3, addr=0, length=1)
    mport.push_ar(10, req)
    mport.push_r(25, RBeat(axi_id=3, data=b"\0" * 64, last=True, tag=req.tag))
    rec = mon.completed("read")[0]
    assert rec.issue_cycle == 10
    assert rec.first_data_cycle == 25
    assert rec.latency == 15
    assert mon.outstanding() == 0
