"""Tests for the host runtime: allocators, server serialisation, contention."""

import pytest

from repro.core import BeethovenBuild
from repro.baselines.delay_core import delay_config
from repro.kernels.machsuite.fig6 import (
    analytic_measured,
    dispatch_cost_cycles,
    simulate_measured,
)
from repro.platforms import AWSF1Platform, SimulationPlatform
from repro.runtime import (
    AllocationError,
    EmbeddedAllocator,
    FirstFitAllocator,
    FpgaHandle,
    HUGEPAGE_BYTES,
)


# ----------------------------------------------------------------- allocator
def test_first_fit_alignment():
    alloc = FirstFitAllocator(0, 1 << 20, alignment=64)
    a = alloc.malloc(10)
    b = alloc.malloc(10)
    assert b - a == 64


def test_free_coalescing():
    alloc = FirstFitAllocator(0, 4096, alignment=64)
    ptrs = [alloc.malloc(1024) for _ in range(4)]
    with pytest.raises(AllocationError):
        alloc.malloc(64)
    for p in ptrs:
        alloc.free(p)
    assert alloc.free_bytes == 4096
    assert alloc.malloc(4096) == 0  # coalesced back to one block


def test_double_free_rejected():
    alloc = FirstFitAllocator(0, 4096)
    p = alloc.malloc(64)
    alloc.free(p)
    with pytest.raises(AllocationError):
        alloc.free(p)


def test_bad_sizes_rejected():
    alloc = FirstFitAllocator(0, 4096)
    with pytest.raises(AllocationError):
        alloc.malloc(0)
    with pytest.raises(AllocationError):
        alloc.malloc(8192)


def test_embedded_allocator_hugepage_alignment():
    alloc = EmbeddedAllocator(0, 64 * HUGEPAGE_BYTES)
    a = alloc.malloc(100)
    b = alloc.malloc(100)
    assert a % HUGEPAGE_BYTES == 0
    assert b % HUGEPAGE_BYTES == 0
    assert alloc.physical_address_of(a) == a
    with pytest.raises(AllocationError):
        alloc.physical_address_of(a + 1)


# -------------------------------------------------------------------- server
def test_server_serialises_commands():
    platform = SimulationPlatform()
    build = BeethovenBuild(delay_config(4, latency_cycles=10), platform)
    handle = FpgaHandle(build.design)
    futures = [handle.call("Delay", "run", core, job=0) for core in range(4)]
    for fut in futures:
        fut.get()
    server = handle.server
    assert server.commands_sent == 4
    assert server.responses_received == 4
    assert server.idle()


def test_dispatch_cost_formula():
    platform = AWSF1Platform()
    d = dispatch_cost_cycles(platform)
    assert d == platform.host.command_lock_cycles + 6 * platform.host.mmio_word_cycles


@pytest.mark.parametrize("latency,n_cores", [(400, 8), (2000, 8), (10000, 4)])
def test_analytic_contention_matches_simulation(latency, n_cores):
    """The queueing model used for long kernels must track the simulated
    runtime server within ~20%."""
    platform = AWSF1Platform(clock_mhz=125.0)
    sim = simulate_measured(n_cores, latency, platform, rounds=3)
    model = analytic_measured(n_cores, latency, platform)
    ratio = model.ops_per_second / sim.ops_per_second
    assert 0.8 < ratio < 1.25, f"model/sim = {ratio:.2f}"


def test_contention_gap_shrinks_with_latency():
    platform = AWSF1Platform(clock_mhz=125.0)
    n = 8
    short = simulate_measured(n, 500, platform, rounds=3)
    long = simulate_measured(n, 20000, platform, rounds=2)
    ideal_short = n * 125e6 / 500
    ideal_long = n * 125e6 / 20000
    assert short.ops_per_second / ideal_short < long.ops_per_second / ideal_long
    assert short.server_bound


def test_dma_advances_time_on_discrete():
    build = BeethovenBuild(delay_config(1, 10), AWSF1Platform())
    handle = FpgaHandle(build.design)
    ptr = handle.malloc(1 << 16)
    before = handle.cycle
    handle.copy_to_fpga(ptr)
    assert handle.cycle - before >= (1 << 16) / 64


def test_remote_ptr_bounds():
    build = BeethovenBuild(delay_config(1, 10), SimulationPlatform())
    handle = FpgaHandle(build.design)
    ptr = handle.malloc(128)
    with pytest.raises(ValueError):
        ptr.write(b"x" * 129)
    with pytest.raises(ValueError):
        ptr.offset(129)
    assert ptr.offset(64) == ptr.fpga_addr + 64
    assert len(ptr) == 128
