"""Tests for the analysis helpers, including arbitration fairness."""

import pytest

from repro.analysis import (
    LatencyStats,
    _percentile,
    bandwidth_share,
    bytes_transferred,
    dram_bus_utilisation,
    dram_row_hit_rate,
    fairness_index,
    latency_stats,
    noc_link_beats,
    registry_frame,
    skip_fraction,
)
from repro.axi import AxiParams
from repro.axi.monitor import TxnRecord
from repro.baselines.memcpy_experiment import run_hls_memcpy
from repro.memory import Reader, ReadRequest
from repro.sim import Component
from repro.testing import build_memory_testbench


def rec(kind, axi_id, addr, length, issue, complete):
    r = TxnRecord(kind, axi_id, addr, length, issue)
    r.complete_cycle = complete
    return r


def test_latency_stats_basics():
    records = [rec("read", 0, 0, 1, i, i + 10 + i) for i in range(8)]
    stats = latency_stats(records, "read")
    assert stats.count == 8
    assert stats.max == 17
    assert stats.growth == pytest.approx(17 / 10.5)


def test_latency_stats_empty():
    assert latency_stats([]) == LatencyStats.empty()


def test_percentile_linear_interpolation():
    """Regression pin: percentiles interpolate between closest ranks
    (numpy's ``linear`` convention) instead of truncating to an index."""
    assert _percentile([1, 2, 3, 4], 0.50) == pytest.approx(2.5)
    assert _percentile([1, 2, 3, 4], 0.25) == pytest.approx(1.75)
    assert _percentile([1, 2, 3, 4], 0.0) == 1.0
    assert _percentile([1, 2, 3, 4], 1.0) == 4.0
    # 10 observations: rank 0.95 * 9 = 8.55 -> 80 + 0.55 * 10.
    assert _percentile(list(range(0, 100, 10)), 0.95) == pytest.approx(85.5)
    assert _percentile([7], 0.95) == 7.0
    assert _percentile([], 0.5) == 0.0
    # Out-of-range fractions clamp instead of indexing out of bounds.
    assert _percentile([1, 2], 1.5) == 2.0
    assert _percentile([1, 2], -0.5) == 1.0


def test_latency_stats_percentiles_pinned():
    records = [rec("read", 0, 0, 1, i, i + 10 + i) for i in range(8)]
    stats = latency_stats(records, "read")  # latencies 10..17
    assert stats.p50 == pytest.approx(13.5)
    assert stats.p95 == pytest.approx(16.65)


def test_bytes_transferred():
    records = [rec("read", 0, 0, 4, 0, 10), rec("write", 0, 0, 2, 0, 10)]
    out = bytes_transferred(records, beat_bytes=64)
    assert out == {"read": 256, "write": 128}


def test_fairness_index_bounds():
    assert fairness_index([1, 1, 1, 1]) == pytest.approx(1.0)
    assert fairness_index([1, 0, 0, 0]) == pytest.approx(0.25)
    assert fairness_index([]) == 1.0


def test_hls_latency_growth_detected():
    result = run_hls_memcpy(262144)
    stats = latency_stats(result.records, "read")
    assert stats.growth > 1.5  # queueing behind the single-ID pipeline


class _Streamer(Component):
    def __init__(self, reader, base, total):
        super().__init__("s")
        self.reader = reader
        self.base = base
        self.total = total
        self.requested = 0
        self.received = 0

    def tick(self, cycle):
        if self.requested < self.total and self.reader.request.can_push():
            self.reader.request.push(ReadRequest(self.base + self.requested, 16384))
            self.requested += 16384
        while self.reader.data.can_pop():
            self.received += len(self.reader.data.pop())


def test_tree_arbitration_is_fair():
    """Four identical readers hammering the controller share bandwidth with
    a Jain index near 1."""
    params = AxiParams()
    readers = [Reader(f"r{i}", 64, params) for i in range(4)]
    tb = build_memory_testbench([r.port for r in readers])
    streamers = []
    regions = {}
    for i, reader in enumerate(readers):
        base = i * 0x100_0000
        regions[base] = i
        streamers.append(_Streamer(reader, base, 128 * 1024))
        tb.sim.add(reader)
        tb.sim.add(streamers[-1])
    tb.run(
        500_000,
        until=lambda: all(s.received >= s.total for s in streamers),
    )
    shares = bandwidth_share(
        tb.monitor.records, lambda addr: addr // 0x100_0000, beat_bytes=64
    )
    index = fairness_index(list(shares.values()))
    assert index > 0.99


def _synthetic_registry():
    from repro.obs.registry import MetricRegistry

    reg = MetricRegistry()
    reg.counter("sim/cycles_total").inc(1000)
    reg.bind("sim/cycles_skipped", lambda: 750, volatile=True)
    reg.counter("dram/mc/bus_cycles").inc(400)
    reg.counter("dram/mc/row_hits").inc(90)
    reg.counter("dram/mc/row_misses").inc(10)
    reg.counter("noc/root/forwarded_ar").inc(5)
    reg.counter("noc/root/forwarded_r").inc(20)
    reg.counter("noc/leaf0/forwarded_w").inc(8)
    hist = reg.histogram("runtime/server/lock_wait_hist")
    hist.observe(4)
    hist.observe(8)
    return reg


def test_registry_backed_views():
    reg = _synthetic_registry()
    assert dram_bus_utilisation(reg) == pytest.approx(0.4)
    assert dram_row_hit_rate(reg) == pytest.approx(0.9)
    assert skip_fraction(reg) == pytest.approx(0.75)
    assert noc_link_beats(reg) == {"root": 25, "leaf0": 8}
    frame = registry_frame(reg, "runtime")
    assert frame["runtime/server/lock_wait_hist/count"] == 2.0
    assert frame["runtime/server/lock_wait_hist/mean"] == pytest.approx(6.0)
    assert registry_frame(reg)["dram/mc/bus_cycles"] == 400.0


def test_registry_backed_views_empty():
    from repro.obs.registry import MetricRegistry

    reg = MetricRegistry()
    assert dram_bus_utilisation(reg) == 0.0
    assert dram_row_hit_rate(reg) == 0.0
    assert skip_fraction(reg) == 0.0
    assert noc_link_beats(reg) == {}
    assert registry_frame(reg) == {}
