"""Tests for the analysis helpers, including arbitration fairness."""

import pytest

from repro.analysis import (
    LatencyStats,
    bandwidth_share,
    bytes_transferred,
    fairness_index,
    latency_stats,
)
from repro.axi import AxiParams
from repro.axi.monitor import TxnRecord
from repro.baselines.memcpy_experiment import run_hls_memcpy
from repro.memory import Reader, ReadRequest
from repro.sim import Component
from repro.testing import build_memory_testbench


def rec(kind, axi_id, addr, length, issue, complete):
    r = TxnRecord(kind, axi_id, addr, length, issue)
    r.complete_cycle = complete
    return r


def test_latency_stats_basics():
    records = [rec("read", 0, 0, 1, i, i + 10 + i) for i in range(8)]
    stats = latency_stats(records, "read")
    assert stats.count == 8
    assert stats.max == 17
    assert stats.growth == pytest.approx(17 / 10.5)


def test_latency_stats_empty():
    assert latency_stats([]) == LatencyStats.empty()


def test_bytes_transferred():
    records = [rec("read", 0, 0, 4, 0, 10), rec("write", 0, 0, 2, 0, 10)]
    out = bytes_transferred(records, beat_bytes=64)
    assert out == {"read": 256, "write": 128}


def test_fairness_index_bounds():
    assert fairness_index([1, 1, 1, 1]) == pytest.approx(1.0)
    assert fairness_index([1, 0, 0, 0]) == pytest.approx(0.25)
    assert fairness_index([]) == 1.0


def test_hls_latency_growth_detected():
    result = run_hls_memcpy(262144)
    stats = latency_stats(result.records, "read")
    assert stats.growth > 1.5  # queueing behind the single-ID pipeline


class _Streamer(Component):
    def __init__(self, reader, base, total):
        super().__init__("s")
        self.reader = reader
        self.base = base
        self.total = total
        self.requested = 0
        self.received = 0

    def tick(self, cycle):
        if self.requested < self.total and self.reader.request.can_push():
            self.reader.request.push(ReadRequest(self.base + self.requested, 16384))
            self.requested += 16384
        while self.reader.data.can_pop():
            self.received += len(self.reader.data.pop())


def test_tree_arbitration_is_fair():
    """Four identical readers hammering the controller share bandwidth with
    a Jain index near 1."""
    params = AxiParams()
    readers = [Reader(f"r{i}", 64, params) for i in range(4)]
    tb = build_memory_testbench([r.port for r in readers])
    streamers = []
    regions = {}
    for i, reader in enumerate(readers):
        base = i * 0x100_0000
        regions[base] = i
        streamers.append(_Streamer(reader, base, 128 * 1024))
        tb.sim.add(reader)
        tb.sim.add(streamers[-1])
    tb.run(
        500_000,
        until=lambda: all(s.received >= s.total for s in streamers),
    )
    shares = bandwidth_share(
        tb.monitor.records, lambda addr: addr // 0x100_0000, beat_bytes=64
    )
    index = fairness_index(list(shares.values()))
    assert index > 0.99
