"""Serving-layer tests: admission, fairness, routing, batching, determinism.

The vehicle throughout is the heterogeneous two-system delay-core design
from :mod:`repro.serve.scenarios` ("gemm" cores at 1100 cycles, "attn"
cores at 400), which exercises the entire host path exactly while staying
cheap.  Everything asserted here is a pure function of the seed and the
model state, so the cross-backend determinism tests are bit-for-bit.
"""

import json

import pytest

from repro.obs import Observability
from repro.runtime import FpgaHandle
from repro.serve import (
    AcceleratorService,
    AdmissionRejected,
    TenantConfig,
)
from repro.serve.loadgen import (
    ClosedLoop,
    LoadGenerator,
    OpenLoop,
    TenantLoad,
    jain_index,
    percentile,
)
from repro.serve.scenarios import hetero_build, run_scenario


def _service(tenants, mode=None, **build_kw):
    build = hetero_build(mode=mode, **build_kw)
    handle = FpgaHandle(build.design)
    return AcceleratorService(handle, tenants), handle, build


# ---------------------------------------------------------------- admission
def test_admission_rejects_queue_full_with_typed_reason():
    svc, handle, _ = _service(
        [TenantConfig(name="t", max_in_flight=1, max_queued=2)]
    )
    # One in flight + two queued fills the envelope (gemm is slow enough
    # that nothing settles while we submit back-to-back at cycle 0).
    for _ in range(3):
        svc.submit("t", "gemm", job=1)
    with pytest.raises(AdmissionRejected) as exc_info:
        svc.submit("t", "gemm", job=1)
    exc = exc_info.value
    assert exc.reason == "queue_full"
    assert exc.tenant == "t"
    state = svc.tenant("t")
    assert int(state.rejected["queue_full"]) == 1
    svc.run_until_drained()
    assert int(state.completed) == 3


def test_admission_rate_limit_is_token_bucket():
    svc, handle, _ = _service(
        [
            TenantConfig(
                name="t", max_in_flight=8, max_queued=64,
                cycles_per_token=1000, burst_tokens=2,
            )
        ]
    )
    # Full bucket: exactly `burst_tokens` admissions land at cycle 0.
    svc.submit("t", "attn", job=1)
    svc.submit("t", "attn", job=1)
    with pytest.raises(AdmissionRejected) as exc_info:
        svc.submit("t", "attn", job=1)
    assert exc_info.value.reason == "rate_limited"
    # A rejection must not burn budget: after 1000 cycles one token has
    # refilled and admission succeeds again.
    handle.design.sim.run(1000)
    svc.submit("t", "attn", job=1)
    svc.run_until_drained()
    assert int(svc.tenant("t").completed) == 3


def test_admission_memory_budget_and_release():
    svc, handle, _ = _service(
        [TenantConfig(name="t", memory_budget_bytes=4096)]
    )
    session = svc.session("t")
    ptr = session.malloc(3000)
    with pytest.raises(AdmissionRejected) as exc_info:
        session.malloc(2000)
    assert exc_info.value.reason == "memory_budget"
    session.free(ptr)
    session.malloc(4096)  # budget fully released
    assert svc.tenant("t").mem_used == 4096


def test_admission_kernel_gates():
    svc, _, _ = _service(
        [TenantConfig(name="t", kernels=("attn",))]
    )
    with pytest.raises(AdmissionRejected) as exc_info:
        svc.submit("t", "no_such_kernel", job=1)
    assert exc_info.value.reason == "unknown_kernel"
    with pytest.raises(AdmissionRejected) as exc_info:
        svc.submit("t", "gemm", job=1)
    assert exc_info.value.reason == "kernel_not_allowed"
    svc.submit("t", "attn", job=1)
    svc.run_until_drained()


# ----------------------------------------------------------------- fairness
def test_drr_fairness_under_asymmetric_load():
    """A rate-capped flooder cannot starve the well-behaved tenants."""
    report, svc, _ = run_scenario("asymmetric", seed=11, n_requests=10)
    assert report.fairness_jain >= 0.9
    flood = report.tenants["flood"]
    assert flood["rejected"] > 0
    assert flood["rejected_by_reason"].get("rate_limited", 0) > 0 or (
        flood["rejected_by_reason"].get("queue_full", 0) > 0
    )
    # The shielded tenants completed everything they offered.
    assert report.tenants["steady"]["completed"] == 10
    assert report.tenants["bursty"]["completed"] == 10


def test_symmetric_profile_meets_jain_floor():
    report, _, _ = run_scenario("symmetric", seed=3, n_requests=10)
    assert report.fairness_jain >= 0.9
    assert report.totals["failed"] == 0


# ------------------------------------------------------------------ routing
def test_named_kernel_routing_hits_matching_system():
    svc, handle, build = _service([TenantConfig(name="t", max_in_flight=8)])
    tickets = [svc.submit("t", "gemm", job=i) for i in range(4)]
    tickets += [svc.submit("t", "attn", job=i) for i in range(4)]
    svc.run_until_drained()
    systems = {s.system_id: s for s in build.design.systems}
    for t in tickets:
        assert t.outcome == "ok"
        system = systems[t.core[0]]
        expected = "Gemm" if t.kernel == "gemm" else "Attn"
        assert system.config.name == expected
    # The work actually executed on the matching cores.
    for system in build.design.systems:
        done = sum(c.core.jobs_done for c in system.cores)
        assert done == 4
    assert int(svc.router.routed) == 8


def test_reroute_on_quarantine_preserves_tenant_isolation():
    svc, handle, build = _service(
        [
            TenantConfig(name="a", max_in_flight=4),
            TenantConfig(name="b", max_in_flight=4),
        ]
    )
    gemm_slots = svc.router.slots("gemm")
    attn_slots = svc.router.slots("attn")
    # Quarantine one gemm core: traffic fails over to the survivor.
    handle.server.quarantined.add(gemm_slots[0].key)
    a_tickets = [svc.submit("a", "gemm", job=i) for i in range(3)]
    b_tickets = [svc.submit("b", "attn", job=i) for i in range(3)]
    svc.run_until_drained()
    assert all(t.outcome == "ok" for t in a_tickets)
    assert all(t.core == gemm_slots[1].key for t in a_tickets)
    assert int(svc.router.failovers) >= 1
    # Tenant b's attn traffic was untouched by a's quarantine.
    assert all(t.outcome == "ok" for t in b_tickets)
    assert all(t.core in {s.key for s in attn_slots} for t in b_tickets)
    # Quarantine the whole attn pool: b gets typed failures, a still runs.
    for slot in attn_slots:
        handle.server.quarantined.add(slot.key)
    dead = svc.submit("b", "attn", job=9)
    live = svc.submit("a", "gemm", job=9)
    svc.run_until_drained()
    assert dead.outcome == "failed"
    assert dead.error.startswith("CoreQuarantined")
    assert live.outcome == "ok"
    assert int(svc.tenant("b").failed) == 1
    assert int(svc.tenant("a").failed) == 0


# ------------------------------------------------------- FIFO + client stats
def test_fifo_per_client_and_client_counters():
    report, svc, build = run_scenario("smoke", seed=9, n_requests=6)
    server = svc.handle.server
    assert int(server.fifo_violations) == 0
    for state in svc.tenants():
        client = state.client
        assert int(client.submitted) == report.tenants[state.name]["admitted"]
        assert int(client.completed) == int(client.submitted)
        assert client.in_flight == 0
    metrics = build.design.registry.dump()
    client_keys = [k for k in metrics if k.startswith("serve/client/")]
    assert any(k.endswith("/submitted") for k in client_keys)
    assert any(k.endswith("/in_flight") for k in client_keys)


# ----------------------------------------------------------------- batching
def test_batching_skips_lock_cycles_on_bursts():
    results = {}
    for mode in ("naive", "compiled"):
        cfg = TenantConfig(name="burst", max_in_flight=8, max_queued=64)
        svc, handle, _ = _service([cfg], mode=mode, n_gemm=1, n_attn=1)
        gen = LoadGenerator(
            svc,
            [TenantLoad(cfg, [("attn", {"job": 1}, 1)],
                        OpenLoop(mean_gap_cycles=5, n_requests=24))],
            seed=7,
        )
        report = gen.run()
        server = handle.server
        results[mode] = (
            int(server.batch_lock_skips),
            int(server.batch_cycles_saved),
            int(svc.scheduler.coalesced),
            report.end_cycle,
        )
        assert report.totals["completed"] == 24
        skips, saved, coalesced, _ = results[mode]
        assert skips > 0
        assert coalesced >= skips  # only back-to-back continuations skip
        assert saved == skips * handle.server.host.command_lock_cycles
    assert results["naive"] == results["compiled"]


# -------------------------------------------------------------- determinism
def test_seeded_loadgen_identical_across_backends():
    baseline = None
    for mode in ("naive", "compiled"):
        report, _, _ = run_scenario("smoke", seed=123, mode=mode, n_requests=5)
        blob = json.dumps(report.to_dict(), sort_keys=True)
        if baseline is None:
            baseline = blob
        else:
            assert blob == baseline


# -------------------------------------------------------------- attribution
def test_tenant_attribution_rollup():
    report, svc, build = run_scenario(
        "smoke", seed=5, n_requests=3,
        observability=Observability(enabled=True, profile=False),
    )
    att = build.attribution_report(by_tenant=True)
    tenants = att["tenants"]
    assert sorted(tenants) == ["tenant0", "tenant1", "tenant2"]
    assert sum(t["commands"] for t in tenants.values()) == att["commands"]
    for t in tenants.values():
        # The per-tenant decomposition stays exact: segments sum to latency.
        assert sum(s["cycles"] for s in t["segments"].values()) == (
            t["total_latency_cycles"]
        )
        assert t["bottleneck"] is not None


# ------------------------------------------------------------------- maths
def test_percentile_and_jain_helpers():
    assert percentile([], 0.99) == 0
    assert percentile([1, 2, 3, 4], 0.5) == 2
    assert percentile([1, 2, 3, 4], 0.99) == 4
    assert jain_index([]) == 1.0
    assert jain_index([5, 5, 5]) == pytest.approx(1.0)
    assert jain_index([1, 0, 0]) == pytest.approx(1 / 3)


def test_serving_metric_directions():
    from repro.obs.regress import metric_direction

    assert metric_direction("tenants.flood.rejection_rate") == -1
    assert metric_direction("tenants.flood.p99") == -1
    assert metric_direction("tenants.flood.p999") == -1
    assert metric_direction("tenants.flood.goodput") == 1
    assert metric_direction("fairness_jain") == 1
    # The pre-serving classifications must be unchanged.
    assert metric_direction("modes.naive.cycles_per_second") == 1
    assert metric_direction("modes.naive.cycles") == -1
