"""Core-to-core communication through IntraCoreMemory ports.

A two-System accelerator: Producer cores push (row, value) writes into the
matching Consumer core's intra-core memory; the host then asks the consumer
to checksum what arrived.  This exercises the appendix's
``IntraCoreMemoryPortIn/Out`` pair and the elaborator's cross-system link
aliasing.
"""

import pytest

from repro.command.packing import CommandSpec, EmptyAccelResponse, Field, ResponseSpec, UInt
from repro.core import (
    AcceleratorConfig,
    BeethovenBuild,
    IntraCoreMemoryPortInConfig,
    IntraCoreMemoryPortOutConfig,
)
from repro.core.accelerator import AcceleratorCore
from repro.platforms import SimulationPlatform
from repro.runtime import FpgaHandle


class ProducerCore(AcceleratorCore):
    """Writes value = seed + row into the consumer's memory."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.io = self.beethoven_io(
            CommandSpec("produce", (Field("n", UInt(16)), Field("seed", UInt(32)))),
            EmptyAccelResponse(),
        )
        self.link = self.get_intra_core_mem_out("to_consumer")[0]
        self._row = 0
        self._n = 0
        self._seed = 0
        self._active = False

    def tick(self, cycle):
        if not self._active and self.io.req.can_pop():
            cmd = self.io.req.pop()
            self._n, self._seed, self._row = cmd["n"], cmd["seed"], 0
            self._active = True
        if self._active and self._row < self._n and self.link.can_push():
            self.link.push(self._row, (self._seed + self._row) & 0xFFFFFFFF)
            self._row += 1
        if self._active and self._row >= self._n and self.io.resp.can_push():
            self.io.resp.push({})
            self._active = False


class ConsumerCore(AcceleratorCore):
    """Checksums rows [0, n) of its inbox memory through a read port."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.io = self.beethoven_io(
            CommandSpec("checksum", (Field("n", UInt(16)),)),
            ResponseSpec("sum", (Field("total", UInt(48)),)),
        )
        self.inbox = self.get_intra_core_mem_ins("inbox")
        self._issued = 0
        self._collected = 0
        self._n = 0
        self._total = 0
        self._active = False

    def tick(self, cycle):
        if not self._active and self.io.req.can_pop():
            cmd = self.io.req.pop()
            self._n, self._issued, self._collected, self._total = cmd["n"], 0, 0, 0
            self._active = True
            return
        if not self._active:
            return
        mem = self.inbox.mem
        data = mem.rdata(0)
        if data is not None:
            self._total += data
            self._collected += 1
        if self._issued < self._n:
            mem.read(0, self._issued)
            self._issued += 1
        if self._collected >= self._n and self.io.resp.can_push():
            self.io.resp.push({"total": self._total})
            self._active = False


def make_design(n_cores=1):
    producer = AcceleratorConfig(
        name="Producer",
        n_cores=n_cores,
        module_constructor=ProducerCore,
        memory_channel_config=(
            IntraCoreMemoryPortOutConfig(
                "to_consumer", to_system="Consumer", to_memory_port="inbox"
            ),
        ),
    )
    consumer = AcceleratorConfig(
        name="Consumer",
        n_cores=n_cores,
        module_constructor=ConsumerCore,
        memory_channel_config=(
            IntraCoreMemoryPortInConfig(
                "inbox", n_channels=1, ports_per_channel=1,
                data_width_bits=32, n_datas=256,
            ),
        ),
    )
    build = BeethovenBuild([producer, consumer], SimulationPlatform())
    return build, FpgaHandle(build.design)


def test_producer_fills_consumer_memory():
    build, handle = make_design()
    handle.call("Producer", "produce", 0, n=64, seed=1000).get()
    resp = handle.call("Consumer", "checksum", 0, n=64).get()
    assert resp["total"] == sum(1000 + i for i in range(64))


def test_intra_core_per_core_pairing():
    """Core i of the producer system feeds core i of the consumer system."""
    build, handle = make_design(n_cores=2)
    handle.call("Producer", "produce", 0, n=8, seed=100).get()
    handle.call("Producer", "produce", 1, n=8, seed=200).get()
    r0 = handle.call("Consumer", "checksum", 0, n=8).get()
    r1 = handle.call("Consumer", "checksum", 1, n=8).get()
    assert r0["total"] == sum(100 + i for i in range(8))
    assert r1["total"] == sum(200 + i for i in range(8))


def test_broadcast_comm_degree():
    """One producer core fills EVERY consumer core's memory."""
    producer = AcceleratorConfig(
        name="Producer",
        n_cores=1,
        module_constructor=ProducerCore,
        memory_channel_config=(
            IntraCoreMemoryPortOutConfig(
                "to_consumer", to_system="Consumer", to_memory_port="inbox"
            ),
        ),
    )
    consumer = AcceleratorConfig(
        name="Consumer",
        n_cores=3,
        module_constructor=ConsumerCore,
        memory_channel_config=(
            IntraCoreMemoryPortInConfig(
                "inbox", n_channels=1, ports_per_channel=1,
                data_width_bits=32, n_datas=256, comm_degree="broadcast",
            ),
        ),
    )
    build = BeethovenBuild([producer, consumer], SimulationPlatform())
    handle = FpgaHandle(build.design)
    handle.call("Producer", "produce", 0, n=16, seed=7).get()
    expected = sum(7 + i for i in range(16))
    for core in range(3):
        resp = handle.call("Consumer", "checksum", core, n=16).get()
        assert resp["total"] == expected


def test_unknown_target_system_rejected():
    bad = AcceleratorConfig(
        name="Bad",
        n_cores=1,
        module_constructor=ProducerCore,
        memory_channel_config=(
            IntraCoreMemoryPortOutConfig(
                "to_consumer", to_system="Nowhere", to_memory_port="inbox"
            ),
        ),
    )
    with pytest.raises(ValueError, match="unknown system"):
        BeethovenBuild([bad], SimulationPlatform())


def test_unknown_target_port_rejected():
    producer = AcceleratorConfig(
        name="Producer",
        n_cores=1,
        module_constructor=ProducerCore,
        memory_channel_config=(
            IntraCoreMemoryPortOutConfig(
                "to_consumer", to_system="Consumer", to_memory_port="wrong"
            ),
        ),
    )
    consumer = AcceleratorConfig(
        name="Consumer",
        n_cores=1,
        module_constructor=ConsumerCore,
        memory_channel_config=(
            IntraCoreMemoryPortInConfig(
                "inbox", n_channels=1, ports_per_channel=1,
                data_width_bits=32, n_datas=256,
            ),
        ),
    )
    with pytest.raises(ValueError, match="unknown memory port"):
        BeethovenBuild([producer, consumer], SimulationPlatform())
