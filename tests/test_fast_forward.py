"""Differential cycle-exactness harness for the event-skipping kernel.

Every scenario here is run under all four schedules — ``naive`` stepping,
whole-design ``fast_forward``, per-component ``selective``, and the
closure-specialised ``compiled`` tick program — and the runs must be
*indistinguishable* in everything except wall clock: final cycle counts,
per-channel statistics, AXI transaction timelines, response orderings and
latencies, and the data the accelerator produced.  The skipping runs must
additionally prove that they actually skipped/elided work (otherwise the
harness is vacuous).
"""

import numpy as np
import pytest

from repro.baselines.delay_core import delay_config
from repro.command.packing import Address, CommandSpec, EmptyAccelResponse, Field, UInt
from repro.core import (
    AcceleratorConfig,
    BeethovenBuild,
    ReadChannelConfig,
    WriteChannelConfig,
)
from repro.core.accelerator import AcceleratorCore
from repro.core.build import BuildMode
from repro.kernels.machsuite.fig6 import simulate_measured
from repro.kernels.memcpy import memcpy_config
from repro.memory.types import ReadRequest, WriteRequest
from repro.platforms import AWSF1Platform, SimulationPlatform
from repro.runtime import FpgaHandle
from repro.sim import NEVER, skip_summary, wake_summary

#: The event-skipping schedules, each compared against naive.  ``compiled``
#: shares selective's wake decisions but dispatches through pre-specialised
#: closures, so it must clear the exact same differential bar.
SKIPPING_MODES = ("fast_forward", "selective", "compiled")


def _channel_stats(design):
    """Per-channel statistics tuples, in registration order."""
    return [
        (c.name, c.total_pushed, c.total_popped, c.occupancy_accum, c.cycles_observed)
        for c in design.sim._channels
    ]


def _txn_records(design):
    return [
        (r.kind, r.axi_id, r.addr, r.length, r.issue_cycle, r.first_data_cycle,
         r.complete_cycle)
        for r in design.monitor.records
    ]


def _stable_metrics(design):
    """The full registry dump minus volatile entries (skip/tick accounting
    and trace-event counts, which legitimately differ between schedules)."""
    return design.registry.dump(stable_only=True)


def _elision(design):
    """Total component-ticks elided across the design (0 under naive).

    ``component_ticks`` already accounts for whole-design jumps (both
    schedules advance ``cycle`` without ticking during a jump), so this is
    simply the gap between cycles elapsed and ticks executed, summed."""
    sim = design.sim
    return sum(sim.cycle - sim.component_ticks(c) for c in sim._components)


def _attribution_totals(design):
    """Critical-path segment totals (repro.obs.attribution) for the run.

    Attribution consumes only stable inputs (spans, monitor records,
    contention counters), so the decomposition must be bit-identical across
    scheduling modes.
    """
    from repro.obs import extract_command_paths, segment_totals

    paths = extract_command_paths(design.tracer, [design.monitor])
    for p in paths:
        assert sum(p.segments.values()) == p.latency
    return segment_totals(paths)


def _outcome(design, handle, responses, data_ok):
    return {
        "cycle": handle.cycle,
        "channel_stats": _channel_stats(design),
        "records": _txn_records(design),
        "responses": responses,
        "data": data_ok,
        "metrics": _stable_metrics(design),
        "attribution": _attribution_totals(design),
        "skipped": design.sim.cycles_skipped,
        "elided": _elision(design),
    }


def _assert_equivalent(naive, skipping):
    """Compare the observable outcome dicts of a naive and a skipping run."""
    assert skipping["cycle"] == naive["cycle"]
    assert skipping["channel_stats"] == naive["channel_stats"]
    assert skipping["records"] == naive["records"]
    assert skipping["responses"] == naive["responses"]
    assert skipping["data"] == naive["data"]
    # Every stable metric in the unified registry — channel occupancy
    # integrals, DRAM counters, NoC forward counts, runtime-server stats,
    # span counts — must be bit-identical between the two schedules.
    assert skipping["metrics"] == naive["metrics"]
    assert skipping["metrics"], "registry dump unexpectedly empty"
    # Cycle attribution (critical-path segment totals) is derived purely
    # from stable data, so it too must be scheduling-mode-identical.
    assert skipping["attribution"] == naive["attribution"]
    # The whole point: the skipping run elided work, the naive run never
    # does.  (Fast-forward elides whole cycles; selective elides individual
    # component ticks even on cycles it steps.)
    assert naive["skipped"] == 0
    assert naive["elided"] == 0
    assert skipping["elided"] > 0


# ---------------------------------------------------------------------------
# Scenario 1: memcpy through the full stack (host -> MMIO -> core -> DRAM).
# ---------------------------------------------------------------------------


def _run_memcpy(scheduling):
    size = 4096
    build = BeethovenBuild(
        memcpy_config(n_cores=1),
        AWSF1Platform(),
        BuildMode.Simulation,
        scheduling=scheduling,
    )
    handle = FpgaHandle(build.design)
    src, dst = handle.malloc(size), handle.malloc(size)
    pattern = bytes((i * 131 + 17) % 256 for i in range(size))
    src.write(pattern)
    handle.copy_to_fpga(src)
    resp = handle.call(
        "Memcpy", "memcpy", 0,
        src=src.fpga_addr, dst=dst.fpga_addr, len_bytes=size,
    )
    resp.get(max_cycles=500_000)
    handle.copy_from_fpga(dst)
    return _outcome(
        build.design, handle, [resp.latency_cycles], dst.read() == pattern
    )


@pytest.mark.parametrize("mode", SKIPPING_MODES)
def test_memcpy_differential(mode):
    _assert_equivalent(_run_memcpy("naive"), _run_memcpy(mode))


# ---------------------------------------------------------------------------
# Scenario 2: multi-channel XOR core (two Readers + one Writer, purely
# reactive core with an explicit NEVER hint).
# ---------------------------------------------------------------------------


class XorCore(AcceleratorCore):
    def __init__(self, ctx):
        super().__init__(ctx)
        self.io = self.beethoven_io(
            CommandSpec(
                "xor",
                (
                    Field("a_addr", Address()),
                    Field("b_addr", Address()),
                    Field("out_addr", Address()),
                    Field("n_bytes", UInt(20)),
                ),
            ),
            EmptyAccelResponse(),
        )
        self.in_a = self.get_reader_module("ins", 0)
        self.in_b = self.get_reader_module("ins", 1)
        self.out = self.get_writer_module("outs")
        self._active = False

    def tick(self, cycle):
        io = self.io
        if (
            not self._active
            and io.req.can_pop()
            and self.in_a.request.can_push()
            and self.in_b.request.can_push()
            and self.out.request.can_push()
        ):
            cmd = io.req.pop()
            self.in_a.request.push(ReadRequest(cmd["a_addr"], cmd["n_bytes"]))
            self.in_b.request.push(ReadRequest(cmd["b_addr"], cmd["n_bytes"]))
            self.out.request.push(WriteRequest(cmd["out_addr"], cmd["n_bytes"]))
            self._active = True
        if (
            self._active
            and self.in_a.data.can_pop()
            and self.in_b.data.can_pop()
            and self.out.data.can_push()
        ):
            a = self.in_a.data.pop()
            b = self.in_b.data.pop()
            self.out.data.push(bytes(x ^ y for x, y in zip(a, b)))
        if self._active and self.out.done.can_pop() and io.resp.can_push():
            self.out.done.pop()
            io.resp.push({})
            self._active = False

    def next_event(self, cycle):
        return NEVER  # purely reactive


def _run_multichannel(scheduling):
    n = 2048
    cfg = AcceleratorConfig(
        name="Xor",
        n_cores=1,
        module_constructor=XorCore,
        memory_channel_config=(
            ReadChannelConfig("ins", data_bytes=16, n_channels=2),
            WriteChannelConfig("outs", data_bytes=16),
        ),
    )
    build = BeethovenBuild(
        cfg, AWSF1Platform(), BuildMode.Simulation, scheduling=scheduling
    )
    handle = FpgaHandle(build.design)
    rng = np.random.default_rng(5)
    a = rng.integers(0, 256, n).astype(np.uint8)
    b = rng.integers(0, 256, n).astype(np.uint8)
    pa, pb, po = handle.malloc(n), handle.malloc(n), handle.malloc(n)
    pa.write(a.tobytes())
    pb.write(b.tobytes())
    handle.copy_to_fpga(pa)
    handle.copy_to_fpga(pb)
    resp = handle.call(
        "Xor", "xor", 0,
        a_addr=pa.fpga_addr, b_addr=pb.fpga_addr, out_addr=po.fpga_addr, n_bytes=n,
    )
    resp.get(max_cycles=500_000)
    handle.copy_from_fpga(po)
    got = np.frombuffer(po.read(), dtype=np.uint8)
    return _outcome(
        build.design, handle, [resp.latency_cycles], bool((got == (a ^ b)).all())
    )


@pytest.mark.parametrize("mode", SKIPPING_MODES)
def test_multichannel_differential(mode):
    _assert_equivalent(_run_multichannel("naive"), _run_multichannel(mode))


# ---------------------------------------------------------------------------
# Scenario 3: runtime-server contention with long-latency DelayCores — the
# sparse configuration event-skipping exists for.
# ---------------------------------------------------------------------------


def _run_server(scheduling):
    n_cores, latency, rounds = 2, 5000, 3
    build = BeethovenBuild(
        delay_config(n_cores, latency),
        AWSF1Platform(),
        BuildMode.Simulation,
        scheduling=scheduling,
    )
    handle = FpgaHandle(build.design)
    futures = []
    for r in range(rounds):
        for core in range(n_cores):
            futures.append(handle.call("Delay", "run", core, job=r))
    for fut in futures:
        fut.get(max_cycles=10_000_000)
    server = handle.server
    return _outcome(
        build.design,
        handle,
        [f.latency_cycles for f in futures],
        (
            server.commands_sent,
            server.responses_received,
            server.lock_wait_cycles,
            server.busy_cycles,
            {k: tuple(v) for k, v in server.client_lock_waits.items()},
        ),
    )


def test_runtime_server_differential_fast_forward():
    naive, fast = _run_server("naive"), _run_server("fast_forward")
    _assert_equivalent(naive, fast)
    # Long-latency kernels leave substantial dead time even though queued
    # commands parked in a busy core's req channel pin much of the run
    # non-quiescent (the strict gate refuses to skip over staged traffic).
    assert fast["skipped"] > fast["cycle"] * 0.25


def test_runtime_server_differential_selective():
    naive, sel = _run_server("naive"), _run_server("selective")
    _assert_equivalent(naive, sel)
    # Selective scheduling is strictly more aggressive than the global gate:
    # a busy core never pins idle components awake, so across the design the
    # elided ticks exceed a full component-lifetime of work.
    assert sel["elided"] > sel["cycle"]


def test_runtime_server_differential_compiled():
    naive, comp = _run_server("naive"), _run_server("compiled")
    _assert_equivalent(naive, comp)
    # Compiled inherits selective's wake decisions, so the same elision bar
    # applies: sleeping components never appear in the dispatch order.
    assert comp["elided"] > comp["cycle"]


# ---------------------------------------------------------------------------
# Scenario 4: the fig6 MachSuite measured-bar configuration (acceptance
# criterion: selective is bit-identical to naive on these configs).
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", SKIPPING_MODES)
def test_fig6_machsuite_differential(mode):
    # Small Delay-core stand-in at a real fig6 operating point: multi-core
    # with runtime-server contention, exactly what measured_ops simulates.
    results = {
        s: simulate_measured(4, 3000, AWSF1Platform(), rounds=2, scheduling=s)
        for s in ("naive", mode)
    }
    assert results[mode].ops_per_second == results["naive"].ops_per_second
    assert results[mode].server_bound == results["naive"].server_bound


def test_skip_summary_shape():
    build = BeethovenBuild(
        delay_config(1, 2000), AWSF1Platform(), BuildMode.Simulation,
        scheduling="fast_forward",
    )
    handle = FpgaHandle(build.design)
    handle.call("Delay", "run", 0, job=0).get(max_cycles=1_000_000)
    summary = skip_summary(build.design.sim)
    assert summary["cycles_total"] == handle.cycle
    assert summary["cycles_stepped"] + summary["cycles_skipped"] == handle.cycle
    assert 0.0 < summary["skip_fraction"] < 1.0
    assert summary["skip_events"] == build.design.sim.skip_events


def test_wake_summary_shape():
    build = BeethovenBuild(
        delay_config(2, 2000), AWSF1Platform(), BuildMode.Simulation
    )  # selective by default
    handle = FpgaHandle(build.design)
    handle.call("Delay", "run", 0, job=0).get(max_cycles=1_000_000)
    sim = build.design.sim
    assert sim.scheduling == "selective"
    summary = wake_summary(sim)
    assert len(summary) == len(sim._components)
    for name, s in summary.items():
        assert s["ticks_executed"] + s["ticks_elided"] == sim.cycle
        assert 0.0 <= s["tick_fraction"] <= 1.0
    # The idle second core must have been almost entirely elided while the
    # commanded core worked.
    idle_core = summary["Delay.core1"]
    assert idle_core["tick_fraction"] < 0.5


@pytest.mark.parametrize("mode", SKIPPING_MODES)
def test_skipping_respects_run_deadline(mode):
    """A bounded run() without a predicate lands exactly on its deadline."""
    build = BeethovenBuild(
        delay_config(1, 100),
        SimulationPlatform(),
        BuildMode.Simulation,
        scheduling=mode,
    )
    handle = FpgaHandle(build.design)
    handle.run_until(None, 0)  # no-op; exercise plumbing
    start = handle.cycle
    build.design.sim.run(12_345)
    assert handle.cycle == start + 12_345
