"""Tests for the FPGA models: devices, memcells, floorplan, resources, power."""

import pytest

from repro.fpga import (
    FANOUT_HARD_LIMIT,
    Floorplanner,
    MemcellMapper,
    ResourceEstimator,
    ResourceVector,
    bram_count,
    clb_for,
    emit_constraints,
    make_kria_k26,
    make_vu9p_aws_f1,
    routability_report,
    uram_count,
)
from repro.fpga.power import estimate_power
from repro.hdl.ir import HdlMemory


# ------------------------------------------------------------------ vectors
def test_resource_vector_arithmetic():
    a = ResourceVector(clb=1, lut=10, reg=20, bram=2, uram=1)
    b = ResourceVector(clb=2, lut=5, reg=5, bram=1, uram=0)
    s = a + b
    assert (s.clb, s.lut, s.bram) == (3, 15, 3)
    d = s - b
    assert (d.lut, d.uram) == (10, 1)
    assert a.scaled(2).reg == 40


def test_fits_and_utilisation():
    cap = ResourceVector(clb=100, lut=800, reg=1600, bram=10, uram=5)
    use = ResourceVector(clb=50, lut=400, reg=100, bram=10, uram=0)
    assert use.fits_in(cap)
    assert use.max_utilisation_of(cap) == 1.0  # bram full
    assert not (use + ResourceVector(bram=1)).fits_in(cap)


def test_devices():
    vu9p = make_vu9p_aws_f1()
    assert vu9p.n_slrs == 3
    assert vu9p.total_capacity().bram == 2160
    # Shell eats into SLR0 more than SLR1.
    assert vu9p.free_capacity(0).lut < vu9p.free_capacity(1).lut
    assert vu9p.free_capacity(2).lut == vu9p.slr_capacity[2].lut - 8_000 * 0
    kria = make_kria_k26()
    assert kria.n_slrs == 1


# ----------------------------------------------------------------- memcells
def test_bram_count_geometry():
    assert bram_count(72, 512) == 1
    assert bram_count(36, 1024) == 1
    assert bram_count(512, 512) == 8
    assert bram_count(512, 640) == 15  # the 36x1024 aspect wins
    assert bram_count(1, 1) == 1


def test_uram_count_geometry():
    assert uram_count(72, 4096) == 1
    assert uram_count(144, 4096) == 2
    assert uram_count(72, 8192) == 2
    assert uram_count(8, 100) == 1


def test_small_memory_goes_to_lutram():
    mapper = MemcellMapper(make_vu9p_aws_f1())
    mem = HdlMemory("tiny", 16, 32)
    assert mapper.map_memory(mem, 0) == "LUTRAM"
    assert mem.cell_mapping == "LUTRAM"


def test_preferred_kind_minimises_waste():
    mapper = MemcellMapper(make_vu9p_aws_f1())
    # 72 x 4096 fits exactly one URAM; BRAM would need 8 tiles.
    assert mapper.preferred_kind(HdlMemory("big", 72, 4096)) == "URAM"
    # 72 x 512 fits exactly one BRAM.
    assert mapper.preferred_kind(HdlMemory("small", 72, 512)) == "BRAM"


def test_spill_at_threshold():
    device = make_vu9p_aws_f1()
    mapper = MemcellMapper(device)
    free_bram = device.free_capacity(0).bram
    mem_tiles = bram_count(512, 640)
    n_fit = int(0.8 * free_bram // mem_tiles)
    kinds = [
        mapper.map_memory(HdlMemory(f"m{i}", 512, 640), 0) for i in range(n_fit + 2)
    ]
    assert kinds[0] == "BRAM"
    assert "URAM" in kinds[-2:]
    assert mapper.spills >= 1
    assert mapper.feasible


# ---------------------------------------------------------------- floorplan
def test_floorplanner_balances_and_avoids_shell():
    device = make_vu9p_aws_f1()
    planner = Floorplanner(device)
    core = ResourceVector(clb=4000, lut=28000, reg=20000)
    placement = planner.place([(f"c{i}", core) for i in range(12)])
    counts = {slr: len(placement.cores_on(slr)) for slr in range(3)}
    assert sum(counts.values()) == 12
    assert counts[0] <= counts[1] <= counts[2]


def test_constraints_mention_every_core():
    device = make_vu9p_aws_f1()
    planner = Floorplanner(device)
    placement = planner.place([("a", ResourceVector(clb=10)), ("b", ResourceVector(clb=10))])
    text = emit_constraints(placement, device)
    assert "get_cells a" in text and "get_cells b" in text


def test_routability_failure_modes():
    device = make_vu9p_aws_f1()
    planner = Floorplanner(device)
    placement = planner.place([("c", ResourceVector(clb=10))])
    ok = routability_report(device, placement)
    assert ok.feasible
    over = routability_report(
        device,
        planner.place([("big", ResourceVector(clb=200_000))]),
    )
    assert not over.feasible
    fanout = routability_report(device, placement, max_fanout=FANOUT_HARD_LIMIT + 1)
    assert not fanout.feasible and "fanout" in fanout.reasons[0]
    crossing = routability_report(device, placement, unbuffered_crossings=1)
    assert not crossing.feasible
    nomem = routability_report(device, placement, memcells_feasible=False)
    assert not nomem.feasible
    uncon = routability_report(device, placement, constraints_emitted=False)
    assert not uncon.feasible


# ---------------------------------------------------------------- resources
def test_estimator_monotonic_in_width():
    est = ResourceEstimator()
    assert est.reader(64, 4, 4).lut > est.reader(4, 4, 4).lut
    assert est.writer(64, 4).lut > est.writer(4, 4).lut
    assert est.noc_node(8, 64).lut > est.noc_node(2, 64).lut


def test_clb_packing_rule():
    assert clb_for(73, 0) == pytest.approx(10, rel=0.01)
    assert clb_for(0, 146) == pytest.approx(10, rel=0.01)


def test_memory_cell_pricing():
    est = ResourceEstimator()
    assert est.memory_cells("BRAM", 15).bram == 15
    assert est.memory_cells("URAM", 16).uram == 16
    assert est.memory_cells("LUTRAM", 640).lut > 0
    with pytest.raises(ValueError):
        est.memory_cells("FLASH", 1)


# -------------------------------------------------------------------- power
def test_power_model_anchors():
    used = ResourceVector(lut=887_000, reg=541_000, bram=658, uram=619)
    est = estimate_power(used, 250.0)
    assert 20 < est.total_w < 28  # the paper's ~24 W design
    idle = estimate_power(ResourceVector(), 250.0)
    assert idle.total_w == idle.static_w
