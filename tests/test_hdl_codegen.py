"""Tests for the HDL IR, Verilog emission, and C++ binding generation."""

import pytest

from repro.codegen import binding_signature, generate_header
from repro.command import Address, CommandSpec, EmptyAccelResponse, Field, Float32, ResponseSpec, UInt
from repro.core import BeethovenBuild
from repro.hdl import HdlMemory, HdlModule, emit_design, emit_module, sanitize
from repro.kernels.vecadd import vector_add_config
from repro.platforms import AWSF1Platform, KriaPlatform


# ----------------------------------------------------------------------- IR
def test_sanitize_names():
    assert sanitize("a.b-c d") == "a_b_c_d"
    assert sanitize("0start") == "m_0start"
    assert sanitize("fine_name") == "fine_name"


def test_module_port_validation():
    mod = HdlModule("m")
    mod.add_port("clk", "input")
    with pytest.raises(ValueError):
        mod.add_port("clk", "input")
    with pytest.raises(ValueError):
        mod.add_port("bad", "inout")
    with pytest.raises(ValueError):
        mod.add_port("x y", "input")
    with pytest.raises(ValueError):
        HdlModule("9bad")


def test_net_redefinition_width_conflict():
    mod = HdlModule("m")
    mod.add_net("w", 8)
    mod.add_net("w", 8)  # same width is fine
    with pytest.raises(ValueError):
        mod.add_net("w", 16)


def test_instance_connection_validation():
    child = HdlModule("child")
    child.add_port("clk", "input")
    top = HdlModule("top")
    top.add_port("clk", "input")
    top.instantiate(child, "u0", {"clk": "clk"})
    with pytest.raises(ValueError):
        top.instantiate(child, "u0", {})  # duplicate instance name
    with pytest.raises(ValueError):
        top.instantiate(child, "u1", {"nope": "clk"})


def test_walk_leaves_first():
    leaf = HdlModule("leaf")
    mid = HdlModule("mid")
    mid.instantiate(leaf, "u_leaf")
    top = HdlModule("top")
    top.instantiate(mid, "u_mid")
    names = [m.name for m in top.walk()]
    assert names.index("leaf") < names.index("mid") < names.index("top")


def test_all_memories_collects_paths():
    core = HdlModule("core")
    core.add_memory(HdlMemory("sp", 32, 64))
    top = HdlModule("top")
    top.instantiate(core, "u_core0")
    top.instantiate(HdlModule("other"), "u_other")
    mems = top.all_memories()
    assert mems[0][0] == "u_core0/sp"


# ------------------------------------------------------------------ verilog
def test_emit_module_structure():
    mod = HdlModule("demo", doc="a demo")
    mod.add_port("clk", "input")
    mod.add_port("q", "output", 32)
    mod.add_net("w1", 16)
    mem = HdlMemory("buf", 32, 64)
    mem.cell_mapping = "URAM"
    mod.add_memory(mem)
    text = emit_module(mod)
    assert "module demo(clk, q);" in text
    assert "output [31:0] q;" in text
    assert "wire [15:0] w1;" in text
    assert '(* ram_style = "ultra" *)' in text
    assert "reg [31:0] buf [0:63];" in text
    assert text.strip().endswith("endmodule")


def test_emit_design_dedupes_modules():
    leaf = HdlModule("leaf")
    top = HdlModule("top")
    top.instantiate(leaf, "u0")
    top.instantiate(leaf, "u1")
    text = emit_design(top)
    assert text.count("module leaf(") == 1


def test_build_emits_valid_looking_verilog():
    build = BeethovenBuild(vector_add_config(2), AWSF1Platform())
    text = build.emit_verilog()
    assert text.count("module ") == text.count("endmodule")
    # SLR placement attributes make it into the netlist.
    assert 'beethoven_slr' in text


# ---------------------------------------------------------------------- C++
def test_binding_signature_types():
    spec = CommandSpec(
        "my_accel",
        (Field("addend", UInt(32)), Field("vec_addr", Address()), Field("n", UInt(20))),
    )
    sig = binding_signature("Sys", spec, EmptyAccelResponse(), addr_bits=34)
    assert "response_handle<bool> my_accel(" in sig
    assert "uint32_t addend" in sig
    assert "const remote_ptr & vec_addr" in sig
    assert "uint32_t n" in sig  # 20 bits -> uint32_t


def test_binding_float_and_response_struct():
    spec = CommandSpec("f", (Field("x", Float32()),))
    resp = ResponseSpec("r", (Field("score", UInt(32)),))
    sig = binding_signature("Sys", spec, resp, 34)
    assert "response_handle<Sys_f_response>" in sig
    assert "float x" in sig


def test_header_reflects_platform_address_width():
    h_f1 = generate_header(BeethovenBuild(vector_add_config(1), AWSF1Platform()).design)
    h_kria = generate_header(BeethovenBuild(vector_add_config(1), KriaPlatform()).design)
    assert "addr_bits=34" in h_f1
    assert "addr_bits=40" in h_kria
    assert "86 bits -> 1 RoCC instruction(s)" in h_f1  # 32+34+20
    assert "92 bits -> 1 RoCC instruction(s)" in h_kria  # 32+40+20
