"""Unit tests for the DRAM model and memory controller."""

import pytest

from repro.axi import (
    ARReq,
    AWReq,
    AxiMonitor,
    AxiParams,
    AxiPort,
    MonitoredAxiPort,
    WBeat,
)
from repro.dram import DDR4_AWS_F1, MemoryController, MemoryStore, DramTiming
from repro.sim import Component, Simulator


def make_stack(depth=8):
    port = AxiPort(AxiParams(), depth=depth)
    mon = AxiMonitor("mem")
    mport = MonitoredAxiPort(port, mon)
    mc = MemoryController(mport, DDR4_AWS_F1)
    sim = Simulator()
    for ch in port.channels():
        sim.register_channel(ch)
    sim.add(mc)
    return sim, port, mport, mc, mon


class ScriptedMaster(Component):
    """Issues a scripted list of reads/writes and records results."""

    def __init__(self, port, mport, script):
        super().__init__("scripted")
        self.port = port
        self.mport = mport
        self.script = list(script)
        self.read_data = {}
        self.write_done = set()
        self._w_queue = []
        self._read_expect = {}  # tag -> expected bytes
        self._expected_reads = sum(1 for s in script if s[0] == "r")
        self._expected_writes = sum(1 for s in script if s[0] == "w")

    def tick(self, cycle):
        if self.script:
            op = self.script[0]
            if op[0] == "barrier":
                # AXI gives no read-after-write ordering, even on the same
                # ID: masters needing it must wait for the write response.
                if len(self.write_done) == self._expected_writes and not self._w_queue:
                    self.script.pop(0)
            elif op[0] == "r" and self.port.ar.can_push():
                _, axi_id, addr, beats = op
                req = ARReq(axi_id=axi_id, addr=addr, length=beats)
                self.mport.push_ar(cycle, req)
                self.read_data[req.tag] = bytearray()
                self._read_expect[req.tag] = beats * 64
                self.script.pop(0)
            elif op[0] == "w" and self.port.aw.can_push():
                _, axi_id, addr, data = op
                beats = -(-len(data) // 64)
                req = AWReq(axi_id=axi_id, addr=addr, length=beats)
                self.mport.push_aw(cycle, req)
                self._w_queue.append((req.tag, data, 0, beats))
                self.script.pop(0)
        if self._w_queue and self.port.w.can_push():
            tag, data, sent, beats = self._w_queue[0]
            chunk = data[sent * 64 : (sent + 1) * 64]
            chunk = chunk + bytes(64 - len(chunk))
            self.mport.push_w(cycle, WBeat(chunk, last=sent == beats - 1))
            if sent == beats - 1:
                self._w_queue.pop(0)
            else:
                self._w_queue[0] = (tag, data, sent + 1, beats)
        if self.port.r.can_pop():
            beat = self.port.r.pop()
            self.read_data[beat.tag].extend(beat.data)
        if self.port.b.can_pop():
            resp = self.port.b.pop()
            self.write_done.add(resp.tag)

    def done(self):
        reads_ok = len(self.read_data) == self._expected_reads and all(
            len(v) == self._read_expect[tag] for tag, v in self.read_data.items()
        )
        return (
            not self.script
            and not self._w_queue
            and len(self.write_done) == self._expected_writes
            and reads_ok
        )


def test_store_roundtrip():
    store = MemoryStore()
    store.write(100, b"hello world")
    assert store.read(100, 11) == b"hello world"
    assert store.read(95, 5) == bytes(5)


def test_store_strb_masking():
    store = MemoryStore()
    store.write(0, b"\xff" * 8)
    store.write(0, b"\x00" * 8, strb=bytes([1, 0, 1, 0, 1, 0, 1, 0]))
    assert store.read(0, 8) == bytes([0, 0xFF] * 4)


def test_store_cross_block_access():
    store = MemoryStore(block_bytes=64)
    data = bytes(range(200)) + bytes(56)
    store.write(40, data)
    assert store.read(40, 256) == data


def test_read_returns_stored_data():
    sim, port, mport, mc, mon = make_stack()
    pattern = bytes(range(256)) * 16
    mc.store.write(0x2000, pattern)
    m = sim.add(ScriptedMaster(port, mport, [("r", 0, 0x2000, 64)]))
    sim.run(2000, until=m.done)
    assert bytes(list(m.read_data.values())[0]) == pattern


def test_write_then_read_same_id():
    sim, port, mport, mc, mon = make_stack()
    payload = b"\xab" * 4096
    m = sim.add(
        ScriptedMaster(
            port,
            mport,
            [("w", 3, 0x4000, payload), ("barrier",), ("r", 3, 0x4000, 64)],
        )
    )
    sim.run(4000, until=m.done)
    assert bytes(list(m.read_data.values())[0]) == payload


def test_same_id_reads_return_in_order():
    sim, port, mport, mc, mon = make_stack()
    mc.store.write(0x0, bytes([1] * 64))
    mc.store.write(0x40000, bytes([2] * 64))
    m = sim.add(
        ScriptedMaster(
            port, mport, [("r", 0, 0x0, 1), ("r", 0, 0x40000, 1), ("r", 0, 0x40, 1)]
        )
    )
    sim.run(2000, until=m.done)
    recs = mon.completed("read")
    assert [r.addr for r in recs] == [0x0, 0x40000, 0x40]
    assert recs[0].complete_cycle < recs[1].complete_cycle < recs[2].complete_cycle


def test_different_ids_can_complete_out_of_order():
    """A row-miss transaction on one ID must not block a row-hit on another."""
    sim, port, mport, mc, mon = make_stack()
    # Warm the row at 0x0 by writing (opens the row for bank 0).
    m = sim.add(
        ScriptedMaster(
            port,
            mport,
            [("r", 0, 0x100000, 32), ("r", 1, 0x100040 - 0x40, 1)],
        )
    )
    sim.run(4000, until=m.done)
    assert mon.outstanding() == 0


def test_row_hit_streaming_is_fast():
    """Sequential 4KB reads should run near one beat per cycle."""
    sim, port, mport, mc, mon = make_stack()
    m = sim.add(ScriptedMaster(port, mport, [("r", 0, 0x0, 64)]))
    sim.run(2000, until=m.done)
    rec = mon.completed("read")[0]
    assert rec.latency < 100  # 64 beats + activate + CAS + slack


def test_refresh_blocks_banks():
    timing = DramTiming(t_refi=100, t_rfc=50)
    port = AxiPort(AxiParams(), depth=8)
    mon = AxiMonitor("mem")
    mport = MonitoredAxiPort(port, mon)
    mc = MemoryController(mport, timing)
    sim = Simulator()
    for ch in port.channels():
        sim.register_channel(ch)
    sim.add(mc)
    sim.run(101)
    assert mc.stats["refreshes"] == 1
    assert all(b.ready_at >= 150 for b in mc.banks)


def test_beat_width_mismatch_rejected():
    port = AxiPort(AxiParams(beat_bytes=32))
    mon = AxiMonitor("mem")
    with pytest.raises(ValueError):
        MemoryController(MonitoredAxiPort(port, mon), DDR4_AWS_F1)


def test_bus_utilisation_stat():
    sim, port, mport, mc, mon = make_stack()
    m = sim.add(ScriptedMaster(port, mport, [("r", 0, 0x0, 64)]))
    sim.run(2000, until=m.done)
    assert 0 < mc.bus_utilisation(sim.cycle) <= 1.0


def test_channel_report_consistency():
    sim, port, mport, mc, mon = make_stack()
    m = sim.add(ScriptedMaster(port, mport, [("r", 0, 0x0, 64), ("w", 1, 0x9000, b"\xaa" * 4096)]))
    sim.run(4000, until=m.done)
    report = mc.report(sim.cycle)
    assert report["read_bytes"] == 4096
    assert report["write_bytes"] == 4096
    assert 0 < report["bus_utilisation"] <= 1
    assert 0 <= report["row_hit_rate"] <= 1
    assert report["bandwidth_gbps"] > 0


def test_address_decompose_spreads_banks():
    t = DDR4_AWS_F1
    banks = {t.decompose(addr)[0] for addr in range(0, 16 * t.row_bytes, t.row_bytes)}
    assert len(banks) == min(16, t.n_banks)
