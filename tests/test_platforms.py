"""Platform definitions and cross-platform retargeting behaviour."""

import numpy as np
import pytest

from repro.core import BeethovenBuild
from repro.kernels.memcpy import memcpy_config
from repro.kernels.vecadd import vector_add_config
from repro.platforms import (
    Asap7Platform,
    AWSF1Platform,
    ChipKitPlatform,
    KriaPlatform,
    SimulationPlatform,
    SynopsysPdkPlatform,
    kernel_mode,
)
from repro.runtime import FpgaHandle


def test_platform_clock_helpers():
    f1 = AWSF1Platform()
    assert f1.clock_ns == pytest.approx(4.0)
    assert f1.cycles_to_seconds(250_000_000) == pytest.approx(1.0)


def test_command_latency_scales_with_slr_distance():
    f1 = AWSF1Platform()
    assert f1.command_latency_for(0) < f1.command_latency_for(2)


def test_kria_is_embedded_and_narrow():
    kria = KriaPlatform()
    assert not kria.host.discrete
    assert kria.axi_params.beat_bytes == 16
    assert kria.n_slrs == 1


def test_asic_platforms_have_no_device():
    for platform in (Asap7Platform(), SynopsysPdkPlatform()):
        assert platform.is_asic
        assert platform.device is None
        assert platform.n_slrs == 1


def test_chipkit_platform_carries_m0_path(tmp_path):
    platform = ChipKitPlatform(m0_source_path=str(tmp_path))
    assert platform.m0_source_path == str(tmp_path)


def test_kria_memcpy_end_to_end():
    """The same memcpy core retargets to the embedded platform (16B beats,
    shared address space) untouched — only the platform argument changes."""
    build = BeethovenBuild(
        memcpy_config(n_cores=1, burst_beats=32, data_bytes=16), KriaPlatform()
    )
    handle = FpgaHandle(build.design)
    src, dst = handle.malloc(8192), handle.malloc(8192)
    payload = bytes(np.random.default_rng(0).integers(0, 256, 8192, dtype=np.uint8))
    src.write(payload)  # embedded: write-through, no DMA
    handle.call(
        "Memcpy", "memcpy", 0,
        src=src.fpga_addr, dst=dst.fpga_addr, len_bytes=8192,
    ).get()
    assert dst.read() == payload


def test_every_fpga_platform_elaborates_vecadd():
    for platform in (AWSF1Platform(), KriaPlatform(), SimulationPlatform()):
        build = BeethovenBuild(vector_add_config(1), platform)
        assert build.design.n_memory_interfaces == 2


def test_kernel_mode_is_strictly_cheaper():
    base = AWSF1Platform()
    km = kernel_mode(base)
    from repro.kernels.machsuite.fig6 import dispatch_cost_cycles

    assert dispatch_cost_cycles(km) < dispatch_cost_cycles(base)
