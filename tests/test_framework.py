"""Integration tests for the core framework: build -> runtime -> kernel."""

import numpy as np
import pytest

from repro.core import (
    AcceleratorConfig,
    BeethovenBuild,
    BuildMode,
    ReadChannelConfig,
    WriteChannelConfig,
)
from repro.core.accelerator import AcceleratorCore
from repro.command.packing import CommandSpec, EmptyAccelResponse, Field, UInt
from repro.kernels.vecadd import vector_add_config
from repro.platforms import AWSF1Platform, KriaPlatform, SimulationPlatform
from repro.runtime import FpgaHandle, bindings_for


@pytest.fixture(scope="module")
def vecadd_build():
    return BeethovenBuild(
        vector_add_config(n_cores=2), SimulationPlatform(), BuildMode.Simulation
    )


def fresh_handle():
    build = BeethovenBuild(
        vector_add_config(n_cores=2), SimulationPlatform(), BuildMode.Simulation
    )
    return build, FpgaHandle(build.design)


def test_vecadd_end_to_end():
    build, handle = fresh_handle()
    mem = handle.malloc(1024)
    data = np.arange(256, dtype=np.uint32)
    mem.write(data.tobytes())
    handle.copy_to_fpga(mem)
    bindings = bindings_for(handle, "MyAcceleratorSystem")
    resp = bindings.my_accel(0, addend=7, vec_addr=mem.fpga_addr, n_eles=256)
    assert resp.get() == {"ok": True}
    handle.copy_from_fpga(mem)
    out = np.frombuffer(mem.read(), dtype=np.uint32)
    assert (out == data + 7).all()


def test_vecadd_multiple_cores_in_parallel():
    build, handle = fresh_handle()
    mems, expected = [], []
    bindings = bindings_for(handle, "MyAcceleratorSystem")
    handles = []
    for core in range(2):
        mem = handle.malloc(512)
        data = np.full(128, 100 * (core + 1), dtype=np.uint32)
        mem.write(data.tobytes())
        handle.copy_to_fpga(mem)
        mems.append(mem)
        expected.append(data + core + 1)
        handles.append(
            bindings.my_accel(core, addend=core + 1, vec_addr=mem.fpga_addr, n_eles=128)
        )
    for resp in handles:
        resp.get()
    for mem, exp in zip(mems, expected):
        handle.copy_from_fpga(mem)
        assert (np.frombuffer(mem.read(), dtype=np.uint32) == exp).all()


def test_vecadd_sequential_commands_to_same_core():
    build, handle = fresh_handle()
    mem = handle.malloc(256)
    data = np.zeros(64, dtype=np.uint32)
    mem.write(data.tobytes())
    handle.copy_to_fpga(mem)
    bindings = bindings_for(handle, "MyAcceleratorSystem")
    for _ in range(3):
        bindings.my_accel(0, addend=5, vec_addr=mem.fpga_addr, n_eles=64).get()
    handle.copy_from_fpga(mem)
    assert (np.frombuffer(mem.read(), dtype=np.uint32) == 15).all()


def test_try_get_nonblocking():
    build, handle = fresh_handle()
    mem = handle.malloc(4096)
    handle.copy_to_fpga(mem)
    bindings = bindings_for(handle, "MyAcceleratorSystem")
    resp = bindings.my_accel(0, addend=1, vec_addr=mem.fpga_addr, n_eles=1024)
    assert resp.try_get() is None  # command not even dispatched yet
    resp.get()
    assert resp.try_get() == {"ok": True}


def test_unknown_system_core_io_rejected():
    build, handle = fresh_handle()
    with pytest.raises(KeyError):
        handle.call("NoSuchSystem", "my_accel", 0)
    with pytest.raises(IndexError):
        handle.call("MyAcceleratorSystem", "my_accel", 99, addend=0, vec_addr=0, n_eles=1)
    with pytest.raises(KeyError):
        handle.call("MyAcceleratorSystem", "nope", 0)


def test_field_validation():
    build, handle = fresh_handle()
    with pytest.raises(ValueError):
        handle.call(
            "MyAcceleratorSystem", "my_accel", 0, addend=2**33, vec_addr=0, n_eles=1
        )
    with pytest.raises(ValueError):
        handle.call("MyAcceleratorSystem", "my_accel", 0, addend=1)


def test_core_without_io_rejected():
    class Mute(AcceleratorCore):
        def __init__(self, ctx):
            super().__init__(ctx)

        def tick(self, cycle):
            pass

    cfg = AcceleratorConfig(name="Mute", n_cores=1, module_constructor=Mute)
    with pytest.raises(ValueError):
        BeethovenBuild(cfg, SimulationPlatform())


def test_duplicate_system_names_rejected():
    with pytest.raises(ValueError):
        BeethovenBuild(
            [vector_add_config(1, "Same"), vector_add_config(1, "Same")],
            SimulationPlatform(),
        )


def test_cross_platform_retarget():
    """Figure 3a's selling point: only the platform argument changes."""
    for platform in (AWSF1Platform(), KriaPlatform(), SimulationPlatform()):
        build = BeethovenBuild(vector_add_config(n_cores=1), platform)
        assert build.design.sim is not None
        assert build.summary()


def test_kria_end_to_end_shared_memory():
    build = BeethovenBuild(vector_add_config(n_cores=1), KriaPlatform())
    handle = FpgaHandle(build.design)
    assert not handle.discrete
    mem = handle.malloc(256)
    data = np.arange(64, dtype=np.uint32)
    mem.write(data.tobytes())  # embedded: writes through, no DMA needed
    bindings = bindings_for(handle, "MyAcceleratorSystem")
    bindings.my_accel(0, addend=3, vec_addr=mem.fpga_addr, n_eles=64).get()
    out = np.frombuffer(mem.read(), dtype=np.uint32)
    assert (out == data + 3).all()


def test_verilog_emission(vecadd_build):
    verilog = vecadd_build.emit_verilog()
    assert "module beethoven_top_simulation" in verilog
    assert "module system_MyAcceleratorSystem" in verilog
    assert "reader_MyAcceleratorSystem_vec_in" in verilog
    assert verilog.count("endmodule") >= 5


def test_constraint_emission():
    build = BeethovenBuild(vector_add_config(n_cores=3), AWSF1Platform())
    constraints = build.emit_constraints()
    assert "create_pblock pblock_slr0" in constraints
    assert "add_cells_to_pblock" in constraints


def test_cpp_header_generation(vecadd_build):
    header = vecadd_build.emit_cpp_header()
    assert "namespace MyAcceleratorSystem" in header
    assert "response_handle<bool> my_accel(" in header
    assert "const remote_ptr & vec_addr" in header


def test_resource_report_structure(vecadd_build):
    report = vecadd_build.resource_report
    assert len(report.per_core) == 2
    for path, breakdown in report.per_core_breakdown.items():
        assert any(k.startswith("reader.") for k in breakdown)
        assert any(k.startswith("writer.") for k in breakdown)
    assert report.total.lut > 0
    assert report.with_shell.lut > report.total.lut


def test_multi_system_heterogeneous_build():
    cfgs = [
        vector_add_config(2, "SysA"),
        vector_add_config(1, "SysB"),
    ]
    build = BeethovenBuild(cfgs, SimulationPlatform())
    handle = FpgaHandle(build.design)
    mem_a = handle.malloc(256)
    mem_b = handle.malloc(256)
    mem_a.write(np.zeros(64, dtype=np.uint32).tobytes())
    mem_b.write(np.zeros(64, dtype=np.uint32).tobytes())
    handle.copy_to_fpga(mem_a)
    handle.copy_to_fpga(mem_b)
    ra = handle.call("SysA", "my_accel", 1, addend=10, vec_addr=mem_a.fpga_addr, n_eles=64)
    rb = handle.call("SysB", "my_accel", 0, addend=20, vec_addr=mem_b.fpga_addr, n_eles=64)
    ra.get()
    rb.get()
    handle.copy_from_fpga(mem_a)
    handle.copy_from_fpga(mem_b)
    assert (np.frombuffer(mem_a.read(), dtype=np.uint32) == 10).all()
    assert (np.frombuffer(mem_b.read(), dtype=np.uint32) == 20).all()


def test_allocator_exhaustion_raises():
    build, handle = fresh_handle()
    from repro.runtime import AllocationError

    with pytest.raises(AllocationError):
        handle.malloc(10**15)


def test_free_and_reuse():
    build, handle = fresh_handle()
    a = handle.malloc(1 << 20)
    addr = a.fpga_addr
    handle.free(a)
    b = handle.malloc(1 << 20)
    assert b.fpga_addr == addr
