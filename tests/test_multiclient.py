"""Multiple host processes sharing one accelerator (paper Section II-C).

The runtime server arbitrates fair access to the command/response bus and
keeps allocator state host-side so separate processes' allocations never
conflict.
"""

import numpy as np

from repro.core import BeethovenBuild
from repro.baselines.delay_core import delay_config
from repro.kernels.vecadd import vector_add_config
from repro.platforms import SimulationPlatform
from repro.runtime import FpgaHandle


def test_clients_get_disjoint_allocations():
    build = BeethovenBuild(vector_add_config(1), SimulationPlatform())
    handle = FpgaHandle(build.design)
    a = handle.new_client("proc-a")
    b = handle.new_client("proc-b")
    ptrs = [a.malloc(4096) for _ in range(4)] + [b.malloc(4096) for _ in range(4)]
    ranges = sorted((p.fpga_addr, p.fpga_addr + p.size) for p in ptrs)
    for (s0, e0), (s1, e1) in zip(ranges, ranges[1:]):
        assert e0 <= s1  # no overlap across clients


def test_both_clients_complete_work():
    build = BeethovenBuild(vector_add_config(2), SimulationPlatform())
    handle = FpgaHandle(build.design)
    clients = [handle.new_client(f"p{i}") for i in range(2)]
    futures, mems = [], []
    for i, client in enumerate(clients):
        mem = client.malloc(256)
        mem.write(np.zeros(64, dtype=np.uint32).tobytes())
        client.copy_to_fpga(mem)
        futures.append(
            client.call("MyAcceleratorSystem", "my_accel", i, addend=i + 1,
                        vec_addr=mem.fpga_addr, n_eles=64)
        )
        mems.append(mem)
    for fut in futures:
        fut.get()
    for i, (client, mem) in enumerate(zip(clients, mems)):
        client.copy_from_fpga(mem)
        assert (np.frombuffer(mem.read(), dtype=np.uint32) == i + 1).all()


def test_round_robin_lock_wait_fairness():
    """Three clients bursting identical work see equal treatment.

    Regression for the round-robin arbiter: with every client keeping a
    backlog queued, a fair rotation delays each client at most one command's
    service time (lock + 6 MMIO words) per intervening client, so the spread
    of worst-case lock waits is bounded by (n_clients - 1) service times.
    A skipped rotation would add a full n_clients * service jump for the
    wronged client and trip the bound.
    """
    n_clients, burst = 3, 6
    build = BeethovenBuild(delay_config(n_clients, latency_cycles=40), SimulationPlatform())
    handle = FpgaHandle(build.design)
    clients = [handle.new_client(f"p{i}") for i in range(n_clients)]
    futures = []
    for j in range(burst):
        for i, client in enumerate(clients):
            futures.append(client.call("Delay", "run", i, job=j))
    for fut in futures:
        fut.get(max_cycles=1_000_000)
    host = build.design.platform.host
    service = host.command_lock_cycles + 6 * host.mmio_word_cycles
    waits = handle.server.client_lock_waits
    assert sorted(waits) == [c.client_id for c in clients]
    assert all(len(w) == burst for w in waits.values())
    worst = {client: max(w) for client, w in waits.items()}
    spread = max(worst.values()) - min(worst.values())
    assert spread <= (n_clients - 1) * service, (
        f"unfair arbitration: worst lock waits {worst} spread {spread} "
        f"> {n_clients - 1} service times ({service} each)"
    )
    # Every client's backlog drains at the same cadence: the wait growth per
    # command is identical across clients under a fair rotation.
    cadences = {
        client: {b - a for a, b in zip(w, w[1:])} for client, w in waits.items()
    }
    assert len(set(frozenset(c) for c in cadences.values())) == 1, cadences


def test_round_robin_prevents_starvation():
    """A client bursting many commands must not starve the other one."""
    build = BeethovenBuild(delay_config(2, latency_cycles=20), SimulationPlatform())
    handle = FpgaHandle(build.design)
    greedy = handle.new_client("greedy")
    polite = handle.new_client("polite")
    greedy_futs = [greedy.call("Delay", "run", 0, job=j) for j in range(10)]
    polite_fut = polite.call("Delay", "run", 1, job=0)
    # The polite client's single command completes long before the greedy
    # client's backlog does (round-robin slots it in second, not eleventh).
    polite_fut.get()
    pending = sum(1 for f in greedy_futs if not f.done)
    assert pending >= 5
    for f in greedy_futs:
        f.get()
    assert handle.server.idle()
