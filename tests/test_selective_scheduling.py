"""Property tests for selective-scheduling correctness.

Randomised pipelines of producers, relay stages and sinks are run twice —
naive stepping and selective scheduling — and every observable must be
bit-identical: per-component event logs (which include the *cycle* each
event happened on), channel statistics including the sparse-commit
occupancy integrals, and the final simulation cycle.

All randomness is drawn up front from seeded generators so the two runs
construct identical workloads; service delays are pure functions of the item
value so the schedules cannot diverge through hidden state.
"""

import random

import pytest

from repro.sim import NEVER, ChannelQueue, Component, Simulator


def _service_delay(value: int) -> int:
    """Deterministic pseudo-random per-item service time, 0..6 cycles."""
    return (value * 2654435761) % 7


class ScheduledProducer(Component):
    """Pushes a precomputed (cycle, value) schedule, honouring backpressure.

    The ``next_event`` hint points at the next scheduled push; when the
    output is full the producer stalls and relies on the freeing pop waking
    it (the output channel is in its wake set via ``channels``).
    """

    def __init__(self, name, out, schedule):
        super().__init__(name)
        self.out = out
        self.schedule = sorted(schedule)  # [(cycle, value), ...]
        self._next = 0
        self.log = []

    def channels(self):
        return [self.out]

    def tick(self, cycle):
        while (
            self._next < len(self.schedule)
            and self.schedule[self._next][0] <= cycle
            and self.out.can_push()
        ):
            value = self.schedule[self._next][1]
            self.out.push(value)
            self.log.append((cycle, "push", value))
            self._next += 1

    def next_event(self, cycle):
        if self._next >= len(self.schedule):
            return NEVER
        due = self.schedule[self._next][0]
        if due > cycle:
            return due
        # An overdue item with free output space must wake immediately; if
        # the output is full the freeing pop provides the wake (claiming
        # NEVER while the output has room would break the hint contract —
        # the committed drain since our last tick makes the next tick a
        # push, not a no-op).
        return NEVER if not self.out.can_push() else cycle

    def done(self):
        return self._next >= len(self.schedule)


class RelayStage(Component):
    """Pops an item, services it for ``_service_delay(value)`` cycles, then
    pushes it downstream (blocking on backpressure)."""

    def __init__(self, name, inp, out):
        super().__init__(name)
        self.inp = inp
        self.out = out
        self._item = None
        self._ready_at = 0
        self.log = []

    def channels(self):
        return [self.inp, self.out]

    def tick(self, cycle):
        if self._item is not None and cycle >= self._ready_at:
            if self.out.can_push():
                self.out.push(self._item)
                self.log.append((cycle, "emit", self._item))
                self._item = None
            else:
                return  # blocked; wake on downstream pop
        if self._item is None and self.inp.can_pop():
            self._item = self.inp.pop()
            self._ready_at = cycle + _service_delay(self._item)
            self.log.append((cycle, "take", self._item))

    def next_event(self, cycle):
        if self._item is not None:
            return max(self._ready_at, cycle)
        return NEVER

    def done(self):
        return self._item is None


class Sink(Component):
    def __init__(self, name, inp):
        super().__init__(name)
        self.inp = inp
        self.log = []

    def channels(self):
        return [self.inp]

    def tick(self, cycle):
        while self.inp.can_pop():
            self.log.append((cycle, "sink", self.inp.pop()))

    def next_event(self, cycle):
        return NEVER


def _build_pipeline(seed, scheduling):
    """A randomised fan-out of relay chains sharing one producer schedule."""
    rng = random.Random(seed)
    n_chains = rng.randint(1, 4)
    sim = Simulator(scheduling=scheduling)
    chains = []
    for c in range(n_chains):
        depth = rng.randint(1, 3)
        n_items = rng.randint(5, 40)
        # Bursty schedule: clusters of same-cycle pushes + long gaps, so
        # both backpressure and long-idle windows occur.
        schedule, cycle = [], 0
        for _ in range(n_items):
            cycle += rng.choice([0, 0, 1, 2, 3, rng.randint(20, 200)])
            schedule.append((cycle, rng.randrange(1, 1 << 16)))
        n_stages = rng.randint(1, 3)
        links = [
            ChannelQueue(rng.randint(1, 3), f"c{c}.l{i}")
            for i in range(n_stages + 1)
        ]
        prod = sim.add(ScheduledProducer(f"c{c}.prod", links[0], schedule))
        stages = [
            sim.add(RelayStage(f"c{c}.s{i}", links[i], links[i + 1]))
            for i in range(n_stages)
        ]
        sink = sim.add(Sink(f"c{c}.sink", links[-1]))
        for link in links:
            sim.register_channel(link)
        chains.append((prod, stages, sink, n_items))
    return sim, chains


def _drained(chains):
    def pred():
        return all(
            prod.done()
            and all(s.done() for s in stages)
            and len(sink.log) == n_items
            for prod, stages, sink, n_items in chains
        )

    return pred


def _observe(sim, chains):
    logs = {}
    for prod, stages, sink, _ in chains:
        for comp in [prod, *stages, sink]:
            logs[comp.name] = list(comp.log)
    stats = [
        (c.name, c.total_pushed, c.total_popped, c.occupancy_accum,
         c.cycles_observed, c.mean_occupancy)
        for c in sim._channels
    ]
    return {"cycle": sim.cycle, "logs": logs, "channel_stats": stats}


def _run(seed, scheduling, settle=500):
    sim, chains = _build_pipeline(seed, scheduling)
    sim.run(200_000, until=_drained(chains))
    # Run past the drain point too: idle-tail statistics (occupancy
    # integrals over empty channels) must also match under sparse commit.
    sim.run(settle)
    return _observe(sim, chains), sim


@pytest.mark.parametrize("seed", range(12))
def test_selective_matches_naive(seed):
    naive, _ = _run(seed, "naive")
    selective, sel_sim = _run(seed, "selective")
    assert selective == naive
    # Non-vacuous: selective must have elided ticks somewhere.
    total_ticks = sum(
        sel_sim.component_ticks(c) for c in sel_sim._components
    )
    assert total_ticks < sel_sim.cycle * len(sel_sim._components)


@pytest.mark.parametrize("seed", range(12))
def test_fast_forward_matches_naive(seed):
    """The PR 1 whole-design scheduler stays correct on the same traffic."""
    naive, _ = _run(seed, "naive")
    fast, _ = _run(seed, "fast_forward")
    assert fast == naive


def test_request_wake_same_cycle_or_next():
    """request_wake from an earlier-indexed component ticks the target this
    cycle (matching naive order); from a later-indexed one, next cycle."""

    class Poker(Component):
        def __init__(self, name, target, poke_cycle):
            super().__init__(name)
            self.target = target
            self.poke_cycle = poke_cycle

        def tick(self, cycle):
            if cycle == self.poke_cycle:
                self.target.value = cycle  # direct mutation, no channel
                self.target.request_wake()

        def next_event(self, cycle):
            return self.poke_cycle if self.poke_cycle >= cycle else NEVER

    class Watcher(Component):
        def __init__(self, name):
            super().__init__(name)
            self.value = None
            self.seen = []

        def tick(self, cycle):
            if self.value is not None:
                self.seen.append((cycle, self.value))
                self.value = None

        def next_event(self, cycle):
            return NEVER

    def run_order(poker_first):
        sim = Simulator(scheduling="selective")
        watcher = Watcher("watcher")
        poker = Poker("poker", watcher, 10)
        if poker_first:
            sim.add(poker), sim.add(watcher)
        else:
            sim.add(watcher), sim.add(poker)
        sim.run(20)
        return watcher.seen

    # Poker before watcher: naive would deliver the same cycle.
    assert run_order(True) == [(10, 10)]
    # Watcher before poker: naive delivers next cycle.
    assert run_order(False) == [(11, 10)]


def test_sparse_commit_occupancy_integral():
    """A channel left non-empty across a long idle gap accrues occupancy for
    every elided cycle (the anchor lag-credit path)."""
    sim = Simulator(scheduling="selective")
    chan = ChannelQueue(4, "gap")
    prod = ScheduledProducer("prod", chan, [(0, 7), (1, 9)])
    sink_chan = ChannelQueue(4, "out")
    stage = RelayStage("stage", chan, sink_chan)
    sink = Sink("sink", sink_chan)
    for c in (prod, stage, sink):
        sim.add(c)
    sim.register_channel(chan)
    sim.register_channel(sink_chan)
    sim.run(until=lambda: len(sink.log) == 2, max_cycles=1000)
    sim.run(10_000)  # long fully-idle tail
    for c in (chan, sink_chan):
        assert c.cycles_observed == sim.cycle
        # Empty throughout the tail: integral fixed, mean decays.
        assert c.total_pushed == c.total_popped == 2
