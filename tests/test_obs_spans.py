"""Tests for span tracing: the Tracer span store, ring-buffer caps, the
event-pairing helper, and the end-to-end CommandSpanTracker lifecycle."""

import pytest

from repro.obs.spans import CommandSpanTracker
from repro.sim.trace import Tracer


# ---------------------------------------------------------------------------
# Tracer.spans() pairing (regression for the reused-payload-key bug).
# ---------------------------------------------------------------------------


def test_spans_pairs_reused_keys_with_per_key_stack():
    """A recycled payload key (e.g. a reused AXI tag) must yield every
    interval; each end pairs with the most recent unmatched start."""
    tracer = Tracer()
    tracer.record(1, "ch", "start", "tag0")
    tracer.record(5, "ch", "end", "tag0")
    tracer.record(10, "ch", "start", "tag0")
    tracer.record(14, "ch", "end", "tag0")
    assert tracer.spans("ch", "start", "end") == [
        ("tag0", 1, 5),
        ("tag0", 10, 14),
    ]


def test_spans_nested_same_key_pairs_innermost_first():
    tracer = Tracer()
    tracer.record(1, "ch", "start", "k")
    tracer.record(2, "ch", "start", "k")
    tracer.record(3, "ch", "end", "k")
    tracer.record(8, "ch", "end", "k")
    assert tracer.spans("ch", "start", "end") == [("k", 2, 3), ("k", 1, 8)]


def test_spans_ignores_unmatched_ends_and_other_channels():
    tracer = Tracer()
    tracer.record(1, "ch", "end", "orphan")
    tracer.record(2, "other", "start", "k")
    tracer.record(3, "ch", "start", "k")
    tracer.record(4, "ch", "end", "k")
    assert tracer.spans("ch", "start", "end") == [("k", 3, 4)]


# ---------------------------------------------------------------------------
# Span records and the ring-buffer cap.
# ---------------------------------------------------------------------------


def test_begin_end_span_roundtrip():
    tracer = Tracer()
    root = tracer.begin_span(10, "core0", "cmd:memcpy", client=2)
    child = tracer.begin_span(12, "core0", "execute", parent=root)
    assert tracer.closed_spans() == []
    tracer.end_span(child, 20)
    tracer.end_span(root, 25, status="ok")
    closed = tracer.closed_spans("core0")
    assert [s.name for s in closed] == ["cmd:memcpy", "execute"]
    root_span = closed[0]
    assert root_span.duration == 15
    assert root_span.args == {"client": 2, "status": "ok"}
    assert [s.span_id for s in tracer.children_of(root)] == [child]


def test_disabled_tracer_returns_span_id_zero():
    tracer = Tracer(enabled=False)
    sid = tracer.begin_span(1, "t", "n")
    assert sid == 0
    tracer.end_span(sid, 2)  # no-op, must not raise
    assert tracer.closed_spans() == []


def test_double_end_is_tolerated():
    tracer = Tracer()
    sid = tracer.begin_span(1, "t", "n")
    tracer.end_span(sid, 5)
    tracer.end_span(sid, 9)  # ignored
    assert tracer.closed_spans()[0].end_cycle == 5


def test_ring_buffer_caps_events_and_counts_drops():
    tracer = Tracer(max_events=3)
    for i in range(5):
        tracer.record(i, "ch", "e", i)
    assert len(tracer.events) == 3
    assert tracer.dropped_events == 2
    assert [e.payload for e in tracer.events] == [2, 3, 4]


def test_ring_buffer_caps_spans_and_counts_drops():
    tracer = Tracer(max_events=2)
    sids = [tracer.begin_span(i, "t", f"s{i}") for i in range(3)]
    assert tracer.dropped_spans == 1
    # The evicted span's id no longer resolves; ending it is a no-op.
    tracer.end_span(sids[0], 10)
    tracer.end_span(sids[1], 10)
    tracer.end_span(sids[2], 10)
    assert [s.name for s in tracer.closed_spans()] == ["s1", "s2"]


def test_max_events_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(max_events=0)


# ---------------------------------------------------------------------------
# CommandSpanTracker lifecycle.
# ---------------------------------------------------------------------------


KEY = (0, 0)


def _run_one_command(tracker, cycle0=100, label="memcpy"):
    sid = tracker.command_submitted(cycle0, KEY, client=1, label=label)
    tracker.dispatch_begin(cycle0 + 2, sid)
    tracker.dispatch_end(cycle0 + 8, sid, KEY)
    tracker.delivered(cycle0 + 12, KEY)
    axi = tracker.axi_begin(cycle0 + 15, KEY, "Memcpy.core0.reader", "read", 0x1000, 4)
    tracker.axi_end(axi, cycle0 + 30)
    tracker.response_sent(cycle0 + 40, KEY)
    tracker.command_completed(cycle0 + 45, sid)
    return sid


def test_command_lifecycle_produces_span_tree():
    tracer = Tracer()
    tracker = CommandSpanTracker(tracer)
    tracker.set_track(KEY, "Memcpy/core0")
    sid = _run_one_command(tracker)
    assert tracker.commands_tracked == 1
    root = next(s for s in tracer.closed_spans() if s.span_id == sid)
    assert root.name == "cmd:memcpy"
    assert root.track == "Memcpy/core0"
    assert (root.begin_cycle, root.end_cycle) == (100, 145)
    children = {s.name: s for s in tracer.children_of(sid)}
    assert set(children) == {"dispatch", "execute", "axi:read"}
    assert (children["dispatch"].begin_cycle, children["dispatch"].end_cycle) == (102, 108)
    assert (children["execute"].begin_cycle, children["execute"].end_cycle) == (112, 140)
    burst = children["axi:read"]
    assert burst.track == "Memcpy/core0/reader"
    assert burst.args["addr"] == 0x1000 and burst.args["beats"] == 4
    # Every child interval sits inside the root interval.
    for child in children.values():
        assert root.begin_cycle <= child.begin_cycle
        assert child.end_cycle <= root.end_cycle


def test_fifo_matching_with_two_commands_in_flight():
    """Two commands queued on one core: delivery/response matching follows
    the in-order FIFO discipline, so spans never cross over."""
    tracer = Tracer()
    tracker = CommandSpanTracker(tracer)
    a = tracker.command_submitted(0, KEY, label="a")
    b = tracker.command_submitted(1, KEY, label="b")
    tracker.dispatch_begin(2, a)
    tracker.dispatch_end(4, a, KEY)
    tracker.dispatch_begin(5, b)
    tracker.dispatch_end(7, b, KEY)
    assert tracker.delivered(10, KEY) == a
    assert tracker.current_command(KEY) == a
    assert tracker.delivered(11, KEY) == b
    # Oldest executing command owns the memory ports.
    assert tracker.current_command(KEY) == a
    assert tracker.response_sent(20, KEY) == a
    assert tracker.current_command(KEY) == b
    assert tracker.response_sent(25, KEY) == b
    assert tracker.current_command(KEY) is None


def test_unmatched_delivery_and_response_are_none():
    tracker = CommandSpanTracker(Tracer())
    assert tracker.delivered(1, KEY) is None
    assert tracker.response_sent(2, KEY) is None
    assert tracker.current_command(KEY) is None


def test_disabled_tracker_is_all_noops():
    tracker = CommandSpanTracker(Tracer(enabled=False))
    assert not tracker.enabled
    sid = _run_one_command(tracker)
    assert sid == 0
    assert tracker.commands_tracked == 0


def test_axi_burst_without_executing_command_has_no_parent():
    tracer = Tracer()
    tracker = CommandSpanTracker(tracer)
    sid = tracker.axi_begin(5, KEY, "init.reader", "read", 0x0, 1)
    tracker.axi_end(sid, 9)
    span = tracer.closed_spans()[0]
    assert span.parent is None
    assert span.track == "init/reader"


def test_default_track_name():
    tracker = CommandSpanTracker(Tracer())
    assert tracker.track_for((3, 7)) == "sys3/core7"
