"""Tests for the baseline models: memcpy masters, rooflines, delay cores."""

import pytest

from repro.baselines.delay_core import delay_config
from repro.baselines.memcpy_experiment import (
    run_beethoven_memcpy,
    run_hdl_memcpy,
    run_hls_memcpy,
    timeline,
)
from repro.baselines.roofline import (
    AsicA3Baseline,
    CPU_I7_12700K,
    GPU_RTX_3090,
    attention_flops,
    measure_numpy_attention,
)
from repro.core import BeethovenBuild
from repro.platforms import SimulationPlatform
from repro.runtime import FpgaHandle

SIZE = 65536


def test_hdl_memcpy_functional():
    result = run_hdl_memcpy(SIZE)
    assert result.verified
    # One outstanding transaction per direction, single AXI ID.
    ids = {r["id"] for r in timeline(result)}
    assert ids == {0}


def test_hls_memcpy_functional_and_single_id():
    result = run_hls_memcpy(SIZE)
    assert result.verified
    rows = timeline(result)
    assert {r["id"] for r in rows} == {0}
    assert all(r["beats"] <= 16 for r in rows)


def test_beethoven_memcpy_functional():
    result = run_beethoven_memcpy(SIZE, tlp=True)
    assert result.verified
    read_ids = {r["id"] for r in timeline(result) if r["kind"] == "read"}
    assert len(read_ids) >= 4


def test_no_tlp_uses_one_read_id():
    result = run_beethoven_memcpy(SIZE, tlp=False)
    read_ids = {r["id"] for r in timeline(result) if r["kind"] == "read"}
    assert len(read_ids) == 1


def test_memcpy_shape_holds_at_64k():
    hls = run_hls_memcpy(SIZE)
    beethoven = run_beethoven_memcpy(SIZE, tlp=True)
    hdl = run_hdl_memcpy(SIZE)
    assert hls.gbps < beethoven.gbps
    assert abs(hdl.gbps - beethoven.gbps) / beethoven.gbps < 0.15


# ------------------------------------------------------------------ roofline
def test_attention_flops_scaling():
    assert attention_flops(64, 320) > attention_flops(64, 160)
    assert attention_flops(64, 320) == pytest.approx(4 * 320 * 64 + 5 * 320)


def test_roofline_anchors_match_paper():
    cpu = CPU_I7_12700K.ops_per_second(64, 320)
    gpu = GPU_RTX_3090.ops_per_second(64, 320)
    assert abs(cpu - 84.8e3) / 84.8e3 < 0.05
    assert abs(gpu - 5.0e6) / 5.0e6 < 0.05
    assert abs(CPU_I7_12700K.energy_per_op_uj(64, 320) - 885) / 885 < 0.05
    assert abs(GPU_RTX_3090.energy_per_op_uj(64, 320) - 63.5) / 63.5 < 0.05


def test_asic_baseline():
    asic = AsicA3Baseline()
    assert asic.ops_per_second(320) == pytest.approx(1e9 / 340)


def test_local_numpy_measurement_runs():
    ops = measure_numpy_attention(16, 32, iterations=20)
    assert ops > 0


# ---------------------------------------------------------------- delay core
def test_delay_core_latency():
    build = BeethovenBuild(delay_config(1, latency_cycles=100), SimulationPlatform())
    handle = FpgaHandle(build.design)
    fut = handle.call("Delay", "run", 0, job=1)
    fut.get()
    assert fut.latency_cycles >= 100
    core = build.design.all_cores()[0].core
    assert core.jobs_done == 1


def test_delay_core_back_to_back():
    build = BeethovenBuild(delay_config(2, latency_cycles=50), SimulationPlatform())
    handle = FpgaHandle(build.design)
    futures = [handle.call("Delay", "run", c, job=j) for j in range(3) for c in range(2)]
    for fut in futures:
        fut.get()
    cores = [ec.core for ec in build.design.all_cores()]
    assert sum(c.jobs_done for c in cores) == 6
