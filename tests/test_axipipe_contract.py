"""AxiPipe edge cases the sharded-simulation cut contract relies on.

The partitioner (``repro.dist``) cuts designs only at fixed-latency
``AxiPipe`` delay lines.  Three properties make that sound:

* a zero-latency pipe offers no lookahead, so it must be rejected as a cut
  point (it may only ever live inside one partition);
* the split bridge halves replicate the pipe's same-cycle push/pop ordering
  exactly (one item per channel per cycle, flow-controlled drain);
* simulation windows compose: running ``N`` cycles as arbitrary ``run(n)``
  segments is bit-identical to one ``run(N)`` — which is what lets the
  supervisor chop time into slices at all.
"""

import random

import pytest

from repro.axi.types import ARReq, AxiParams, AxiPort
from repro.dist import BridgeEgress, BridgeIngress, DistConfig, DistError
from repro.noc.axi_node import AxiPipe
from repro.sim import NEVER, ChannelQueue, Component, Simulator

PARAMS = AxiParams(beat_bytes=64, id_bits=6, addr_bits=34, max_burst_beats=64)


# --------------------------------------------------------------- latency = 0
def test_bridge_egress_rejects_zero_latency():
    src = ChannelQueue(4, "src")
    with pytest.raises(ValueError, match="latency >= 1"):
        BridgeEgress("mem:x:fwd", "eg", 0, [("ar", src)])


def test_zero_latency_crossing_rejected_as_cut_point():
    """A device whose SLR crossings are zero-latency cannot be sharded."""
    from repro.baselines.spin_core import spin_config
    from repro.core.build import BeethovenBuild
    from repro.platforms import multi_die_platform

    with pytest.raises(DistError, match="latency"):
        BeethovenBuild(
            spin_config(4),
            multi_die_platform(2, slr_crossing_latency=0),
            distributed=DistConfig(n_workers=2),
        )


def test_zero_latency_pipe_still_fine_unsharded():
    """AxiPipe itself accepts latency=0 — only the *cut* rejects it."""
    up = AxiPort(PARAMS, "up")
    down = AxiPort(PARAMS, "down")
    AxiPipe(up, down, latency=0)


# ------------------------------------------- split bridge vs stock AxiPipe
class _Driver(Component):
    """Pushes a scripted schedule of AR requests into a channel."""

    def __init__(self, chan, schedule):
        super().__init__("driver")
        self.chan = chan
        self.schedule = sorted(schedule, key=lambda entry: entry[0])
        self._i = 0

    def tick(self, cycle):
        while (
            self._i < len(self.schedule)
            and self.schedule[self._i][0] <= cycle
            and self.chan.can_push()
        ):
            _c, req = self.schedule[self._i]
            self.chan.push(req)
            self._i += 1

    def next_event(self, cycle):
        if self._i < len(self.schedule):
            return max(cycle, self.schedule[self._i][0])
        return NEVER


class _Sink(Component):
    """Pops from a channel at a scripted per-cycle rate, logging (cycle, id)."""

    def __init__(self, chan, stall_cycles=frozenset()):
        super().__init__("sink")
        self.chan = chan
        self.stall_cycles = stall_cycles
        self.log = []

    def tick(self, cycle):
        if cycle in self.stall_cycles:
            return
        if self.chan.can_pop():
            self.log.append((cycle, self.chan.pop().axi_id))

    def next_event(self, cycle):
        return cycle  # always-on consumer; simplest correct hint


def _run_pipe(schedule, stalls, latency=3, cycles=120):
    """Stock AxiPipe: driver -> up.ar -> pipe -> down.ar -> sink."""
    sim = Simulator()
    up = AxiPort(PARAMS, "up")
    down = AxiPort(PARAMS, "down")
    pipe = AxiPipe(up, down, latency=latency)
    driver = _Driver(up.ar, schedule)
    sink = _Sink(down.ar, stalls)
    for comp in (driver, pipe, sink):
        sim.add(comp)
    for chan in list(up.channels()) + list(down.channels()):
        sim.register_channel(chan)
    sim.run(cycles)
    return sink.log


def _run_bridge(schedule, stalls, latency=3, cycles=120):
    """Split-bridge halves on local transport over the same traffic."""
    sim = Simulator()
    src = ChannelQueue(4, "up.ar")
    dst = ChannelQueue(4, "down.ar")
    egress = BridgeEgress("mem:t:fwd", "eg", latency, [("ar", src)])
    ingress = BridgeIngress(
        "mem:t:fwd", "ing", [("ar", lambda _c, item: dst.push(item), dst)]
    )
    egress.peer = ingress
    driver = _Driver(src, schedule)
    sink = _Sink(dst, stalls)
    for comp in (driver, egress, ingress, sink):
        sim.add(comp)
    for chan in (src, dst):
        sim.register_channel(chan)
    sim.run(cycles)
    return sink.log


def test_split_bridge_matches_stock_pipe_delivery():
    """Same traffic, same stalls: split halves deliver at identical cycles.

    The schedule includes same-cycle bursts (several items maturing back to
    back) and sink stalls that force the flow-control guard to hold items —
    both orderings must match the stock pipe bit-for-bit.
    """
    rng = random.Random(7)
    schedule = [
        (rng.randrange(0, 40), ARReq(axi_id=i % 4, addr=64 * i, length=1))
        for i in range(30)
    ]
    stalls = frozenset(rng.randrange(0, 80) for _ in range(25))
    assert _run_pipe(schedule, stalls) == _run_bridge(schedule, stalls)


def test_bridge_pops_at_most_one_item_per_channel_per_cycle():
    sim = Simulator()
    src = ChannelQueue(4, "src")
    dst = ChannelQueue(4, "dst")
    egress = BridgeEgress("mem:t:fwd", "eg", 2, [("ar", src)])
    ingress = BridgeIngress(
        "mem:t:fwd", "ing", [("ar", lambda _c, item: dst.push(item), dst)]
    )
    egress.peer = ingress
    sim.add(egress)
    sim.add(ingress)
    sim.register_channel(src)
    sim.register_channel(dst)
    for i in range(3):
        src.push(ARReq(axi_id=i, addr=0, length=1))
    sim.run(3)
    # The three items become visible at cycle 1 and drain one per cycle
    # (the stock pipe's ingest rate), so cycles 1 and 2 move exactly two
    # across; with latency 2 neither has matured out of the delay line yet.
    assert egress.items_sent == 2
    assert ingress.in_flight() == 2


# ------------------------------------------------------- slice composition
def _drive(sim_run, latency=4, total=160, seed=11, scheduling=None):
    """Build the pipe micro-system and advance it via ``sim_run(sim, total)``."""
    rng = random.Random(seed)
    schedule = [
        (rng.randrange(0, total - 40), ARReq(axi_id=i % 8, addr=64 * i, length=1))
        for i in range(60)
    ]
    stalls = frozenset(rng.randrange(0, total) for _ in range(40))
    sim = Simulator(scheduling=scheduling)
    up = AxiPort(PARAMS, "up")
    down = AxiPort(PARAMS, "down")
    pipe = AxiPipe(up, down, latency=latency)
    driver = _Driver(up.ar, schedule)
    sink = _Sink(down.ar, stalls)
    for comp in (driver, pipe, sink):
        sim.add(comp)
    for chan in list(up.channels()) + list(down.channels()):
        sim.register_channel(chan)
    sim_run(sim, total)
    return sink.log, sim.cycle


@pytest.mark.parametrize("scheduling", ["naive", "selective", "compiled"])
def test_sliced_runs_compose_bit_identically(scheduling):
    """Property: any slicing of run(N) into run(n) segments is bit-identical.

    This is the kernel-level fact the conservative supervisor builds on: a
    slice barrier is just an early ``run()`` return, never an observable
    event inside the model.
    """
    def one_shot(sim, total):
        sim.run(total)

    rng = random.Random(0xC0FFEE)

    def sliced(sim, total):
        done = 0
        while done < total:
            width = min(rng.randrange(1, 9), total - done)
            sim.run_slice(width)
            done += width

    ref_log, ref_cycle = _drive(one_shot, scheduling=scheduling)
    for trial in range(3):
        log, cycle = _drive(sliced, scheduling=scheduling)
        assert log == ref_log
        assert cycle == ref_cycle
