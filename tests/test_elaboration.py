"""Elaboration internals: reports, networks, HDL annotation consistency."""

import pytest

from repro.core import BeethovenBuild, BuildMode
from repro.fpga.device import ResourceVector
from repro.kernels.attention import a3_config
from repro.kernels.vecadd import vector_add_config
from repro.platforms import AWSF1Platform, SimulationPlatform
from repro.sim import TraceEvent, Tracer


def test_report_totals_are_sum_of_parts():
    build = BeethovenBuild(vector_add_config(3), AWSF1Platform())
    rep = build.resource_report
    core_sum = ResourceVector()
    for vec in rep.per_core.values():
        core_sum = core_sum + vec
    expected = core_sum + rep.interconnect + rep.command
    assert rep.total.lut == pytest.approx(expected.lut)
    assert rep.total.bram == pytest.approx(expected.bram)


def test_per_core_breakdown_sums_to_core():
    build = BeethovenBuild(vector_add_config(1), AWSF1Platform())
    rep = build.resource_report
    (path,) = rep.per_core
    total = ResourceVector()
    for vec in rep.per_core_breakdown[path].values():
        total = total + vec
    assert rep.per_core[path].lut == pytest.approx(total.lut)


def test_network_stats_match_design_size():
    build = BeethovenBuild(a3_config(6), AWSF1Platform())
    net = build.design.network
    assert build.design.n_memory_interfaces == 24  # 4 per core
    assert net.n_nodes >= 3
    assert net.max_fanout <= build.platform.tree_config.fanout


def test_memories_annotated_after_mapping():
    build = BeethovenBuild(a3_config(2), AWSF1Platform())
    for ecore in build.design.all_cores():
        for _name, mem in ecore.memories:
            assert mem.cell_mapping in ("BRAM", "URAM", "LUTRAM")


def test_hdl_tree_reflects_placement():
    build = BeethovenBuild(a3_config(4), AWSF1Platform())
    top = build.hdl_top()
    slrs = [
        mod.attrs["slr"]
        for mod in top.walk()
        if mod.name.startswith("core_") and "slr" in mod.attrs
    ]
    assert len(slrs) == 4
    assert set(slrs) <= {0, 1, 2}


def test_single_die_platform_skips_constraints():
    build = BeethovenBuild(vector_add_config(1), SimulationPlatform())
    # SimulationPlatform carries the 3-SLR VU9P; use an ASIC target for the
    # no-constraints path instead.
    from repro.platforms import Asap7Platform

    asic = BeethovenBuild(vector_add_config(1), Asap7Platform())
    assert "no placement constraints" in asic.emit_constraints()


def test_synthesis_mode_rejects_oversize_design():
    from repro.core import InfeasibleDesignError

    with pytest.raises(InfeasibleDesignError):
        BeethovenBuild(a3_config(40), AWSF1Platform(), BuildMode.Synthesis)


def test_tracer_spans_pairing():
    tracer = Tracer()
    tracer.record(5, "ch", "start", "a")
    tracer.record(7, "ch", "start", "b")
    tracer.record(9, "ch", "end", "a")
    tracer.record(12, "ch", "end", "b")
    spans = tracer.spans("ch", "start", "end")
    assert ("a", 5, 9) in spans and ("b", 7, 12) in spans


def test_tracer_filtering_and_disable():
    tracer = Tracer()
    tracer.record(1, "x", "e")
    tracer.record(2, "y", "e")
    assert len(tracer.filter(channel="x")) == 1
    tracer.enabled = False
    tracer.record(3, "x", "e")
    assert len(tracer.filter(channel="x")) == 1
    tracer.clear()
    assert not tracer.events


def test_trace_event_is_frozen():
    event = TraceEvent(1, "c", "e")
    with pytest.raises(AttributeError):
        event.cycle = 2
