"""Unit and integration tests for Reader, Writer, Scratchpad and Memory."""

import pytest

from repro.axi import AxiParams
from repro.memory import (
    Memory,
    Reader,
    ReaderTuning,
    ReadRequest,
    Scratchpad,
    SpReq,
    split_into_bursts,
    Writer,
    WriterTuning,
    WriteRequest,
)
from repro.sim import Component, Simulator
from repro.testing import build_memory_testbench

PARAMS = AxiParams()


class ReaderDriver(Component):
    """Pushes one read request and collects the data stream."""

    def __init__(self, reader, addr, length):
        super().__init__("rdrv")
        self.reader = reader
        self.req = ReadRequest(addr, length)
        self.sent = False
        self.received = bytearray()
        self.expect = length

    def tick(self, cycle):
        if not self.sent and self.reader.request.can_push():
            self.reader.request.push(self.req)
            self.sent = True
        while self.reader.data.can_pop():
            self.received.extend(self.reader.data.pop())

    def done(self):
        return len(self.received) >= self.expect


class WriterDriver(Component):
    """Feeds a writer with data chunks and waits for completion."""

    def __init__(self, writer, addr, payload):
        super().__init__("wdrv")
        self.writer = writer
        self.req = WriteRequest(addr, len(payload))
        self.payload = payload
        self.sent_req = False
        self.offset = 0
        self.finished = False

    def tick(self, cycle):
        if not self.sent_req and self.writer.request.can_push():
            self.writer.request.push(self.req)
            self.sent_req = True
        if self.sent_req and self.offset < len(self.payload) and self.writer.data.can_push():
            chunk = self.payload[self.offset : self.offset + self.writer.data_bytes]
            self.writer.data.push(chunk)
            self.offset += len(chunk)
        if self.writer.done.can_pop():
            self.writer.done.pop()
            self.finished = True

    def done(self):
        return self.finished


# --------------------------------------------------------------------- bursts
def test_split_simple():
    assert split_into_bursts(0, 4096, 64, 64) == [(0, 64, 4096)]


def test_split_respects_max_beats():
    segs = split_into_bursts(0, 4096, 64, 16)
    assert len(segs) == 4
    assert all(beats == 16 for _, beats, _ in segs)


def test_split_respects_4k_boundary():
    segs = split_into_bursts(4096 - 128, 256, 64, 64)
    assert segs == [(4096 - 128, 2, 128), (4096, 2, 128)]


def test_split_partial_tail():
    segs = split_into_bursts(0, 100, 64, 64)
    assert segs == [(0, 2, 100)]


def test_split_rejects_misaligned():
    with pytest.raises(ValueError):
        split_into_bursts(3, 64, 64, 64)


def test_split_rejects_empty():
    with pytest.raises(ValueError):
        split_into_bursts(0, 0, 64, 64)


# --------------------------------------------------------------------- reader
@pytest.mark.parametrize("data_bytes", [4, 16, 64])
def test_reader_streams_exact_data(data_bytes):
    reader = Reader("vec_in", data_bytes, PARAMS)
    tb = build_memory_testbench([reader.port])
    pattern = bytes((i * 7 + 3) % 256 for i in range(8192))
    tb.store.write(0x10000, pattern)
    drv = ReaderDriver(reader, 0x10000, 8192)
    tb.sim.add(reader)
    tb.sim.add(drv)
    tb.run(40000, until=drv.done)
    assert bytes(drv.received) == pattern


def test_reader_partial_tail_length():
    reader = Reader("vec_in", 4, PARAMS)
    tb = build_memory_testbench([reader.port])
    pattern = bytes(range(100))
    tb.store.write(0, pattern)
    drv = ReaderDriver(reader, 0, 100)
    tb.sim.add(reader)
    tb.sim.add(drv)
    tb.run(20000, until=drv.done)
    assert bytes(drv.received) == pattern


def test_reader_no_tlp_uses_single_id():
    reader = Reader("r", 64, PARAMS, ReaderTuning(n_axi_ids=1, max_in_flight=4))
    tb = build_memory_testbench([reader.port])
    drv = ReaderDriver(reader, 0, 16384)
    tb.sim.add(reader)
    tb.sim.add(drv)
    tb.run(40000, until=drv.done)
    ids = {r.axi_id for r in tb.monitor.completed("read")}
    assert len(ids) == 1


def test_reader_tlp_spreads_ids():
    reader = Reader("r", 64, PARAMS, ReaderTuning(n_axi_ids=4, max_in_flight=4))
    tb = build_memory_testbench([reader.port])
    drv = ReaderDriver(reader, 0, 16384)
    tb.sim.add(reader)
    tb.sim.add(drv)
    tb.run(40000, until=drv.done)
    ids = {r.axi_id for r in tb.monitor.completed("read")}
    assert len(ids) == 4


def test_reader_prefetch_buffer_bounds_inflight():
    tuning = ReaderTuning(max_txn_beats=16, buffer_bytes=2048, max_in_flight=8)
    reader = Reader("r", 64, PARAMS, tuning)
    tb = build_memory_testbench([reader.port])
    drv = ReaderDriver(reader, 0, 65536)
    tb.sim.add(reader)
    tb.sim.add(drv)
    tb.run(100000, until=drv.done)
    # 2048-byte buffer = at most 2 x 16-beat bursts reserved at once.
    assert reader._reserved_bytes == 0
    assert bytes(drv.received) == tb.store.read(0, 65536)


def test_reader_rejects_bad_width():
    with pytest.raises(ValueError):
        Reader("bad", 3, PARAMS)
    with pytest.raises(ValueError):
        Reader("bad", 128, PARAMS)


# --------------------------------------------------------------------- writer
@pytest.mark.parametrize("data_bytes", [4, 64])
def test_writer_stores_exact_data(data_bytes):
    writer = Writer("vec_out", data_bytes, PARAMS)
    tb = build_memory_testbench([writer.port])
    payload = bytes((i * 13 + 5) % 256 for i in range(8192))
    drv = WriterDriver(writer, 0x8000, payload)
    tb.sim.add(writer)
    tb.sim.add(drv)
    tb.run(60000, until=drv.done)
    assert tb.store.read(0x8000, len(payload)) == payload


def test_writer_partial_tail_strb():
    writer = Writer("w", 4, PARAMS)
    tb = build_memory_testbench([writer.port])
    tb.store.write(0x1000, b"\xee" * 128)
    payload = bytes(range(100))
    drv = WriterDriver(writer, 0x1000, payload)
    tb.sim.add(writer)
    tb.sim.add(drv)
    tb.run(20000, until=drv.done)
    assert tb.store.read(0x1000, 100) == payload
    # Bytes beyond the payload are untouched thanks to write strobes.
    assert tb.store.read(0x1000 + 100, 28) == b"\xee" * 28


def test_writer_no_tlp_single_id():
    writer = Writer("w", 64, PARAMS, WriterTuning(n_axi_ids=1))
    tb = build_memory_testbench([writer.port])
    drv = WriterDriver(writer, 0, b"\x55" * 16384)
    tb.sim.add(writer)
    tb.sim.add(drv)
    tb.run(60000, until=drv.done)
    ids = {r.axi_id for r in tb.monitor.completed("write")}
    assert len(ids) == 1


def test_reader_writer_memcpy_roundtrip():
    """The canonical microbenchmark: copy via a reader and a writer."""
    reader = Reader("in", 64, PARAMS)
    writer = Writer("out", 64, PARAMS)
    tb = build_memory_testbench([reader.port, writer.port])
    pattern = bytes((i * 31 + 7) % 256 for i in range(16384))
    tb.store.write(0, pattern)

    class CopyCore(Component):
        def __init__(self):
            super().__init__("copy")
            self.started = False
            self.finished = False

        def tick(self, cycle):
            if not self.started:
                reader.request.push(ReadRequest(0, 16384))
                writer.request.push(WriteRequest(0x100000, 16384))
                self.started = True
            if reader.data.can_pop() and writer.data.can_push():
                writer.data.push(reader.data.pop())
            if writer.done.can_pop():
                writer.done.pop()
                self.finished = True

    core = CopyCore()
    tb.sim.add(reader)
    tb.sim.add(writer)
    tb.sim.add(core)
    tb.run(100000, until=lambda: core.finished)
    assert tb.store.read(0x100000, 16384) == pattern


# ----------------------------------------------------------------- scratchpad
def test_memory_read_latency():
    mem = Memory(latency=3, data_width=32, n_rows=8)
    mem.write(0, 2, 0xDEADBEEF)
    mem.clock()
    mem.read(0, 2)
    for _ in range(2):
        mem.clock()
        assert mem.rdata(0) is None
    mem.clock()
    assert mem.rdata(0) == 0xDEADBEEF


def test_memory_width_masking():
    mem = Memory(latency=1, data_width=8, n_rows=4)
    mem.write(0, 0, 0x1FF)
    mem.clock()
    mem.read(0, 0)
    mem.clock()
    assert mem.rdata(0) == 0xFF


def test_memory_double_port_use_rejected():
    mem = Memory(latency=1, data_width=8, n_rows=4)
    mem.read(0, 0)
    with pytest.raises(RuntimeError):
        mem.read(0, 1)


def test_memory_row_bounds():
    mem = Memory(latency=1, data_width=8, n_rows=4)
    with pytest.raises(IndexError):
        mem.read(0, 4)


def test_scratchpad_init_from_memory():
    sp = Scratchpad("keys", data_width_bits=32, n_datas=64, axi_params=PARAMS)
    tb = build_memory_testbench([sp.reader.port])
    words = [(i * 2654435761) & 0xFFFFFFFF for i in range(64)]
    blob = b"".join(w.to_bytes(4, "little") for w in words)
    tb.store.write(0x3000, blob)

    class InitDriver(Component):
        def __init__(self):
            super().__init__("initdrv")
            self.sent = False
            self.ready = False

        def tick(self, cycle):
            if not self.sent:
                sp.init.push(ReadRequest(0x3000, 256))
                self.sent = True
            if sp.init_done.can_pop():
                sp.init_done.pop()
                self.ready = True

    drv = InitDriver()
    tb.sim.add(sp)
    tb.sim.add(sp.reader)
    tb.sim.add(drv)
    tb.run(20000, until=lambda: drv.ready)
    assert sp.mem._cells == words


def test_scratchpad_port_read_write():
    sp = Scratchpad("sp", 16, 32, PARAMS, with_init=False, latency=2)
    sim = Simulator()
    sim.add(sp)

    class PortDriver(Component):
        def __init__(self):
            super().__init__("pd")
            self.phase = 0
            self.result = None

        def tick(self, cycle):
            port = sp.ports[0]
            if self.phase == 0 and port.req.can_push():
                port.req.push(SpReq(row=5, write=True, wdata=0x1234))
                self.phase = 1
            elif self.phase == 1 and port.req.can_push():
                port.req.push(SpReq(row=5))
                self.phase = 2
            elif self.phase == 2 and port.resp.can_pop():
                self.result = port.resp.pop()
                self.phase = 3

    drv = sim.add(PortDriver())
    sim.run(100, until=lambda: drv.phase == 3)
    assert drv.result == 0x1234


def test_scratchpad_width_must_be_bytes():
    with pytest.raises(ValueError):
        Scratchpad("bad", 12, 16, PARAMS)
