"""Edge cases for the memory primitives: tiny transfers, queued requests."""

import pytest

from repro.axi import AxiParams
from repro.memory import (
    Reader,
    ReaderTuning,
    ReadRequest,
    Writer,
    WriteRequest,
)
from repro.sim import Component
from repro.testing import build_memory_testbench

PARAMS = AxiParams()


class MultiReadDriver(Component):
    """Issues several read requests back-to-back; data must concatenate in
    request order."""

    def __init__(self, reader, requests):
        super().__init__("mrd")
        self.reader = reader
        self.pending = list(requests)
        self.expect = sum(n for _a, n in requests)
        self.received = bytearray()

    def tick(self, cycle):
        if self.pending and self.reader.request.can_push():
            addr, n = self.pending.pop(0)
            self.reader.request.push(ReadRequest(addr, n))
        while self.reader.data.can_pop():
            self.received.extend(self.reader.data.pop())

    def done(self):
        return len(self.received) >= self.expect


def test_reader_single_byte():
    reader = Reader("r", 1, PARAMS)
    tb = build_memory_testbench([reader.port])
    tb.store.write(64, b"\x5a")
    drv = MultiReadDriver(reader, [(64, 1)])
    tb.sim.add(reader)
    tb.sim.add(drv)
    tb.run(5000, until=drv.done)
    assert bytes(drv.received) == b"\x5a"


def test_reader_queued_requests_keep_order():
    reader = Reader("r", 16, PARAMS)
    tb = build_memory_testbench([reader.port])
    tb.store.write(0, b"A" * 256)
    tb.store.write(0x10000, b"B" * 256)
    tb.store.write(0x20000, b"C" * 64)
    drv = MultiReadDriver(reader, [(0, 256), (0x10000, 256), (0x20000, 64)])
    tb.sim.add(reader)
    tb.sim.add(drv)
    tb.run(20000, until=drv.done)
    assert bytes(drv.received) == b"A" * 256 + b"B" * 256 + b"C" * 64


def test_writer_single_chunk():
    writer = Writer("w", 4, PARAMS)
    tb = build_memory_testbench([writer.port])

    class D(Component):
        def __init__(self):
            super().__init__("d")
            self.state = 0

        def tick(self, cycle):
            if self.state == 0:
                writer.request.push(WriteRequest(128, 4))
                self.state = 1
            elif self.state == 1 and writer.data.can_push():
                writer.data.push(b"\x01\x02\x03\x04")
                self.state = 2
            elif writer.done.can_pop():
                writer.done.pop()
                self.state = 3

    d = D()
    tb.sim.add(writer)
    tb.sim.add(d)
    tb.run(5000, until=lambda: d.state == 3)
    assert tb.store.read(128, 4) == b"\x01\x02\x03\x04"


def test_writer_back_to_back_requests():
    writer = Writer("w", 16, PARAMS)
    tb = build_memory_testbench([writer.port])
    payloads = [bytes([i + 1] * 128) for i in range(3)]

    class D(Component):
        def __init__(self):
            super().__init__("d")
            self.req_i = 0
            self.data_i = 0
            self.off = 0
            self.done_count = 0

        def tick(self, cycle):
            if self.req_i < 3 and writer.request.can_push():
                writer.request.push(WriteRequest(self.req_i * 0x1000, 128))
                self.req_i += 1
            if self.data_i < 3 and writer.data.can_push():
                chunk = payloads[self.data_i][self.off : self.off + 16]
                writer.data.push(chunk)
                self.off += 16
                if self.off >= 128:
                    self.off = 0
                    self.data_i += 1
            if writer.done.can_pop():
                writer.done.pop()
                self.done_count += 1

    d = D()
    tb.sim.add(writer)
    tb.sim.add(d)
    tb.run(30000, until=lambda: d.done_count == 3)
    for i, payload in enumerate(payloads):
        assert tb.store.read(i * 0x1000, 128) == payload


def test_reader_misaligned_address_raises_at_split():
    with pytest.raises(ValueError):
        from repro.memory import split_into_bursts

        split_into_bursts(7, 64, 64, 64)


def test_reader_idle_reporting():
    reader = Reader("r", 64, PARAMS)
    tb = build_memory_testbench([reader.port])
    drv = MultiReadDriver(reader, [(0, 4096)])
    tb.sim.add(reader)
    tb.sim.add(drv)
    assert reader.idle()
    tb.run(20000, until=drv.done)
    tb.run(20)
    assert reader.idle()


def test_tiny_tuning_still_functions():
    tuning = ReaderTuning(max_txn_beats=1, n_axi_ids=1, max_in_flight=1, buffer_bytes=64)
    reader = Reader("r", 64, PARAMS, tuning)
    tb = build_memory_testbench([reader.port])
    tb.store.write(0, bytes(range(128)) + bytes(128))
    drv = MultiReadDriver(reader, [(0, 256)])
    tb.sim.add(reader)
    tb.sim.add(drv)
    tb.run(20000, until=drv.done)
    assert bytes(drv.received) == tb.store.read(0, 256)
