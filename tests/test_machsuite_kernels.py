"""Functional tests: MachSuite accelerator cores vs software references.

Small problem sizes keep the cycle simulations fast; the benchmarks use the
schedule models for full Table-I sizes.
"""

import numpy as np

from repro.core import BeethovenBuild
from repro.kernels.machsuite import (
    gemm_config,
    mdknn_config,
    nw_config,
    stencil2d_config,
    stencil3d_config,
)
from repro.kernels.machsuite.reference import (
    gemm,
    md_knn,
    nw,
    nw_score_matrix,
    stencil2d,
    stencil3d,
)
from repro.platforms import SimulationPlatform
from repro.runtime import FpgaHandle

RNG = np.random.default_rng(12345)


def make_handle(config):
    build = BeethovenBuild(config, SimulationPlatform())
    return FpgaHandle(build.design)


def upload(handle, data: bytes):
    ptr = handle.malloc(max(len(data), 64))
    ptr.write(data)
    handle.copy_to_fpga(ptr)
    return ptr


# ------------------------------------------------------------------ references
def test_reference_gemm_identity():
    a = RNG.integers(-100, 100, (8, 8)).astype(np.int32)
    eye = np.eye(8, dtype=np.int32)
    assert (gemm(a, eye) == a).all()


def test_reference_nw_identical_strings():
    score, out_a, out_b = nw(b"ACGT", b"ACGT")
    assert score == 4
    assert out_a == out_b == b"ACGT"


def test_reference_nw_gap():
    score, out_a, out_b = nw(b"ACGT", b"AGT")
    assert out_a == b"ACGT"
    assert out_b in (b"A-GT", b"AG-T")
    assert score == 3 - 1


def test_reference_nw_score_matrix_monotone_header():
    score = nw_score_matrix(b"AAA", b"AAA")
    assert list(score[0, :]) == [0, -1, -2, -3]


def test_reference_stencil2d_passthrough_borders():
    grid = RNG.integers(-50, 50, (6, 6)).astype(np.int32)
    coeffs = np.zeros((3, 3), dtype=np.int32)
    out = stencil2d(grid, coeffs)
    assert (out[0, :] == grid[0, :]).all()
    assert (out[1:-1, 1:-1] == 0).all()


def test_reference_stencil3d_uniform_grid():
    grid = np.full((4, 4, 4), 2, dtype=np.int32)
    out = stencil3d(grid, 1, 1)
    assert out[1, 1, 1] == 2 * 1 + 6 * 2


def test_reference_mdknn_symmetric_pair():
    # Two atoms mutually nearest: forces are equal and opposite.
    pos = np.array([[0, 0, 0], [1, 0, 0]], dtype=np.float32)
    nl = np.array([[1], [0]], dtype=np.int32)
    forces = md_knn(pos, nl)
    assert np.allclose(forces[0], -forces[1], rtol=1e-5)


# ------------------------------------------------------------------- hardware
def test_gemm_core_matches_reference():
    n = 16
    handle = make_handle(gemm_config())
    a = RNG.integers(-1000, 1000, (n, n)).astype(np.int32)
    b = RNG.integers(-1000, 1000, (n, n)).astype(np.int32)
    pa, pb = upload(handle, a.tobytes()), upload(handle, b.tobytes())
    pc = handle.malloc(n * n * 4)
    handle.call(
        "Gemm", "gemm", 0,
        a_addr=pa.fpga_addr, b_addr=pb.fpga_addr, c_addr=pc.fpga_addr, n=n,
    ).get()
    handle.copy_from_fpga(pc)
    got = np.frombuffer(pc.read(), dtype=np.int32).reshape(n, n)
    assert (got == gemm(a, b)).all()


def test_nw_core_matches_reference():
    n = 32
    handle = make_handle(nw_config())
    seq_a = bytes(RNG.integers(65, 69, n).astype(np.uint8))  # A..D alphabet
    seq_b = bytes(RNG.integers(65, 69, n).astype(np.uint8))
    pa, pb = upload(handle, seq_a), upload(handle, seq_b)
    pout = handle.malloc(4 * n)
    resp = handle.call(
        "Nw", "nw", 0,
        seq_a_addr=pa.fpga_addr, seq_b_addr=pb.fpga_addr,
        out_addr=pout.fpga_addr, n=n,
    ).get()
    score, out_a, out_b = nw(seq_a, seq_b)
    assert resp["score"] == score & 0xFFFFFFFF
    handle.copy_from_fpga(pout)
    blob = pout.read()
    assert blob[: 2 * n].rstrip(b"-") == out_a.rstrip(b"-")
    assert blob[2 * n :].rstrip(b"-") == out_b.rstrip(b"-")


def test_stencil2d_core_matches_reference():
    n = 16
    handle = make_handle(stencil2d_config())
    grid = RNG.integers(-100, 100, (n, n)).astype(np.int32)
    coeffs = RNG.integers(-4, 5, (3, 3)).astype(np.int32)
    pg, pc = upload(handle, grid.tobytes()), upload(handle, coeffs.tobytes())
    po = handle.malloc(n * n * 4)
    handle.call(
        "Stencil2d", "stencil2d", 0,
        grid_addr=pg.fpga_addr, coeff_addr=pc.fpga_addr, out_addr=po.fpga_addr, n=n,
    ).get()
    handle.copy_from_fpga(po)
    got = np.frombuffer(po.read(), dtype=np.int32).reshape(n, n)
    assert (got == stencil2d(grid, coeffs)).all()


def test_stencil3d_core_matches_reference():
    n = 8
    handle = make_handle(stencil3d_config())
    grid = RNG.integers(-100, 100, (n, n, n)).astype(np.int32)
    pg = upload(handle, grid.tobytes())
    po = handle.malloc(n**3 * 4)
    handle.call(
        "Stencil3d", "stencil3d", 0,
        grid_addr=pg.fpga_addr, out_addr=po.fpga_addr, n=n, c0=3, c1=2,
    ).get()
    handle.copy_from_fpga(po)
    got = np.frombuffer(po.read(), dtype=np.int32).reshape(n, n, n)
    assert (got == stencil3d(grid, 3, 2)).all()


def test_mdknn_core_matches_reference():
    n, k = 16, 4
    handle = make_handle(mdknn_config())
    pos = RNG.uniform(-2, 2, (n, 3)).astype(np.float32)
    nl = np.stack(
        [RNG.permutation(np.delete(np.arange(n), i))[:k] for i in range(n)]
    ).astype(np.int32)
    pp, pn = upload(handle, pos.tobytes()), upload(handle, nl.tobytes())
    pf = handle.malloc(n * 12)
    handle.call(
        "MdKnn", "md_knn", 0,
        pos_addr=pp.fpga_addr, nl_addr=pn.fpga_addr, force_addr=pf.fpga_addr,
        n_atoms=n, k=k,
    ).get()
    handle.copy_from_fpga(pf)
    got = np.frombuffer(pf.read(), dtype=np.float32).reshape(n, 3)
    assert np.allclose(got, md_knn(pos, nl), rtol=1e-5, atol=1e-6)


def test_gemm_compute_cycles_scale_with_unroll():
    from repro.kernels.machsuite.gemm import GemmCore

    build1 = BeethovenBuild(gemm_config(unroll_i=1, unroll_j=1), SimulationPlatform())
    build16 = BeethovenBuild(gemm_config(unroll_i=4, unroll_j=4), SimulationPlatform())
    c1 = build1.design.all_cores()[0].core.compute_cycles(64)
    c16 = build16.design.all_cores()[0].core.compute_cycles(64)
    assert c1 > 15 * c16 / 16  # roughly 16x fewer cycles with 16 lanes


def test_multicore_gemm_distributes_work():
    n = 8
    handle = make_handle(gemm_config(n_cores=2))
    mats = []
    futures = []
    for core in range(2):
        a = RNG.integers(-50, 50, (n, n)).astype(np.int32)
        b = RNG.integers(-50, 50, (n, n)).astype(np.int32)
        pa, pb = upload(handle, a.tobytes()), upload(handle, b.tobytes())
        pc = handle.malloc(n * n * 4)
        futures.append(
            handle.call(
                "Gemm", "gemm", core,
                a_addr=pa.fpga_addr, b_addr=pb.fpga_addr, c_addr=pc.fpga_addr, n=n,
            )
        )
        mats.append((a, b, pc))
    for fut in futures:
        fut.get()
    for a, b, pc in mats:
        handle.copy_from_fpga(pc)
        got = np.frombuffer(pc.read(), dtype=np.int32).reshape(n, n)
        assert (got == gemm(a, b)).all()
