"""Property and unit tests for the compiled tick-program backend.

Three layers of evidence that ``scheduling="compiled"`` executes the same
schedule as selective (and therefore naive):

* **Randomised relay pipelines** — seeded topologies, burst schedules and
  backpressure stalls, run to completion and compared log-for-log (every
  event carries its cycle) and channel-statistic-for-statistic, both in one
  shot and in lockstep chunks.
* **Closure specialisation units** — ``compile_tick``/``compile_hint``
  selection, including the instance-patch escape hatches (fault injection
  replaces ``tick``/``next_event`` on instances; the compiled program must
  honour the patches, not the class specialisations).
* **Chain fusion units** — components with identical wake signatures fuse
  into one slot; the fused program must produce the *same channel-commit
  order* as the unfused one (checked by recording the dirty-list append
  sequence), not just the same final state.

Plus the ``request_wake`` escape hatch: non-channel coupling (a foreign
component poking a shared :class:`repro.memory.scratchpad.Memory`) must
re-wake the clocking component under compiled exactly as under naive.
"""

import random

import pytest

import repro.sim.compiled as compiled_mod
from repro.axi.types import AxiParams
from repro.memory.scratchpad import Memory, Scratchpad, SpReq
from repro.sim import NEVER, ChannelQueue, Component, Simulator
from repro.sim.compiled import CompiledProgram

from test_selective_scheduling import (
    RelayStage,
    _build_pipeline,
    _drained,
    _observe,
)

MODES = ("naive", "selective", "compiled")


def _run_to_drain(seed, scheduling, settle=500):
    sim, chains = _build_pipeline(seed, scheduling)
    sim.run(200_000, until=_drained(chains))
    sim.run(settle)
    return _observe(sim, chains), sim


# ---------------------------------------------------------------------------
# Randomised relay-pipeline property tests
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(12))
def test_compiled_matches_selective(seed):
    selective, _ = _run_to_drain(seed, "selective")
    compiled, sim = _run_to_drain(seed, "compiled")
    assert compiled == selective
    # Non-vacuous: the compiled schedule elided ticks somewhere.
    total = sum(sim.component_ticks(c) for c in sim._components)
    assert total < sim.cycle * len(sim._components)


@pytest.mark.parametrize("seed", range(12))
def test_compiled_matches_naive(seed):
    naive, _ = _run_to_drain(seed, "naive")
    compiled, _ = _run_to_drain(seed, "compiled")
    assert compiled == naive


@pytest.mark.parametrize("seed", range(6))
def test_compiled_lockstep_with_selective(seed):
    """Step both schedulers in odd-sized chunks and compare the observable
    state at every boundary — divergence is caught the cycle window it
    happens in, not just at the end.  Chunked runs also exercise program
    re-entry (``prepare()`` wakes everything, which must be a no-op for
    decisions by the hint contract)."""
    sim_s, chains_s = _build_pipeline(seed, "selective")
    sim_c, chains_c = _build_pipeline(seed, "compiled")
    rng = random.Random(seed ^ 0xC0FFEE)
    for _ in range(200):
        chunk = rng.choice([1, 3, 7, 23, 97])
        sim_s.run(chunk)
        sim_c.run(chunk)
        assert _observe(sim_c, chains_c) == _observe(sim_s, chains_s)
        if _drained(chains_s)():
            break
    assert _drained(chains_c)()


# ---------------------------------------------------------------------------
# request_wake: same-cycle/next-cycle semantics and the Memory.on_activity
# escape hatch (satellite: non-channel coupling must stay honoured).
# ---------------------------------------------------------------------------


class _Poker(Component):
    """Mutates a foreign component directly (no channel) and requests a wake."""

    def __init__(self, name, target, poke_cycle):
        super().__init__(name)
        self.target = target
        self.poke_cycle = poke_cycle

    def tick(self, cycle):
        if cycle == self.poke_cycle:
            self.target.value = cycle
            self.target.request_wake()

    def next_event(self, cycle):
        return self.poke_cycle if self.poke_cycle >= cycle else NEVER


class _Watcher(Component):
    def __init__(self, name):
        super().__init__(name)
        self.value = None
        self.seen = []

    def tick(self, cycle):
        if self.value is not None:
            self.seen.append((cycle, self.value))
            self.value = None

    def next_event(self, cycle):
        return NEVER


@pytest.mark.parametrize("scheduling", ("selective", "compiled"))
def test_request_wake_order_semantics(scheduling):
    """A wake requested by an earlier-indexed component lands the same
    cycle (naive would have ticked the target afterwards); from a
    later-indexed component it lands next cycle."""

    def run_order(poker_first):
        sim = Simulator(scheduling=scheduling)
        watcher = _Watcher("watcher")
        poker = _Poker("poker", watcher, 10)
        if poker_first:
            sim.add(poker), sim.add(watcher)
        else:
            sim.add(watcher), sim.add(poker)
        sim.run(20)
        return watcher.seen

    assert run_order(True) == [(10, 10)]
    assert run_order(False) == [(11, 10)]


class _MemClocker(Component):
    """Owns a shared :class:`Memory`, clocks it, logs matured read data.

    Models an intra-core memory whose ports are driven *directly* by a
    foreign component — coupling the wake subscriptions cannot see.  The
    ``on_activity -> request_wake`` hatch provides the initial wake; the
    hint keeps the component awake while the read pipeline holds data.
    """

    def __init__(self, name, mem):
        super().__init__(name)
        self.mem = mem
        mem.on_activity = self.request_wake
        self.delivered = []

    def channels(self):
        return []

    def _pipeline_busy(self):
        return any(
            v is not None for pipe in self.mem._pipes for v in pipe
        ) or any(v is not None for v in self.mem._out)

    def tick(self, cycle):
        data = self.mem.rdata(0)
        if data is not None:
            self.delivered.append((cycle, data))
        self.mem.clock()

    def next_event(self, cycle):
        return cycle if self._pipeline_busy() else NEVER


class _MemDriver(Component):
    """Issues scheduled direct reads/writes against a foreign Memory."""

    def __init__(self, name, mem, schedule):
        super().__init__(name)
        self.mem = mem
        self.schedule = sorted(schedule)  # [(cycle, "r"|"w", row, value)]
        self._next = 0

    def channels(self):
        return []

    def tick(self, cycle):
        while self._next < len(self.schedule) and self.schedule[self._next][0] == cycle:
            _, kind, row, value = self.schedule[self._next]
            if kind == "w":
                self.mem.write(0, row, value)
            else:
                self.mem.read(0, row)
            self._next += 1

    def next_event(self, cycle):
        if self._next >= len(self.schedule):
            return NEVER
        return max(self.schedule[self._next][0], cycle)


def _run_mem_coupling(scheduling, driver_first):
    mem = Memory(latency=3, data_width=32, n_rows=8, name="shared")
    sim = Simulator(scheduling=scheduling)
    clocker = _MemClocker("clocker", mem)
    schedule = [
        (5, "w", 2, 0xAB),
        (40, "r", 2, 0),
        (41, "w", 3, 0xCD),
        (200, "r", 3, 0),
        (201, "r", 2, 0),
    ]
    driver = _MemDriver("driver", mem, schedule)
    if driver_first:
        sim.add(driver), sim.add(clocker)
    else:
        sim.add(clocker), sim.add(driver)
    sim.run(400)
    return clocker.delivered, list(mem._cells)


@pytest.mark.parametrize("driver_first", (True, False))
def test_memory_on_activity_escape_hatch(driver_first):
    """Direct Memory accesses from a foreign component (no channels at all)
    produce identical delivery cycles and final contents under every
    schedule: the ``on_activity`` hatch wakes the sleeping clocker."""
    baseline = _run_mem_coupling("naive", driver_first)
    for scheduling in ("fast_forward", "selective", "compiled"):
        assert _run_mem_coupling(scheduling, driver_first) == baseline
    delivered, cells = baseline
    assert [v for _, v in delivered] == [0xAB, 0xCD, 0xAB]
    assert cells[2] == 0xAB and cells[3] == 0xCD


class _ScratchpadDriver(Component):
    """Exercises a Scratchpad port with a scheduled mix of reads/writes."""

    def __init__(self, name, port, schedule):
        super().__init__(name)
        self.port = port
        self.schedule = sorted(schedule, key=lambda e: e[0])  # [(cycle, SpReq)]
        self._next = 0
        self.responses = []

    def channels(self):
        return [self.port.req, self.port.resp]

    def tick(self, cycle):
        while self.port.resp.can_pop():
            self.responses.append((cycle, self.port.resp.pop()))
        while (
            self._next < len(self.schedule)
            and self.schedule[self._next][0] <= cycle
            and self.port.req.can_push()
        ):
            self.port.req.push(self.schedule[self._next][1])
            self._next += 1

    def next_event(self, cycle):
        if self._next >= len(self.schedule):
            return NEVER
        due = self.schedule[self._next][0]
        if due > cycle:
            return due
        return cycle if self.port.req.can_push() else NEVER


def _run_scratchpad(scheduling):
    sim = Simulator(scheduling=scheduling)
    sp = Scratchpad(
        "sp", data_width_bits=32, n_datas=16, axi_params=AxiParams(),
        with_init=False,
    )
    rng = random.Random(99)
    schedule, cycle = [], 0
    written = {}
    for _ in range(30):
        cycle += rng.choice([0, 1, 2, rng.randint(30, 90)])
        row = rng.randrange(16)
        if written and rng.random() < 0.5:
            schedule.append((cycle, SpReq(row=rng.choice(list(written)))))
        else:
            value = rng.randrange(1 << 32)
            written[row] = value
            schedule.append((cycle, SpReq(row=row, write=True, wdata=value)))
    driver = _ScratchpadDriver("driver", sp.ports[0], schedule)
    sim.add(sp)
    sim.add(driver)
    sim.run(2000)
    return driver.responses, sp.reads_served, sp.writes_served, list(sp.mem._cells)


def test_scratchpad_parity_across_schedules():
    """The real Scratchpad (request_wake-wired Memory + credit-ruled ports)
    behaves identically under all four schedules."""
    baseline = _run_scratchpad("naive")
    responses, reads, writes, _cells = baseline
    assert reads > 0 and writes > 0 and responses
    for scheduling in ("fast_forward", "selective", "compiled"):
        assert _run_scratchpad(scheduling) == baseline


# ---------------------------------------------------------------------------
# Closure-specialisation units
# ---------------------------------------------------------------------------


class _SpecializedEcho(Component):
    """Forwards items; offers a compiled closure and a compile-time hint."""

    def __init__(self, name, inp, out):
        super().__init__(name)
        self.inp = inp
        self.out = out
        self.compiled_ticks = 0

    def channels(self):
        return [self.inp, self.out]

    def tick(self, cycle):
        if self.inp.can_pop() and self.out.can_push():
            self.out.push(self.inp.pop())

    def next_event(self, cycle):
        return NEVER

    def compile_tick(self):
        inp, out = self.inp, self.out

        def tick(cycle, self=self):
            self.compiled_ticks += 1
            if inp._pop_count < len(inp._items) and (
                len(out._items) + len(out._staged) < out.capacity
            ):
                out.push(inp.pop())

        return tick

    def compile_hint(self):
        def hint(cycle):
            return NEVER

        return hint


def _echo_sim():
    sim = Simulator(scheduling="compiled")
    a = ChannelQueue(2, "a")
    b = ChannelQueue(2, "b")
    echo = sim.add(_SpecializedEcho("echo", a, b))
    sim.register_channel(a)
    sim.register_channel(b)
    return sim, echo, a, b


def test_compile_tick_closure_is_used():
    sim, echo, a, b = _echo_sim()
    a.push(7)
    sim.run(5)
    assert b.can_pop() and b.peek() == 7
    assert echo.compiled_ticks > 0
    assert "echo" in sim._program.specialized


def test_instance_tick_patch_disables_specialization():
    """A fault-style instance patch of ``tick`` must win over the class's
    ``compile_tick`` (the patch is how hang injection reaches the model)."""
    sim, echo, a, b = _echo_sim()
    echo.tick = lambda cycle: None  # instance patch: component plays dead
    a.push(7)
    sim.run(5)
    assert "echo" not in sim._program.specialized
    assert echo.compiled_ticks == 0
    assert not b.can_pop()  # the patched (dead) tick really ran instead


def test_compile_hint_selection_and_instance_override():
    sim, echo, a, b = _echo_sim()
    hint = CompiledProgram._hint_fn(echo)
    assert hint is not None
    assert hint(0) == NEVER  # the compile_hint closure, not next_event

    # An instance-level next_event (fault hang injection) must disable the
    # compile_hint path and be consulted directly.
    echo.next_event = lambda cycle: 42.0
    patched = CompiledProgram._hint_fn(echo)
    assert patched(0) == 42.0


def test_wake_only_hint_elided():
    class _Reactive(Component):
        wake_only = True

        def __init__(self, name, chan):
            super().__init__(name)
            self.chan = chan

        def channels(self):
            return [self.chan]

        def tick(self, cycle):
            if self.chan.can_pop():
                self.chan.pop()

        def next_event(self, cycle):
            return NEVER

    comp = _Reactive("r", ChannelQueue(2, "c"))
    assert CompiledProgram._hint_fn(comp) is None
    # ...unless an instance patch re-enables evaluation (hang injection).
    comp.next_event = lambda cycle: 13.0
    assert CompiledProgram._hint_fn(comp)(0) == 13.0


# ---------------------------------------------------------------------------
# Chain-fusion units
# ---------------------------------------------------------------------------


class _SharedWakeStage(RelayStage):
    """A relay stage advertising the whole chain's channel set, so every
    stage has an identical wake signature and the chain is fusable."""

    def wake_channels(self):
        return list(self.all_links)


class _LoggingDirtyList(list):
    """Stands in for ``sim._dirty_channels`` and records the order channels
    first turn dirty each cycle — i.e. the channel-commit order."""

    def __init__(self):
        super().__init__()
        self.events = []

    def append(self, chan):
        self.events.append(chan.name)
        super().append(chan)


def _build_fusable_chain(scheduling, n_stages=4):
    rng = random.Random(1234)
    sim = Simulator(scheduling=scheduling)
    links = [ChannelQueue(2, f"l{i}") for i in range(n_stages + 1)]
    stages = []
    for i in range(n_stages):
        stage = _SharedWakeStage(f"s{i}", links[i], links[i + 1])
        stage.all_links = links
        stages.append(sim.add(stage))
    for link in links:
        sim.register_channel(link)
    # Record commit order from the very first cycle.
    spy = _LoggingDirtyList()
    sim._dirty_channels = spy
    for chan in sim._channels:
        chan._sink = spy
    feed = [rng.randrange(1, 1 << 16) for _ in range(25)]
    return sim, links, stages, feed, spy


def _drive_chain(sim, links, stages, feed):
    """Push items into the head link between runs; collect from the tail."""
    out = []
    i = 0
    while i < len(feed) or any(s._item is not None for s in stages) or any(
        len(l) or l._staged for l in links
    ):
        while i < len(feed) and links[0].can_push():
            links[0].push(feed[i])
            i += 1
        sim.run(10)
        while links[-1].can_pop():
            out.append((sim.cycle, links[-1].pop()))
        if sim.cycle > 100_000:
            raise AssertionError("chain failed to drain")
    return out


def test_identical_signature_chain_fuses():
    sim, links, stages, feed, _spy = _build_fusable_chain("compiled")
    sim.run(1)  # force program build
    prog = sim._program
    assert len(prog.groups) < len(prog.components)
    assert any(label.startswith("(fused)/") for label in prog._labels)
    # All four stages share one signature: one fused slot of size 4.
    sizes = sorted(len(g) for g in prog.groups)
    assert sizes[-1] == len(stages)


def test_fused_chain_same_commit_order_as_unfused(monkeypatch):
    fused = _build_fusable_chain("compiled")
    out_fused = _drive_chain(fused[0], fused[1], fused[2], fused[3])

    monkeypatch.setattr(compiled_mod, "MAX_FUSED", 1)
    unfused = _build_fusable_chain("compiled")
    out_unfused = _drive_chain(unfused[0], unfused[1], unfused[2], unfused[3])
    assert all(len(g) == 1 for g in unfused[0]._program.groups)

    assert out_fused == out_unfused
    # The order channels turn dirty — the channel-commit order — must be
    # identical event-for-event, not merely produce the same final state.
    assert fused[4].events == unfused[4].events
    # And the fused run really did fuse.
    assert any(len(g) > 1 for g in fused[0]._program.groups)


def test_fused_chain_matches_naive_timing():
    compiled = _build_fusable_chain("compiled")
    naive = _build_fusable_chain("naive")
    out_c = _drive_chain(compiled[0], compiled[1], compiled[2], compiled[3])
    out_n = _drive_chain(naive[0], naive[1], naive[2], naive[3])
    assert out_c == out_n
    stats_c = [
        (c.name, c.total_pushed, c.total_popped, c.occupancy_accum,
         c.cycles_observed)
        for c in compiled[0]._channels
    ]
    stats_n = [
        (c.name, c.total_pushed, c.total_popped, c.occupancy_accum,
         c.cycles_observed)
        for c in naive[0]._channels
    ]
    assert stats_c == stats_n
