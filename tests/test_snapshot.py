"""Deterministic checkpoint/restore: the ``repro.snapshot`` contract.

The core promise: ``restore(snapshot); run(N)`` is bit-identical — final
cycle, stable metrics, fault fingerprint, output data — to the
uninterrupted run, under every scheduling backend, with active fault
plans, across a save/load disk cycle.  On top of that contract ride the
three integration layers this file also covers: dist fork-engine worker
failover (a SIGKILLed worker rolls back to the last barrier checkpoint
instead of raising PartitionSyncTimeout), farm job resume after crashes
and hung-job kills, and the chaos ``checkpoint`` scenario.
"""

from __future__ import annotations

import os
import pickle
import signal
import time

import pytest

from repro.faults.chaos import GOOD_OUTCOMES, MODES, SCENARIOS, run_chaos
from repro.snapshot import SNAPSHOT_VERSION, SnapshotError, SnapshotVersionError
from repro.snapshot.scenario import (
    kill_and_resume_differential,
    run_checkpointed_memcpy,
)
from repro.snapshot.store import job_checkpoint_path, load, save

#: A seed whose chaos plan is known to inject faults (the differential under
#: it exercises fault-RNG positions and poison bookkeeping, not just queues).
FAULTY_SEED = 3

_COMPARE_KEYS = ("outcome", "cycles", "chunks", "n_faults", "fingerprint", "stable_metrics")


# ------------------------------------------------------- kill-and-resume
@pytest.mark.parametrize("mode", MODES)
def test_kill_and_resume_bit_identical(mode, tmp_path):
    """SIGKILL the process right after a checkpoint write; the resumed run
    must be bit-identical to an uninterrupted reference — per backend."""
    r = kill_and_resume_differential(FAULTY_SEED, mode, str(tmp_path))
    assert r["killed"], "the victim process was never actually SIGKILLed"
    assert r["resumed"], "the second run never restored from the checkpoint"
    assert r["n_faults"] > 0, "seed must inject faults for this to prove anything"
    assert r["match"], r["error"]


def test_resume_from_disk_under_active_fault_plan(tmp_path):
    """In-process variant (no fork): abandon after two checkpoints, resume
    from the file, compare against the uninterrupted reference."""
    path = str(tmp_path / "memcpy.ckpt")
    ref = run_checkpointed_memcpy(FAULTY_SEED, "selective")
    assert ref["n_faults"] > 0
    run_checkpointed_memcpy(
        FAULTY_SEED, "selective",
        checkpoint_path=path, checkpoint_every_chunks=1, stop_after_checkpoints=2,
    )
    assert os.path.exists(path)
    resumed = run_checkpointed_memcpy(
        FAULTY_SEED, "selective", checkpoint_path=path, checkpoint_every_chunks=1
    )
    assert resumed["resumed"]
    for key in _COMPARE_KEYS:
        assert resumed[key] == ref[key], key


# ------------------------------------------------------------- dist failover
def test_dist_fork_failover_survives_worker_kill(tmp_path):
    """A SIGKILLed worker under barrier checkpointing is respawned and the
    run rolls back — same final state as never having been killed, no
    PartitionSyncTimeout."""
    r = kill_and_resume_differential(FAULTY_SEED, "dist:fork", str(tmp_path))
    assert r["killed"]
    assert r["restarts"] >= 1, "failover never fired"
    assert r["outcome"] != "unexpected", r["error"]
    assert r["match"], r["error"]


def test_dist_serial_has_no_workers_to_kill(tmp_path):
    with pytest.raises(ValueError):
        kill_and_resume_differential(0, "dist:serial", str(tmp_path))


# ------------------------------------------------------------- chaos wiring
def test_checkpoint_scenario_registered():
    assert "checkpoint" in SCENARIOS


def test_checkpoint_chaos_outcome_allowed():
    o = run_chaos("checkpoint", "fast_forward", FAULTY_SEED)
    assert o.scenario == "checkpoint"
    assert o.outcome in GOOD_OUTCOMES, o.error
    assert not o.violates_contract


# ------------------------------------------------------------ snapshot files
def test_snapshot_file_round_trip(tmp_path):
    path = str(tmp_path / "roundtrip.ckpt")
    run_checkpointed_memcpy(
        0, "naive", checkpoint_path=path,
        checkpoint_every_chunks=1, stop_after_checkpoints=1,
    )
    snap = load(path)
    assert snap.version == SNAPSHOT_VERSION
    assert snap.cycle > 0
    assert snap.meta["chunks_done"] == 1


def test_load_rejects_garbage_and_foreign_versions(tmp_path):
    garbage = tmp_path / "garbage.ckpt"
    garbage.write_bytes(b"not a snapshot")
    with pytest.raises(SnapshotError):
        load(str(garbage))

    wrong = tmp_path / "wrong-pickle.ckpt"
    with open(wrong, "wb") as fh:
        pickle.dump({"format": "something-else"}, fh)
    with pytest.raises(SnapshotError):
        load(str(wrong))

    path = str(tmp_path / "versioned.ckpt")
    run_checkpointed_memcpy(
        0, "naive", checkpoint_path=path,
        checkpoint_every_chunks=1, stop_after_checkpoints=1,
    )
    with open(path, "rb") as fh:
        envelope = pickle.load(fh)
    envelope["version"] = SNAPSHOT_VERSION + 999
    with open(path, "wb") as fh:
        pickle.dump(envelope, fh)
    with pytest.raises(SnapshotVersionError):
        load(path)


def test_job_checkpoint_path_is_version_addressed(tmp_path, monkeypatch):
    """A snapshot format bump must orphan old checkpoints, not restore them."""
    import repro.snapshot.store as store_mod

    p1 = job_checkpoint_path(str(tmp_path), "fp")
    assert p1.endswith(".ckpt") and str(tmp_path) in p1
    assert job_checkpoint_path(str(tmp_path), "fp") == p1
    assert job_checkpoint_path(str(tmp_path), "other") != p1
    monkeypatch.setattr(store_mod, "SNAPSHOT_VERSION", SNAPSHOT_VERSION + 1)
    assert job_checkpoint_path(str(tmp_path), "fp") != p1


# ---------------------------------------------------------------- farm resume
def _crashy_job(x):
    from repro.snapshot.store import job_checkpoint, note_job_resumed

    path, every = job_checkpoint()
    assert path and every == 4, (path, every)
    if os.path.exists(path):
        note_job_resumed()
        return x * 2
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        fh.write("ckpt")
    os._exit(3)


def _sleepy_job(x):
    from repro.snapshot.store import job_checkpoint, note_job_resumed

    path, _every = job_checkpoint()
    if os.path.exists(path):
        note_job_resumed()
        return x + 100
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        fh.write("ckpt")
    time.sleep(60)


def _needs_multiprocessing():
    from repro.farm.pool import multiprocessing_available

    if not multiprocessing_available():
        pytest.skip("multiprocessing unavailable")


def test_farm_job_resumes_after_worker_crash(tmp_path):
    _needs_multiprocessing()
    from repro.farm import Farm, Job

    farm = Farm(n_workers=2, cache_dir=str(tmp_path), default_timeout_s=30.0)
    (res,) = farm.run([Job(_crashy_job, (21,), checkpoint_every=4, cache=False)])
    assert res.ok and res.value == 42
    assert res.resumed_from_checkpoint
    assert res.crashes == 1 and res.attempts == 2
    assert not os.path.exists(res.job.checkpoint_path)  # retired on success
    assert farm.metrics()["farm/checkpoint_resumes"] == 1


def test_farm_job_resumes_after_hung_job_timeout(tmp_path):
    _needs_multiprocessing()
    from repro.farm import Farm, Job

    # n_workers=2 forces the real WorkerPool: the serial pool cannot enforce
    # timeouts (they are advisory in-process), so it cannot kill the hang.
    farm = Farm(n_workers=2, cache_dir=str(tmp_path), default_timeout_s=30.0)
    (res,) = farm.run(
        [Job(_sleepy_job, (7,), checkpoint_every=4, cache=False, timeout_s=2.0)]
    )
    assert res.ok and res.value == 107
    assert res.resumed_from_checkpoint
    assert not res.timed_out  # the *final* attempt completed
    assert res.attempts == 2


def test_farm_timeout_without_checkpoint_still_fails(tmp_path):
    """checkpoint-less hung jobs keep the historical fail-fast semantics."""
    _needs_multiprocessing()
    from repro.farm import Farm, Job

    farm = Farm(n_workers=2, cache_dir=str(tmp_path), default_timeout_s=30.0)
    (res,) = farm.run([Job("time:sleep", (60,), cache=False, timeout_s=1.5)])
    assert not res.ok
    assert res.timed_out


# ------------------------------------------------- state-dump caps + export
def test_compact_state_dump_caps_and_passthrough(tmp_path):
    from repro.sim.trace import compact_state_dump, export_state_dump

    dump = {
        "cycle": 5,
        "channels": {
            f"ch{i}": {"occupancy": i % 7, "staged": 0, "capacity": 8}
            for i in range(50)
        },
        "components": {f"comp{i}": {"state": "x" * 1000} for i in range(50)},
        "wake_heap": [(i, f"comp{i}") for i in range(50)],
        "restarts": {"count": 2},  # unknown keys pass through untouched
    }
    out = compact_state_dump(dump, max_channels=8, max_components=8, max_value_chars=64)
    assert len(out["channels"]) == 8 and out["channels_elided"] == 42
    assert len(out["components"]) == 8 and out["components_elided"] == 42
    assert len(out["wake_heap"]) == 8 and out["wake_heap_elided"] == 42
    assert out["restarts"] == {"count": 2}
    assert out["cycle"] == 5
    for state in out["components"].values():
        assert len(state["state"]) < 1000  # long reprs clipped in place
    # The capped dump is JSON-exportable (satellite: tools flag).
    path = tmp_path / "dump.json"
    export_state_dump(out, str(path))
    import json

    data = json.loads(path.read_text())
    assert data["channels_elided"] == 42


def test_deadlock_dump_is_capped(tmp_path):
    """DeadlockError on a large design carries a bounded dump."""
    from repro.baselines.spin_core import spin_config
    from repro.core.build import BeethovenBuild
    from repro.platforms import AWSF1Platform
    from repro.runtime import FpgaHandle
    from repro.sim import DeadlockError

    build = BeethovenBuild(spin_config(8, work_per_tick=4), AWSF1Platform())
    handle = FpgaHandle(build.design)
    fut = handle.call("Spin", "spin", 0, rounds=100_000, seed=1)
    with pytest.raises(DeadlockError) as excinfo:
        fut.get(max_cycles=50)
    dump = excinfo.value.dump
    assert len(dump.get("channels", {})) <= 64
    assert len(dump.get("components", {})) <= 64
    getattr(build.design.sim, "shutdown", lambda: None)()


# ----------------------------------------------------------- dist defaults
def test_dist_checkpoint_config_validation():
    from repro.dist import DistConfig, DistError

    assert DistConfig().checkpoint_every_slices == 0  # fail-fast by default
    with pytest.raises(DistError):
        DistConfig(checkpoint_every_slices=-1)
    with pytest.raises(DistError):
        DistConfig(max_restarts=-1)
