"""Unit tests for the cycle-level simulation kernel."""

import random

import pytest

from repro.sim import NEVER, ChannelQueue, Component, SimulationError, Simulator


class Producer(Component):
    def __init__(self, chan, count):
        super().__init__("producer")
        self.chan = chan
        self.remaining = count
        self.sent = 0

    def tick(self, cycle):
        if self.remaining and self.chan.can_push():
            self.chan.push(self.sent)
            self.sent += 1
            self.remaining -= 1


class Consumer(Component):
    def __init__(self, chan):
        super().__init__("consumer")
        self.chan = chan
        self.received = []

    def tick(self, cycle):
        if self.chan.can_pop():
            self.received.append(self.chan.pop())


def test_channel_fifo_order():
    chan = ChannelQueue(4, "c")
    sim = Simulator()
    sim.register_channel(chan)
    prod = sim.add(Producer(chan, 10))
    cons = sim.add(Consumer(chan))
    sim.run(100, until=lambda: len(cons.received) == 10)
    assert cons.received == list(range(10))


def test_push_not_visible_same_cycle():
    chan = ChannelQueue(4, "c")
    chan.push(1)
    assert not chan.can_pop()  # becomes visible only after commit
    chan.commit()
    assert chan.can_pop()
    assert chan.pop() == 1


def test_pop_frees_space_next_cycle_only():
    chan = ChannelQueue(1, "c")
    chan.push(1)
    chan.commit()
    assert chan.pop() == 1
    assert not chan.can_push()  # space frees at commit
    chan.commit()
    assert chan.can_push()


def test_order_independence():
    """Producer-before-consumer and consumer-before-producer give identical
    transfer schedules."""

    def run(order):
        chan = ChannelQueue(2, "c")
        prod = Producer(chan, 5)
        cons = Consumer(chan)
        sim = Simulator()
        sim.register_channel(chan)
        for comp in (prod, cons) if order == "pc" else (cons, prod):
            sim.add(comp)
        arrival = []
        while len(cons.received) < 5 and sim.cycle < 50:
            before = len(cons.received)
            sim.step()
            if len(cons.received) > before:
                arrival.append(sim.cycle)
        return arrival

    assert run("pc") == run("cp")


def test_push_overflow_raises():
    chan = ChannelQueue(1, "c")
    chan.push(1)
    with pytest.raises(SimulationError):
        chan.push(2)


def test_pop_empty_raises():
    chan = ChannelQueue(1, "c")
    with pytest.raises(SimulationError):
        chan.pop()


def test_peek_offsets():
    chan = ChannelQueue(4, "c")
    for i in range(3):
        chan.push(i)
    chan.commit()
    assert chan.peek() == 0
    assert chan.peek(2) == 2
    chan.pop()
    assert chan.peek() == 1


def test_run_until_deadlock_detection():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.run(10, until=lambda: False)


def test_run_until_stops_early():
    sim = Simulator()
    reached = sim.run(100, until=lambda: sim.cycle == 7)
    assert reached == 7


def test_capacity_validation():
    with pytest.raises(ValueError):
        ChannelQueue(0, "bad")


def test_len_reflects_pops():
    chan = ChannelQueue(4, "c")
    chan.push(1)
    chan.push(2)
    chan.commit()
    assert len(chan) == 2
    chan.pop()
    assert len(chan) == 1


# ---------------------------------------------------------------------------
# peek visible-window regression: peek must advertise exactly the window that
# __len__ / can_pop do — no reaching back into already-popped items, no
# reaching forward into items staged this cycle.
# ---------------------------------------------------------------------------


def test_peek_rejects_negative_offset():
    chan = ChannelQueue(4, "c")
    chan.push(1)
    chan.push(2)
    chan.commit()
    chan.pop()
    with pytest.raises(SimulationError):
        chan.peek(-1)  # would resurrect the item popped this cycle


def test_peek_window_matches_len():
    chan = ChannelQueue(8, "c")
    for i in range(4):
        chan.push(i)
    chan.commit()
    chan.push(99)  # staged: not visible until commit
    chan.pop()
    chan.pop()
    assert len(chan) == 2
    assert chan.peek(0) == 2
    assert chan.peek(1) == 3
    with pytest.raises(SimulationError):
        chan.peek(2)  # would see the staged push early
    with pytest.raises(SimulationError):
        chan.peek(len(chan))


def test_peek_empty_raises():
    chan = ChannelQueue(2, "c")
    with pytest.raises(SimulationError):
        chan.peek()


# ---------------------------------------------------------------------------
# Property-based exercise of the channel invariants against a reference model
# (seeded random — deterministic, no external dependencies).
# ---------------------------------------------------------------------------


def _random_channel_workout(seed, capacity, cycles):
    rng = random.Random(seed)
    chan = ChannelQueue(capacity, f"prop{seed}")
    visible = []  # reference model: items visible this cycle
    staged = []  # reference model: pushes staged this cycle
    pushed_seq = []
    popped_seq = []
    next_token = 0

    for _ in range(cycles):
        popped_this_cycle = 0
        for _ in range(rng.randrange(4)):
            op = rng.choice(("push", "pop", "peek"))
            if op == "push":
                # Capacity invariant: admission counts visible + staged items.
                assert chan.can_push() == (
                    len(visible) + len(staged) + 1 <= capacity
                )
                if chan.can_push():
                    chan.push(next_token)
                    staged.append(next_token)
                    pushed_seq.append(next_token)
                    next_token += 1
                else:
                    with pytest.raises(SimulationError):
                        chan.push(-1)
            elif op == "pop":
                # Start-of-cycle visibility: only items visible at the start
                # of the cycle (minus this cycle's pops) can be popped.
                assert chan.can_pop() == (popped_this_cycle < len(visible))
                if chan.can_pop():
                    popped_seq.append(chan.pop())
                    popped_this_cycle += 1
                else:
                    with pytest.raises(SimulationError):
                        chan.pop()
            else:
                window = len(visible) - popped_this_cycle
                assert len(chan) == window
                if window:
                    off = rng.randrange(window)
                    assert chan.peek(off) == visible[popped_this_cycle + off]
                else:
                    with pytest.raises(SimulationError):
                        chan.peek()
        chan.commit()
        del visible[:popped_this_cycle]
        visible.extend(staged)
        staged.clear()

    # FIFO order end to end: the popped sequence is a prefix of the pushed one.
    assert popped_seq == pushed_seq[: len(popped_seq)]
    assert chan.total_pushed == len(pushed_seq)
    assert chan.total_popped == len(popped_seq)


@pytest.mark.parametrize("seed", range(8))
def test_channel_property_workout(seed):
    _random_channel_workout(seed, capacity=1 + seed % 4, cycles=200)


# ---------------------------------------------------------------------------
# Event-skipping kernel unit semantics.
# ---------------------------------------------------------------------------


class Sleeper(Component):
    """Responds exactly ``delay`` cycles after each request, via next_event."""

    def __init__(self, delay):
        super().__init__("sleeper")
        self.req = ChannelQueue(2, "sleeper.req")
        self.resp = ChannelQueue(2, "sleeper.resp")
        self.delay = delay
        self._due = None
        self.tick_cycles = []

    def tick(self, cycle):
        self.tick_cycles.append(cycle)
        if self._due is not None:
            if cycle >= self._due and self.resp.can_push():
                self.resp.push(cycle)
                self._due = None
            return
        if self.req.can_pop():
            self.req.pop()
            self._due = cycle + self.delay

    def next_event(self, cycle):
        if self._due is None:
            return NEVER
        return max(cycle, self._due)


def test_fast_forward_skips_to_hint():
    sim = Simulator(fast_forward=True)
    sleeper = sim.add(Sleeper(1000))
    sleeper.req.push(0)
    sim.run(5000, until=lambda: len(sleeper.resp) > 0)
    # Response lands at the same cycle a naive run produces...
    naive = Simulator()
    ns = naive.add(Sleeper(1000))
    ns.req.push(0)
    naive.run(5000, until=lambda: len(ns.resp) > 0)
    assert sim.cycle == naive.cycle
    # ...but the fast-forward run elided almost all of the wait.
    assert sim.cycles_skipped > 900
    assert len(sleeper.tick_cycles) < 100


def test_unhinted_component_vetoes_skipping():
    class Unhinted(Component):
        def tick(self, cycle):
            pass

    sim = Simulator(fast_forward=True)
    sleeper = sim.add(Sleeper(1000))
    sim.add(Unhinted())
    sleeper.req.push(0)
    sim.run(5000, until=lambda: len(sleeper.resp) > 0)
    assert sim.cycles_skipped == 0


def test_fast_forward_credits_channel_stats():
    sim = Simulator(fast_forward=True)
    sleeper = sim.add(Sleeper(1000))
    sleeper.req.push(0)
    sim.run(5000, until=lambda: len(sleeper.resp) > 0)
    for chan in (sleeper.req, sleeper.resp):
        assert chan.cycles_observed == sim.cycle


def test_all_never_skips_to_deadline_only_without_predicate():
    class Reactive(Component):
        def tick(self, cycle):
            pass

        def next_event(self, cycle):
            return NEVER

    sim = Simulator(fast_forward=True)
    sim.add(Reactive())
    assert sim.run(10_000) == 10_000
    assert sim.skip_events == 1
    assert sim.cycles_skipped == 10_000 - 1
