"""Unit tests for the cycle-level simulation kernel."""

import pytest

from repro.sim import ChannelQueue, Component, SimulationError, Simulator


class Producer(Component):
    def __init__(self, chan, count):
        super().__init__("producer")
        self.chan = chan
        self.remaining = count
        self.sent = 0

    def tick(self, cycle):
        if self.remaining and self.chan.can_push():
            self.chan.push(self.sent)
            self.sent += 1
            self.remaining -= 1


class Consumer(Component):
    def __init__(self, chan):
        super().__init__("consumer")
        self.chan = chan
        self.received = []

    def tick(self, cycle):
        if self.chan.can_pop():
            self.received.append(self.chan.pop())


def test_channel_fifo_order():
    chan = ChannelQueue(4, "c")
    sim = Simulator()
    sim.register_channel(chan)
    prod = sim.add(Producer(chan, 10))
    cons = sim.add(Consumer(chan))
    sim.run(100, until=lambda: len(cons.received) == 10)
    assert cons.received == list(range(10))


def test_push_not_visible_same_cycle():
    chan = ChannelQueue(4, "c")
    chan.push(1)
    assert not chan.can_pop()  # becomes visible only after commit
    chan.commit()
    assert chan.can_pop()
    assert chan.pop() == 1


def test_pop_frees_space_next_cycle_only():
    chan = ChannelQueue(1, "c")
    chan.push(1)
    chan.commit()
    assert chan.pop() == 1
    assert not chan.can_push()  # space frees at commit
    chan.commit()
    assert chan.can_push()


def test_order_independence():
    """Producer-before-consumer and consumer-before-producer give identical
    transfer schedules."""

    def run(order):
        chan = ChannelQueue(2, "c")
        prod = Producer(chan, 5)
        cons = Consumer(chan)
        sim = Simulator()
        sim.register_channel(chan)
        for comp in (prod, cons) if order == "pc" else (cons, prod):
            sim.add(comp)
        arrival = []
        while len(cons.received) < 5 and sim.cycle < 50:
            before = len(cons.received)
            sim.step()
            if len(cons.received) > before:
                arrival.append(sim.cycle)
        return arrival

    assert run("pc") == run("cp")


def test_push_overflow_raises():
    chan = ChannelQueue(1, "c")
    chan.push(1)
    with pytest.raises(SimulationError):
        chan.push(2)


def test_pop_empty_raises():
    chan = ChannelQueue(1, "c")
    with pytest.raises(SimulationError):
        chan.pop()


def test_peek_offsets():
    chan = ChannelQueue(4, "c")
    for i in range(3):
        chan.push(i)
    chan.commit()
    assert chan.peek() == 0
    assert chan.peek(2) == 2
    chan.pop()
    assert chan.peek() == 1


def test_run_until_deadlock_detection():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.run(10, until=lambda: False)


def test_run_until_stops_early():
    sim = Simulator()
    reached = sim.run(100, until=lambda: sim.cycle == 7)
    assert reached == 7


def test_capacity_validation():
    with pytest.raises(ValueError):
        ChannelQueue(0, "bad")


def test_len_reflects_pops():
    chan = ChannelQueue(4, "c")
    chan.push(1)
    chan.push(2)
    chan.commit()
    assert len(chan) == 2
    chan.pop()
    assert len(chan) == 1
