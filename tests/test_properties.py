"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asic import ASAP7_MACROS, MemoryCompiler
from repro.command import CommandSpec, Field, RoccInstruction, UInt
from repro.dram import MemoryStore
from repro.fpga import bram_count, uram_count
from repro.fpga.memcells import BRAM_BITS, URAM_BITS
from repro.kernels.attention.fixedpoint import exp2_fixed
from repro.memory import split_into_bursts
from repro.runtime import FirstFitAllocator
from repro.sim import ChannelQueue

# ------------------------------------------------------------------ channels
@settings(max_examples=60)
@given(
    capacity=st.integers(1, 8),
    ops=st.lists(st.sampled_from(["push", "pop", "commit"]), max_size=60),
)
def test_channel_queue_invariants(capacity, ops):
    """Occupancy never exceeds capacity; pops return pushes in FIFO order."""
    chan = ChannelQueue(capacity, "prop")
    pushed, popped = [], []
    counter = 0
    for op in ops:
        if op == "push" and chan.can_push():
            chan.push(counter)
            pushed.append(counter)
            counter += 1
        elif op == "pop" and chan.can_pop():
            popped.append(chan.pop())
        elif op == "commit":
            chan.commit()
        assert len(chan._items) <= capacity
    chan.commit()
    while chan.can_pop():
        popped.append(chan.pop())
        chan.commit()
    assert popped == pushed[: len(popped)]
    assert popped == sorted(popped)


# -------------------------------------------------------------------- bursts
@settings(max_examples=100)
@given(
    addr_blocks=st.integers(0, 10_000),
    length=st.integers(1, 300_000),
    max_beats=st.integers(1, 64),
)
def test_split_into_bursts_properties(addr_blocks, length, max_beats):
    beat = 64
    addr = addr_blocks * beat
    segs = split_into_bursts(addr, length, beat, max_beats)
    # Exact coverage, in order, no overlap.
    assert segs[0][0] == addr
    total = 0
    pos = addr
    for seg_addr, beats, payload in segs:
        assert seg_addr == pos
        assert 1 <= beats <= max_beats
        assert payload <= beats * beat
        assert (seg_addr // 4096) == ((seg_addr + beats * beat - 1) // 4096)
        pos += payload
        total += payload
    assert total == length


# --------------------------------------------------------------------- store
@settings(max_examples=60)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 2000), st.binary(min_size=1, max_size=200)),
        max_size=12,
    )
)
def test_memory_store_matches_flat_model(writes):
    store = MemoryStore(block_bytes=64)
    flat = bytearray(4096)
    for addr, data in writes:
        store.write(addr, data)
        flat[addr : addr + len(data)] = data
    assert store.read(0, 4096) == bytes(flat)


# ---------------------------------------------------------------------- RoCC
@settings(max_examples=80)
@given(
    system_id=st.integers(0, 255),
    core_id=st.integers(0, 255),
    funct7=st.integers(0, 127),
    rs1=st.integers(0, 2**64 - 1),
    rs2=st.integers(0, 2**64 - 1),
    xd=st.booleans(),
    rd=st.integers(0, 31),
)
def test_rocc_roundtrip_property(system_id, core_id, funct7, rs1, rs2, xd, rd):
    inst = RoccInstruction(system_id, core_id, funct7, rs1, rs2, xd, rd)
    assert RoccInstruction.decode_words(inst.encode_words()) == inst


@settings(max_examples=50)
@given(
    widths=st.lists(st.integers(1, 64), min_size=1, max_size=8),
    addr_bits=st.sampled_from([32, 34, 40, 64]),
    data=st.data(),
)
def test_command_packing_roundtrip_property(widths, addr_bits, data):
    fields = tuple(Field(f"f{i}", UInt(w)) for i, w in enumerate(widths))
    spec = CommandSpec("prop", fields)
    values = {
        f"f{i}": data.draw(st.integers(0, 2**w - 1)) for i, w in enumerate(widths)
    }
    assert spec.unpack(spec.pack(values, addr_bits), addr_bits) == values


# ----------------------------------------------------------------- allocator
@settings(max_examples=50)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("malloc"), st.integers(1, 5000)),
            st.tuples(st.just("free"), st.integers(0, 20)),
        ),
        max_size=40,
    )
)
def test_allocator_no_overlap_property(ops):
    alloc = FirstFitAllocator(0, 1 << 16, alignment=64)
    live = {}
    for op, arg in ops:
        if op == "malloc":
            try:
                addr = alloc.malloc(arg)
            except MemoryError:
                continue
            # No overlap with any live allocation.
            for a, s in live.items():
                assert addr + arg <= a or a + s <= addr
            live[addr] = arg
        elif live:
            key = sorted(live)[arg % len(live)]
            alloc.free(key)
            del live[key]
    # Conservation: free bytes + aligned live bytes == heap size.
    aligned = sum((s + 63) // 64 * 64 for s in live.values())
    assert alloc.free_bytes + aligned == 1 << 16


# ------------------------------------------------------------------ memcells
@settings(max_examples=80)
@given(width=st.integers(1, 2048), depth=st.integers(1, 100_000))
def test_cell_counts_cover_demand(width, depth):
    bits = width * depth
    assert bram_count(width, depth) * BRAM_BITS >= bits
    assert uram_count(width, depth) * URAM_BITS >= bits


# ------------------------------------------------------------ memory compiler
@settings(max_examples=60)
@given(width=st.integers(1, 1024), depth=st.integers(1, 20_000))
def test_memory_compiler_covers_request(width, depth):
    plan = MemoryCompiler(ASAP7_MACROS).compile(width, depth)
    assert plan.lanes * plan.macro.width_bits >= width
    assert plan.banks * plan.macro.depth >= depth
    assert 0 < plan.efficiency <= 1.0


# -------------------------------------------------------------- fixed point
@settings(max_examples=40)
@given(
    xs=st.lists(st.integers(-40 * (1 << 18), 0), min_size=2, max_size=50),
)
def test_exp2_fixed_monotone_property(xs):
    arr = np.array(sorted(xs), dtype=np.int64)
    ys = exp2_fixed(arr, 18)
    assert (np.diff(ys) >= 0).all()
    assert (ys >= 0).all()
    assert ys.max() <= 1 << 15
