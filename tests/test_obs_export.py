"""End-to-end observability tests: one instrumented memcpy run must yield a
coherent metrics dump, a valid Perfetto-loadable trace whose command span
contains its AXI bursts, and a per-component self-time profile."""

import json

import pytest

from repro.core.build import BeethovenBuild
from repro.kernels.memcpy import memcpy_config
from repro.obs import Observability
from repro.obs.export import (
    _assign_lanes,
    chrome_trace,
    validate_chrome_trace,
)
from repro.platforms import AWSF1Platform
from repro.runtime import FpgaHandle
from repro.sim.trace import Span, Tracer


@pytest.fixture(scope="module")
def memcpy_build():
    build = BeethovenBuild(
        memcpy_config(n_cores=1),
        AWSF1Platform(),
        observability=Observability(enabled=True),
    )
    handle = FpgaHandle(build.design)
    size = 4096
    src, dst = handle.malloc(size), handle.malloc(size)
    src.write(bytes(i % 256 for i in range(size)))
    handle.copy_to_fpga(src)
    handle.call(
        "Memcpy", "memcpy", 0,
        src=src.fpga_addr, dst=dst.fpga_addr, len_bytes=size,
    ).get(max_cycles=500_000)
    return build


def test_metrics_dump_covers_every_subsystem(memcpy_build):
    roots = {name.split("/")[0] for name in memcpy_build.registry.names()}
    assert {
        "sim", "trace", "chan", "dram", "noc", "cmd",
        "axi", "reader", "writer", "runtime",
    } <= roots
    metrics = memcpy_build.metrics()
    assert metrics["runtime/server/commands_sent"] == 1
    assert metrics["runtime/server/responses_received"] == 1
    assert int(memcpy_build.registry.value("dram/mc/read_cols")) > 0
    assert int(memcpy_build.registry.value("axi/ddr/bursts")) >= 2
    report = memcpy_build.metrics_report("runtime")
    assert "runtime/server/commands_sent" in report


def test_trace_validates_and_command_span_contains_axi_bursts(memcpy_build):
    trace = memcpy_build.chrome_trace()
    assert validate_chrome_trace(trace) == []
    # Round-trips through JSON.
    assert validate_chrome_trace(json.loads(json.dumps(trace))) == []

    tracer = memcpy_build.design.tracer
    root = next(s for s in tracer.closed_spans() if s.name == "cmd:memcpy")
    children = tracer.children_of(root.span_id)
    names = {c.name for c in children}
    assert {"dispatch", "execute"} <= names
    bursts = [c for c in children if c.name.startswith("axi:")]
    assert {"axi:read", "axi:write"} <= {b.name for b in bursts}
    for burst in bursts:
        assert root.begin_cycle <= burst.begin_cycle
        assert burst.end_cycle <= root.end_cycle

    # The exported events carry the parent linkage for reconstruction.
    by_id = {
        ev["args"]["span_id"]: ev
        for ev in trace["traceEvents"]
        if ev["ph"] == "X" and "span_id" in ev.get("args", {})
    }
    burst_ev = by_id[bursts[0].span_id]
    assert burst_ev["args"]["parent"] == root.span_id


def test_export_files(memcpy_build, tmp_path):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    memcpy_build.export_chrome_trace(str(trace_path))
    memcpy_build.export_metrics(str(metrics_path))
    trace = json.loads(trace_path.read_text())
    assert validate_chrome_trace(trace) == []
    metrics = json.loads(metrics_path.read_text())
    assert metrics["runtime/server/commands_sent"] == 1


def test_profile_report_lists_component_self_time(memcpy_build):
    report = memcpy_build.profile_report()
    assert "self-time profile" in report
    # The DRAM controller and the kernel's own commit phase always appear.
    assert "mc" in report
    assert "(kernel)/commit" in report
    prof = memcpy_build.design.sim.tick_profile
    assert all(total >= 0 and calls > 0 for total, calls in prof.values())


def test_observability_off_disables_spans_and_profiler():
    build = BeethovenBuild(
        memcpy_config(n_cores=1),
        AWSF1Platform(),
        observability=Observability.off(),
    )
    handle = FpgaHandle(build.design)
    src, dst = handle.malloc(256), handle.malloc(256)
    handle.call(
        "Memcpy", "memcpy", 0,
        src=src.fpga_addr, dst=dst.fpga_addr, len_bytes=256,
    ).get(max_cycles=500_000)
    assert build.design.span_tracker is None
    assert build.design.tracer.closed_spans() == []
    assert not build.design.sim.tick_profile
    # Metrics stay on: they are cheap enough to be unconditional.
    assert build.metrics()["runtime/server/commands_sent"] == 1
    assert "no profile samples" in build.profile_report()


# ---------------------------------------------------------------------------
# Exporter unit tests.
# ---------------------------------------------------------------------------


def test_assign_lanes_spreads_overlaps():
    spans = [
        Span(1, "a", "t", 0, 10),
        Span(2, "b", "t", 5, 15),   # overlaps a -> new lane
        Span(3, "c", "t", 10, 20),  # fits after a -> lane 0 again
    ]
    lanes = _assign_lanes(spans)
    assert lanes[1] == 0 and lanes[2] == 1 and lanes[3] == 0


def test_chrome_trace_lane_thread_names():
    tracer = Tracer()
    a = tracer.begin_span(0, "core0", "a")
    b = tracer.begin_span(5, "core0", "b")
    tracer.end_span(a, 10)
    tracer.end_span(b, 15)
    trace = chrome_trace(tracer)
    names = [
        ev["args"]["name"]
        for ev in trace["traceEvents"]
        if ev["ph"] == "M" and ev["name"] == "thread_name"
    ]
    assert names == ["core0", "core0 #2"]
    assert validate_chrome_trace(trace) == []


def test_validate_chrome_trace_rejects_malformed():
    assert validate_chrome_trace(42) == ["trace must be a JSON object or array"]
    assert validate_chrome_trace({}) == ["top-level object lacks a 'traceEvents' list"]
    problems = validate_chrome_trace(
        [
            "not-an-object",
            {"name": "x"},                                  # no ph
            {"ph": "X", "name": "x", "ts": -1},             # bad ts
            {"ph": "X", "name": "x", "ts": 0},              # missing dur
            {"ph": "X", "ts": 0, "dur": 1},                 # missing name
            {"ph": "M", "name": "meta"},                    # fine
            {"ph": "X", "name": "ok", "ts": 3, "dur": 2},   # fine
        ]
    )
    assert len(problems) == 5
