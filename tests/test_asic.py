"""Tests for the ASIC backend: memory compiler and ChipKIT integration."""

import os

import pytest

from repro.asic import (
    ASAP7_MACROS,
    ChipKitIntegration,
    MemoryCompiler,
    MemoryCompilerError,
    MissingCpuSourceError,
    SAED_MACROS,
)
from repro.core import BeethovenBuild, BuildMode
from repro.hdl import emit_design
from repro.kernels.vecadd import vector_add_config
from repro.platforms import Asap7Platform, ChipKitPlatform, SynopsysPdkPlatform


def test_exact_fit_single_macro():
    plan = MemoryCompiler(ASAP7_MACROS).compile(64, 512)
    assert plan.n_macros == 1
    assert plan.efficiency == 1.0


def test_width_cascading():
    plan = MemoryCompiler(ASAP7_MACROS).compile(512, 320)
    assert plan.lanes * plan.macro.width_bits >= 512
    assert plan.total_bits >= 512 * 320


def test_depth_banking():
    plan = MemoryCompiler(ASAP7_MACROS).compile(64, 5000)
    assert plan.banks >= 2
    assert plan.banks * plan.macro.depth >= 5000
    # Banking pays a decode/mux area overhead.
    single = MemoryCompiler(ASAP7_MACROS).compile(64, plan.macro.depth)
    assert plan.area_um2 > plan.n_macros / single.n_macros * single.area_um2


def test_min_area_selection():
    compiler = MemoryCompiler(ASAP7_MACROS)
    plan = compiler.compile(32, 64)
    brute = min(
        (
            m
            for m in ASAP7_MACROS
            if m.n_rw_ports >= 1
        ),
        key=lambda m: (-(-32 // m.width_bits)) * (-(-64 // m.depth)) * m.area_um2,
    )
    assert plan.macro.name == brute.name


def test_dual_port_requirement():
    plan = MemoryCompiler(ASAP7_MACROS).compile(64, 256, n_rw_ports=2)
    assert plan.macro.n_rw_ports >= 2
    with pytest.raises(MemoryCompilerError):
        MemoryCompiler(ASAP7_MACROS).compile(64, 256, n_rw_ports=3)


def test_bad_requests_rejected():
    with pytest.raises(MemoryCompilerError):
        MemoryCompiler(ASAP7_MACROS).compile(0, 64)
    with pytest.raises(MemoryCompilerError):
        MemoryCompiler([])


def test_saed_library_differs():
    asap = MemoryCompiler(ASAP7_MACROS).compile(64, 512)
    saed = MemoryCompiler(SAED_MACROS).compile(64, 512)
    assert saed.area_um2 > asap.area_um2  # older node, bigger cells


def test_asic_build_compiles_all_memories():
    build = BeethovenBuild(vector_add_config(1), Asap7Platform(), BuildMode.Simulation)
    assert build.design.macro_plans  # reader/writer buffers compiled
    for _path, plan in build.design.macro_plans:
        assert plan.n_macros >= 1


def test_synopsys_platform_builds():
    build = BeethovenBuild(vector_add_config(1), SynopsysPdkPlatform())
    for _path, plan in build.design.macro_plans:
        assert plan.macro.name.startswith("saed")


def test_chipkit_requires_m0_source(tmp_path):
    with pytest.raises(MissingCpuSourceError):
        ChipKitIntegration(m0_source_path="").validate()
    with pytest.raises(MissingCpuSourceError):
        ChipKitIntegration(m0_source_path="/no/such/path").validate()
    m0 = tmp_path / "m0"
    m0.mkdir()
    ChipKitIntegration(m0_source_path=str(m0)).validate()


def test_chipkit_top_wraps_fabric(tmp_path):
    m0 = tmp_path / "m0"
    m0.mkdir()
    platform = ChipKitPlatform(m0_source_path=str(m0))
    build = BeethovenBuild(vector_add_config(1), platform)
    top = build.emit_chipkit_top()
    names = [inst.module.name for inst in top.instances]
    assert "arm_cortex_m0" in names
    verilog = emit_design(top)
    assert "module chipkit_top" in verilog


def test_chipkit_build_without_m0_fails(tmp_path):
    platform = ChipKitPlatform(m0_source_path=str(tmp_path / "missing"))
    build = BeethovenBuild(vector_add_config(1), platform)
    with pytest.raises(MissingCpuSourceError):
        build.emit_chipkit_top()
