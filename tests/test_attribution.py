"""Tests for the cycle-attribution layer (repro.obs.attribution) and its
satellites: segment decomposition on hand-built span trees, contention
rollups, bench-history regression checks, histogram percentiles, trace
truncation warnings, and the profiled-compiled fusion rule."""

import json

import pytest

from repro.axi.monitor import TxnRecord
from repro.obs.attribution import (
    SEGMENTS,
    attribution_report,
    contention_summary,
    counter_track_events,
    dram_service_split,
    extract_command_paths,
    render_attribution_report,
    segment_totals,
)
from repro.obs.registry import DEFAULT_PERCENTILES, Histogram, MetricRegistry
from repro.obs.regress import (
    append_history,
    check_regressions,
    flatten_numeric,
    load_history,
    metric_direction,
    render_check,
)
from repro.sim.trace import Tracer


class _FakeMonitor:
    def __init__(self, records):
        self.records = records
        self.port_name = "ddr"


def _cmd_tree(tracer, begin, dispatch, noc_in, execute, end, bursts=()):
    """Build one cmd span tree: returns the root id.

    ``bursts``: (begin, end, kind, addr, beats) child spans inside execute.
    """
    root = tracer.begin_span(begin, "sys0/core0", "cmd:test")
    d = tracer.begin_span(dispatch[0], "runtime", "dispatch", parent=root)
    tracer.end_span(d, dispatch[1])
    x = tracer.begin_span(execute[0], "sys0/core0", "execute", parent=root)
    for b, e, kind, addr, beats in bursts:
        s = tracer.begin_span(
            b, "reader/r0", f"axi:{kind}", parent=root, addr=addr, beats=beats
        )
        tracer.end_span(s, e)
    tracer.end_span(x, execute[1])
    tracer.end_span(root, end)
    return root


# ---------------------------------------------------------------------------
# Segment decomposition on hand-built span trees.
# ---------------------------------------------------------------------------


def test_decomposition_no_bursts_exact_sum():
    tracer = Tracer()
    _cmd_tree(tracer, 10, (14, 20), None, (25, 95), 100)
    paths = extract_command_paths(tracer)
    assert len(paths) == 1
    p = paths[0]
    assert p.latency == 90
    assert sum(p.segments.values()) == 90
    assert p.segments["queue_wait"] == 4  # 10..14
    assert p.segments["dispatch"] == 6  # 14..20
    assert p.segments["cmd_noc"] == 5  # 20..25
    assert p.segments["core_compute"] == 70  # whole execute window
    assert p.segments["response"] == 5  # 95..100
    assert set(p.segments) == set(SEGMENTS)


def test_decomposition_burst_phases_and_compute_gap():
    """One read burst with known DDR timing splits the execute window into
    noc-request / dram-queue / dram-service / noc-return plus compute."""
    tracer = Tracer()
    _cmd_tree(
        tracer, 0, (0, 2), None, (5, 65), 70,
        bursts=[(10, 50, "read", 0x1000, 4)],
    )
    rec = TxnRecord("read", 0, 0x1000, 4, issue_cycle=15,
                    first_data_cycle=30, complete_cycle=42)
    paths = extract_command_paths(tracer, [_FakeMonitor([rec])])
    p = paths[0]
    assert sum(p.segments.values()) == p.latency == 70
    assert p.segments["mem_noc_request"] == 5  # 10..15
    assert p.segments["mem_dram_queue"] == 15  # 15..30
    assert p.segments["mem_dram_service"] == 12  # 30..42
    assert p.segments["mem_noc_return"] == 8  # 42..50
    # 5..10 and 50..65 have no outstanding burst -> compute.
    assert p.segments["core_compute"] == 20
    assert p.segments["mem_unmatched"] == 0


def test_decomposition_overlapping_bursts_oldest_wins():
    """While two bursts overlap, only the oldest attributes the interval —
    segments still sum exactly (no double counting)."""
    tracer = Tracer()
    _cmd_tree(
        tracer, 0, (0, 0), None, (0, 100), 100,
        bursts=[
            (10, 60, "read", 0x0, 4),
            (20, 80, "read", 0x100, 4),
        ],
    )
    recs = [
        TxnRecord("read", 0, 0x0, 4, 12, 20, 55),
        TxnRecord("read", 0, 0x100, 4, 25, 40, 75),
    ]
    paths = extract_command_paths(tracer, [_FakeMonitor(recs)])
    p = paths[0]
    assert sum(p.segments.values()) == 100
    # 10..60 belongs to burst 1; burst 2 only owns 60..80 (its queue phase
    # already ended, so that lands in dram-service then noc-return).
    assert p.segments["core_compute"] == 10 + 20  # 0..10 and 80..100


def test_decomposition_unmatched_burst_books_unmatched_segment():
    tracer = Tracer()
    _cmd_tree(
        tracer, 0, (0, 0), None, (0, 50), 50,
        bursts=[(10, 30, "read", 0x42, 2)],
    )
    paths = extract_command_paths(tracer)  # no monitor records at all
    p = paths[0]
    assert p.segments["mem_unmatched"] == 20
    assert sum(p.segments.values()) == 50


def test_decomposition_clamps_malformed_children():
    """Children poking outside the root interval are clamped, never negative."""
    tracer = Tracer()
    root = tracer.begin_span(20, "t", "cmd:odd")
    d = tracer.begin_span(5, "t", "dispatch", parent=root)  # begins early
    tracer.end_span(d, 90)  # ends past the execute start
    x = tracer.begin_span(40, "t", "execute", parent=root)
    tracer.end_span(x, 200)  # ends past root end
    tracer.end_span(root, 100)
    p = extract_command_paths(tracer)[0]
    assert sum(p.segments.values()) == 80
    assert all(v >= 0 for v in p.segments.values())


def test_fifo_matching_pairs_repeated_addresses_in_order():
    """Two bursts with identical (kind, addr, beats) match records in FIFO
    order, keeping phase boundaries with their own burst."""
    tracer = Tracer()
    _cmd_tree(
        tracer, 0, (0, 0), None, (0, 100), 100,
        bursts=[(0, 40, "write", 0x0, 1), (50, 90, "write", 0x0, 1)],
    )
    recs = [
        TxnRecord("write", 0, 0x0, 1, 10, 20, 30),
        TxnRecord("write", 0, 0x0, 1, 60, 70, 80),
    ]
    p = extract_command_paths(tracer, [_FakeMonitor(recs)])[0]
    assert p.segments["mem_noc_request"] == 10 + 10
    assert p.segments["mem_dram_queue"] == 10 + 10
    assert p.segments["mem_dram_service"] == 10 + 10
    assert p.segments["mem_noc_return"] == 10 + 10
    assert sum(p.segments.values()) == 100


def test_segment_totals_and_report_render():
    tracer = Tracer()
    _cmd_tree(tracer, 0, (0, 2), None, (4, 40), 44)
    _cmd_tree(tracer, 50, (50, 52), None, (54, 90), 94)
    paths = extract_command_paths(tracer)
    totals = segment_totals(paths)
    assert sum(totals.values()) == sum(p.latency for p in paths) == 88
    report = attribution_report(tracer, cycles=100)
    assert report["commands"] == 2
    assert report["bottleneck"] == "compute"
    text = render_attribution_report(report)
    assert "compute-bound" in text
    assert "2 command(s)" in text


def test_open_root_spans_are_skipped():
    tracer = Tracer()
    tracer.begin_span(0, "t", "cmd:open")  # never closed
    assert extract_command_paths(tracer) == []
    assert extract_command_paths(None) == []


# ---------------------------------------------------------------------------
# Contention rollup + DRAM service split.
# ---------------------------------------------------------------------------


def test_contention_summary_rolls_up_by_suffix():
    metrics = {
        "dram/ctrl/bus_cycles": 500,
        "dram/ctrl/row_hits": 90,
        "dram/ctrl/row_misses": 10,
        "dram/ctrl/row_conflicts": 4,
        "dram/ctrl/queue_wait_cycles": 200,
        "dram/ctrl/read_cols": 60,
        "dram/ctrl/write_cols": 40,
        "dram/ctrl/activations": 12,
        "dram/ctrl/bank0/row_hits": 50,
        "dram/ctrl/bank0/activations": 6,
        "noc/n0/stall_ar_cycles": 7,
        "noc/n1/stall_ar_cycles": 3,
        "noc/n1/stall_w_cycles": 5,
        "reader/a/stall_gap_cycles": 11,
        "reader/b/stall_gap_cycles": 9,
        "writer/a/stall_backpressure_cycles": 13,
        "unrelated/thing": 99,
    }
    s = contention_summary(metrics, cycles=1000)
    assert s["dram"]["bus_utilization"] == 0.5
    assert s["dram"]["row_hit_rate"] == 0.9
    assert s["dram"]["mean_queue_wait"] == 2.0
    # Per-bank entries are kept separately, not double counted.
    assert s["dram"]["row_hits"] == 90
    assert s["dram"]["banks"]["bank0"] == {"row_hits": 50, "activations": 6}
    assert s["noc"]["stall_cycles"] == {"ar": 10, "w": 5}
    assert s["noc"]["stall_cycles_total"] == 15
    assert s["tlp"]["reader"]["stall_gap_cycles"] == 20
    assert s["tlp"]["writer"]["stall_backpressure_cycles"] == 13


def test_dram_service_split_uses_timing_weights():
    from repro.dram.timing import DramTiming

    timing = DramTiming()
    contention = contention_summary(
        {
            "dram/c/bus_cycles": 100,
            "dram/c/activations": 10,
            "dram/c/row_conflicts": 5,
            "dram/c/turnarounds": 2,
            "dram/c/refreshes": 1,
        },
        cycles=1000,
    )
    split = dram_service_split(contention, timing)
    assert split["column_transfer"]["cycles"] == 100
    assert split["activate"]["cycles"] == 10 * timing.t_rcd
    assert split["precharge"]["cycles"] == 5 * timing.t_rp
    assert split["turnaround"]["cycles"] == 2 * timing.t_bus_turn
    assert split["refresh"]["cycles"] == 1 * timing.t_rfc
    assert abs(sum(v["share"] for v in split.values()) - 1.0) < 1e-9


def test_counter_track_events_cumulative_and_valid():
    from repro.obs.export import validate_chrome_trace

    recs = [
        TxnRecord("read", 0, 0x0, 4, 10, 12, 20),
        TxnRecord("read", 0, 0x40, 4, 15, 22, 30),
        TxnRecord("write", 0, 0x80, 4, 5, 8, 12),
    ]
    events = counter_track_events([_FakeMonitor(recs)])
    reads = [e for e in events if "read" in e["name"]]
    assert [(e["ts"], e["args"]["value"]) for e in reads] == [
        (10, 1), (15, 2), (20, 1), (30, 0),
    ]
    assert all(e["ph"] == "C" for e in events)
    assert validate_chrome_trace(events) == []


# ---------------------------------------------------------------------------
# Histogram percentiles (satellite: p999 + configurable list).
# ---------------------------------------------------------------------------


def test_histogram_dump_reports_default_percentiles():
    h = Histogram()
    for v in range(1, 1001):
        h.observe(v)
    dump = h.dump_value()
    for q in DEFAULT_PERCENTILES:
        key = "p" + f"{q * 100:g}".replace(".", "")
        assert key in dump
    # Bucket interpolation is exact at bucket bounds and monotone.
    assert dump["p50"] <= dump["p90"] <= dump["p99"] <= dump["p999"] <= 1024
    assert dump["p999"] >= dump["p99"] >= 900


def test_histogram_custom_percentiles_and_registry_pass_through():
    reg = MetricRegistry()
    h = reg.scope("a").histogram("lat", buckets=(10, 100), percentiles=(0.25,))
    for v in (1, 2, 3, 4):
        h.observe(v)
    dump = reg.dump()["a/lat"]
    assert "p25" in dump and "p50" not in dump
    assert 0 < dump["p25"] <= 10
    with pytest.raises(ValueError):
        Histogram(percentiles=(1.5,))
    # The rendered report shows the tails next to count/total.
    report = reg.render_report()
    assert "count=4" in report and "p25=" in report


def test_histogram_quantile_empty_and_overflow():
    h = Histogram(buckets=(10,))
    assert h.quantile(0.5) == 0.0
    h.observe(1000)  # overflow bin
    assert h.quantile(0.9) == 10.0  # clamped to the largest bound


# ---------------------------------------------------------------------------
# Trace truncation warning (satellite: never-silent ring-buffer wrap).
# ---------------------------------------------------------------------------


def test_chrome_trace_warns_on_ring_buffer_wrap():
    from repro.obs.export import TraceTruncationWarning, chrome_trace

    tracer = Tracer(max_events=2)
    for i in range(5):
        tracer.record(i, "ch", "ev", i)
    assert tracer.dropped_events == 3
    with pytest.warns(TraceTruncationWarning):
        trace = chrome_trace(tracer)
    assert trace["otherData"]["dropped_events"] == 3


def test_chrome_trace_quiet_without_drops(recwarn):
    from repro.obs.export import chrome_trace

    tracer = Tracer()
    tracer.record(1, "ch", "ev")
    trace = chrome_trace(tracer)
    assert "dropped_events" not in trace["otherData"]
    assert not recwarn.list


# ---------------------------------------------------------------------------
# Profiled compiled runs keep per-component attribution (satellite 1).
# ---------------------------------------------------------------------------


class _FusableRelay:
    """Minimal relay stage whose wake signature is the whole chain's channel
    set, making consecutive stages fusable under the compiled backend."""

    def __new__(cls, name, inp, out, all_links):
        from repro.sim import Component

        class _Stage(Component):
            def __init__(self):
                super().__init__(name)
                self.inp, self.out, self.all_links = inp, out, all_links
                self._item = None

            def channels(self):
                return [self.inp, self.out]

            def wake_channels(self):
                return list(self.all_links)

            def tick(self, cycle):
                if self._item is not None and self.out.can_push():
                    self.out.push(self._item)
                    self._item = None
                if self._item is None and self.inp.can_pop():
                    self._item = self.inp.pop()

            def next_event(self, cycle):
                from repro.sim import NEVER

                return cycle if self._item is not None else NEVER

        return _Stage()


def _relay_chain(profile):
    from repro.sim import ChannelQueue, Simulator

    sim = Simulator(scheduling="compiled", profile=profile)
    links = [ChannelQueue(2, f"l{i}") for i in range(5)]
    for i in range(4):
        sim.add(_FusableRelay(f"s{i}", links[i], links[i + 1], links))
    for link in links:
        sim.register_channel(link)
    for v in range(8):
        if links[0].can_push():
            links[0].push(v)
    sim.run(50)
    return sim


def test_compiled_profile_has_no_fused_slots():
    """With the profiler on, chain fusion is disabled so every self-time
    sample lands on a real component; an unprofiled run still fuses and
    both produce the same cycle count."""
    profiled = _relay_chain(profile=True)
    plain = _relay_chain(profile=False)
    assert profiled.cycle == plain.cycle
    # The optimisation is intact without the profiler...
    assert any(len(g) > 1 for g in plain._program.groups)
    # ...and fully disabled with it: one slot per component, and every
    # collected self-time label is a real component name.
    assert all(len(g) == 1 for g in profiled._program.groups)
    assert profiled.tick_profile, "profiler collected no samples"
    assert not any(label.startswith("(fused)") for label in profiled.tick_profile)


# ---------------------------------------------------------------------------
# Bench history + regression check (repro.obs.regress).
# ---------------------------------------------------------------------------


def test_flatten_and_direction_classifier():
    flat = flatten_numeric({"a": {"b": 2, "ok": True}, "c": 1.5, "s": "x"})
    assert flat == {"a.b": 2.0, "c": 1.5}
    assert metric_direction("cases.dense.speedup.compiled_vs_naive") == 1
    assert metric_direction("modes.naive.cycles_per_second") == 1
    assert metric_direction("modes.naive.wall_seconds") == -1
    assert metric_direction("modes.naive.cycles") == -1
    assert metric_direction("cases.dense.size_bytes") == 0
    assert metric_direction("n_cores") == 0


def _write_bench(tmp_path, name, wall, speedup):
    path = tmp_path / f"BENCH_{name}.json"
    path.write_text(json.dumps(
        {"modes": {"naive": {"wall_seconds": wall}}, "speedup": speedup}
    ))
    return str(path)


def test_history_append_check_and_gate(tmp_path):
    hist = str(tmp_path / "history.jsonl")

    # First point: no baseline -> warn-only pass.
    append_history(hist, _write_bench(tmp_path, "kernel", 1.0, 2.0))
    entries = load_history(hist)
    assert len(entries) == 1
    assert entries[0]["bench"] == "kernel"
    assert entries[0]["metrics"]["speedup"] == 2.0
    assert "git_sha" in entries[0] and "code_salt" in entries[0]
    ok, findings, n_baseline = check_regressions(entries)
    assert ok and n_baseline == 0
    assert "no baseline" in render_check(ok, findings, n_baseline, "kernel")

    # Second point, similar numbers: gate armed, passes.
    append_history(hist, _write_bench(tmp_path, "kernel", 1.05, 1.95))
    entries = load_history(hist)
    ok, findings, n_baseline = check_regressions(entries)
    assert ok and n_baseline == 1 and not findings

    # Regressed point: speedup collapsed and wall time ballooned.
    append_history(hist, _write_bench(tmp_path, "kernel", 3.0, 0.5))
    entries = load_history(hist)
    ok, findings, n_baseline = check_regressions(entries, tolerance=0.2)
    assert not ok
    regressed = {f["metric"] for f in findings}
    assert "speedup" in regressed
    assert "modes.naive.wall_seconds" in regressed
    assert "regression(s)" in render_check(ok, findings, n_baseline, "kernel")


def test_history_tolerates_torn_lines_and_filters_by_name(tmp_path):
    hist = tmp_path / "history.jsonl"
    hist.write_text(
        json.dumps({"bench": "a", "metrics": {"speedup": 1.0}}) + "\n"
        + "{torn line\n"
        + json.dumps({"bench": "b", "metrics": {"speedup": 9.0}}) + "\n"
    )
    assert [e["bench"] for e in load_history(str(hist))] == ["a", "b"]
    assert [e["bench"] for e in load_history(str(hist), name="a")] == ["a"]
    assert load_history(str(tmp_path / "missing.jsonl")) == []


def test_bench_history_cli_roundtrip(tmp_path):
    import subprocess
    import sys

    hist = str(tmp_path / "h.jsonl")
    bench = _write_bench(tmp_path, "kernel", 1.0, 2.0)
    env_args = dict(cwd="/root/repo")

    def run(*args):
        return subprocess.run(
            [sys.executable, "tools/bench_history.py", *args],
            capture_output=True, text=True, **env_args,
        )

    r = run("append", "--history", hist, "--bench", bench)
    assert r.returncode == 0, r.stderr
    assert "appended 'kernel'" in r.stdout
    r = run("check", "--history", hist)
    assert r.returncode == 0
    assert "no baseline" in r.stdout
    run("append", "--history", hist, "--bench", bench)
    bad = _write_bench(tmp_path, "kernel", 9.0, 0.1)
    run("append", "--history", hist, "--bench", bad)
    r = run("check", "--history", hist)
    assert r.returncode == 1
    assert "regression(s)" in r.stdout
