"""Chaos sweep: the robustness contract under hundreds of seeded schedules.

Asserts that every seeded fault schedule, under all three scheduling modes,
terminates bounded in an allowed outcome (correct / typed error /
degraded-but-correct) — never a hang, never silent corruption — and that a
seed's realised fault schedule, final cycle count and outcome are identical
across modes.  The empty plan must be a strict no-op.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.faults.chaos import (
    GOOD_OUTCOMES,
    MODES,
    SCENARIOS,
    default_plan,
    render_chaos_report,
    run_chaos,
    run_chaos_sweep,
    run_empty_plan_differential,
)

#: 36 seeds x 4 scenarios x 4 modes = 576 seeded schedules (the acceptance
#: floor is 200).
N_SEEDS = 36


@pytest.fixture(scope="module")
def sweep():
    return run_chaos_sweep(range(N_SEEDS))


def test_sweep_meets_schedule_count(sweep):
    assert len(sweep) == N_SEEDS * len(SCENARIOS) * len(MODES) >= 200


def test_contract_no_hangs_no_silent_corruption(sweep):
    violations = [o for o in sweep if o.outcome not in GOOD_OUTCOMES]
    assert not violations, render_chaos_report(sweep)
    # Termination was bounded by construction (every run returned); make the
    # bound visible: no run consumed anywhere near its cycle budget.
    assert max(o.cycles for o in sweep) < 400_000


def test_recovery_paths_actually_exercised(sweep):
    """The sweep population must contain all three allowed outcomes — a
    sweep that never recovers (or never faults) proves nothing."""
    outcomes = {o.outcome for o in sweep}
    assert outcomes == set(GOOD_OUTCOMES)
    assert any(o.retries > 0 and o.outcome == "degraded" for o in sweep)
    assert any(o.quarantines > 0 for o in sweep)
    assert any(o.n_faults == 0 and o.outcome == "ok" for o in sweep)


def test_outcome_identical_across_scheduling_modes(sweep):
    by_key = {}
    for o in sweep:
        by_key.setdefault((o.scenario, o.seed), []).append(o)
    for (scenario, seed), group in by_key.items():
        assert len(group) == len(MODES)
        ref = group[0]
        for other in group[1:]:
            assert (
                other.outcome,
                other.cycles,
                other.n_faults,
                other.fingerprint,
            ) == (ref.outcome, ref.cycles, ref.n_faults, ref.fingerprint), (
                f"{scenario} seed={seed}: {ref.mode} vs {other.mode} diverged"
            )


def test_same_seed_bit_identical_rerun():
    a = run_chaos("memcpy", "selective", 2)
    b = run_chaos("memcpy", "selective", 2)
    assert asdict(a) == asdict(b)
    assert a.n_faults > 0  # seed 2 is known to inject


def test_default_plan_is_pure_function_of_seed():
    assert default_plan(7) == default_plan(7)
    plans = {default_plan(s) for s in range(20)}
    assert len(plans) > 1  # the sweep population is not degenerate


@pytest.mark.parametrize("mode", MODES)
def test_empty_plan_is_strict_noop(mode):
    d = run_empty_plan_differential(mode)
    assert d["data_ok"]
    assert d["fault_metrics_nonzero"] == {}
    assert d["identical"], (
        f"empty FaultPlan perturbed {mode}: cycles={d['cycles']} "
        f"mismatched={d['mismatched_keys'][:12]}"
    )
