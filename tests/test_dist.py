"""Sharded parallel simulation (``repro.dist``): the differential contract.

The headline property: partitioning a design over worker processes is an
*implementation detail* — final cycle counts, stable metrics, and fault
fingerprints are bit-identical between the serial reference engine and the
forked engine, and across worker counts.  Volatile ``dist/*`` counters
describe the harness and are exempt by design.
"""

import os
import signal
import time

import pytest

from repro.baselines.spin_core import spin_config
from repro.core.build import BeethovenBuild
from repro.dist import DistConfig, DistError, PartitionDescriptor
from repro.platforms import multi_die_platform
from repro.runtime import FpgaHandle
from repro.sim import PartitionSyncTimeout


def _build(n_workers, engine, n_cores=8, n_slrs=4):
    return BeethovenBuild(
        spin_config(n_cores, work_per_tick=4),
        multi_die_platform(n_slrs),
        distributed=DistConfig(n_workers=n_workers, engine=engine),
    )


def _run_workload(build, n_cores=8):
    """Heterogeneous per-core load: every core gets different work."""
    handle = FpgaHandle(build.design)
    futs = [
        handle.call("Spin", "spin", c, rounds=40 + 9 * c, seed=c + 1)
        for c in range(n_cores)
    ]
    for fut in futs:
        fut.get()
    design = build.design
    result = (design.sim.cycle, design.metrics(stable_only=True))
    design.sim.shutdown()
    return result


# ------------------------------------------------------------- differential
def test_fork_matches_serial_and_worker_counts_match():
    """Serial == fork at each worker count; everything equal across counts."""
    reference = None
    for n_workers in (2, 3):
        serial = _run_workload(_build(n_workers, "serial"))
        fork = _run_workload(_build(n_workers, "fork"))
        assert serial == fork, f"engine mismatch at {n_workers} workers"
        if reference is None:
            reference = serial
        else:
            assert serial == reference, f"worker-count {n_workers} diverged"
    assert reference[0] > 0
    assert reference[1]  # stable metrics actually exist


def test_dist_chaos_fingerprints_identical_across_engines():
    from repro.faults.chaos import run_chaos

    for seed in (2, 3):
        a = run_chaos("memcpy", "dist:serial", seed)
        b = run_chaos("memcpy", "dist:fork", seed)
        assert (a.outcome, a.cycles, a.n_faults, a.fingerprint) == (
            b.outcome,
            b.cycles,
            b.n_faults,
            b.fingerprint,
        )
        assert not a.violates_contract


def test_dist_counters_present_and_volatile():
    build = _build(2, "serial")
    _run_workload(build)
    metrics = build.design.metrics(prefix="dist/")
    assert metrics["dist/partitions"] == 2
    assert metrics["dist/slices"] > 0
    assert metrics["dist/slice_width"] >= 1
    # Volatile: the stable dump carries no harness counters.
    stable = build.design.metrics(stable_only=True)
    assert not any(k.startswith("dist/") for k in stable)


def test_summary_mentions_sharding():
    build = _build(2, "serial")
    assert "sharded: 2 partitions" in build.summary()
    build.design.sim.shutdown()


# --------------------------------------------------------------- validation
def test_single_die_design_rejected():
    from repro.platforms import KriaPlatform

    with pytest.raises(DistError):
        BeethovenBuild(
            spin_config(2),
            KriaPlatform(),
            distributed=DistConfig(n_workers=2),
        )


def test_more_workers_than_slr_groups_rejected():
    with pytest.raises(DistError, match="workers"):
        _build(5, "serial", n_slrs=4)


def test_slice_width_beyond_lookahead_rejected():
    with pytest.raises(DistError, match="slice"):
        BeethovenBuild(
            spin_config(8, work_per_tick=4),
            multi_die_platform(4, slr_crossing_latency=4),
            distributed=DistConfig(n_workers=2, slice_width=5),
        )


def test_bool_distributed_rejected():
    with pytest.raises(DistError, match="DistConfig or a worker count"):
        BeethovenBuild(
            spin_config(8), multi_die_platform(4), distributed=True
        )


def test_explicit_fork_engine_unavailable_is_typed():
    import repro.dist.engine as engine_mod

    original = engine_mod._fork_available
    engine_mod._fork_available = lambda: False
    try:
        with pytest.raises(DistError, match="fork"):
            _build(2, "fork")
    finally:
        engine_mod._fork_available = original


# ----------------------------------------------------------- descriptor
def test_partition_descriptor_is_deterministic_and_complete():
    b2 = _build(2, "serial")
    b2b = _build(2, "serial")
    d2, d2b = b2.design.dist_plan.descriptor(), b2b.design.dist_plan.descriptor()
    assert isinstance(d2, PartitionDescriptor)
    assert d2 == d2b
    assert d2.n_workers == 2
    assert d2.slice_width >= 1
    assert len(d2.cut_set) > 0
    # The SLR->partition map covers every die.
    assert len(d2.slr_assignment) == 4
    d3 = _build(3, "serial").design.dist_plan.descriptor()
    assert d3 != d2 and d3.n_workers == 3


def test_job_fingerprint_covers_partition_descriptor():
    from repro.farm import Job, job_fingerprint

    base = job_fingerprint("m:f", (1,), {})
    d2 = _build(2, "serial").design.dist_plan.descriptor()
    d3 = _build(3, "serial").design.dist_plan.descriptor()
    fp2 = job_fingerprint("m:f", (1,), {}, partition=d2)
    fp3 = job_fingerprint("m:f", (1,), {}, partition=d3)
    assert len({base, fp2, fp3}) == 3
    assert Job("m:f", (1,), partition=d2).fingerprint == fp2


# --------------------------------------------------- PartitionSyncTimeout
def test_killed_worker_surfaces_partition_sync_timeout():
    build = BeethovenBuild(
        spin_config(8, work_per_tick=4),
        multi_die_platform(4),
        distributed=DistConfig(n_workers=2, engine="fork", barrier_timeout_s=10.0),
    )
    handle = FpgaHandle(build.design)
    fut = handle.call("Spin", "spin", 7, rounds=4000, seed=1)
    sim = build.design.sim
    sim.run_slice(sim.slice_width * 2)  # forces the fork
    assert sim._children, "fork engine should have spawned workers"
    victim = sim._children[0]
    os.kill(victim.process.pid, signal.SIGKILL)
    victim.process.join(timeout=5.0)
    with pytest.raises(PartitionSyncTimeout) as excinfo:
        fut.get(max_cycles=200_000)
    exc = excinfo.value
    assert exc.partition == victim.pid
    assert exc.dump is not None
    assert "partitions" in exc.dump
    sim.shutdown()


def test_partition_sync_timeout_is_a_deadlock_error():
    from repro.sim import DeadlockError

    assert issubclass(PartitionSyncTimeout, DeadlockError)


# ------------------------------------------------------------- pool stats
def test_serial_pool_collects_stats():
    from repro.farm import Job, SerialPool

    pool = SerialPool()
    outs = pool.run([Job("math:hypot", (3, 4)), Job("math:hypot", (6, 8))])
    assert [o.value for o in outs] == [5.0, 10.0]
    stats = pool.last_stats
    assert stats.jobs == 2
    assert stats.dispatched["serial"] == 2
    assert stats.elapsed_seconds >= 0.0
    assert set(stats.utilization) == {"serial"}


def test_worker_pool_collects_utilization_and_queue_depth():
    from repro.farm import Job, WorkerPool
    from repro.farm.pool import multiprocessing_available

    if not multiprocessing_available():
        pytest.skip("multiprocessing unavailable in this sandbox")
    pool = WorkerPool(2, default_timeout_s=60.0)
    jobs = [Job("math:hypot", (i, i + 1)) for i in range(6)]
    outs = pool.run(jobs)
    assert all(o.ok for o in outs)
    stats = pool.last_stats
    assert stats.jobs == 6
    assert stats.queue_high_water >= 1
    assert sum(stats.dispatched.values()) == 6
    assert 0.0 <= stats.mean_utilization <= 1.0


def test_bind_pool_metrics_publishes_gauges():
    from repro.farm import Job, SerialPool, bind_pool_metrics
    from repro.obs.registry import MetricRegistry

    registry = MetricRegistry()
    pool = SerialPool()
    bind_pool_metrics(pool, registry)
    pool.run([Job("math:hypot", (3, 4))])
    dump = registry.dump()
    assert dump["farm/pool/jobs"] == 1
    assert dump["farm/pool/workers"] == 1
    # Harness-side gauges must stay out of stable comparisons.
    assert "farm/pool/jobs" not in registry.dump(stable_only=True)
