"""Tests for the RoCC command subsystem: packing, routing, adapters."""

import pytest

from repro.command import (
    Address,
    BeethovenIO,
    CommandRouter,
    CommandSpec,
    CoreCommandAdapter,
    EmptyAccelResponse,
    Field,
    Float32,
    MmioFrontend,
    ResponseSpec,
    RoccInstruction,
    RoccResponse,
    UInt,
)
from repro.sim import SimulationError, Simulator


# ----------------------------------------------------------------------- RoCC
def test_rocc_word_roundtrip():
    inst = RoccInstruction(
        system_id=3, core_id=7, funct7=5, rs1=0x1122334455667788,
        rs2=0xAABBCCDDEEFF0011, xd=True, rd=13,
    )
    assert RoccInstruction.decode_words(inst.encode_words()) == inst


def test_rocc_response_roundtrip():
    resp = RoccResponse(system_id=2, core_id=9, rd=4, data=0xDEADBEEFCAFEF00D)
    assert RoccResponse.decode_words(resp.encode_words()) == resp


def test_rocc_field_validation():
    with pytest.raises(ValueError):
        RoccInstruction(0, 0, funct7=200, rs1=0, rs2=0)
    with pytest.raises(ValueError):
        RoccInstruction(0, 0, funct7=0, rs1=-1, rs2=0)
    with pytest.raises(ValueError):
        RoccInstruction(0, 0, funct7=0, rs1=0, rs2=0, rd=32)


# ------------------------------------------------------------------- packing
def test_small_command_fits_one_chunk():
    spec = CommandSpec("s", (Field("a", UInt(32)), Field("b", UInt(64))))
    assert spec.n_chunks(addr_bits=34) == 1


def test_wide_command_splits_chunks():
    spec = CommandSpec(
        "wide",
        (Field("a", UInt(64)), Field("b", UInt(64)), Field("c", UInt(64))),
    )
    assert spec.n_chunks(addr_bits=34) == 2
    values = {"a": 2**63 + 1, "b": 12345, "c": 2**64 - 1}
    chunks = spec.pack(values, 34)
    assert len(chunks) == 2
    assert spec.unpack(chunks, 34) == values


def test_address_field_width_follows_platform():
    spec = CommandSpec("s", (Field("p", Address()), Field("n", UInt(32))))
    assert spec.total_bits(addr_bits=34) == 66
    assert spec.total_bits(addr_bits=64) == 96
    # Same values, different bit layouts: both round-trip.
    values = {"p": 0x3_0000_0000, "n": 99}
    for bits in (34, 40, 64):
        assert spec.unpack(spec.pack(values, bits), bits) == values


def test_float_field_roundtrip():
    spec = CommandSpec("f", (Field("x", Float32()),))
    out = spec.unpack(spec.pack({"x": 3.25}, 34), 34)
    assert out["x"] == 3.25


def test_pack_validates_fields():
    spec = CommandSpec("s", (Field("a", UInt(8)),))
    with pytest.raises(ValueError, match="missing"):
        spec.pack({}, 34)
    with pytest.raises(ValueError, match="unknown"):
        spec.pack({"a": 1, "zz": 2}, 34)
    with pytest.raises(ValueError, match="does not fit"):
        spec.pack({"a": 256}, 34)


def test_duplicate_field_names_rejected():
    with pytest.raises(ValueError):
        CommandSpec("dup", (Field("a", UInt(8)), Field("a", UInt(8))))


def test_response_spec_limits():
    with pytest.raises(ValueError):
        ResponseSpec("big", (Field("a", UInt(64)), Field("b", UInt(1))))
    spec = ResponseSpec("ok", (Field("x", UInt(20)), Field("y", UInt(44))))
    vals = {"x": 0xFFFFF, "y": 123}
    assert spec.unpack(spec.pack(vals)) == vals


# -------------------------------------------------------------- adapter/router
def make_fabric(n_cores=2, chunks_spec=None):
    spec = chunks_spec or CommandSpec("go", (Field("x", UInt(32)),))
    router = CommandRouter()
    mmio = MmioFrontend(router)
    sim = Simulator()
    adapters = []
    for core in range(n_cores):
        io = BeethovenIO(spec, EmptyAccelResponse())
        adapter = CoreCommandAdapter(0, core, [io], addr_bits=34)
        router.attach(adapter, latency=2 + core)
        sim.add(adapter)
        adapters.append((adapter, io))
    sim.add(router)
    sim.add(mmio)
    return sim, mmio, adapters, spec


def test_command_reaches_addressed_core():
    sim, mmio, adapters, spec = make_fabric()
    (rs1, rs2), = spec.pack({"x": 77}, 34)
    inst = RoccInstruction(0, 1, funct7=0, rs1=rs1, rs2=rs2, xd=True, rd=1)
    for word in inst.encode_words():
        mmio.cmd_words.push(word)
    sim.run(100, until=lambda: adapters[1][1].req.can_pop())
    assert adapters[1][1].req.peek() == {"x": 77}
    assert not adapters[0][1].req.can_pop()


def test_response_travels_back():
    sim, mmio, adapters, spec = make_fabric()
    (rs1, rs2), = spec.pack({"x": 5}, 34)
    inst = RoccInstruction(0, 0, funct7=0, rs1=rs1, rs2=rs2, xd=True, rd=9)
    for word in inst.encode_words():
        mmio.cmd_words.push(word)
    sim.run(100, until=lambda: adapters[0][1].req.can_pop())
    adapters[0][1].req.pop()
    adapters[0][1].resp.push({})
    sim.run(100, until=lambda: len(mmio.resp_words) >= 4)
    words = [mmio.resp_words.pop() for _ in range(4)]
    resp = RoccResponse.decode_words(words)
    assert resp.rd == 9
    assert (resp.system_id, resp.core_id) == (0, 0)


def test_multichunk_command_reassembled():
    wide = CommandSpec(
        "wide", (Field("a", UInt(64)), Field("b", UInt(64)), Field("c", UInt(64)))
    )
    sim, mmio, adapters, spec = make_fabric(n_cores=1, chunks_spec=wide)
    values = {"a": 1, "b": 2**50, "c": 3}
    chunks = wide.pack(values, 34)
    for i, (rs1, rs2) in enumerate(chunks):
        inst = RoccInstruction(
            0, 0, funct7=0, rs1=rs1, rs2=rs2, xd=(i == len(chunks) - 1), rd=1
        )
        for word in inst.encode_words():
            mmio.cmd_words.push(word)
    sim.run(200, until=lambda: adapters[0][1].req.can_pop())
    assert adapters[0][1].req.pop() == values


def test_router_rejects_unknown_core():
    sim, mmio, adapters, spec = make_fabric(n_cores=1)
    inst = RoccInstruction(0, 5, funct7=0, rs1=0, rs2=0)
    for word in inst.encode_words():
        mmio.cmd_words.push(word)
    with pytest.raises(SimulationError, match="unknown core"):
        sim.run(50)


def test_adapter_rejects_unknown_io_index():
    sim, mmio, adapters, spec = make_fabric(n_cores=1)
    inst = RoccInstruction(0, 0, funct7=3, rs1=0, rs2=0)
    for word in inst.encode_words():
        mmio.cmd_words.push(word)
    with pytest.raises(SimulationError, match="unknown IO"):
        sim.run(50)


def test_router_duplicate_attach_rejected():
    router = CommandRouter()
    io = BeethovenIO(CommandSpec("x", (Field("a", UInt(8)),)), EmptyAccelResponse())
    a = CoreCommandAdapter(0, 0, [io], 34)
    router.attach(a)
    with pytest.raises(ValueError):
        router.attach(a)
