"""repro.faults: deterministic fault injection and chaos testing.

``FaultPlan`` describes seeded fault schedules compiled into a design at
elaboration time; ``repro.faults.chaos`` sweeps hundreds of schedules and
asserts the system's robustness contract (terminate bounded, fail typed,
never corrupt silently).
"""

from repro.faults.errors import (
    CommandTimeout,
    CoreQuarantined,
    FaultedResponse,
    FaultError,
)
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan, FaultState

__all__ = [
    "FAULT_KINDS",
    "CommandTimeout",
    "CoreQuarantined",
    "FaultedResponse",
    "FaultError",
    "FaultEvent",
    "FaultPlan",
    "FaultState",
]
