"""Chaos harness: seeded fault sweeps asserting the robustness contract.

Each chaos run elaborates a small design with a seeded :class:`FaultPlan`
and a command watchdog, drives a real workload through the full stack, and
classifies the outcome:

* ``ok``        — completed, outputs verified, no recovery machinery used;
* ``degraded``  — completed with verified outputs, but only thanks to
  retries / rerouting / quarantine (graceful degradation worked);
* ``error``     — a *typed* error surfaced (``CommandTimeout``,
  ``CoreQuarantined``, ``FaultedResponse``, or a bounded ``DeadlockError``);
* ``corrupt``   — outputs wrong with no error raised (CONTRACT VIOLATION);
* ``unexpected``— an untyped exception escaped (CONTRACT VIOLATION).

The contract the sweep asserts: every seeded schedule terminates bounded in
one of the first three outcomes, under every scheduling mode, and a given
seed produces the same fault schedule and final cycle count in all three
modes.  ``run_empty_plan_differential`` additionally proves the empty plan
is a strict no-op (stable metrics and final cycles bit-identical to a build
with no plan at all).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.errors import FaultError
from repro.faults.plan import FaultPlan
from repro.runtime.server import WatchdogConfig
from repro.sim import DeadlockError

MODES: Tuple[str, ...] = ("naive", "fast_forward", "selective", "compiled")
SCENARIOS: Tuple[str, ...] = ("memcpy", "fig6", "serving", "checkpoint")

#: Sharded-simulation modes (see :mod:`repro.dist`).  These are a separate
#: family from ``MODES``: command timing legitimately differs from the
#: single-process build (proxied cores add SLR-crossing hops), so the
#: identity contract for dist runs is *engine-internal* — ``dist:serial``
#: and ``dist:fork`` of the same seed must agree bit-for-bit — rather than
#: cross-mode with the scheduling backends.  Only scenarios whose designs
#: have SLR-crossing memory pipes support them (memcpy; the DelayCore-based
#: fig6/serving scenarios have no memory network and therefore no cut
#: points).
DIST_MODES: Tuple[str, ...] = ("dist", "dist:serial", "dist:fork")


def _mode_build_args(mode: str) -> Dict[str, object]:
    """Map a chaos mode name to ``BeethovenBuild`` keyword arguments."""
    if mode in DIST_MODES:
        from repro.dist import DistConfig

        _, _, engine = mode.partition(":")
        return {"distributed": DistConfig(n_workers=2, engine=engine or "auto")}
    return {"scheduling": mode}

#: Outcomes the robustness contract allows.
GOOD_OUTCOMES = ("ok", "degraded", "error")

#: Watchdog policy the chaos scenarios run under: tight deadlines so hangs
#: convert quickly, two strikes to quarantine so degradation is reachable,
#: and enough retries that a quarantine still leaves one reroute attempt.
CHAOS_WATCHDOG = WatchdogConfig(
    timeout_cycles=4000,
    max_retries=3,
    backoff_base_cycles=256,
    backoff_cap_cycles=2048,
    quarantine_strikes=2,
)


@dataclass
class ChaosOutcome:
    """Classified result of one seeded chaos run."""

    scenario: str
    mode: str
    seed: int
    outcome: str
    error: str = ""
    cycles: int = 0
    n_faults: int = 0
    fingerprint: str = ""
    timeouts: int = 0
    retries: int = 0
    quarantines: int = 0
    rerouted: int = 0
    late_responses: int = 0

    @property
    def violates_contract(self) -> bool:
        return self.outcome not in GOOD_OUTCOMES


def default_plan(seed: int, intensity: float = 1.0) -> FaultPlan:
    """The sweep's plan generator: a pure function of ``seed``.

    Each seed activates up to three fault classes with rates tuned so small
    workloads actually encounter them; some seeds draw zero classes, keeping
    fault-free runs in the sweep population as a control group.
    """
    rng = random.Random(0x5EED ^ (seed * 2654435761 & 0xFFFFFFFF))
    active = rng.sample(
        ("dram", "r_corrupt", "r_drop", "b_drop", "mmio", "hang"), rng.randint(0, 3)
    )
    return FaultPlan(
        seed=seed,
        dram_read_flip_rate=0.02 * intensity if "dram" in active else 0.0,
        axi_r_corrupt_rate=0.03 * intensity if "r_corrupt" in active else 0.0,
        axi_r_drop_rate=0.03 * intensity if "r_drop" in active else 0.0,
        axi_b_drop_rate=0.10 * intensity if "b_drop" in active else 0.0,
        mmio_resp_drop_rate=0.30 * intensity if "mmio" in active else 0.0,
        core_hang_rate=0.40 * intensity if "hang" in active else 0.0,
        core_hang_cycles=rng.choice((0, 2000)),
        core_hang_window=6000,
        max_faults_per_site=2,
    )


def _classify(handle, errors: List[str], corrupt: bool, unexpected: str = "") -> Tuple[str, str]:
    if unexpected:
        return "unexpected", unexpected
    if corrupt:
        return "corrupt", "output mismatch with no error raised"
    if errors:
        return "error", "; ".join(errors)
    server = handle.server
    recovered = (
        int(server.retries)
        or int(server.rerouted)
        or int(server.quarantines)
        or int(server.timeouts)
    )
    return ("degraded" if recovered else "ok"), ""


def _outcome(scenario, mode, seed, handle, outcome, error) -> ChaosOutcome:
    server = handle.server
    faults = handle.faults
    # Sharded runs absorb partition fault events at slice barriers, so the
    # *arrival order* of events differs from a single-process run even when
    # the event multiset is identical; the canonical (sorted) fingerprint is
    # the order-independent identity dist engines are compared under.
    if faults is None:
        fingerprint = ""
    elif mode in DIST_MODES:
        fingerprint = faults.canonical_fingerprint()
    else:
        fingerprint = faults.fingerprint()
    return ChaosOutcome(
        scenario=scenario,
        mode=mode,
        seed=seed,
        outcome=outcome,
        error=error,
        cycles=handle.design.sim.cycle,
        n_faults=len(faults.events) if faults is not None else 0,
        fingerprint=fingerprint,
        timeouts=int(server.timeouts),
        retries=int(server.retries),
        quarantines=int(server.quarantines),
        rerouted=int(server.rerouted),
        late_responses=int(server.late_responses),
    )


def run_memcpy_chaos(
    seed: int,
    mode: str,
    plan: Optional[FaultPlan] = None,
    watchdog: Optional[WatchdogConfig] = None,
) -> ChaosOutcome:
    """Memcpy through the full stack (host -> MMIO -> cores -> DRAM) under
    a seeded fault schedule; one command per core so quarantine-and-reroute
    can finish the work on the surviving core.

    Under a ``dist`` mode the same workload runs on a synthetic multi-die
    device (so SLR-crossing pipes exist for the partitioner to cut),
    sharded over two workers."""
    from repro.core.build import BeethovenBuild
    from repro.kernels.memcpy import memcpy_config
    from repro.platforms import AWSF1Platform, multi_die_platform
    from repro.runtime import FpgaHandle

    plan = plan if plan is not None else default_plan(seed)
    size, n_cores = 1024, 2
    platform = multi_die_platform(2) if mode in DIST_MODES else AWSF1Platform()
    build = BeethovenBuild(
        memcpy_config(n_cores=n_cores),
        platform,
        faults=plan,
        watchdog=watchdog or CHAOS_WATCHDOG,
        **_mode_build_args(mode),
    )
    handle = FpgaHandle(build.design)
    pattern = bytes((i * 131 + 17 + seed) % 256 for i in range(size))
    src = handle.malloc(size)
    dsts = [handle.malloc(size) for _ in range(n_cores)]
    src.write(pattern)
    handle.copy_to_fpga(src)
    errors: List[str] = []
    corrupt = False
    unexpected = ""
    try:
        futs = [
            handle.call(
                "Memcpy", "memcpy", c,
                src=src.fpga_addr, dst=dsts[c].fpga_addr, len_bytes=size,
            )
            for c in range(n_cores)
        ]
        for c, fut in enumerate(futs):
            try:
                fut.get(max_cycles=400_000)
            except (FaultError, DeadlockError) as exc:
                errors.append(f"core{c}: {type(exc).__name__}")
                continue
            handle.copy_from_fpga(dsts[c])
            if dsts[c].read() != pattern:
                corrupt = True
    except (FaultError, DeadlockError) as exc:
        errors.append(type(exc).__name__)
    except Exception as exc:  # noqa: BLE001 — untyped escape = violation
        unexpected = f"{type(exc).__name__}: {exc}"
    outcome, error = _classify(handle, errors, corrupt, unexpected)
    result = _outcome("memcpy", mode, seed, handle, outcome, error)
    getattr(build.design.sim, "shutdown", lambda: None)()
    return result


def run_fig6_chaos(
    seed: int,
    mode: str,
    plan: Optional[FaultPlan] = None,
    watchdog: Optional[WatchdogConfig] = None,
) -> ChaosOutcome:
    """The Figure-6 measured model (DelayCore rounds through the runtime
    server) under fault injection — exercises the command path, the
    watchdog, and hang quarantine with no memory traffic at all."""
    from repro.baselines.delay_core import delay_config
    from repro.core.build import BeethovenBuild
    from repro.platforms import AWSF1Platform
    from repro.runtime import FpgaHandle

    if mode in DIST_MODES:
        raise ValueError(
            "fig6 chaos cannot run sharded: DelayCore declares no memory "
            "channels, so the design has no SLR bridges to partition at"
        )
    plan = plan if plan is not None else default_plan(seed)
    n_cores, rounds = 3, 2
    build = BeethovenBuild(
        delay_config(n_cores, 600),
        AWSF1Platform(),
        scheduling=mode,
        faults=plan,
        watchdog=watchdog or CHAOS_WATCHDOG,
    )
    handle = FpgaHandle(build.design)
    errors: List[str] = []
    unexpected = ""
    try:
        for r in range(rounds):
            futs = []
            for c in range(n_cores):
                try:
                    futs.append((c, handle.call("Delay", "run", c, job=r * n_cores + c)))
                except FaultError as exc:  # every core already quarantined
                    errors.append(f"r{r}c{c}: {type(exc).__name__}")
            for c, fut in futs:
                try:
                    fut.get(max_cycles=400_000)
                except (FaultError, DeadlockError) as exc:
                    errors.append(f"r{r}c{c}: {type(exc).__name__}")
    except Exception as exc:  # noqa: BLE001 — untyped escape = violation
        unexpected = f"{type(exc).__name__}: {exc}"
    outcome, error = _classify(handle, errors, False, unexpected)
    return _outcome("fig6", mode, seed, handle, outcome, error)


#: Exception type names the serving layer records as *typed* ticket errors;
#: anything else settling a ticket is an untyped escape (contract violation).
_SERVING_TYPED = (
    "CommandTimeout",
    "FaultedResponse",
    "CoreQuarantined",
    "DeadlockError",
    "AdmissionRejected",
)


def run_serving_chaos(
    seed: int,
    mode: str,
    plan: Optional[FaultPlan] = None,
    watchdog: Optional[WatchdogConfig] = None,
) -> ChaosOutcome:
    """The multi-tenant serving layer under fault injection.

    Two tenants submit a fixed heterogeneous mix (gemm + attn) through
    :class:`~repro.serve.AcceleratorService` — admission, DRR release,
    kernel routing and the settle pump all run over a faulted fabric, and
    the contract is the serving layer's own: every admitted request settles
    ``ok`` or ``failed`` with a *typed* error, and the run drains bounded.
    The submission schedule is fixed (no RNG), so a given seed's outcome is
    a pure function of the fault schedule — identical across modes.
    """
    from repro.runtime import FpgaHandle
    from repro.serve.errors import ServeError
    from repro.serve.scenarios import hetero_build
    from repro.serve.service import AcceleratorService
    from repro.serve.tenant import TenantConfig

    if mode in DIST_MODES:
        raise ValueError(
            "serving chaos cannot run sharded: its delay-core design has "
            "no memory network, so there are no SLR bridges to partition at"
        )
    plan = plan if plan is not None else default_plan(seed)
    build = hetero_build(
        mode=mode, faults=plan, watchdog=watchdog or CHAOS_WATCHDOG
    )
    handle = FpgaHandle(build.design)
    errors: List[str] = []
    unexpected = ""
    tickets = []
    try:
        service = AcceleratorService(
            handle,
            [
                TenantConfig(name="tA", max_in_flight=2),
                TenantConfig(name="tB", max_in_flight=2),
            ],
        )
        for r in range(2):
            for tenant in ("tA", "tB"):
                for kernel in ("gemm", "attn"):
                    try:
                        tickets.append(service.submit(tenant, kernel, job=r))
                    except ServeError as exc:
                        errors.append(f"{tenant}/{kernel}: {type(exc).__name__}")
        service.run_until_drained(max_cycles=400_000)
    except (FaultError, DeadlockError, ServeError) as exc:
        errors.append(type(exc).__name__)
    except Exception as exc:  # noqa: BLE001 — untyped escape = violation
        unexpected = f"{type(exc).__name__}: {exc}"
    for t in tickets:
        if not t.settled:
            errors.append(f"{t.tenant}/{t.kernel}: unsettled")
        elif t.outcome == "failed":
            name = t.error.split(":", 1)[0]
            if name in _SERVING_TYPED:
                errors.append(f"{t.tenant}/{t.kernel}: {name}")
            elif not unexpected:
                unexpected = f"untyped ticket error: {t.error}"
    outcome, error = _classify(handle, errors, False, unexpected)
    return _outcome("serving", mode, seed, handle, outcome, error)


def run_checkpoint_chaos(
    seed: int,
    mode: str,
    plan: Optional[FaultPlan] = None,
    watchdog: Optional[WatchdogConfig] = None,
) -> ChaosOutcome:
    """SIGKILL a checkpointed run at a seeded point, resume it, and demand
    bit-identity with an uninterrupted reference (tested under the standard
    seeded fault plan).

    Single-process modes kill the whole process and resume from the snapshot
    file; ``dist:fork`` kills one worker and relies on barrier-checkpoint
    failover.  The differential itself runs under the scenario's own plan
    and watchdog (they are part of its deterministic identity), so ``plan``/
    ``watchdog`` overrides are rejected rather than silently ignored.
    """
    import tempfile

    from repro.snapshot.scenario import kill_and_resume_differential

    if plan is not None or watchdog is not None:
        raise ValueError(
            "checkpoint chaos pins its own fault plan and watchdog; "
            "override the seed instead"
        )
    if mode in DIST_MODES and mode != "dist:fork":
        raise ValueError(
            f"checkpoint chaos needs worker processes to kill; use "
            f"'dist:fork' or one of {MODES} (got {mode!r})"
        )
    with tempfile.TemporaryDirectory(prefix="repro-ckpt-chaos-") as workdir:
        result = kill_and_resume_differential(seed, mode, workdir)
    return ChaosOutcome(
        scenario="checkpoint",
        mode=mode,
        seed=seed,
        outcome=result["outcome"],
        error=result["error"],
        cycles=result["cycles"],
        n_faults=result["n_faults"],
        fingerprint=result["fingerprint"],
        timeouts=result["timeouts"],
        retries=result["retries"],
        quarantines=result["quarantines"],
        rerouted=result["rerouted"],
        late_responses=result["late_responses"],
    )


_SCENARIO_FNS: Dict[str, Callable[..., ChaosOutcome]] = {
    "memcpy": run_memcpy_chaos,
    "fig6": run_fig6_chaos,
    "serving": run_serving_chaos,
    "checkpoint": run_checkpoint_chaos,
}


def run_chaos(scenario: str, mode: str, seed: int) -> ChaosOutcome:
    try:
        fn = _SCENARIO_FNS[scenario]
    except KeyError:
        raise ValueError(f"unknown chaos scenario {scenario!r}") from None
    return fn(seed, mode)


def chaos_job(scenario: str, mode: str, seed: int) -> Dict[str, object]:
    """Farm-friendly entry point: plain-dict outcome, importable by name."""
    return asdict(run_chaos(scenario, mode, seed))


def run_chaos_sweep(
    seeds: Sequence[int],
    scenarios: Sequence[str] = SCENARIOS,
    modes: Sequence[str] = MODES,
    workers: int = 0,
) -> List[ChaosOutcome]:
    """The full cross product; ``workers > 1`` shards it over a farm pool."""
    combos = [(sc, m, s) for sc in scenarios for m in modes for s in seeds]
    if workers > 1:
        from repro.farm.job import Job
        from repro.farm.pool import WorkerPool, multiprocessing_available

        if multiprocessing_available():
            pool = WorkerPool(workers, default_timeout_s=600.0)
            jobs = [
                Job("repro.faults.chaos:chaos_job", (sc, m, s), cache=False)
                for sc, m, s in combos
            ]
            results: List[ChaosOutcome] = []
            for (sc, m, s), out in zip(combos, pool.run(jobs)):
                if out.ok:
                    results.append(ChaosOutcome(**out.value))
                else:
                    results.append(
                        ChaosOutcome(sc, m, s, "unexpected", error=out.error or "farm failure")
                    )
            return results
    return [run_chaos(sc, m, s) for sc, m, s in combos]


def render_chaos_report(outcomes: Sequence[ChaosOutcome]) -> str:
    """Human summary: outcome histogram per scenario/mode plus violations."""
    lines = [f"chaos sweep: {len(outcomes)} runs"]
    by_cell: Dict[Tuple[str, str], Dict[str, int]] = {}
    for o in outcomes:
        cell = by_cell.setdefault((o.scenario, o.mode), {})
        cell[o.outcome] = cell.get(o.outcome, 0) + 1
    for (scenario, mode), cell in sorted(by_cell.items()):
        parts = " ".join(f"{k}={v}" for k, v in sorted(cell.items()))
        lines.append(f"  {scenario:<8} {mode:<13} {parts}")
    recovered = sum(1 for o in outcomes if o.outcome == "degraded")
    errored = sum(1 for o in outcomes if o.outcome == "error")
    lines.append(f"  degraded-but-correct: {recovered}, typed errors: {errored}")
    violations = [o for o in outcomes if o.violates_contract]
    if violations:
        lines.append(f"  CONTRACT VIOLATIONS: {len(violations)}")
        for o in violations[:20]:
            lines.append(
                f"    {o.scenario}/{o.mode} seed={o.seed}: {o.outcome} ({o.error})"
            )
    else:
        lines.append("  contract held: no hangs, no silent corruption")
    return "\n".join(lines)


# ------------------------------------------------------------ differential
def _run_fixed_memcpy(mode: str, faults: Optional[FaultPlan]):
    """Fixed memcpy workload returning (stable metrics, final cycle, ok)."""
    from repro.core.build import BeethovenBuild
    from repro.kernels.memcpy import memcpy_config
    from repro.platforms import AWSF1Platform, multi_die_platform
    from repro.runtime import FpgaHandle

    size = 2048
    if mode in DIST_MODES:
        platform = multi_die_platform(2)
        n_cores = 2  # sharding needs at least one core per die
    else:
        platform, n_cores = AWSF1Platform(), 1
    build = BeethovenBuild(
        memcpy_config(n_cores=n_cores),
        platform,
        faults=faults,
        **_mode_build_args(mode),
    )
    handle = FpgaHandle(build.design)
    src, dst = handle.malloc(size), handle.malloc(size)
    pattern = bytes((i * 131 + 17) % 256 for i in range(size))
    src.write(pattern)
    handle.copy_to_fpga(src)
    handle.call(
        "Memcpy", "memcpy", 0, src=src.fpga_addr, dst=dst.fpga_addr, len_bytes=size
    ).get(max_cycles=500_000)
    handle.copy_from_fpga(dst)
    metrics = build.design.metrics(stable_only=True)
    cycle = build.design.sim.cycle
    getattr(build.design.sim, "shutdown", lambda: None)()
    return metrics, cycle, dst.read() == pattern


def run_empty_plan_differential(mode: str) -> Dict[str, object]:
    """Prove ``FaultPlan()`` is a strict no-op under ``mode``.

    Runs the fixed workload with no plan and with the empty plan; asserts
    every ``fault/*`` metric of the latter is zero, then requires the
    remaining stable metrics and the final cycle count to be bit-identical.
    """
    base_metrics, base_cycles, base_ok = _run_fixed_memcpy(mode, None)
    empty_metrics, empty_cycles, empty_ok = _run_fixed_memcpy(mode, FaultPlan())
    nonzero = {
        k: v for k, v in empty_metrics.items() if k.startswith("fault/") and v != 0
    }
    stripped = {
        k: v for k, v in empty_metrics.items() if not k.startswith("fault/")
    }
    return {
        "mode": mode,
        "identical": stripped == base_metrics and base_cycles == empty_cycles,
        "fault_metrics_nonzero": nonzero,
        "cycles": (base_cycles, empty_cycles),
        "data_ok": base_ok and empty_ok,
        "mismatched_keys": sorted(
            set(stripped) ^ set(base_metrics)
            | {k for k in set(stripped) & set(base_metrics) if stripped[k] != base_metrics[k]}
        ),
    }
