"""Seeded, deterministic fault injection.

A :class:`FaultPlan` is a frozen description of *what can go wrong*: per-site
fault rates plus one seed.  It is a pure function of its config — the same
plan compiled into the same design always produces the same fault schedule,
under every scheduling mode — which makes fault sweeps farmable and their
results cacheable by fingerprint, exactly like any other ``repro.farm`` job.

Determinism strategy:

* every injection site gets its own :class:`random.Random` seeded from
  ``sha256(f"{seed}:{site}")``, so adding a site (or reordering compilation)
  never perturbs another site's draws;
* draws happen per *event processed at the site* (a column read at the DRAM
  controller, an R beat routed through a NoC node, a response crossing the
  MMIO frontend).  All three scheduling modes process identical event
  sequences at identical cycles, so the schedules are bit-identical;
* core hang windows are drawn once at compile time as absolute cycles (and
  their fault events recorded then), so a hung core that is never ticked
  under selective scheduling still logs the same schedule as under naive.

Silent corruption is structurally impossible: corrupted beats travel with
``err=True`` (modeled ECC/link CRC) and poison the owning core's command;
dropped beats/responses starve a transfer that can then never complete, so
they surface as watchdog timeouts — loud, typed, recoverable.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim import NEVER

#: Every fault/detection kind the metrics layer counts.  Fixed up front so a
#: compiled plan always registers the same ``fault/*`` metric keys — the
#: empty-plan differential relies on the key set being config-independent.
FAULT_KINDS = (
    "dram_flip",
    "r_corrupt",
    "r_drop",
    "b_drop",
    "mmio_resp_drop",
    "core_hang",
    "detected",
    "recovered",
)


def _site_seed(seed: int, site: str) -> int:
    digest = hashlib.sha256(f"{seed}:{site}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class FaultEvent:
    """One injected (or detected) fault, in the global schedule log."""

    cycle: int
    site: str
    kind: str
    detail: str = ""


@dataclass(frozen=True)
class FaultPlan:
    """Frozen fault configuration; compile into a design at elaboration.

    Rates are per-event Bernoulli probabilities at each site.  A rate of 0
    installs no hook at that site; the all-zero plan is a strict no-op (the
    differential harness in ``repro.faults.chaos`` proves stable metrics and
    final cycle counts bit-identical to an un-faulted build).
    """

    seed: int = 0
    #: DRAM column reads: flip one bit, deliver the beat with ``err`` set.
    dram_read_flip_rate: float = 0.0
    #: NoC nodes: corrupt an R beat in flight (delivered with ``err``).
    axi_r_corrupt_rate: float = 0.0
    #: NoC nodes: drop an R beat (the burst can never complete -> timeout).
    axi_r_drop_rate: float = 0.0
    #: NoC nodes: drop a B response (the writer never finishes -> timeout).
    axi_b_drop_rate: float = 0.0
    #: MMIO frontend: eat a whole response (lost interrupt -> timeout/retry).
    mmio_resp_drop_rate: float = 0.0
    #: Per-core probability of one hang window during the run.
    core_hang_rate: float = 0.0
    #: Hang duration in cycles; 0 means the core wedges permanently.
    core_hang_cycles: int = 0
    #: Hang start cycle is drawn uniformly from [0, core_hang_window).
    core_hang_window: int = 50_000
    #: Cap on injections per site, so high rates cannot starve a run forever.
    max_faults_per_site: int = 2

    @property
    def empty(self) -> bool:
        return not any(
            (
                self.dram_read_flip_rate,
                self.axi_r_corrupt_rate,
                self.axi_r_drop_rate,
                self.axi_b_drop_rate,
                self.mmio_resp_drop_rate,
                self.core_hang_rate,
            )
        )

    def site_rng(self, site: str) -> random.Random:
        """The per-site RNG; a pure function of (seed, site)."""
        return random.Random(_site_seed(self.seed, site))

    def describe(self) -> Dict[str, object]:
        """Plain-dict form, fingerprint- and farm-friendly."""
        return asdict(self)

    # ------------------------------------------------------------- compile
    def compile(self, design) -> "FaultState":
        """Install injectors into an :class:`ElaboratedDesign`'s models.

        Returns the shared :class:`FaultState` (event log, poison map,
        ``fault/*`` metrics).  Only sites with a nonzero rate get a hook;
        detection wiring (Readers reporting ``err`` beats) is always
        installed because it is free when no faults fire.
        """
        state = FaultState(self, design.sim.registry, design.tracer)
        budget = self.max_faults_per_site
        if self.dram_read_flip_rate > 0:
            design.controller._fault = DramReadFaultHook(
                state, "dram/mc", self.site_rng("dram/mc"),
                self.dram_read_flip_rate, budget,
            )
        axi_rates = (self.axi_r_corrupt_rate, self.axi_r_drop_rate, self.axi_b_drop_rate)
        if any(axi_rates) and design.network is not None:
            from repro.noc.axi_node import AxiBufferNode

            for comp in design.network.components:
                if isinstance(comp, AxiBufferNode):
                    site = f"noc/{comp.name}"
                    comp._fault = AxiNodeFaultHook(
                        state, site, self.site_rng(site),
                        self.axi_r_corrupt_rate, self.axi_r_drop_rate,
                        self.axi_b_drop_rate, budget,
                    )
        if self.mmio_resp_drop_rate > 0:
            design.mmio._fault = MmioFaultHook(
                state, "cmd/mmio", self.site_rng("cmd/mmio"),
                self.mmio_resp_drop_rate, budget,
            )
        for system in design.systems:
            for ecore in system.cores:
                key = (ecore.system_id, ecore.core_id)
                ctx = ecore.ctx
                masters = [r for rs in ctx.readers.values() for r in rs]
                masters += [
                    sp.reader for sp in ctx.scratchpads.values() if sp.reader is not None
                ]
                for master in masters:
                    master._fault_state = state
                    master._fault_key = key
                if self.core_hang_rate > 0:
                    self._maybe_install_hang(state, ecore)
        return state

    def _maybe_install_hang(self, state: "FaultState", ecore) -> None:
        """Draw and (maybe) install one hang window on ``ecore``.

        The wrapper suppresses ``tick`` during [start, end) and teaches
        ``next_event`` to sleep to the hang end (or :data:`NEVER` for a
        permanent wedge), while never letting the core sleep *into* unfired
        pre-hang work.  Suppression depends only on the cycle number, so all
        scheduling modes see identical behaviour; the fault event is logged
        at compile time because a wedged core may never be ticked at its
        hang-start cycle under selective scheduling.
        """
        site = f"core/{ecore.path}"
        rng = self.site_rng(site)
        if rng.random() >= self.core_hang_rate:
            return
        start = rng.randrange(max(self.core_hang_window, 1))
        end = start + self.core_hang_cycles if self.core_hang_cycles > 0 else None
        core = ecore.core
        orig_tick = core.tick
        orig_next = core.next_event
        state.inject(
            start, site, "core_hang",
            f"end={'never' if end is None else end}",
        )

        def tick(cycle: int, _orig=orig_tick) -> None:
            if cycle >= start and (end is None or cycle < end):
                return  # wedged: commands and data pile up outside the core
            _orig(cycle)

        def next_event(cycle: int, _orig=orig_next):
            if cycle >= start and (end is None or cycle < end):
                return NEVER if end is None else float(end)
            return _orig(cycle)

        core.tick = tick
        core.next_event = next_event


class FaultState:
    """Shared runtime state of a compiled plan: schedule log, poison, metrics.

    ``fault/*`` counters are *stable* metrics: injection sites process
    identical event streams under all scheduling modes, so the counts (like
    every other stable metric) are mode-independent and participate in the
    differential harness's bit-identical comparison.
    """

    def __init__(self, plan: FaultPlan, registry, tracer=None) -> None:
        self.plan = plan
        self.tracer = tracer
        self.events: List[FaultEvent] = []
        self._poison: Dict[Tuple[int, int], List[FaultEvent]] = {}
        # Sequential append log of (key, event) poison pairs plus drain
        # watermarks — the distributed engine's partition workers ship only
        # what they logged since the previous slice barrier.
        self._poison_log: List[Tuple[Tuple[int, int], FaultEvent]] = []
        self._drain_mark = 0
        self._poison_mark = 0
        scope = registry.scope("fault")
        self.counts = {kind: scope.counter(kind) for kind in FAULT_KINDS}

    # ------------------------------------------------------------- logging
    def _log(self, cycle: int, site: str, kind: str, detail: str) -> FaultEvent:
        ev = FaultEvent(int(cycle), site, kind, detail)
        self.events.append(ev)
        self.counts[kind] += 1
        if self.tracer is not None:
            self.tracer.record(int(cycle), "fault", kind, {"site": site, "detail": detail})
        return ev

    def inject(self, cycle: int, site: str, kind: str, detail: str = "") -> FaultEvent:
        return self._log(cycle, site, kind, detail)

    def mark_detected(
        self, key: Optional[Tuple[int, int]], cycle: int, site: str, detail: str = ""
    ) -> None:
        """A consumer saw an ``err`` beat: poison ``key``'s in-flight command."""
        ev = self._log(cycle, site, "detected", detail)
        if key is not None:
            self._poison.setdefault(key, []).append(ev)
            self._poison_log.append((key, ev))

    def note_recovery(self, cycle: int, site: str, detail: str = "") -> None:
        self._log(cycle, site, "recovered", detail)

    def take_poison(self, key: Tuple[int, int]) -> List[FaultEvent]:
        """Pop (and clear) the poison accumulated against ``key``."""
        return self._poison.pop(key, [])

    def fingerprint(self) -> str:
        """Stable hash of the realised fault schedule (cycle/site/kind/detail)."""
        h = hashlib.sha256()
        for ev in self.events:
            h.update(f"{ev.cycle}:{ev.site}:{ev.kind}:{ev.detail}\n".encode())
        return h.hexdigest()[:16]

    def canonical_fingerprint(self) -> str:
        """Order-independent schedule hash for distributed comparisons.

        In a sharded run the supervisor absorbs partition fault deltas at
        slice barriers, so ``events`` interleaves differently than in one
        process even though the *set* of events is identical.  Hashing the
        sorted schedule compares the physics, not the append order.
        """
        h = hashlib.sha256()
        for ev in sorted(self.events, key=lambda e: (e.cycle, e.site, e.kind, e.detail)):
            h.update(f"{ev.cycle}:{ev.site}:{ev.kind}:{ev.detail}\n".encode())
        return h.hexdigest()[:16]

    # -------------------------------------------- distributed delta feed
    def begin_partition_feed(self) -> None:
        """Called once in a freshly forked partition worker: everything
        logged so far (e.g. compile-time hang events) is pre-fork state the
        supervisor already has and must not be re-shipped."""
        self._drain_mark = len(self.events)
        self._poison_mark = len(self._poison_log)

    def drain_deltas(self) -> Tuple[List[FaultEvent], List[Tuple[Tuple[int, int], FaultEvent]]]:
        """Events and poison pairs logged since the previous drain."""
        events = self.events[self._drain_mark:]
        poison = self._poison_log[self._poison_mark:]
        self._drain_mark = len(self.events)
        self._poison_mark = len(self._poison_log)
        return events, poison

    def absorb(
        self,
        events: List[FaultEvent],
        poison: List[Tuple[Tuple[int, int], FaultEvent]],
    ) -> None:
        """Merge a partition worker's delta into this (supervisor) state.

        Counters are bumped here because the worker bumped only its own
        process-local registry copy; the tracer is *not* re-driven (remote
        trace events stay remote — trace counters are volatile metrics)."""
        for ev in events:
            self.events.append(ev)
            self.counts[ev.kind] += 1
        for key, ev in poison:
            self._poison.setdefault(key, []).append(ev)
            self._poison_log.append((key, ev))
        self._drain_mark = len(self.events)
        self._poison_mark = len(self._poison_log)


def _flip_one_bit(data: bytes, rng: random.Random) -> Tuple[bytes, int]:
    bit = rng.randrange(max(len(data), 1) * 8)
    flipped = bytearray(data)
    flipped[bit // 8] ^= 1 << (bit % 8)
    return bytes(flipped), bit


class DramReadFaultHook:
    """Bit-flips column reads inside the DRAM controller."""

    def __init__(self, state: FaultState, site: str, rng, rate: float, budget: int) -> None:
        self.state = state
        self.site = site
        self.rng = rng
        self.rate = rate
        self.budget = budget

    def filter_read(self, cycle: int, addr: int, data: bytes) -> Tuple[bytes, bool]:
        if self.budget <= 0 or self.rng.random() >= self.rate:
            return data, False
        self.budget -= 1
        data, bit = _flip_one_bit(data, self.rng)
        self.state.inject(cycle, self.site, "dram_flip", f"addr={addr:#x} bit={bit}")
        return data, True


class AxiNodeFaultHook:
    """Corrupts or drops R beats and drops B responses at one NoC node."""

    def __init__(
        self,
        state: FaultState,
        site: str,
        rng,
        corrupt_rate: float,
        drop_rate: float,
        b_drop_rate: float,
        budget: int,
    ) -> None:
        self.state = state
        self.site = site
        self.rng = rng
        self.corrupt_rate = corrupt_rate
        self.drop_rate = drop_rate
        self.b_drop_rate = b_drop_rate
        self.budget = budget

    def filter_r(self, cycle: int, beat) -> Tuple[str, bytes, bool]:
        """Returns (verdict, data, err); verdict is "pass"/"corrupt"/"drop"."""
        if self.budget <= 0:
            return "pass", beat.data, beat.err
        draw = self.rng.random()
        # Details carry the (stable) local AXI id, never the transaction
        # tag: tags come from a process-global counter, so they differ from
        # build to build and would break cross-mode fingerprint equality.
        if draw < self.drop_rate:
            self.budget -= 1
            self.state.inject(cycle, self.site, "r_drop", f"id={beat.axi_id}")
            return "drop", beat.data, beat.err
        if draw < self.drop_rate + self.corrupt_rate:
            self.budget -= 1
            data, bit = _flip_one_bit(beat.data, self.rng)
            self.state.inject(
                cycle, self.site, "r_corrupt", f"id={beat.axi_id} bit={bit}"
            )
            return "corrupt", data, True
        return "pass", beat.data, beat.err

    def drop_b(self, cycle: int, resp) -> bool:
        if self.budget <= 0 or self.rng.random() >= self.b_drop_rate:
            return False
        self.budget -= 1
        self.state.inject(cycle, self.site, "b_drop", f"id={resp.axi_id}")
        return True


class MmioFaultHook:
    """Eats whole responses at the MMIO frontend (lost interrupt model)."""

    def __init__(self, state: FaultState, site: str, rng, rate: float, budget: int) -> None:
        self.state = state
        self.site = site
        self.rng = rng
        self.rate = rate
        self.budget = budget

    def drop_response(self, cycle: int, resp) -> bool:
        if self.budget <= 0 or self.rng.random() >= self.rate:
            return False
        self.budget -= 1
        self.state.inject(
            cycle, self.site, "mmio_resp_drop",
            f"core=({resp.system_id},{resp.core_id})",
        )
        return True
