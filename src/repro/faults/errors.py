"""Typed errors for the fault-injection and runtime-hardening layer.

These are the *contract* of the chaos harness: under any seeded fault
schedule, a command either completes with verified output or surfaces as one
of these exceptions — never a hang, never silently wrong data.  They live in
their own module (importing nothing from the rest of the package) so the
simulation kernel, the runtime server and the host handle can all raise them
without import cycles.
"""

from __future__ import annotations

from typing import Optional, Tuple


class FaultError(RuntimeError):
    """Base class for typed fault outcomes surfaced to the host."""

    def __init__(self, message: str, key: Optional[Tuple[int, int]] = None) -> None:
        super().__init__(message)
        #: (system_id, core_id) of the command this fault surfaced on, if known.
        self.key = key
        #: Optional structured state dump (e.g. from a DeadlockError cause).
        self.dump = None


class CommandTimeout(FaultError):
    """A command's response did not arrive within its deadline.

    Raised by ``ResponseHandle.get(timeout_cycles=...)`` on the host side and
    delivered through ``CommandContext.on_error`` when the runtime server's
    watchdog exhausts its retries.
    """

    def __init__(
        self,
        message: str,
        key: Optional[Tuple[int, int]] = None,
        attempts: int = 1,
        dump=None,
    ) -> None:
        super().__init__(message, key)
        self.attempts = attempts
        self.dump = dump


class FaultedResponse(FaultError):
    """A response arrived but the data path it summarises was corrupted.

    The modeled ECC/link-CRC machinery (``err`` beats) poisons the core's
    fault state; when the command completes, the poison converts the result
    into this error instead of silently handing corrupt data to the caller.
    """

    def __init__(
        self,
        message: str,
        key: Optional[Tuple[int, int]] = None,
        attempts: int = 1,
        events=(),
    ) -> None:
        super().__init__(message, key)
        self.attempts = attempts
        #: The FaultEvent records that poisoned this command.
        self.events = tuple(events)


class CoreQuarantined(FaultError):
    """No healthy core is left to run (or re-run) a command on.

    Raised synchronously by ``FpgaHandle.call`` / resubmission when every
    core of the addressed system has been quarantined by the watchdog.
    """
