"""Design-space exploration utilities.

The paper's workflow scales a System by editing ``n_cores`` and rebuilding;
these helpers automate the loop: sweep core counts, find the largest count
that still passes the place/route feasibility model, and report which
resource binds — the analysis behind the core-count labels of Figure 6 and
the "limited by BRAM/LUT overutilisation" observations of Section III-B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.build import BeethovenBuild, BuildMode, InfeasibleDesignError
from repro.platforms.base import Platform

ConfigFactory = Callable[[int], object]


@dataclass
class DesignPoint:
    """One evaluated core count."""

    n_cores: int
    feasible: bool
    worst_util: float
    reasons: List[str]
    total_lut: float
    total_bram: float
    total_uram: float


def evaluate_point(factory: ConfigFactory, n_cores: int, platform: Platform) -> DesignPoint:
    """Build (simulation mode) and score one core count."""
    build = BeethovenBuild(factory(n_cores), platform, BuildMode.Simulation)
    report = build.routability
    total = build.resource_report.total
    return DesignPoint(
        n_cores=n_cores,
        feasible=report.feasible if report else True,
        worst_util=report.worst_util if report else 0.0,
        reasons=list(report.reasons) if report else [],
        total_lut=total.lut,
        total_bram=total.bram,
        total_uram=total.uram,
    )


def sweep_cores(
    factory: ConfigFactory, counts, platform: Platform
) -> List[DesignPoint]:
    return [evaluate_point(factory, n, platform) for n in counts]


def limiting_resource(factory: ConfigFactory, n_cores: int, platform: Platform) -> str:
    """The most over-subscribed resource at ``n_cores`` (raw kind name)."""
    build = BeethovenBuild(factory(n_cores), platform, BuildMode.Simulation)
    device = platform.device
    worst_kind, worst_util = "lut", 0.0
    placement = build.placement
    for slr in range(device.n_slrs):
        free = device.free_capacity(slr)
        load = placement.slr_load[slr]
        extra = build.resource_report.interconnect_per_slr.get(slr)
        if extra is not None:
            load = load + extra
        for kind, util in load.utilisation_of(free).items():
            if util > worst_util:
                worst_kind, worst_util = kind, util
    return worst_kind


def max_feasible_cores(
    factory: ConfigFactory,
    platform: Platform,
    limit: int = 64,
) -> Tuple[int, str, Optional[BeethovenBuild]]:
    """Largest feasible core count, its classified limiter, and the build.

    The limiter is classified the way the paper reports it: logic pressure
    (CLB/LUT/FF) as "LUT", memory-tile pressure as "BRAM".
    """
    best, best_build = 0, None
    lo, hi = 1, limit
    n = 1
    while n <= limit:
        try:
            best_build = BeethovenBuild(factory(n), platform, BuildMode.Synthesis)
            best = n
            lo = n + 1
            n *= 2
        except InfeasibleDesignError:
            hi = n - 1
            break
    while lo <= hi:
        mid = (lo + hi) // 2
        try:
            best_build = BeethovenBuild(factory(mid), platform, BuildMode.Synthesis)
            best = mid
            lo = mid + 1
        except InfeasibleDesignError:
            hi = mid - 1
    raw = limiting_resource(factory, best + 1, platform)
    limiter = "LUT" if raw in ("clb", "lut", "reg") else "BRAM"
    return best, limiter, best_build
