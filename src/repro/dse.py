"""Design-space exploration utilities.

The paper's workflow scales a System by editing ``n_cores`` and rebuilding;
these helpers automate the loop: sweep core counts, find the largest count
that still passes the place/route feasibility model, and report which
resource binds — the analysis behind the core-count labels of Figure 6 and
the "limited by BRAM/LUT overutilisation" observations of Section III-B.

Sweeps route through :class:`repro.farm.Farm` when one is supplied: each
design point is a pure function of (config, platform, build mode), so
points shard across worker processes and repeat sweeps are served from the
content-addressed result cache.  Every :class:`DesignPoint` carries its own
provenance — build wall-time and whether the cache supplied it.

Two sweep strategies are offered:

* ``"scan"`` (default) — build every requested count; full resource data
  per point, exactly the historical behaviour.
* ``"bisect"`` — locate the feasibility frontier with O(log n) builds when
  it is monotone (feasible up to some N*, infeasible after — the shape the
  paper's resource model produces).  Monotonicity is probed at the
  endpoints: if the smallest count is infeasible the hypothesis is void and
  the sweep falls back to the full scan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.build import BeethovenBuild, BuildMode, InfeasibleDesignError
from repro.platforms.base import Platform

ConfigFactory = Callable[[int], object]

#: Importable job reference for farm workers (any start method can resolve it).
EVALUATE_POINT_JOB = "repro.dse:evaluate_point"


@dataclass
class DesignPoint:
    """One evaluated core count, with build provenance."""

    n_cores: int
    feasible: bool
    worst_util: float
    reasons: List[str]
    total_lut: float
    total_bram: float
    total_uram: float
    #: Wall-clock seconds the (simulation-mode) build took to elaborate.
    build_seconds: float = 0.0
    #: True when a farm served this point from its result cache.
    cache_hit: bool = False
    #: Farm worker that built it ("w3", "serial", "inline", or "cache").
    worker: str = ""
    #: Farm job fingerprint (cache key), empty outside a farm run.
    fingerprint: str = ""
    #: True when the evaluation resumed from a checkpoint left behind by an
    #: earlier killed/timed-out attempt (see ``Job.checkpoint_every``).
    resumed_from_checkpoint: bool = False


def evaluate_point(factory: ConfigFactory, n_cores: int, platform: Platform) -> DesignPoint:
    """Build (simulation mode) and score one core count."""
    t0 = time.perf_counter()
    build = BeethovenBuild(factory(n_cores), platform, BuildMode.Simulation)
    report = build.routability
    total = build.resource_report.total
    return DesignPoint(
        n_cores=n_cores,
        feasible=report.feasible if report else True,
        worst_util=report.worst_util if report else 0.0,
        reasons=list(report.reasons) if report else [],
        total_lut=total.lut,
        total_bram=total.bram,
        total_uram=total.uram,
        build_seconds=time.perf_counter() - t0,
    )


def _evaluate_many(
    factory: ConfigFactory,
    counts: Sequence[int],
    platform: Platform,
    farm,
    evaluate,
) -> List[DesignPoint]:
    """Evaluate ``counts`` directly (no farm) or as farm jobs with provenance."""
    if farm is None:
        if callable(evaluate):
            fn = evaluate
        else:
            from repro.farm.job import resolve_fn

            fn = resolve_fn(evaluate)
        return [fn(factory, n, platform) for n in counts]
    from repro.farm import FarmJobError, Job

    jobs = [
        Job(evaluate, (factory, n, platform), label=f"dse/cores{n}")
        for n in counts
    ]
    results = farm.run(jobs)
    failures = [r for r in results if not r.ok]
    if failures:
        raise FarmJobError(failures)
    return [
        replace(
            r.value,
            cache_hit=r.cache_hit,
            worker=r.worker,
            fingerprint=r.fingerprint,
            resumed_from_checkpoint=r.resumed_from_checkpoint,
        )
        for r in results
    ]


def sweep_cores(
    factory: ConfigFactory,
    counts,
    platform: Platform,
    farm=None,
    strategy: str = "scan",
    evaluate=EVALUATE_POINT_JOB,
) -> List[DesignPoint]:
    """Evaluate core counts; see the module docstring for the strategies.

    ``farm`` (optional) shards the builds across a worker pool and memoises
    them; without one, evaluation is in-process and bit-identical to the
    historical serial path.  ``evaluate`` is the per-point evaluator — an
    importable ``"module:attr"`` string (preferred: workers can always
    resolve it) or a callable; tests inject fakes here.
    """
    counts = list(counts)
    if strategy == "scan" or len(counts) <= 2:
        return _evaluate_many(factory, counts, platform, farm, evaluate)
    if strategy != "bisect":
        raise ValueError(f"unknown sweep strategy {strategy!r}")

    ordered = sorted(set(int(n) for n in counts))
    # Probe both endpoints (one farm batch: they build in parallel).
    lo_pt, hi_pt = _evaluate_many(
        factory, [ordered[0], ordered[-1]], platform, farm, evaluate
    )
    if not lo_pt.feasible:
        # The monotone-frontier hypothesis is void (or nothing is feasible):
        # fall back to the full scan, which is always correct.
        return _evaluate_many(factory, counts, platform, farm, evaluate)
    if hi_pt.feasible:
        # Everything in range is feasible under the monotone hypothesis.
        return [lo_pt, hi_pt] if len(ordered) > 1 else [lo_pt]

    # Invariant: ordered[lo_i] feasible, ordered[hi_i] infeasible.
    lo_i, hi_i = 0, len(ordered) - 1
    points = {lo_pt.n_cores: lo_pt, hi_pt.n_cores: hi_pt}
    while hi_i - lo_i > 1:
        mid_i = (lo_i + hi_i) // 2
        (mid_pt,) = _evaluate_many(
            factory, [ordered[mid_i]], platform, farm, evaluate
        )
        points[mid_pt.n_cores] = mid_pt
        if mid_pt.feasible:
            lo_i = mid_i
        else:
            hi_i = mid_i
    return [points[n] for n in sorted(points)]


def frontier(points: Sequence[DesignPoint]) -> int:
    """Largest feasible core count among ``points`` (0 when none is)."""
    feasible = [p.n_cores for p in points if p.feasible]
    return max(feasible) if feasible else 0


def limiting_resource(factory: ConfigFactory, n_cores: int, platform: Platform) -> str:
    """The most over-subscribed resource at ``n_cores`` (raw kind name)."""
    build = BeethovenBuild(factory(n_cores), platform, BuildMode.Simulation)
    device = platform.device
    worst_kind, worst_util = "lut", 0.0
    placement = build.placement
    for slr in range(device.n_slrs):
        free = device.free_capacity(slr)
        load = placement.slr_load[slr]
        extra = build.resource_report.interconnect_per_slr.get(slr)
        if extra is not None:
            load = load + extra
        for kind, util in load.utilisation_of(free).items():
            if util > worst_util:
                worst_kind, worst_util = kind, util
    return worst_kind


def max_feasible_cores(
    factory: ConfigFactory,
    platform: Platform,
    limit: int = 64,
) -> Tuple[int, str, Optional[BeethovenBuild]]:
    """Largest feasible core count, its classified limiter, and the build.

    The limiter is classified the way the paper reports it: logic pressure
    (CLB/LUT/FF) as "LUT", memory-tile pressure as "BRAM".
    """
    best, best_build = 0, None
    lo, hi = 1, limit
    n = 1
    while n <= limit:
        try:
            best_build = BeethovenBuild(factory(n), platform, BuildMode.Synthesis)
            best = n
            lo = n + 1
            n *= 2
        except InfeasibleDesignError:
            hi = n - 1
            break
    while lo <= hi:
        mid = (lo + hi) // 2
        try:
            best_build = BeethovenBuild(factory(mid), platform, BuildMode.Synthesis)
            best = mid
            lo = mid + 1
        except InfeasibleDesignError:
            hi = mid - 1
    raw = limiting_resource(factory, best + 1, platform)
    limiter = "LUT" if raw in ("clb", "lut", "reg") else "BRAM"
    return best, limiter, best_build
