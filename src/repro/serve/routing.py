"""Named-kernel routing onto the heterogeneous core pool.

Clients of the serving layer address *kernel classes* ("gemm", "attn"), not
``(system, core)`` coordinates.  The router derives its table from the
elaborated design itself: a kernel class is the name of a command IO, and
every core of every system exposing that IO is a slot for it.  Two systems
exposing the same IO name pool their cores (cross-system failover for free).

Placement is least-loaded-first over the healthy slots, with a deterministic
``(in_flight, system_id, core_id)`` tie-break — no randomness, so the same
request sequence routes identically under every scheduling backend.  Health
comes from the existing quarantine machinery: slots whose core key the
watchdog has quarantined (or the handle marked degraded) are skipped, and
when *no* healthy slot implements the kernel the router raises the same
typed :class:`~repro.faults.errors.CoreQuarantined` the handle would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.faults.errors import CoreQuarantined
from repro.obs.registry import Counter


@dataclass(frozen=True)
class CoreSlot:
    """One (kernel, core) placement option."""

    kernel: str
    system_name: str
    system_id: int
    core_id: int

    @property
    def key(self) -> Tuple[int, int]:
        return (self.system_id, self.core_id)


class KernelRouter:
    """Maps kernel-class names onto the cores implementing them."""

    def __init__(self, design) -> None:
        self._design = design
        self._table: Dict[str, List[CoreSlot]] = {}
        self._specs: Dict[str, object] = {}
        for system in design.systems:
            for io in system.cores[0].ctx.ios:
                kernel = io.command_spec.name
                self._specs.setdefault(kernel, io.command_spec)
                slots = self._table.setdefault(kernel, [])
                for core in system.cores:
                    slots.append(
                        CoreSlot(
                            kernel=kernel,
                            system_name=system.config.name,
                            system_id=system.system_id,
                            core_id=core.core_id,
                        )
                    )
        #: Service-visible in-flight commands per core key.
        self.in_flight: Dict[Tuple[int, int], int] = {}
        self.routed = Counter()
        #: Routes where quarantine changed the placement decision.
        self.failovers = Counter()

    def register_metrics(self, scope) -> None:
        scope.attach("routed", self.routed)
        scope.attach("failovers", self.failovers)

    def kernels(self) -> List[str]:
        return sorted(self._table)

    def implements(self, kernel: str) -> bool:
        return kernel in self._table

    def slots(self, kernel: str) -> List[CoreSlot]:
        return list(self._table.get(kernel, ()))

    def command_cost(self, kernel: str, fields: Dict[str, int]) -> int:
        """DRR cost of one request: its MMIO chunk count."""
        spec = self._specs[kernel]
        return len(spec.pack(dict(fields), self._design.platform.addr_bits))

    def route(self, kernel: str, unhealthy: Set[Tuple[int, int]]) -> CoreSlot:
        """Least-loaded healthy slot for ``kernel`` (deterministic ties)."""
        slots = self._table.get(kernel)
        if not slots:
            raise KeyError(f"no core implements kernel {kernel!r}")

        def load(slot: CoreSlot) -> Tuple[int, int, int]:
            return (self.in_flight.get(slot.key, 0), slot.system_id, slot.core_id)

        healthy = [s for s in slots if s.key not in unhealthy]
        if not healthy:
            raise CoreQuarantined(
                f"every core implementing kernel {kernel!r} is quarantined "
                f"({len(slots)} slot(s))",
                key=slots[0].key,
            )
        choice = min(healthy, key=load)
        self.routed += 1
        if len(healthy) < len(slots) and choice != min(slots, key=load):
            self.failovers += 1
        return choice

    def note_dispatch(self, key: Tuple[int, int]) -> None:
        self.in_flight[key] = self.in_flight.get(key, 0) + 1

    def note_done(self, key: Tuple[int, int]) -> None:
        self.in_flight[key] = max(0, self.in_flight.get(key, 0) - 1)
