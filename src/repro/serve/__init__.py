"""``repro.serve`` — the multi-tenant accelerator serving layer.

Layers admission control (:class:`AdmissionController`), weighted
deficit-round-robin fair scheduling (:class:`DrrScheduler`), command
batching, and named-kernel heterogeneous routing (:class:`KernelRouter`) on
top of :class:`repro.runtime.FpgaHandle`, plus a deterministic load
generator (:mod:`repro.serve.loadgen`) that proves the layer's SLOs.  See
DESIGN.md ("Multi-tenant serving layer") for the model and its determinism
contract.
"""

from repro.serve.errors import (
    REJECT_REASONS,
    AdmissionRejected,
    ServeError,
    UnknownTenant,
)
from repro.serve.loadgen import (
    ClosedLoop,
    LoadBudgetExceeded,
    LoadGenerator,
    OpenLoop,
    ServingReport,
    TenantLoad,
    jain_index,
    percentile,
)
from repro.serve.routing import CoreSlot, KernelRouter
from repro.serve.scheduler import DrrScheduler
from repro.serve.service import AcceleratorService, TenantSession
from repro.serve.tenant import (
    AdmissionController,
    ServeTicket,
    TenantConfig,
    TenantState,
    TokenBucket,
)

__all__ = [
    "AcceleratorService",
    "AdmissionController",
    "AdmissionRejected",
    "ClosedLoop",
    "CoreSlot",
    "DrrScheduler",
    "KernelRouter",
    "LoadBudgetExceeded",
    "LoadGenerator",
    "OpenLoop",
    "REJECT_REASONS",
    "ServeError",
    "ServeTicket",
    "ServingReport",
    "TenantConfig",
    "TenantLoad",
    "TenantSession",
    "TenantState",
    "TokenBucket",
    "UnknownTenant",
    "jain_index",
    "percentile",
]
