"""The multi-tenant accelerator service.

``AcceleratorService`` composes the serving layer on top of one
:class:`~repro.runtime.FpgaHandle`:

* every tenant gets its own :class:`~repro.runtime.handle.ClientHandle`
  (so the runtime server's per-client FIFO + round-robin arbitration is the
  final fairness stage on the MMIO bus);
* :class:`~repro.serve.tenant.AdmissionController` applies quotas
  synchronously at submit, raising typed
  :class:`~repro.serve.errors.AdmissionRejected` instead of queueing
  unboundedly;
* :class:`~repro.serve.scheduler.DrrScheduler` releases queued requests by
  weighted deficit-round-robin, tagging compatible consecutive releases with
  a shared batch id the server uses to skip lock-acquisition cost;
* :class:`~repro.serve.routing.KernelRouter` turns kernel-class names into
  ``(system, core)`` placements over healthy cores, failing over around the
  watchdog's quarantine set.

Event model: the service is *pump-driven*.  A pump (one or more DRR rounds)
runs when a request is submitted and when an in-flight request settles — the
settle path runs inside the runtime server's poll tick via
``ResponseHandle.add_done_callback``, which is the same safe mid-tick
resubmission pattern the watchdog's retry path already uses.  Between pumps
the service is pure model state, so every decision happens at cycles the
four scheduling backends reproduce identically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.serve.errors import AdmissionRejected, UnknownTenant
from repro.serve.routing import KernelRouter
from repro.serve.scheduler import DrrScheduler
from repro.serve.tenant import (
    AdmissionController,
    ServeTicket,
    TenantConfig,
    TenantState,
)


class TenantSession:
    """A tenant-scoped view of the service: memory budget + submission."""

    def __init__(self, service: "AcceleratorService", state: TenantState) -> None:
        self._service = service
        self._state = state

    @property
    def tenant(self) -> str:
        return self._state.name

    def malloc(self, n_bytes: int):
        """Allocate device memory charged to this tenant's budget."""
        self._service.admission.charge_memory(self._state, n_bytes)
        try:
            return self._state.client.malloc(n_bytes)
        except BaseException:
            self._service.admission.release_memory(self._state, n_bytes)
            raise

    def free(self, ptr) -> None:
        self._state.client.free(ptr)
        self._service.admission.release_memory(self._state, ptr.size)

    def copy_to_fpga(self, ptr) -> None:
        self._state.client.copy_to_fpga(ptr)

    def copy_from_fpga(self, ptr) -> None:
        self._state.client.copy_from_fpga(ptr)

    def submit(self, kernel: str, **fields) -> ServeTicket:
        return self._service.submit(self._state.name, kernel, **fields)


class AcceleratorService:
    """Admission + fair scheduling + heterogeneous routing over one handle."""

    def __init__(
        self,
        handle,
        tenants: Iterable[TenantConfig],
        quantum_unit: int = 4,
        max_batch: int = 8,
    ) -> None:
        self.handle = handle
        self.design = handle.design
        self.router = KernelRouter(self.design)
        self._tenants: Dict[str, TenantState] = {}
        registry = self.design.registry
        for cfg in tenants:
            if cfg.name in self._tenants:
                raise ValueError(f"duplicate tenant name {cfg.name!r}")
            client = handle.new_client(cfg.name)
            client.tenant = cfg.name
            state = TenantState(cfg, client)
            state.register_metrics(registry.scope(f"serve/tenant/{cfg.name}"))
            self._tenants[cfg.name] = state
        if not self._tenants:
            raise ValueError("a service needs at least one tenant")
        self.admission = AdmissionController(self._tenants)
        self.scheduler = DrrScheduler(
            list(self._tenants.values()), quantum_unit=quantum_unit,
            max_batch=max_batch,
        )
        self.scheduler.register_metrics(registry.scope("serve/sched"))
        self.router.register_metrics(registry.scope("serve/routing"))
        registry.scope("serve").bind("settled", lambda: self._settled)
        self._settled = 0
        self._in_pump = False

    # -------------------------------------------------------------- tenants
    def tenant(self, name: str) -> TenantState:
        try:
            return self._tenants[name]
        except KeyError:
            raise UnknownTenant(
                f"no tenant {name!r} (configured: {sorted(self._tenants)})",
                tenant=name,
            ) from None

    def tenants(self) -> List[TenantState]:
        return list(self._tenants.values())

    def session(self, name: str) -> TenantSession:
        return TenantSession(self, self.tenant(name))

    # ------------------------------------------------------------ submission
    def submit(self, tenant: str, kernel: str, **fields) -> ServeTicket:
        """Admit one request or raise :class:`AdmissionRejected`.

        An admitted request is queued under its tenant and released by the
        DRR pump; the returned ticket carries its full lifecycle.
        """
        state = self.tenant(tenant)
        cycle = self.design.sim.cycle
        known = self.router.implements(kernel)
        self.admission.admit(cycle, state, kernel, known)
        ticket = ServeTicket(
            tenant=tenant,
            kernel=kernel,
            fields=dict(fields),
            cost=self.router.command_cost(kernel, fields),
            seq=state.next_seq(),
            submit_cycle=cycle,
        )
        state.queue.append(ticket)
        self.pump()
        return ticket

    # ----------------------------------------------------------------- pump
    def unhealthy_cores(self) -> Set[Tuple[int, int]]:
        return set(self.handle.server.quarantined) | set(self.handle.degraded_cores)

    def pump(self) -> int:
        """Run DRR rounds until no further release is possible right now.

        Re-entrant calls (a synchronous settle scheduling new work while a
        round is mid-flight) are folded into the outer loop, which keeps
        re-running rounds until a fixpoint.  When nothing is in flight but a
        queued head costs more than one quantum, extra rounds accrue deficit
        until it launches — guaranteed progress, bounded by the head's cost.
        """
        if self._in_pump:
            return 0
        self._in_pump = True
        total = 0
        try:
            while True:
                released = self.scheduler.dispatch_round(self._dispatch_one)
                total += released
                if released:
                    continue
                if self.total_in_flight == 0 and self.scheduler.has_eligible_backlog():
                    continue  # accrue deficit for an expensive head request
                break
        finally:
            self._in_pump = False
        return total

    def _dispatch_one(self, ticket: ServeTicket, batch_id: int) -> bool:
        state = self._tenants[ticket.tenant]
        cycle = self.design.sim.cycle
        try:
            slot = self.router.route(ticket.kernel, self.unhealthy_cores())
        except Exception as exc:  # typed CoreQuarantined / KeyError
            self._settle(ticket, "failed", f"{type(exc).__name__}: {exc}")
            return False
        ticket.dispatch_cycle = cycle
        ticket.core = slot.key
        ticket.outcome = "in_flight"
        state.in_flight += 1
        self.router.note_dispatch(slot.key)
        state.queue_wait_hist.observe(cycle - ticket.submit_cycle)
        fut = state.client.call(
            slot.system_name,
            ticket.kernel,
            slot.core_id,
            _batch=batch_id,
            **ticket.fields,
        )
        fut.add_done_callback(lambda f, t=ticket: self._on_done(t, f))
        return True

    def _on_done(self, ticket: ServeTicket, fut) -> None:
        state = self._tenants[ticket.tenant]
        state.in_flight -= 1
        if ticket.core is not None:
            self.router.note_done(ticket.core)
        try:
            fut.try_get()
        except Exception as exc:  # typed fault-layer errors
            self._settle(ticket, "failed", f"{type(exc).__name__}: {exc}")
        else:
            self._settle(ticket, "ok", "")
        self.pump()

    def _settle(self, ticket: ServeTicket, outcome: str, error: str) -> None:
        state = self._tenants[ticket.tenant]
        ticket.done_cycle = self.design.sim.cycle
        ticket.outcome = outcome
        ticket.error = error
        self._settled += 1
        if outcome == "ok":
            state.completed += 1
            state.latency_hist.observe(ticket.latency)
        else:
            state.failed += 1
        if ticket.on_settle is not None:
            ticket.on_settle(ticket)

    # ------------------------------------------------------------ inspection
    @property
    def total_in_flight(self) -> int:
        return sum(s.in_flight for s in self._tenants.values())

    @property
    def settled_total(self) -> int:
        return self._settled

    def drained(self) -> bool:
        """True when no tenant has queued or in-flight work."""
        return all(
            not s.queue and s.in_flight == 0 for s in self._tenants.values()
        )

    def run_until_drained(self, max_cycles: int = 10_000_000) -> int:
        """Advance the simulation until every admitted request settled.

        ``drained`` is a pure model-state predicate (never a cycle-number
        comparison), so the wait is safe under event-skipping backends; a
        blown budget raises the kernel's typed DeadlockError.
        """
        if self.drained():
            return self.design.sim.cycle
        return self.handle.run_until(self.drained, max_cycles)
