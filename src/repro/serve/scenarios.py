"""Canonical serving scenarios shared by the bench, the CLI, chaos and tests.

The heterogeneous vehicle is two DelayCore systems with distinct kernel
classes — ``gemm`` (long latency, "Gemm" system) and ``attn`` (short
latency, "Attn" system).  DelayCores exercise the *entire* host path
(runtime-server lock, MMIO serialisation, routing, polling, watchdog)
exactly while keeping runs cheap and deterministic, which is the same
argument the Figure-6 reproduction uses; the serving layer's behaviour is a
host-path property, so this measures the real thing.

Profiles:

* ``symmetric``  — 3 identical closed-loop tenants, 50/50 kernel mix.  The
  fairness acceptance gate (Jain >= 0.9) runs on this profile.
* ``asymmetric`` — an open-loop flooder with a tight rate limit and shallow
  queue (so typed rejections actually happen), a steady closed-loop tenant,
  and a low-rate bursty tenant; shows admission control shielding the
  well-behaved tenants.
* ``smoke``      — a tiny symmetric mix for CI smoke and chaos runs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.serve.loadgen import (
    ClosedLoop,
    LoadGenerator,
    OpenLoop,
    ServingReport,
    TenantLoad,
)
from repro.serve.service import AcceleratorService
from repro.serve.tenant import TenantConfig

PROFILES = ("symmetric", "asymmetric", "smoke")

#: Delay-core latencies of the two kernel classes (cycles).
GEMM_CYCLES = 1100
ATTN_CYCLES = 400


def hetero_build(
    mode: Optional[str] = None,
    faults=None,
    watchdog=None,
    observability=None,
    n_gemm: int = 2,
    n_attn: int = 2,
    distributed=None,
):
    """Two-system heterogeneous design: Gemm + Attn delay cores.

    ``distributed`` forwards a :class:`repro.dist.DistConfig`; note the
    delay cores declare no memory channels, so sharding only applies once a
    scenario swaps in compute cores with AXI endpoints (the partitioner
    needs SLR-crossing pipes to cut).
    """
    from repro.baselines.delay_core import delay_config
    from repro.core.build import BeethovenBuild
    from repro.platforms import AWSF1Platform

    configs = [
        delay_config(n_gemm, GEMM_CYCLES, name="Gemm", io_name="gemm"),
        delay_config(n_attn, ATTN_CYCLES, name="Attn", io_name="attn"),
    ]
    return BeethovenBuild(
        configs,
        AWSF1Platform(),
        scheduling=mode,
        faults=faults,
        watchdog=watchdog,
        observability=observability,
        distributed=distributed,
    )


_BOTH = [("gemm", {"job": 1}, 1), ("attn", {"job": 2}, 1)]


def profile_loads(profile: str, n_requests: int) -> List[TenantLoad]:
    """The tenant mix of one named profile (``n_requests`` per tenant)."""
    if profile == "symmetric":
        return [
            TenantLoad(
                TenantConfig(name=f"tenant{i}", max_in_flight=2, max_queued=64),
                _BOTH,
                ClosedLoop(concurrency=2, n_requests=n_requests),
            )
            for i in range(3)
        ]
    if profile == "asymmetric":
        return [
            TenantLoad(
                TenantConfig(
                    name="flood",
                    max_in_flight=2,
                    max_queued=4,
                    cycles_per_token=900,
                    burst_tokens=4,
                ),
                [("attn", {"job": 3}, 1)],
                OpenLoop(mean_gap_cycles=150, n_requests=4 * n_requests),
            ),
            TenantLoad(
                TenantConfig(name="steady", max_in_flight=2, max_queued=64),
                _BOTH,
                ClosedLoop(concurrency=1, n_requests=n_requests),
            ),
            TenantLoad(
                TenantConfig(name="bursty", max_in_flight=2, max_queued=64),
                [("gemm", {"job": 4}, 1)],
                OpenLoop(mean_gap_cycles=4000, n_requests=n_requests),
            ),
        ]
    if profile == "smoke":
        return [
            TenantLoad(
                TenantConfig(name=f"tenant{i}", max_in_flight=2, max_queued=32),
                _BOTH,
                ClosedLoop(concurrency=1, n_requests=n_requests),
            )
            for i in range(3)
        ]
    raise ValueError(f"unknown serving profile {profile!r} (have {PROFILES})")


def run_scenario(
    profile: str,
    seed: int,
    mode: Optional[str] = None,
    n_requests: int = 8,
    faults=None,
    watchdog=None,
    observability=None,
    max_cycles: int = 2_000_000,
) -> Tuple[ServingReport, AcceleratorService, object]:
    """Build, serve and drain one profile; returns (report, service, build)."""
    build = hetero_build(
        mode=mode, faults=faults, watchdog=watchdog, observability=observability
    )
    from repro.runtime import FpgaHandle

    handle = FpgaHandle(build.design)
    loads = profile_loads(profile, n_requests)
    service = AcceleratorService(handle, [load.tenant for load in loads])
    gen = LoadGenerator(service, loads, seed=seed)
    report = gen.run(max_cycles=max_cycles)
    return report, service, build
