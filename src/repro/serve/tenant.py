"""Tenant identity, quotas, and the admission controller.

A *tenant* is one customer of the serving layer: it owns a
:class:`~repro.runtime.handle.ClientHandle` (so the runtime server's
round-robin arbitration already separates its MMIO traffic), a bounded
command queue the DRR scheduler drains, and a quota envelope the admission
controller enforces *synchronously at submit time*:

* ``max_queued``       — bounded per-tenant queue; overflow is rejected.
* ``cycles_per_token`` — integer token-bucket rate limit (one admission per
  N cycles, with a burst allowance).  All arithmetic is integer cycles, so
  admission decisions are a pure function of submit cycles and therefore
  identical across scheduling backends.
* ``memory_budget_bytes`` — cap on the tenant's live device allocations,
  charged through :class:`~repro.serve.service.TenantSession`.
* ``kernels``          — optional allow-list of kernel classes.

``max_in_flight`` is *not* an admission quota: it is the dispatch-side
backpressure the scheduler honours, which keeps each tenant's footprint in
the runtime server bounded without rejecting work that merely has to wait
its turn.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from repro.obs.registry import Counter, Histogram
from repro.serve.errors import REJECT_REASONS, AdmissionRejected


@dataclass(frozen=True)
class TenantConfig:
    """Static quota/weight envelope of one tenant."""

    name: str
    #: DRR weight: a tenant with weight 2 receives twice the deficit quantum.
    weight: int = 1
    #: Strict priority class; lower classes are fully served first.
    priority: int = 0
    #: Commands this tenant may have dispatched-but-unanswered at once.
    max_in_flight: int = 4
    #: Bounded queue depth; admission rejects (``queue_full``) past it.
    max_queued: int = 32
    #: Token-bucket rate: one admission per this many cycles (0 = unlimited).
    cycles_per_token: int = 0
    #: Burst allowance: admissions that may land back-to-back at full bucket.
    burst_tokens: int = 8
    #: Cap on live device-memory bytes (None = unlimited).
    memory_budget_bytes: Optional[int] = None
    #: Kernel classes this tenant may call (None = all).
    kernels: Optional[Tuple[str, ...]] = None


class TokenBucket:
    """Integer-cycle token bucket; deterministic across scheduling modes.

    The level is kept in *cycle units*: it refills by 1 per elapsed cycle up
    to ``burst * cycles_per_token`` and an admission costs ``cycles_per_token``
    units.  Everything is integer arithmetic on the submit cycle, so the
    accept/reject decision for a given arrival sequence is exact.
    """

    def __init__(self, cycles_per_token: int, burst: int) -> None:
        self.cycles_per_token = max(int(cycles_per_token), 0)
        self.capacity = max(int(burst), 1) * self.cycles_per_token
        self.level = self.capacity
        self._last_cycle = 0

    def _refill(self, cycle: int) -> None:
        if cycle > self._last_cycle:
            self.level = min(self.capacity, self.level + (cycle - self._last_cycle))
            self._last_cycle = cycle

    def try_take(self, cycle: int) -> bool:
        """Consume one token if available at ``cycle``."""
        if self.cycles_per_token <= 0:
            return True
        self._refill(cycle)
        if self.level >= self.cycles_per_token:
            self.level -= self.cycles_per_token
            return True
        return False

    def next_ready_cycle(self, cycle: int) -> int:
        """Earliest cycle a token will be available (== ``cycle`` if now)."""
        if self.cycles_per_token <= 0:
            return cycle
        self._refill(cycle)
        if self.level >= self.cycles_per_token:
            return cycle
        return cycle + (self.cycles_per_token - self.level)


@dataclass
class ServeTicket:
    """Lifecycle record of one admitted request.

    ``outcome`` moves ``queued -> in_flight -> ok | failed``; a rejected
    request never gets a ticket (admission raises instead).  All cycle
    stamps come from the simulator, so a ticket's metrics are identical
    across scheduling backends.
    """

    tenant: str
    kernel: str
    fields: Dict[str, int]
    #: DRR cost: number of MMIO command chunks this request serialises.
    cost: int
    seq: int
    submit_cycle: int
    dispatch_cycle: Optional[int] = None
    done_cycle: Optional[int] = None
    outcome: str = "queued"
    error: str = ""
    #: ``(system_id, core_id)`` the router chose.
    core: Optional[Tuple[int, int]] = None
    batch: Optional[int] = None
    #: Loadgen hook, invoked exactly once when the ticket settles.
    on_settle: Optional[object] = None

    @property
    def settled(self) -> bool:
        return self.outcome in ("ok", "failed")

    @property
    def latency(self) -> Optional[int]:
        """End-to-end latency (admission -> response), queueing included."""
        if self.done_cycle is None:
            return None
        return self.done_cycle - self.submit_cycle

    @property
    def queue_wait(self) -> Optional[int]:
        if self.dispatch_cycle is None:
            return None
        return self.dispatch_cycle - self.submit_cycle


class TenantState:
    """Mutable serving-side state of one tenant (queue, quota, metrics)."""

    def __init__(self, config: TenantConfig, client) -> None:
        self.config = config
        self.client = client
        self.queue: Deque[ServeTicket] = deque()
        self.in_flight = 0
        #: DRR deficit in command-chunk units.
        self.deficit = 0
        self.mem_used = 0
        self.bucket = TokenBucket(config.cycles_per_token, config.burst_tokens)
        self._next_seq = 0
        # Metrics (attached under serve/tenant/<name>/ by the service).
        self.submitted = Counter()
        self.admitted = Counter()
        self.completed = Counter()
        self.failed = Counter()
        self.rejected = {reason: Counter() for reason in REJECT_REASONS}
        self.latency_hist = Histogram()
        self.queue_wait_hist = Histogram()

    @property
    def name(self) -> str:
        return self.config.name

    def next_seq(self) -> int:
        self._next_seq += 1
        return self._next_seq

    @property
    def rejected_total(self) -> int:
        return sum(int(c) for c in self.rejected.values())

    def can_dispatch(self) -> bool:
        return self.in_flight < self.config.max_in_flight

    def register_metrics(self, scope) -> None:
        scope.attach("submitted", self.submitted)
        scope.attach("admitted", self.admitted)
        scope.attach("completed", self.completed)
        scope.attach("failed", self.failed)
        for reason, counter in self.rejected.items():
            scope.attach(f"rejected_{reason}", counter)
        scope.attach("latency", self.latency_hist)
        scope.attach("queue_wait", self.queue_wait_hist)
        scope.bind("queued", lambda: len(self.queue))
        scope.bind("in_flight", lambda: self.in_flight)
        scope.bind("mem_used_bytes", lambda: self.mem_used)


class AdmissionController:
    """Synchronous, typed admission decisions against tenant quotas."""

    def __init__(self, tenants: Dict[str, TenantState]) -> None:
        self._tenants = tenants

    def _reject(self, state: TenantState, reason: str, kernel: str, detail: str):
        state.rejected[reason] += 1
        raise AdmissionRejected(
            f"tenant {state.name!r}: {detail}",
            tenant=state.name,
            reason=reason,
            kernel=kernel,
        )

    def admit(self, cycle: int, state: TenantState, kernel: str, known: bool) -> None:
        """Admit one request or raise :class:`AdmissionRejected`.

        Checks run cheapest-first and the token is consumed last, so a
        rejection never burns rate budget.
        """
        cfg = state.config
        state.submitted += 1
        if not known:
            self._reject(
                state, "unknown_kernel", kernel,
                f"no core in this design implements kernel {kernel!r}",
            )
        if cfg.kernels is not None and kernel not in cfg.kernels:
            self._reject(
                state, "kernel_not_allowed", kernel,
                f"kernel {kernel!r} not in tenant allow-list {cfg.kernels}",
            )
        if len(state.queue) >= cfg.max_queued:
            self._reject(
                state, "queue_full", kernel,
                f"queue depth {len(state.queue)} at bound {cfg.max_queued}",
            )
        if not state.bucket.try_take(cycle):
            self._reject(
                state, "rate_limited", kernel,
                f"token bucket empty at cycle {cycle} "
                f"(next token at {state.bucket.next_ready_cycle(cycle)})",
            )
        state.admitted += 1

    def charge_memory(self, state: TenantState, n_bytes: int) -> None:
        """Reserve ``n_bytes`` against the tenant's budget or reject."""
        budget = state.config.memory_budget_bytes
        if budget is not None and state.mem_used + n_bytes > budget:
            state.rejected["memory_budget"] += 1
            raise AdmissionRejected(
                f"tenant {state.name!r}: allocation of {n_bytes} B would exceed "
                f"memory budget ({state.mem_used}/{budget} B live)",
                tenant=state.name,
                reason="memory_budget",
            )
        state.mem_used += n_bytes

    def release_memory(self, state: TenantState, n_bytes: int) -> None:
        state.mem_used = max(0, state.mem_used - n_bytes)
