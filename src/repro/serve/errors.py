"""Typed errors of the multi-tenant serving layer.

The serving layer's contract mirrors the fault layer's: a request either
completes, fails with a *typed* error carried on its ticket, or is rejected
synchronously at admission — never unbounded queueing, never a silent drop.
These live in their own module (importing nothing from the rest of the
package) so the admission controller, scheduler and load generator can all
raise them without import cycles.
"""

from __future__ import annotations


#: Admission rejection reasons; each has a dedicated per-tenant counter.
REJECT_REASONS = (
    "queue_full",
    "rate_limited",
    "memory_budget",
    "kernel_not_allowed",
    "unknown_kernel",
)


class ServeError(RuntimeError):
    """Base class for typed serving-layer outcomes surfaced to clients."""


class AdmissionRejected(ServeError):
    """A request was refused at admission instead of being queued.

    Bounded queues are the point of the admission controller: a tenant past
    its quota receives this (with a machine-readable ``reason``) immediately,
    so load sheds at the front door instead of growing an unbounded backlog
    behind the runtime-server lock.
    """

    def __init__(
        self, message: str, tenant: str = "", reason: str = "", kernel: str = ""
    ) -> None:
        super().__init__(message)
        #: Tenant whose quota rejected the request.
        self.tenant = tenant
        #: One of :data:`REJECT_REASONS`.
        self.reason = reason
        #: Kernel class the rejected request addressed (may be empty).
        self.kernel = kernel


class UnknownTenant(ServeError):
    """A request named a tenant the service was not configured with."""

    def __init__(self, message: str, tenant: str = "") -> None:
        super().__init__(message)
        self.tenant = tenant
