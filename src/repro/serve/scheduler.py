"""Deficit-round-robin scheduling between tenants, with command batching.

The runtime server already arbitrates *clients* round-robin at MMIO-word
granularity; that is fair per command but blind to cost and weight.  The
serving layer adds a second, cost-aware stage in front of it: each tenant
owns a bounded queue, and a deficit-round-robin pass decides which queued
requests are released to the server.

DRR mechanics (Shreedhar & Varghese): every time the scheduler visits a
tenant whose queue is non-empty and whose in-flight window has room, the
tenant's *deficit* grows by ``quantum_unit * weight``; requests are released
while the head's cost (its MMIO chunk count) fits in the deficit.  A tenant
whose queue drains forfeits its remaining deficit, so deficits stay bounded
by one maximal request cost and long-run service is proportional to weight.
Strict priority classes sit above this: class 0 tenants are fully served
before class 1 is visited at all (use with care — higher classes can starve).

Batching: consecutive releases of the *same tenant and kernel* share a
batch id (capped at ``max_batch`` members), chained across pump calls until
a different tenant or kernel releases.  The runtime server then skips the
per-command lock-acquisition cost — but only when the batched command keeps
the bus continuously occupied (dispatch resumes the cycle the lock would
have been released), i.e. genuine back-to-back amortisation of the MMIO
serialisation the paper's Figure 6 contention model motivates.  An idle gap
or an interleaved command from another client pays the full cost again.
Batches never cross tenants, so coalescing cannot defeat fairness.

Determinism: scheduling decisions depend only on queue contents, integer
deficits and the visit rotation — all functions of model state at pump
cycles, which the four scheduling backends reproduce cycle-identically.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import Counter
from repro.serve.tenant import ServeTicket, TenantState


class DrrScheduler:
    """Weighted deficit-round-robin over per-tenant queues."""

    def __init__(
        self,
        tenants: Sequence[TenantState],
        quantum_unit: int = 4,
        max_batch: int = 8,
    ) -> None:
        if quantum_unit < 1:
            raise ValueError("quantum_unit must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.quantum_unit = quantum_unit
        self.max_batch = max_batch
        # Strict priority classes; within a class, registration order is the
        # round-robin order (deterministic by construction).
        classes: Dict[int, List[TenantState]] = {}
        for state in tenants:
            classes.setdefault(state.config.priority, []).append(state)
        self._classes: List[Tuple[int, List[TenantState]]] = sorted(classes.items())
        self._pos: Dict[int, int] = {prio: 0 for prio, _ in self._classes}
        self._next_batch = 1
        # Open batch chain: (tenant, kernel, batch_id, members).  The next
        # release continues it iff tenant and kernel match and the chain is
        # under max_batch; any other release (or a failed emit) breaks it.
        self._chain: Optional[Tuple[str, str, int, int]] = None
        self.rounds = Counter()
        self.dispatched = Counter()
        self.batches = Counter()
        #: Commands that rode in a batch after its first member (each one
        #: saves a lock acquisition at the server).
        self.coalesced = Counter()

    def register_metrics(self, scope) -> None:
        scope.attach("rounds", self.rounds)
        scope.attach("dispatched", self.dispatched)
        scope.attach("batches", self.batches)
        scope.attach("coalesced", self.coalesced)
        scope.bind("backlog", lambda: sum(len(s.queue) for s in self.states()))

    def states(self) -> List[TenantState]:
        return [s for _, states in self._classes for s in states]

    def dispatch_round(
        self, emit: Callable[[ServeTicket, int], bool]
    ) -> int:
        """One DRR pass; returns the number of tickets handed to ``emit``.

        ``emit(ticket, batch_id)`` dispatches the released request and
        returns True when it is genuinely in flight (False means it settled
        synchronously, e.g. every implementing core is quarantined).
        """
        self.rounds += 1
        released = 0
        for prio, states in self._classes:
            n = len(states)
            pos = self._pos[prio]
            for k in range(n):
                state = states[(pos + k) % n]
                if not state.queue or not state.can_dispatch():
                    continue
                state.deficit += self.quantum_unit * state.config.weight
                while state.queue and state.can_dispatch():
                    head = state.queue[0]
                    if head.cost > state.deficit:
                        break
                    state.queue.popleft()
                    state.deficit -= head.cost
                    chain = self._chain
                    if (
                        chain is not None
                        and chain[0] == state.name
                        and chain[1] == head.kernel
                        and chain[3] < self.max_batch
                    ):
                        batch_id = chain[2]
                        self._chain = (chain[0], chain[1], batch_id, chain[3] + 1)
                        self.coalesced += 1
                    else:
                        batch_id = self._next_batch
                        self._next_batch += 1
                        self._chain = (state.name, head.kernel, batch_id, 1)
                        self.batches += 1
                    head.batch = batch_id
                    released += 1
                    self.dispatched += 1
                    if not emit(head, batch_id):
                        # Settled synchronously; the slot is still free but
                        # the batch chain is broken (nothing hit the server).
                        self._chain = None
                if not state.queue:
                    state.deficit = 0
            self._pos[prio] = (pos + 1) % n if n else 0
        return released

    def has_eligible_backlog(self) -> bool:
        """True when some queued tenant could dispatch given more deficit.

        The service pump keeps running rounds while this holds and nothing
        is in flight, so a request costlier than one quantum still
        accumulates enough deficit to launch (guaranteed progress: deficit
        grows every visit).
        """
        return any(
            state.queue and state.can_dispatch() for state in self.states()
        )
