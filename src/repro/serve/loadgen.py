"""Deterministic load generation and SLO reporting for the serving layer.

Arrival processes are *seeded and simulated-time-only*: open-loop
interarrival gaps are drawn up front from a per-tenant PRNG (so the whole
arrival schedule is a pure function of the seed), and closed-loop arrivals
are driven by request settlement, which the cycle-identical scheduling
backends reproduce exactly.  No wall-clock, no global randomness — the same
seed therefore produces bit-identical reports under naive, fast_forward,
selective and compiled scheduling, which ``bench_serving.py`` asserts.

The generator advances the simulation itself, alternating two safe waits:

* a **bounded run** (``sim.run(n)`` with no predicate) to reach the next
  known arrival cycle — exact under event-skipping, and never a cycle-number
  predicate (those can be skipped over);
* a **state-predicate wait** (``settled_total`` strictly increasing) when
  the next event is a completion whose cycle is unknown.

Rejection semantics mirror real load generators: open-loop arrivals that are
rejected are *lost* (the client does not retry), while closed-loop streams
retry retryable rejections (``rate_limited``/``queue_full``) after a backoff
and drop the request otherwise.
"""

from __future__ import annotations

import hashlib
import heapq
import math
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.serve.errors import AdmissionRejected, ServeError
from repro.serve.service import AcceleratorService
from repro.serve.tenant import ServeTicket, TenantConfig

#: A tenant's traffic mix: ``(kernel, fields, weight)`` entries.
MixEntry = Tuple[str, Dict[str, int], int]


class LoadBudgetExceeded(ServeError):
    """The load run hit its cycle budget with work still outstanding."""


@dataclass(frozen=True)
class OpenLoop:
    """Arrivals at seeded exponential interarrival gaps, fire-and-forget."""

    mean_gap_cycles: int
    n_requests: int


@dataclass(frozen=True)
class ClosedLoop:
    """``concurrency`` request streams, each issuing on completion."""

    concurrency: int
    n_requests: int
    #: Think time between a settlement and the stream's next request.
    think_cycles: int = 0
    #: Backoff before retrying a retryable rejection.
    retry_backoff_cycles: int = 64
    #: Retries per logical request before it is dropped.
    max_retries: int = 100


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's quota envelope plus its offered traffic."""

    tenant: TenantConfig
    mix: Sequence[MixEntry]
    arrivals: Union[OpenLoop, ClosedLoop]


def _derive_seed(seed: int, name: str, role: str) -> int:
    """Stable 64-bit stream seed (never ``hash()`` — that salts per-process)."""
    digest = hashlib.sha256(f"{seed}:{name}:{role}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def percentile(sorted_values: Sequence[int], q: float) -> int:
    """Nearest-rank percentile of pre-sorted integer samples (0 if empty)."""
    if not sorted_values:
        return 0
    k = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[min(k, len(sorted_values) - 1)]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index; 1.0 for an empty/all-zero population."""
    total = sum(values)
    sq = sum(v * v for v in values)
    if not values or sq == 0:
        return 1.0
    return (total * total) / (len(values) * sq)


class _Runner:
    """Per-tenant driver state: arrival schedule, retries, tickets."""

    def __init__(self, load: TenantLoad, seed: int) -> None:
        self.load = load
        self.name = load.tenant.name
        self.closed = isinstance(load.arrivals, ClosedLoop)
        self.n = load.arrivals.n_requests
        self.issued = 0  # open-loop arrivals fired (admitted or lost)
        self.admitted = 0
        self.dropped = 0  # closed-loop logical requests given up on
        self.settled = 0
        self.tickets: List[ServeTicket] = []
        self._mix_rng = random.Random(_derive_seed(seed, self.name, "mix"))
        self._retries: Deque[Tuple[str, Dict[str, int], int]] = deque()
        self.arrival_cycles: List[int] = []
        if not self.closed:
            gap_rng = random.Random(_derive_seed(seed, self.name, "gaps"))
            mean = max(1, self.load.arrivals.mean_gap_cycles)
            at = 0
            for _ in range(self.n):
                at += max(1, int(gap_rng.expovariate(1.0 / mean)))
                self.arrival_cycles.append(at)

    def next_request(self) -> Tuple[str, Dict[str, int], int]:
        """Next ``(kernel, fields, attempts)`` — a queued retry or a fresh draw."""
        if self._retries:
            return self._retries.popleft()
        entries = list(self.load.mix)
        weights = [w for _, _, w in entries]
        kernel, fields, _ = self._mix_rng.choices(entries, weights=weights)[0]
        return kernel, dict(fields), 0

    def queue_retry(self, kernel: str, fields: Dict[str, int], attempts: int) -> None:
        self._retries.append((kernel, fields, attempts))

    @property
    def exhausted(self) -> bool:
        if self.closed:
            return self.admitted + self.dropped >= self.n
        return self.issued >= self.n


@dataclass
class ServingReport:
    """Per-tenant SLO metrics of one load run; all cycle-derived."""

    start_cycle: int
    end_cycle: int
    tenants: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    fairness_jain: float = 1.0
    totals: Dict[str, Any] = field(default_factory=dict)

    @property
    def elapsed_cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    def to_dict(self) -> Dict[str, Any]:
        return {
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "elapsed_cycles": self.elapsed_cycles,
            "fairness_jain": self.fairness_jain,
            "tenants": {k: dict(self.tenants[k]) for k in sorted(self.tenants)},
            "totals": dict(self.totals),
        }

    def render(self) -> str:
        lines = [
            f"serving report: {self.totals.get('completed', 0)} completed / "
            f"{self.totals.get('submitted', 0)} submitted over "
            f"{self.elapsed_cycles} cycles, Jain fairness "
            f"{self.fairness_jain:.3f}"
        ]
        header = (
            f"  {'tenant':<10} {'ok':>5} {'fail':>5} {'rej':>5} "
            f"{'p50':>7} {'p99':>7} {'p999':>7} {'goodput':>9} {'rej_rate':>8}"
        )
        lines.append(header)
        for name in sorted(self.tenants):
            t = self.tenants[name]
            lines.append(
                f"  {name:<10} {t['completed']:>5} {t['failed']:>5} "
                f"{t['rejected']:>5} {t['p50']:>7} {t['p99']:>7} "
                f"{t['p999']:>7} {t['goodput']:>9.3f} "
                f"{t['rejection_rate']:>8.3f}"
            )
        return "\n".join(lines)


class LoadGenerator:
    """Drives seeded tenant mixes through an :class:`AcceleratorService`."""

    def __init__(
        self,
        service: AcceleratorService,
        loads: Sequence[TenantLoad],
        seed: int = 0,
    ) -> None:
        self.service = service
        self.seed = seed
        self._runners = [_Runner(load, seed) for load in loads]
        for runner in self._runners:
            # The runner's tenant must exist on the service; fail fast.
            service.tenant(runner.name)
        self._heap: List[Tuple[int, int, int]] = []
        self._order = 0

    # ------------------------------------------------------------- plumbing
    def _push(self, cycle: int, runner_idx: int) -> None:
        self._order += 1
        heapq.heappush(self._heap, (cycle, self._order, runner_idx))

    def _issue(self, idx: int, cycle: int) -> None:
        runner = self._runners[idx]
        kernel, fields, attempts = runner.next_request()
        if not runner.closed:
            runner.issued += 1
        try:
            ticket = self.service.submit(runner.name, kernel, **fields)
        except AdmissionRejected as exc:
            self._on_rejection(idx, cycle, kernel, fields, attempts, exc)
            return
        runner.admitted += 1
        runner.tickets.append(ticket)
        ticket.on_settle = lambda t, i=idx: self._on_settle(i, t)

    def _on_rejection(
        self,
        idx: int,
        cycle: int,
        kernel: str,
        fields: Dict[str, int],
        attempts: int,
        exc: AdmissionRejected,
    ) -> None:
        runner = self._runners[idx]
        if not runner.closed:
            return  # open loop: a rejected arrival is lost
        arrivals = runner.load.arrivals
        retryable = exc.reason in ("rate_limited", "queue_full")
        if retryable and attempts < arrivals.max_retries:
            runner.queue_retry(kernel, fields, attempts + 1)
            self._push(cycle + max(1, arrivals.retry_backoff_cycles), idx)
            return
        runner.dropped += 1
        if not runner.exhausted:
            self._push(cycle, idx)  # the stream slot moves on immediately

    def _on_settle(self, idx: int, ticket: ServeTicket) -> None:
        runner = self._runners[idx]
        runner.settled += 1
        if runner.closed and not runner.exhausted:
            think = runner.load.arrivals.think_cycles
            if think <= 0:
                self._issue(idx, ticket.done_cycle)
            else:
                self._push(ticket.done_cycle + think, idx)

    # ------------------------------------------------------------------ run
    def run(
        self, max_cycles: int = 2_000_000, stall_budget: int = 400_000
    ) -> ServingReport:
        """Inject every load, drain the service, and report SLO metrics."""
        sim = self.service.design.sim
        start = sim.cycle
        deadline = start + max_cycles
        for idx, runner in enumerate(self._runners):
            if runner.closed:
                for _ in range(runner.load.arrivals.concurrency):
                    if not runner.exhausted:
                        self._push(start, idx)
            else:
                for at in runner.arrival_cycles:
                    self._push(start + at, idx)
        while True:
            cycle = sim.cycle
            if cycle > deadline:
                raise LoadBudgetExceeded(
                    f"load run past its {max_cycles}-cycle budget with "
                    f"{len(self._heap)} arrival(s) pending"
                )
            while self._heap and self._heap[0][0] <= cycle:
                _, _, idx = heapq.heappop(self._heap)
                self._issue(idx, cycle)
            if self._heap:
                target = min(self._heap[0][0], deadline + 1)
                if target > cycle:
                    sim.run(target - cycle)  # bounded advance, no predicate
                continue
            if self.service.drained():
                break
            before = self.service.settled_total
            budget = min(stall_budget, deadline + 1 - cycle)
            # Settlement is a model-state predicate; a genuinely wedged
            # service surfaces the kernel's typed DeadlockError here.
            sim.run(budget, until=lambda: self.service.settled_total > before)
        return self._report(start, sim.cycle)

    # --------------------------------------------------------------- report
    def _report(self, start: int, end: int) -> ServingReport:
        elapsed = max(1, end - start)
        report = ServingReport(start_cycle=start, end_cycle=end)
        goodputs: List[float] = []
        tot: Dict[str, Any] = {
            "submitted": 0, "admitted": 0, "rejected": 0,
            "completed": 0, "failed": 0,
        }
        all_latencies: List[int] = []
        for runner in self._runners:
            state = self.service.tenant(runner.name)
            latencies = sorted(
                t.latency for t in runner.tickets if t.outcome == "ok"
            )
            waits = sorted(
                t.queue_wait for t in runner.tickets
                if t.queue_wait is not None
            )
            completed = len(latencies)
            failed = sum(1 for t in runner.tickets if t.outcome == "failed")
            submitted = int(state.submitted)
            rejected = state.rejected_total
            goodput = completed * 1000.0 / elapsed
            goodputs.append(goodput)
            all_latencies.extend(latencies)
            report.tenants[runner.name] = {
                "submitted": submitted,
                "admitted": int(state.admitted),
                "rejected": rejected,
                "rejected_by_reason": {
                    r: int(c) for r, c in state.rejected.items() if int(c)
                },
                "dropped": runner.dropped,
                "completed": completed,
                "failed": failed,
                "p50": percentile(latencies, 0.50),
                "p99": percentile(latencies, 0.99),
                "p999": percentile(latencies, 0.999),
                "mean_latency": (
                    sum(latencies) / completed if completed else 0.0
                ),
                "mean_queue_wait": (
                    sum(waits) / len(waits) if waits else 0.0
                ),
                "goodput": goodput,
                "rejection_rate": rejected / submitted if submitted else 0.0,
            }
            tot["submitted"] += submitted
            tot["admitted"] += int(state.admitted)
            tot["rejected"] += rejected
            tot["completed"] += completed
            tot["failed"] += failed
        all_latencies.sort()
        tot["p50"] = percentile(all_latencies, 0.50)
        tot["p99"] = percentile(all_latencies, 0.99)
        tot["p999"] = percentile(all_latencies, 0.999)
        tot["goodput"] = tot["completed"] * 1000.0 / elapsed
        report.totals = tot
        report.fairness_jain = jain_index(goodputs)
        return report
