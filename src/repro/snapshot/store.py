"""Checkpoint persistence: atomic snapshot files, farm plumbing, stage logs.

Snapshot files are written atomically (temp file + ``os.replace``) so a
SIGKILL mid-write leaves the previous checkpoint intact — the resume path
never sees a torn file.

Farm integration works over the environment: the pool supervisor exports
the job's checkpoint path/interval before dispatch, checkpointed job
functions read them via :func:`job_checkpoint`, and a module-level flag
records whether the job actually resumed so the pool can surface
``resumed_from_checkpoint`` provenance without changing job signatures.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from typing import Any, Dict, Optional, Tuple

from repro.snapshot.engine import (
    SNAPSHOT_VERSION,
    Snapshot,
    SnapshotError,
    SnapshotVersionError,
)

_FORMAT = "repro-snapshot"

#: Exported by the farm pool around checkpointed job execution.
CKPT_PATH_ENV = "REPRO_SNAPSHOT_JOB_PATH"
CKPT_EVERY_ENV = "REPRO_SNAPSHOT_JOB_EVERY"

_resumed_flag = False


# ------------------------------------------------------------------- files
def save(snap: Snapshot, path: str) -> None:
    """Atomically write ``snap`` to ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=".ckpt-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(
                {"format": _FORMAT, "version": snap.version, "snapshot": snap},
                fh,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load(path: str) -> Snapshot:
    """Read a snapshot file, enforcing format and version compatibility."""
    try:
        with open(path, "rb") as fh:
            envelope = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError) as exc:
        raise SnapshotError(f"unreadable snapshot file {path}: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("format") != _FORMAT:
        raise SnapshotError(f"{path} is not a repro snapshot file")
    if envelope.get("version") != SNAPSHOT_VERSION:
        raise SnapshotVersionError(
            f"{path} holds snapshot version {envelope.get('version')}, "
            f"this build supports {SNAPSHOT_VERSION}"
        )
    snap = envelope["snapshot"]
    if not isinstance(snap, Snapshot):
        raise SnapshotError(f"{path} holds no Snapshot payload")
    return snap


# -------------------------------------------------------------------- farm
def job_checkpoint_path(root: str, fingerprint: str) -> str:
    """Content-addressed checkpoint location next to the farm result cache.

    The address hashes the job fingerprint *and* ``SNAPSHOT_VERSION``, so a
    format bump orphans stale checkpoints instead of restoring them.
    """
    digest = hashlib.sha256(
        f"{fingerprint}:snapshot-v{SNAPSHOT_VERSION}".encode()
    ).hexdigest()
    return os.path.join(root, digest[:2], digest[2:] + ".ckpt")


def job_checkpoint() -> Tuple[Optional[str], int]:
    """(checkpoint path, interval) for the currently executing farm job.

    ``(None, 0)`` outside a checkpointed job.  Job functions that support
    resumable execution call this, resume from the file when it exists, and
    write checkpoints at the declared interval.
    """
    path = os.environ.get(CKPT_PATH_ENV)
    if not path:
        return None, 0
    try:
        every = int(os.environ.get(CKPT_EVERY_ENV, "0"))
    except ValueError:
        every = 0
    return path, every


def note_job_resumed() -> None:
    """Called by job code after successfully restoring a checkpoint."""
    global _resumed_flag
    _resumed_flag = True


def consume_resumed_flag() -> bool:
    """Read-and-clear the resumed flag (pool supervisor bookkeeping)."""
    global _resumed_flag
    value = _resumed_flag
    _resumed_flag = False
    return value


# --------------------------------------------------------------- stage log
class StageLog:
    """Completed-stage journal for resumable multi-stage tool runs.

    ``tools/serve.py --resume`` and friends record each finished stage with
    a config fingerprint; a rerun with ``--resume`` skips stages whose
    fingerprint still matches (changing any argument invalidates the log
    entry, so a resume can never mix results from different configs).
    """

    def __init__(self, path: str, config: Dict[str, Any]) -> None:
        self.path = path
        self.config_fp = hashlib.sha256(
            json.dumps(config, sort_keys=True, default=str).encode()
        ).hexdigest()[:16]
        self._done: Dict[str, str] = {}
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            if isinstance(data, dict):
                self._done = {str(k): str(v) for k, v in data.items()}
        except (OSError, ValueError):
            self._done = {}

    def is_done(self, stage: str) -> bool:
        return self._done.get(stage) == self.config_fp

    def mark_done(self, stage: str) -> None:
        self._done[stage] = self.config_fp
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".stages-", dir=directory)
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(self._done, fh, indent=2, sort_keys=True)
        os.replace(tmp, self.path)
