"""Deterministic checkpoint/restore for Beethoven simulations.

``capture(handle)`` freezes the complete state of a single-process run —
cycle counter, every channel's contents and lag-credit bookkeeping,
per-component model state, scheduler wake heap, metric registry, span
tracker, fault RNG positions and host-side command registry — into a
versioned :class:`Snapshot`; after rebuilding the same design and
replaying the host-side setup, ``restore(handle, snap); run(N)`` is
bit-identical to the uninterrupted run under all four scheduling backends.

Distributed runs checkpoint at slice barriers via
``DistConfig(checkpoint_every_slices=...)``, which also arms fork-engine
worker failover: a killed worker is respawned and restored from the last
barrier checkpoint instead of raising terminal ``PartitionSyncTimeout``.
"""

from repro.snapshot.engine import (
    SNAPSHOT_VERSION,
    Freezer,
    Snapshot,
    SnapshotError,
    SnapshotVersionError,
    Thawer,
    capture,
    capture_partition_state,
    restore,
    restore_partition_state,
)
from repro.snapshot.store import (
    StageLog,
    consume_resumed_flag,
    job_checkpoint,
    job_checkpoint_path,
    load,
    note_job_resumed,
    save,
)

__all__ = [
    "SNAPSHOT_VERSION",
    "Freezer",
    "Snapshot",
    "SnapshotError",
    "SnapshotVersionError",
    "StageLog",
    "Thawer",
    "capture",
    "capture_partition_state",
    "consume_resumed_flag",
    "job_checkpoint",
    "job_checkpoint_path",
    "load",
    "note_job_resumed",
    "restore",
    "restore_partition_state",
    "save",
]
