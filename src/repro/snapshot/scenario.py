"""Kill-and-resume differential: the snapshot determinism contract, end to end.

The scenario is the chaos harness's memcpy workload (seeded
:class:`~repro.faults.plan.FaultPlan` + chaos watchdog) driven in *fixed
cycle chunks* so checkpoints land at deterministic cycle boundaries:

* single-process modes checkpoint to disk every N chunks
  (:func:`repro.snapshot.save`), a forked victim process SIGKILLs itself at
  a seeded point, and the parent resumes from the surviving checkpoint file
  by rebuilding the design, replaying the host-side setup, and restoring;
* ``dist:fork`` arms ``DistConfig(checkpoint_every_slices=...)`` barrier
  checkpoints and SIGKILLs a worker process mid-run — the engine's failover
  rolls back and respawns, invisible to the driver.

Either way the differential asserts the resumed/recovered run is
bit-identical — outcome, final cycle, fault fingerprint, stable metrics,
output data — to one uninterrupted reference run of the same seed.
"""

from __future__ import annotations

import os
import random
import signal
from typing import Any, Dict, List, Optional

from repro.faults.chaos import (
    CHAOS_WATCHDOG,
    DIST_MODES,
    MODES,
    _classify,
    _mode_build_args,
    default_plan,
)
from repro.faults.errors import FaultError
from repro.sim import DeadlockError
from repro.snapshot.engine import capture, restore
from repro.snapshot.store import load, save

#: Cycles per driver chunk.  Checkpoints, kills, and completion checks all
#: happen at chunk boundaries, so the chunk size is part of the scenario's
#: deterministic identity.
CHUNK = 500

#: Driver bound: a hang-scheduled run terminates (classified ``error``)
#: after this many chunks instead of spinning forever.
MAX_CHUNKS = 250

_SIZE = 8192
_N_CORES = 2


def _build_memcpy(seed: int, mode: str, dist_checkpoint_every: int = 0):
    """Elaborate the chaos memcpy design and replay the host-side setup.

    This function *is* the deterministic rebuild+replay the snapshot
    restore contract requires: calling it twice with the same arguments
    produces identical skeletons and identical command uids.
    """
    from repro.core.build import BeethovenBuild
    from repro.kernels.memcpy import memcpy_config
    from repro.platforms import AWSF1Platform, multi_die_platform
    from repro.runtime import FpgaHandle

    if mode in DIST_MODES:
        from repro.dist import DistConfig

        _, _, engine = mode.partition(":")
        build_args: Dict[str, Any] = {
            "distributed": DistConfig(
                n_workers=2,
                engine=engine or "auto",
                checkpoint_every_slices=dist_checkpoint_every,
                barrier_timeout_s=20.0,
            )
        }
        platform = multi_die_platform(2)
    else:
        build_args = _mode_build_args(mode)
        platform = AWSF1Platform()
    build = BeethovenBuild(
        memcpy_config(n_cores=_N_CORES),
        platform,
        faults=default_plan(seed),
        watchdog=CHAOS_WATCHDOG,
        **build_args,
    )
    handle = FpgaHandle(build.design)
    pattern = bytes((i * 131 + 17 + seed) % 256 for i in range(_SIZE))
    src = handle.malloc(_SIZE)
    dsts = [handle.malloc(_SIZE) for _ in range(_N_CORES)]
    src.write(pattern)
    handle.copy_to_fpga(src)
    futs = [
        handle.call(
            "Memcpy", "memcpy", c,
            src=src.fpga_addr, dst=dsts[c].fpga_addr, len_bytes=_SIZE,
        )
        for c in range(_N_CORES)
    ]
    return build, handle, futs, dsts, pattern


def run_checkpointed_memcpy(
    seed: int,
    mode: str,
    *,
    checkpoint_path: Optional[str] = None,
    checkpoint_every_chunks: int = 0,
    kill_after_checkpoints: Optional[int] = None,
    stop_after_checkpoints: Optional[int] = None,
    kill_worker_after_chunks: Optional[int] = None,
    max_chunks: int = MAX_CHUNKS,
) -> Dict[str, Any]:
    """One resumable chaos-memcpy run, driven in fixed :data:`CHUNK`s.

    * ``checkpoint_path``/``checkpoint_every_chunks`` — single-process
      modes: write a snapshot file every N chunks; if the file already
      exists the run *resumes from it* instead of starting over.
    * ``kill_after_checkpoints`` — SIGKILL our own process right after the
      Nth checkpoint write (the victim half of the differential).
    * ``stop_after_checkpoints`` — abandon the run (return early) after the
      Nth checkpoint; the in-process fallback when fork is unavailable.
    * ``kill_worker_after_chunks`` — ``dist:fork`` only: SIGKILL worker
      process 0 at that chunk boundary and let engine failover recover.
    """
    dist = mode in DIST_MODES
    if dist and kill_worker_after_chunks is not None and mode != "dist:fork":
        raise ValueError(
            f"worker-kill checkpoint chaos needs mode 'dist:fork' (got "
            f"{mode!r}: the serial engine has no worker processes to kill)"
        )
    # ~one barrier checkpoint per driver chunk (slice width is 8 on the
    # two-die platform, so 64 slices ~= one 500-cycle chunk).
    dist_every = 64 if dist and (checkpoint_every_chunks or kill_worker_after_chunks) else 0
    build, handle, futs, dsts, pattern = _build_memcpy(
        seed, mode, dist_checkpoint_every=dist_every
    )
    sim = build.design.sim
    resumed = False
    checkpoints = 0
    chunk = 0
    if not dist and checkpoint_path and os.path.exists(checkpoint_path):
        snap = load(checkpoint_path)
        restore(handle, snap)
        chunk = int(snap.meta.get("chunks_done", 0))
        resumed = True

    errors: List[str] = []
    corrupt = False
    unexpected = ""
    try:
        while chunk < max_chunks and not all(f.done for f in futs):
            sim.run(CHUNK)
            chunk += 1
            if dist:
                if kill_worker_after_chunks is not None and chunk == kill_worker_after_chunks:
                    victim = sim._children[0]
                    os.kill(victim.process.pid, signal.SIGKILL)
            elif (
                checkpoint_path
                and checkpoint_every_chunks
                and chunk % checkpoint_every_chunks == 0
            ):
                snap = capture(handle)
                snap.meta["chunks_done"] = chunk
                save(snap, checkpoint_path)
                checkpoints += 1
                if kill_after_checkpoints is not None and checkpoints == kill_after_checkpoints:
                    os.kill(os.getpid(), signal.SIGKILL)
                if stop_after_checkpoints is not None and checkpoints == stop_after_checkpoints:
                    break
        if stop_after_checkpoints is None or checkpoints < stop_after_checkpoints:
            for c, fut in enumerate(futs):
                if not fut.done:
                    errors.append(f"core{c}: Unfinished")
                    continue
                try:
                    fut.try_get()
                except (FaultError, DeadlockError) as exc:
                    errors.append(f"core{c}: {type(exc).__name__}")
                    continue
                handle.copy_from_fpga(dsts[c])
                if dsts[c].read() != pattern:
                    corrupt = True
    except (FaultError, DeadlockError) as exc:
        errors.append(type(exc).__name__)
    except Exception as exc:  # noqa: BLE001 — untyped escape = violation
        unexpected = f"{type(exc).__name__}: {exc}"
    outcome, error = _classify(handle, errors, corrupt, unexpected)
    faults = handle.faults
    if faults is None:
        fingerprint = ""
    elif dist:
        fingerprint = faults.canonical_fingerprint()
    else:
        fingerprint = faults.fingerprint()
    harness = build.design.metrics(prefix="dist/") if dist else {}
    server = handle.server
    result = {
        "outcome": outcome,
        "error": error,
        "cycles": sim.cycle,
        "chunks": chunk,
        "n_faults": len(faults.events) if faults is not None else 0,
        "fingerprint": fingerprint,
        "stable_metrics": build.design.metrics(stable_only=True),
        "resumed": resumed or bool(harness.get("dist/restarts", 0)),
        "checkpoints": checkpoints or int(harness.get("dist/checkpoints", 0)),
        "restarts": int(harness.get("dist/restarts", 0)),
        "timeouts": int(server.timeouts),
        "retries": int(server.retries),
        "quarantines": int(server.quarantines),
        "rerouted": int(server.rerouted),
        "late_responses": int(server.late_responses),
    }
    getattr(sim, "shutdown", lambda: None)()
    return result


def _victim_main(seed: int, mode: str, path: str, every: int, kill_after: int) -> None:
    """Forked victim body: run with checkpointing and SIGKILL ourselves."""
    run_checkpointed_memcpy(
        seed, mode,
        checkpoint_path=path,
        checkpoint_every_chunks=every,
        kill_after_checkpoints=kill_after,
    )


def _comparable(result: Dict[str, Any]) -> Dict[str, Any]:
    keys = ("outcome", "cycles", "chunks", "n_faults", "fingerprint", "stable_metrics")
    return {k: result[k] for k in keys}


def kill_and_resume_differential(
    seed: int,
    mode: str,
    workdir: str,
    *,
    checkpoint_every_chunks: int = 2,
) -> Dict[str, Any]:
    """Kill a run mid-flight at a seeded point, resume it, and compare with
    an uninterrupted reference of the same seed.

    Single-process modes (:data:`~repro.faults.chaos.MODES`) kill the whole
    process (a forked victim SIGKILLs itself right after a checkpoint write)
    and resume from the checkpoint file; ``dist:fork`` SIGKILLs one worker
    process and lets barrier-checkpoint failover recover in place.  Returns
    the resumed result plus ``{"match", "reference", "killed"}``; a mismatch
    means the determinism contract broke (outcome ``corrupt``).
    """
    rng = random.Random(0xC4EC ^ (seed * 2654435761 & 0xFFFFFFFF))
    reference = run_checkpointed_memcpy(seed, mode)
    ref_chunks = max(1, reference["chunks"])

    if mode == "dist:fork":
        # Kill a worker at a seeded chunk boundary strictly inside the run
        # (>= 3 so at least one barrier checkpoint exists to roll back to).
        kill_chunk = 3 + rng.randrange(max(1, ref_chunks - 3)) if ref_chunks > 3 else 1
        resumed = run_checkpointed_memcpy(
            seed, mode, kill_worker_after_chunks=kill_chunk
        )
        killed = True
    elif mode in DIST_MODES:
        raise ValueError(
            f"kill-and-resume needs mode 'dist:fork' or one of {MODES} "
            f"(got {mode!r}: the serial engine has no processes to kill)"
        )
    else:
        from repro.farm.pool import multiprocessing_available, multiprocessing_context

        path = os.path.join(workdir, f"memcpy-{mode}-{seed}.ckpt")
        if os.path.exists(path):
            os.unlink(path)
        # Seeded kill point: after 1..N checkpoint writes, where N keeps the
        # kill strictly before the reference's completion chunk.
        max_kill = max(1, (ref_chunks - 1) // checkpoint_every_chunks)
        kill_after = 1 + rng.randrange(max_kill)
        killed = False
        if multiprocessing_available():
            ctx = multiprocessing_context()
            proc = ctx.Process(
                target=_victim_main,
                args=(seed, mode, path, checkpoint_every_chunks, kill_after),
                daemon=True,
            )
            proc.start()
            proc.join(timeout=600.0)
            if proc.is_alive():  # pragma: no cover — runaway victim
                proc.terminate()
                proc.join(timeout=10.0)
            killed = proc.exitcode == -signal.SIGKILL
        else:
            # No fork available: abandon the run in-process after the same
            # number of checkpoints — the checkpoint file state is identical
            # to what a SIGKILL would have left behind.
            run_checkpointed_memcpy(
                seed, mode,
                checkpoint_path=path,
                checkpoint_every_chunks=checkpoint_every_chunks,
                stop_after_checkpoints=kill_after,
            )
        if not os.path.exists(path):
            # The seeded workload finished before its first checkpoint (or
            # the victim died pre-checkpoint): resume degenerates to a
            # fresh run, which must still match the reference.
            pass
        resumed = run_checkpointed_memcpy(
            seed, mode,
            checkpoint_path=path,
            checkpoint_every_chunks=checkpoint_every_chunks,
        )

    match = _comparable(resumed) == _comparable(reference)
    result = dict(resumed)
    result["match"] = match
    result["killed"] = killed
    result["reference"] = _comparable(reference)
    if not match:
        result["outcome"] = "corrupt"
        result["error"] = (
            "resumed run diverged from uninterrupted reference: "
            + ", ".join(
                k for k in ("outcome", "cycles", "chunks", "n_faults", "fingerprint", "stable_metrics")
                if resumed[k] != reference[k]
            )
        )
    return result


# ----------------------------------------------------------------- farm entry
def checkpointed_memcpy_job(seed: int, mode: str) -> Dict[str, Any]:
    """Farm-friendly resumable job: checkpoint plumbing comes from the pool.

    When the dispatching pool exported a checkpoint path (the job was
    declared with ``Job(checkpoint_every=...)``), the run checkpoints there
    and transparently resumes after a crash or hung-job kill;
    ``note_job_resumed`` feeds the ``resumed_from_checkpoint`` provenance
    the pool surfaces on the outcome.
    """
    from repro.snapshot.store import job_checkpoint, note_job_resumed

    path, every = job_checkpoint()
    result = run_checkpointed_memcpy(
        seed, mode,
        checkpoint_path=path,
        checkpoint_every_chunks=every or (2 if path else 0),
    )
    if result["resumed"]:
        note_job_resumed()
    return result
