"""Exact freeze/thaw of live simulation state (the ``repro.snapshot`` core).

A snapshot is *state*, never *structure*: the object graph of a design
(components, channels, registry bindings, compiled tick programs, fault
hooks) is rebuilt deterministically by re-elaborating the same config, and
the snapshot then overwrites every mutable field so that ``restore(snap);
run(N)`` is bit-identical — cycles, stable metric dumps, fault fingerprints
— to the uninterrupted run under all four scheduling backends.

Why not pickle the :class:`~repro.sim.Simulator` wholesale?  The live graph
is full of unpicklables that are *structural*: registry ``BoundMetric``
lambdas closing over model containers, compiled-backend closures, fault
hooks patched over instance ``tick`` methods, host response callbacks.  The
freezer therefore walks the graph and replaces

* infrastructure objects (components, channels, the simulator, registry,
  tracer, span tracker, fault state/plan) with index-based :class:`_Ref`
  markers resolved against the rebuilt skeleton;
* transient model objects (in-flight AXI beats, DRAM column requests,
  pending commands) with :class:`_Obj` markers rebuilt via
  ``cls.__new__`` + ``object.__setattr__``;
* callables with a skip sentinel — they are structure, recreated by the
  rebuild (a container holding a callable is skipped whole, leaving the
  live one untouched).

Thawing is **two-pass**.  Registry bindings capture model containers by
identity (``lambda q=q: len(q)``), so restore must mutate the *live*
objects in place rather than swap in fresh ones.  A pairing pass first
walks the frozen and live trees together and pre-seeds the memo with
``frozen marker -> live object`` wherever a type-matching in-place target
exists; the thaw pass then resolves aliased references (a DRAM bank reached
both through ``controller.banks[i]`` and a scheduler entry) to the same
identity-preserved live object regardless of traversal order.
"""

from __future__ import annotations

import functools
import importlib
import random
import types
import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.registry import BoundMetric, Counter, Gauge, Histogram

#: Bumped on any change to the capture format or captured field set.  A
#: snapshot's version participates in farm checkpoint fingerprints, so a
#: version bump silently invalidates stale checkpoint files instead of
#: restoring garbage into a newer model.
SNAPSHOT_VERSION = 1


class SnapshotError(RuntimeError):
    """Snapshot capture/restore failed (skeleton mismatch, bad payload...)."""


class SnapshotVersionError(SnapshotError):
    """The snapshot was written by an incompatible ``SNAPSHOT_VERSION``."""


_PRIMITIVES = (type(None), bool, int, float, complex, str, bytes)

#: Callable types that are always structure, never state.
_CALLABLE_TYPES = (
    types.FunctionType,
    types.MethodType,
    types.BuiltinFunctionType,
    types.BuiltinMethodType,
    functools.partial,
)

#: Scheduler wiring rebuilt by ``Simulator.add()``; excluded from generic
#: component capture (``_last_tick_cycle``/``_ticks_executed`` stay in).
SCHED_ATTRS = ("_sched_index", "_wake_hook", "_cslot")


class _Skip:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover — debug aid
        return "<snapshot:skip>"


#: Sentinel for unpicklable/structural values: restore leaves the live
#: attribute untouched.
_SKIP = _Skip()


class _Ref:
    """Reference to an infrastructure object, resolved against the skeleton."""

    __slots__ = ("kind", "key")

    def __init__(self, kind: str, key: Any = None) -> None:
        self.kind = kind
        self.key = key


class _Obj:
    """A transient object: class identity plus frozen attribute dict."""

    __slots__ = ("module", "qualname", "attrs")

    def __init__(self, module: str, qualname: str, attrs: Dict[str, Any]) -> None:
        self.module = module
        self.qualname = qualname
        self.attrs = attrs


class _Exc:
    """An exception instance (typed errors parked in futures survive restore)."""

    __slots__ = ("module", "qualname", "args", "attrs")

    def __init__(self, module: str, qualname: str, args: Any, attrs: Dict[str, Any]) -> None:
        self.module = module
        self.qualname = qualname
        self.args = args
        self.attrs = attrs


class _Rng:
    """``random.Random`` position (per-site fault RNGs must resume exactly)."""

    __slots__ = ("state",)

    def __init__(self, state: Any) -> None:
        self.state = state


class _Met:
    """Raw value of a registry metric, restored into the live object."""

    __slots__ = ("kind", "data")

    def __init__(self, kind: str, data: Any) -> None:
        self.kind = kind
        self.data = data


class _Bytes:
    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data


class _ListS:
    __slots__ = ("items",)

    def __init__(self, items: List[Any]) -> None:
        self.items = items


class _TupleS:
    __slots__ = ("items",)

    def __init__(self, items: List[Any]) -> None:
        self.items = items


class _SetS:
    __slots__ = ("items", "frozen")

    def __init__(self, items: List[Any], frozen: bool = False) -> None:
        self.items = items
        self.frozen = frozen


class _DictS:
    __slots__ = ("pairs",)

    def __init__(self, pairs: List[Tuple[Any, Any]]) -> None:
        self.pairs = pairs


class _DequeS:
    __slots__ = ("items", "maxlen")

    def __init__(self, items: List[Any], maxlen: Optional[int]) -> None:
        self.items = items
        self.maxlen = maxlen


def _is_plain(obj: Any) -> bool:
    """Deeply immutable values usable as frozen dict keys."""
    if isinstance(obj, _PRIMITIVES):
        return True
    if isinstance(obj, tuple):
        return all(_is_plain(x) for x in obj)
    if isinstance(obj, frozenset):
        return all(_is_plain(x) for x in obj)
    return False


def _state_of(obj: Any) -> Dict[str, Any]:
    """Instance state: ``__dict__`` plus any ``__slots__`` up the MRO."""
    d = getattr(obj, "__dict__", None)
    state = dict(d) if d else {}
    for cls in type(obj).__mro__:
        slots = getattr(cls, "__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name in ("__dict__", "__weakref__") or name in state:
                continue
            try:
                state[name] = getattr(obj, name)
            except AttributeError:
                continue
    return state


class Freezer:
    """Converts a live object graph into a picklable marker tree."""

    def __init__(self) -> None:
        self._infra: Dict[int, _Ref] = {}
        self._memo: Dict[int, Any] = {}
        self._keep: List[Any] = []  # id()-stability for memo/infra keys
        self.skipped = 0

    def add_infra(self, obj: Any, kind: str, key: Any = None) -> None:
        self._infra[id(obj)] = _Ref(kind, key)
        self._keep.append(obj)

    # ------------------------------------------------------------- freeze
    def freeze(self, obj: Any) -> Any:
        if isinstance(obj, _PRIMITIVES):
            return obj
        ref = self._infra.get(id(obj))
        if ref is not None:
            return ref
        memo = self._memo.get(id(obj))
        if memo is not None:
            return memo
        if isinstance(obj, _CALLABLE_TYPES) or isinstance(obj, (type, types.ModuleType)):
            self.skipped += 1
            return _SKIP
        if isinstance(obj, (weakref.ReferenceType, memoryview)):
            self.skipped += 1
            return _SKIP
        if isinstance(obj, tuple):
            if all(isinstance(x, _PRIMITIVES) for x in obj):
                return obj
            items = [self.freeze(x) for x in obj]
            if any(x is _SKIP for x in items):
                self.skipped += 1
                return _SKIP
            return _TupleS(items)
        if isinstance(obj, (Counter, Gauge)):
            # Gauge subclasses Counter — test the subclass first.
            return self._memoize(obj, _Met("g" if isinstance(obj, Gauge) else "c", obj.value))
        if isinstance(obj, Histogram):
            data = (tuple(obj.buckets), list(obj.counts), obj.count, obj.total)
            return self._memoize(obj, _Met("h", data))
        if isinstance(obj, BoundMetric):
            self.skipped += 1
            return _SKIP
        if isinstance(obj, random.Random):
            return self._memoize(obj, _Rng(obj.getstate()))
        if isinstance(obj, bytearray):
            return self._memoize(obj, _Bytes(bytes(obj)))
        if isinstance(obj, list):
            marker = _ListS([])
            self._memoize(obj, marker)
            items = [self.freeze(x) for x in obj]
            if any(x is _SKIP for x in items):
                return self._contaminate(obj)
            marker.items = items
            return marker
        if isinstance(obj, deque):
            marker = _DequeS([], obj.maxlen)
            self._memoize(obj, marker)
            items = [self.freeze(x) for x in obj]
            if any(x is _SKIP for x in items):
                return self._contaminate(obj)
            marker.items = items
            return marker
        if isinstance(obj, dict):
            marker = _DictS([])
            self._memoize(obj, marker)
            pairs = []
            for k, v in obj.items():
                if not _is_plain(k):
                    return self._contaminate(obj)
                fv = self.freeze(v)
                if fv is _SKIP:
                    return self._contaminate(obj)
                pairs.append((k, fv))
            marker.pairs = pairs
            return marker
        if isinstance(obj, (set, frozenset)):
            if not all(_is_plain(x) for x in obj):
                self.skipped += 1
                return _SKIP
            try:
                items = sorted(obj)
            except TypeError:
                items = list(obj)
            return self._memoize(obj, _SetS(items, isinstance(obj, frozenset)))
        if isinstance(obj, BaseException):
            marker = _Exc(type(obj).__module__, type(obj).__qualname__, None, {})
            self._memoize(obj, marker)
            marker.args = self.freeze(tuple(obj.args))
            attrs = {}
            for name, val in _state_of(obj).items():
                if name == "args":
                    continue
                fv = self.freeze(val)
                if fv is not _SKIP:
                    attrs[name] = fv
            marker.attrs = attrs
            return marker
        # Generic transient object: class identity + frozen attrs.  A
        # skipped attribute is dropped (the live one is left alone); the
        # object itself always freezes.
        marker = _Obj(type(obj).__module__, type(obj).__qualname__, {})
        self._memoize(obj, marker)
        attrs = {}
        for name, val in _state_of(obj).items():
            fv = self.freeze(val)
            if fv is _SKIP:
                self.skipped += 1
                continue
            attrs[name] = fv
        marker.attrs = attrs
        return marker

    def freeze_attrs(self, obj: Any, exclude: Tuple[str, ...] = ()) -> Dict[str, Any]:
        """Freeze ``obj``'s fields into an attr dict (no class identity)."""
        skip = set(exclude) | set(getattr(type(obj), "_snapshot_exclude", ()))
        out = {}
        for name, val in _state_of(obj).items():
            if name in skip:
                continue
            fv = self.freeze(val)
            if fv is _SKIP:
                self.skipped += 1
                continue
            out[name] = fv
        return out

    # ------------------------------------------------------------ helpers
    def _memoize(self, obj: Any, marker: Any) -> Any:
        self._memo[id(obj)] = marker
        self._keep.append(obj)
        return marker

    def _contaminate(self, obj: Any) -> Any:
        """Container holding a callable: skip it whole, keep the live one."""
        self._memo[id(obj)] = _SKIP
        self.skipped += 1
        return _SKIP


def _resolve_class(module: str, qualname: str) -> type:
    try:
        target: Any = importlib.import_module(module)
        for part in qualname.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError) as exc:
        raise SnapshotError(f"cannot resolve class {module}:{qualname}: {exc}") from exc
    if not isinstance(target, type):
        raise SnapshotError(f"{module}:{qualname} is not a class")
    return target


class Thawer:
    """Rebuilds live state from a marker tree, preserving object identity.

    Call :meth:`pair`/:meth:`pair_attrs` over every (frozen, live) pair of
    the payload *first*, then thaw — the pairing memo is global, so aliases
    that cross component boundaries resolve correctly only if all pairing
    precedes all thawing.
    """

    def __init__(self) -> None:
        self._infra: Dict[Tuple[str, Any], Any] = {}
        self._done: Dict[int, Any] = {}
        self._paired: Dict[int, Any] = {}
        self._claimed: set = set()  # id(live) already owned by a marker
        self._visited: set = set()
        self._keep: List[Any] = []
        self.unresolved = 0

    def add_infra(self, kind: str, key: Any, obj: Any) -> None:
        self._infra[(kind, key)] = obj

    # ------------------------------------------------------------ pairing
    def pair(self, fz: Any, live: Any) -> None:
        if fz is None or fz is _SKIP or isinstance(fz, (_PRIMITIVES, _Ref)) or live is None:
            return
        key = id(fz)
        if key in self._visited:
            return
        self._visited.add(key)
        if isinstance(fz, _Obj):
            if (
                type(live).__qualname__ != fz.qualname
                or type(live).__module__ != fz.module
            ):
                return
            if not self._claim(key, live):
                return
            for name, sub in fz.attrs.items():
                try:
                    lv = getattr(live, name)
                except AttributeError:
                    continue
                self.pair(sub, lv)
        elif isinstance(fz, _ListS) and isinstance(live, list):
            if self._claim(key, live):
                for sub, lv in zip(fz.items, live):
                    self.pair(sub, lv)
        elif isinstance(fz, _DequeS) and isinstance(live, deque):
            if live.maxlen == fz.maxlen and self._claim(key, live):
                for sub, lv in zip(fz.items, live):
                    self.pair(sub, lv)
        elif isinstance(fz, _DictS) and isinstance(live, dict):
            if self._claim(key, live):
                for k, sub in fz.pairs:
                    if k in live:
                        self.pair(sub, live[k])
        elif isinstance(fz, _TupleS) and isinstance(live, tuple):
            for sub, lv in zip(fz.items, live):
                self.pair(sub, lv)
        elif isinstance(fz, _SetS) and isinstance(live, set) and not fz.frozen:
            self._claim(key, live)
        elif isinstance(fz, _Met) and isinstance(live, (Counter, Gauge, Histogram)):
            if _metric_kind(live) == fz.kind:
                self._claim(key, live)
        elif isinstance(fz, _Rng) and isinstance(live, random.Random):
            self._claim(key, live)
        elif isinstance(fz, _Bytes) and isinstance(live, bytearray):
            self._claim(key, live)

    def pair_attrs(self, live: Any, state: Dict[str, Any]) -> None:
        for name, sub in state.items():
            try:
                lv = getattr(live, name)
            except AttributeError:
                continue
            self.pair(sub, lv)

    def _claim(self, key: int, live: Any) -> bool:
        if key in self._paired:
            return True
        if id(live) in self._claimed:
            # A different marker already owns this live object; creating a
            # fresh instance for this one preserves checkpoint distinctness.
            return False
        self._paired[key] = live
        self._claimed.add(id(live))
        self._keep.append(live)
        return True

    # -------------------------------------------------------------- thaw
    def thaw(self, fz: Any) -> Any:
        if isinstance(fz, _PRIMITIVES):
            return fz
        if isinstance(fz, tuple):
            # Primitive-only tuples pass through freeze unchanged.
            return fz
        if fz is _SKIP:
            return _SKIP
        if isinstance(fz, _Ref):
            try:
                return self._infra[(fz.kind, fz.key)]
            except KeyError:
                raise SnapshotError(
                    f"snapshot references unknown infrastructure {fz.kind}:{fz.key} "
                    "(skeleton mismatch — was the design rebuilt with the same config?)"
                ) from None
        key = id(fz)
        if key in self._done:
            return self._done[key]
        if isinstance(fz, _TupleS):
            return tuple(self.thaw(x) for x in fz.items)
        if isinstance(fz, _Obj):
            target = self._paired.get(key)
            if target is None:
                cls = _resolve_class(fz.module, fz.qualname)
                target = cls.__new__(cls)
            self._done[key] = target
            for name, sub in fz.attrs.items():
                object.__setattr__(target, name, self.thaw(sub))
            return target
        if isinstance(fz, _ListS):
            target = self._paired.get(key)
            if target is None:
                target = []
            self._done[key] = target
            items = [self.thaw(x) for x in fz.items]
            target[:] = items
            return target
        if isinstance(fz, _DequeS):
            target = self._paired.get(key)
            if target is None:
                target = deque(maxlen=fz.maxlen)
            self._done[key] = target
            items = [self.thaw(x) for x in fz.items]
            target.clear()
            target.extend(items)
            return target
        if isinstance(fz, _DictS):
            target = self._paired.get(key)
            if target is None:
                target = {}
            self._done[key] = target
            pairs = [(k, self.thaw(v)) for k, v in fz.pairs]
            target.clear()
            target.update(pairs)
            return target
        if isinstance(fz, _SetS):
            if fz.frozen:
                out = frozenset(fz.items)
                self._done[key] = out
                return out
            target = self._paired.get(key)
            if target is None:
                target = set()
            self._done[key] = target
            target.clear()
            target.update(fz.items)
            return target
        if isinstance(fz, _Met):
            target = self._paired.get(key)
            if target is None:
                if fz.kind == "c":
                    target = Counter()
                elif fz.kind == "g":
                    target = Gauge()
                else:
                    target = Histogram(buckets=fz.data[0])
            self._done[key] = target
            _apply_metric(target, fz)
            return target
        if isinstance(fz, _Rng):
            target = self._paired.get(key)
            if target is None:
                target = random.Random()
            self._done[key] = target
            target.setstate(fz.state)
            return target
        if isinstance(fz, _Bytes):
            target = self._paired.get(key)
            if target is None:
                target = bytearray()
            self._done[key] = target
            target[:] = fz.data
            return target
        if isinstance(fz, _Exc):
            cls = _resolve_class(fz.module, fz.qualname)
            exc = cls.__new__(cls)
            self._done[key] = exc
            args = self.thaw(fz.args)
            BaseException.__init__(exc, *args)
            for name, sub in fz.attrs.items():
                object.__setattr__(exc, name, self.thaw(sub))
            return exc
        raise SnapshotError(f"unknown marker in snapshot payload: {type(fz).__name__}")

    def thaw_attrs(self, live: Any, state: Dict[str, Any]) -> None:
        for name, sub in state.items():
            if sub is _SKIP:
                continue
            object.__setattr__(live, name, self.thaw(sub))


def _metric_kind(metric: Any) -> str:
    if isinstance(metric, Histogram):
        return "h"
    return "g" if isinstance(metric, Gauge) else "c"


def _apply_metric(target: Any, fz: _Met) -> None:
    if fz.kind in ("c", "g"):
        target.value = fz.data
    else:
        buckets, counts, count, total = fz.data
        if tuple(target.buckets) != tuple(buckets):
            raise SnapshotError("histogram bucket layout changed between capture and restore")
        target.counts[:] = list(counts)
        target.count = count
        target.total = total


# ====================================================================== sim
def _register_sim_infra_fr(fr: Freezer, sim: Any) -> None:
    fr.add_infra(sim, "sim")
    if sim.registry is not None:
        fr.add_infra(sim.registry, "registry")
    if sim.tracer is not None:
        fr.add_infra(sim.tracer, "tracer")
    for i, comp in enumerate(sim._components):
        fr.add_infra(comp, "comp", i)
    for i, chan in enumerate(sim._channels):
        fr.add_infra(chan, "chan", i)


def _register_sim_infra_th(th: Thawer, sim: Any) -> None:
    th.add_infra("sim", None, sim)
    if sim.registry is not None:
        th.add_infra("registry", None, sim.registry)
    if sim.tracer is not None:
        th.add_infra("tracer", None, sim.tracer)
    for i, comp in enumerate(sim._components):
        th.add_infra("comp", i, comp)
    for i, chan in enumerate(sim._channels):
        th.add_infra("chan", i, chan)


def capture_sim_state(sim: Any, fr: Freezer) -> Dict[str, Any]:
    """Freeze one :class:`~repro.sim.Simulator`'s complete mutable state."""
    if getattr(sim, "_ready", None) is not None:
        raise SnapshotError("cannot snapshot mid-cycle; capture between run()/step() calls")
    if sim._selective:
        sim._sync_channel_stats()
    chan_index = {id(ch): i for i, ch in enumerate(sim._channels)}
    channels = []
    for ch in sim._channels:
        channels.append(
            {
                "name": ch.name,
                "items": fr.freeze(list(ch._items)),
                "staged": fr.freeze(list(ch._staged)),
                "pop_count": ch._pop_count,
                "total_pushed": ch.total_pushed,
                "total_popped": ch.total_popped,
                "occupancy_accum": ch.occupancy_accum,
                "cycles_observed": ch.cycles_observed,
            }
        )
    components = [
        {"name": comp.name, "state": comp.snapshot_state(fr)} for comp in sim._components
    ]
    sched = {
        "wake_heap": [tuple(entry) for entry in sim._wake_heap],
        "woken": sorted(sim._woken),
        "dirty": [chan_index[id(ch)] for ch in sim._dirty_channels],
        "quiescent": sim._quiescent,
        "cycles_skipped": sim.cycles_skipped,
        "skip_events": sim.skip_events,
    }
    return {
        "cycle": sim.cycle,
        "scheduling": sim.scheduling,
        "channels": channels,
        "components": components,
        "sched": sched,
    }


def _check_skeleton(sim: Any, state: Dict[str, Any]) -> None:
    want_comps = [c["name"] for c in state["components"]]
    have_comps = [c.name for c in sim._components]
    if want_comps != have_comps:
        raise SnapshotError(
            f"component skeleton mismatch: snapshot has {len(want_comps)} "
            f"components, design has {len(have_comps)} (or names differ) — "
            "rebuild with the identical config before restoring"
        )
    want_chans = [c["name"] for c in state["channels"]]
    have_chans = [c.name for c in sim._channels]
    if want_chans != have_chans:
        raise SnapshotError("channel skeleton mismatch between snapshot and rebuilt design")


def pair_sim_state(sim: Any, state: Dict[str, Any], th: Thawer) -> None:
    _check_skeleton(sim, state)
    for comp, st in zip(sim._components, state["components"]):
        th.pair_attrs(comp, st["state"])
    for ch, st in zip(sim._channels, state["channels"]):
        th.pair(st["items"], list(ch._items))
        th.pair(st["staged"], list(ch._staged))


def apply_sim_state(sim: Any, state: Dict[str, Any], th: Thawer) -> None:
    # Discard any compiled tick program *before* touching component state:
    # invalidate() flushes per-slot tick counts into the components, which
    # must not land on top of restored counters.  The next run() recompiles.
    if sim._program is not None:
        sim._program.invalidate()
        sim._program = None
    sim._subs_stale = True
    for comp, st in zip(sim._components, state["components"]):
        comp.restore_state(st["state"], th)
    for ch, st in zip(sim._channels, state["channels"]):
        items = th.thaw(st["items"])
        staged = th.thaw(st["staged"])
        ch._items[:] = items
        ch._staged[:] = staged
        ch._pop_count = st["pop_count"]
        ch.total_pushed = st["total_pushed"]
        ch.total_popped = st["total_popped"]
        ch.occupancy_accum = st["occupancy_accum"]
        ch.cycles_observed = st["cycles_observed"]
        ch._dirty = False
    sched = state["sched"]
    sim.cycle = state["cycle"]
    sim.cycles_skipped = sched["cycles_skipped"]
    sim.skip_events = sched["skip_events"]
    sim._quiescent = sched["quiescent"]
    sim._woken = set(sched["woken"])
    sim._wake_heap = [tuple(entry) for entry in sched["wake_heap"]]
    del sim._dirty_channels[:]
    for idx in sched["dirty"]:
        ch = sim._channels[idx]
        ch._dirty = True
        sim._dirty_channels.append(ch)
    if sim._selective:
        for ch in sim._channels:
            # Re-anchor lazy occupancy crediting at the restored cycle, the
            # same invariant register_channel() establishes.
            ch._anchor = sim.cycle - ch.cycles_observed


# ================================================================= registry
def capture_registry(registry: Any) -> Dict[str, Any]:
    """Raw values of every owned metric (bound views are recomputed live)."""
    out: Dict[str, Any] = {}
    for name, metric in registry._metrics.items():
        if isinstance(metric, Histogram):
            out[name] = ("h", (tuple(metric.buckets), list(metric.counts), metric.count, metric.total))
        elif isinstance(metric, (Counter, Gauge)):
            out[name] = (_metric_kind(metric), metric.value)
    return out


def apply_registry(registry: Any, data: Dict[str, Any]) -> int:
    """Restore raw metric values in place; returns the unmatched count."""
    missing = 0
    for name, (kind, raw) in data.items():
        metric = registry._metrics.get(name)
        if metric is None or _metric_kind(metric) != kind:
            missing += 1
        elif kind == "h":
            _apply_metric(metric, _Met("h", raw))
        else:
            metric.value = raw
    return missing


# ================================================================ snapshots
@dataclass
class Snapshot:
    """A captured run: version + cycle + frozen payload + skeleton metadata."""

    version: int
    cycle: int
    payload: Dict[str, Any]
    meta: Dict[str, Any] = field(default_factory=dict)


def _register_design_infra(design: Any, sim: Any, fr: Optional[Freezer], th: Optional[Thawer]) -> None:
    spans = getattr(design, "span_tracker", None)
    faults = getattr(design, "faults", None)
    if fr is not None:
        _register_sim_infra_fr(fr, sim)
        if spans is not None:
            fr.add_infra(spans, "spans")
        if faults is not None:
            fr.add_infra(faults, "faults")
            fr.add_infra(faults.plan, "plan")
    if th is not None:
        _register_sim_infra_th(th, sim)
        if spans is not None:
            th.add_infra("spans", None, spans)
        if faults is not None:
            th.add_infra("faults", None, faults)
            th.add_infra("plan", None, faults.plan)


def capture(handle: Any) -> Snapshot:
    """Snapshot a full single-process run (simulator + host interface).

    ``handle`` is the :class:`~repro.runtime.FpgaHandle` driving the design.
    Distributed designs checkpoint through ``DistConfig(
    checkpoint_every_slices=...)`` instead — their state spans worker
    processes and is collected at slice barriers by the engine itself.
    """
    design = handle.design
    sim = design.sim
    if hasattr(sim, "_children"):
        raise SnapshotError(
            "disk snapshots cover single-process simulators; distributed runs "
            "use DistConfig(checkpoint_every_slices=...) barrier checkpoints"
        )
    fr = Freezer()
    _register_design_infra(design, sim, fr, None)
    spans = getattr(design, "span_tracker", None)
    faults = getattr(design, "faults", None)
    payload = {
        "sim": capture_sim_state(sim, fr),
        "registry": capture_registry(sim.registry),
        "spans": fr.freeze_attrs(spans) if spans is not None else None,
        "faults": fr.freeze_attrs(faults, exclude=("plan",)) if faults is not None else None,
        "tracer": fr.freeze_attrs(sim.tracer) if sim.tracer is not None else None,
        "host": handle.snapshot_state(fr),
    }
    meta = {
        "scheduling": sim.scheduling,
        "components": [c.name for c in sim._components],
        "channels": [c.name for c in sim._channels],
        "skipped_attrs": fr.skipped,
    }
    return Snapshot(SNAPSHOT_VERSION, sim.cycle, payload, meta)


def restore(handle: Any, snap: Snapshot) -> None:
    """Restore a :func:`capture` snapshot into a freshly rebuilt + replayed run.

    The caller must have rebuilt the design with the identical config and
    replayed the host-side setup (allocations, writes, ``call()``
    submissions) so the command registry lines up; the snapshot then
    overwrites every mutable field, after which ``run(N)`` continues
    bit-identically to the uninterrupted execution.
    """
    if snap.version != SNAPSHOT_VERSION:
        raise SnapshotVersionError(
            f"snapshot version {snap.version} != supported {SNAPSHOT_VERSION}"
        )
    design = handle.design
    sim = design.sim
    payload = snap.payload
    th = Thawer()
    _register_design_infra(design, sim, None, th)
    spans = getattr(design, "span_tracker", None)
    faults = getattr(design, "faults", None)
    # Pass 1: pair every frozen subtree with its live in-place target.
    pair_sim_state(sim, payload["sim"], th)
    if payload["faults"] is not None and faults is not None:
        th.pair_attrs(faults, payload["faults"])
    if payload["spans"] is not None and spans is not None:
        th.pair_attrs(spans, payload["spans"])
    if payload["tracer"] is not None and sim.tracer is not None:
        th.pair_attrs(sim.tracer, payload["tracer"])
    # Pass 2: thaw.
    apply_sim_state(sim, payload["sim"], th)
    apply_registry(sim.registry, payload["registry"])
    if payload["faults"] is not None and faults is not None:
        th.thaw_attrs(faults, payload["faults"])
    if payload["spans"] is not None and spans is not None:
        th.thaw_attrs(spans, payload["spans"])
    if payload["tracer"] is not None and sim.tracer is not None:
        th.thaw_attrs(sim.tracer, payload["tracer"])
    handle.restore_state(payload["host"], th)


# ============================================================== dist workers
def capture_partition_state(sim: Any, fault_state: Any = None) -> Dict[str, Any]:
    """Freeze one partition (worker or root) for a barrier checkpoint.

    The payload is fully decoupled from the live objects (markers only), so
    worker processes ship it over the barrier pipe and the supervisor can
    hold the root's payload without aliasing state that keeps advancing.
    """
    fr = Freezer()
    _register_sim_infra_fr(fr, sim)
    if fault_state is not None:
        fr.add_infra(fault_state, "faults")
        fr.add_infra(fault_state.plan, "plan")
    return {
        "sim": capture_sim_state(sim, fr),
        "registry": capture_registry(sim.registry) if sim.registry is not None else None,
        "faults": fr.freeze_attrs(fault_state, exclude=("plan",)) if fault_state is not None else None,
    }


def restore_partition_state(sim: Any, payload: Dict[str, Any], fault_state: Any = None) -> None:
    th = Thawer()
    _register_sim_infra_th(th, sim)
    if fault_state is not None:
        th.add_infra("faults", None, fault_state)
        th.add_infra("plan", None, fault_state.plan)
    pair_sim_state(sim, payload["sim"], th)
    if payload["faults"] is not None and fault_state is not None:
        th.pair_attrs(fault_state, payload["faults"])
    apply_sim_state(sim, payload["sim"], th)
    if payload["registry"] is not None and sim.registry is not None:
        apply_registry(sim.registry, payload["registry"])
    if payload["faults"] is not None and fault_state is not None:
        th.thaw_attrs(fault_state, payload["faults"])
