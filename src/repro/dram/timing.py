"""DDR timing parameter sets, expressed in *controller* clock cycles.

The paper's FPGA results run the accelerator and the Xilinx DDR4 controller at
250 MHz (4 ns per cycle) with a 512-bit (64-byte) user data path, which is the
configuration of the AWS F1 shell.  We model the DRAM at that controller clock:
one column access moves one 64-byte beat.  Timing values are DDR4-2400-ish
figures rounded to 4 ns controller cycles, the same granularity DRAMsim3
results get re-sampled to when integrating with a 250 MHz user design.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramTiming:
    """Geometry and timing of one memory channel at the controller clock."""

    # Geometry
    n_banks: int = 16
    row_bytes: int = 2048  # open-row span per bank
    col_bytes: int = 64  # one column burst = one AXI beat

    # Timing (controller cycles, 4 ns each)
    t_rcd: int = 4  # activate -> column command
    t_rp: int = 4  # precharge
    t_cl: int = 4  # column read -> data
    t_ras: int = 9  # activate -> precharge
    t_bus_turn: int = 3  # read<->write data bus turnaround
    t_refi: int = 1950  # refresh interval (7.8 us)
    t_rfc: int = 88  # refresh cycle time (350 ns)

    # Controller structure
    sched_queue_depth: int = 48  # column-command scheduler window
    max_outstanding_txns: int = 64
    direction_streak: int = 64  # max consecutive same-direction columns
    # Per-ID, per-direction in-order processing window: at most this many
    # same-ID transactions of one direction may be in the DRAM pipeline at
    # once (in-order return forces the controller to buffer same-ID
    # responses; the buffer is finite).  This is the mechanism that punishes
    # single-ID masters with short bursts (Section III-A).
    per_id_txn_limit: int = 1

    @property
    def cols_per_row(self) -> int:
        return self.row_bytes // self.col_bytes

    def decompose(self, addr: int) -> tuple[int, int, int]:
        """Map a byte address to (bank, row, column).

        Low-order interleave: consecutive rows of the address space rotate
        across banks, so a long sequential stream opens a row, streams all its
        columns, then moves to the *next bank* — giving streams natural
        bank-level parallelism, the behaviour DDR controllers' default address
        maps are chosen for.
        """
        block = addr // self.col_bytes
        col = block % self.cols_per_row
        row_seq = block // self.cols_per_row
        bank = row_seq % self.n_banks
        row = row_seq // self.n_banks
        return bank, row, col


#: The AWS F1 / Alveo U200 single-channel configuration used in the paper.
DDR4_AWS_F1 = DramTiming()

#: A small, slower LPDDR-ish part for the embedded (Kria) platform model.
LPDDR4_KRIA = DramTiming(
    n_banks=8,
    row_bytes=1024,
    col_bytes=16,
    t_rcd=5,
    t_rp=5,
    t_cl=5,
    t_ras=11,
    t_bus_turn=4,
    sched_queue_depth=24,
    max_outstanding_txns=32,
)
