"""DRAM bank state machine.

Each bank tracks its open row and the cycle at which it next accepts a
command.  Row management is combined precharge+activate ("prep"): switching
rows costs ``t_rp + t_rcd`` cycles (respecting ``t_ras`` minimum open time),
after which column commands to the open row are unconstrained — at a 250 MHz
controller clock a DDR4 part sustains more than one 64-byte column per cycle,
so the shared data bus, not per-bank column timing, is the streaming limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dram.timing import DramTiming


@dataclass(slots=True)
class Bank:
    timing: DramTiming
    open_row: Optional[int] = None
    ready_at: int = 0  # cycle at which the bank next accepts a command
    activated_at: int = -(10**9)  # last activate, for t_ras
    # Statistics
    activations: int = 0
    row_hits: int = 0
    row_misses: int = 0

    def row_open(self, row: int, cycle: int) -> bool:
        return self.open_row == row and cycle >= self.ready_at

    def can_prep(self, cycle: int) -> bool:
        """Can we begin switching this bank to a new row this cycle?"""
        if cycle < self.ready_at:
            return False
        if self.open_row is not None:
            # Must satisfy minimum row-open time before precharging.
            return cycle >= self.activated_at + self.timing.t_ras
        return True

    def prep(self, row: int, cycle: int) -> None:
        """Begin precharge (if a row is open) + activate of ``row``."""
        cost = self.timing.t_rcd
        if self.open_row is not None:
            cost += self.timing.t_rp
        self.open_row = row
        self.ready_at = cycle + cost
        self.activated_at = cycle + cost - self.timing.t_rcd
        self.activations += 1

    def block_for_refresh(self, cycle: int) -> None:
        self.ready_at = max(self.ready_at, cycle + self.timing.t_rfc)
        self.open_row = None

    def record_access(self, hit: bool) -> None:
        if hit:
            self.row_hits += 1
        else:
            self.row_misses += 1
