"""Sparse functional backing store for the DRAM model.

Keeps data in fixed-size blocks keyed by block index so simulations of large
address spaces only pay for the bytes they touch.  All reads/writes are exact:
a memcpy through the full stack really moves these bytes, which is what lets
every benchmark double as a functional test.
"""

from __future__ import annotations

from typing import Dict


class MemoryStore:
    """Byte-addressable sparse memory with block-granular storage."""

    def __init__(self, block_bytes: int = 64) -> None:
        self.block_bytes = block_bytes
        self._blocks: Dict[int, bytearray] = {}

    def _block(self, index: int) -> bytearray:
        blk = self._blocks.get(index)
        if blk is None:
            blk = bytearray(self.block_bytes)
            self._blocks[index] = blk
        return blk

    def read(self, addr: int, length: int) -> bytes:
        if addr < 0 or length < 0:
            raise ValueError("negative address or length")
        out = bytearray(length)
        pos = 0
        while pos < length:
            a = addr + pos
            index, offset = divmod(a, self.block_bytes)
            span = min(self.block_bytes - offset, length - pos)
            blk = self._blocks.get(index)
            if blk is not None:
                out[pos : pos + span] = blk[offset : offset + span]
            pos += span
        return bytes(out)

    def write(self, addr: int, data: bytes, strb: bytes = None) -> None:
        if addr < 0:
            raise ValueError("negative address")
        if strb is not None and len(strb) != len(data):
            raise ValueError("strb length mismatch")
        pos = 0
        length = len(data)
        while pos < length:
            a = addr + pos
            index, offset = divmod(a, self.block_bytes)
            span = min(self.block_bytes - offset, length - pos)
            blk = self._block(index)
            if strb is None:
                blk[offset : offset + span] = data[pos : pos + span]
            else:
                for i in range(span):
                    if strb[pos + i]:
                        blk[offset + i] = data[pos + i]
            pos += span

    @property
    def touched_bytes(self) -> int:
        return len(self._blocks) * self.block_bytes
