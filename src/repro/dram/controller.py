"""AXI4 memory controller over the bank-level DRAM model.

This is the slave every Beethoven memory subsystem ultimately talks to.  It
implements the mechanisms the paper's microbenchmark analysis hinges on:

* **Per-ID transaction serialisation** — transactions sharing an AXI ID are
  scheduled strictly in order (the behaviour of the Xilinx DDR controller the
  paper cites); transactions on *different* IDs are scheduled out of order by
  an FR-FCFS column scheduler.  This is why Beethoven's transaction-level
  parallelism (TLP, splitting one logical transfer over several IDs) wins and
  why HLS's single-ID streams suffer under load.
* **Row-buffer locality** — banks pay precharge+activate to switch rows, so
  fine-grained interleaving of many streams costs bandwidth.
* **Data-bus direction grouping** — the shared data bus pays a turnaround
  penalty when switching between reads and writes; the scheduler groups
  same-direction columns like real controllers do.
* **In-order per-ID return** — read data and write responses are returned in
  issue order within an ID (an AXI requirement), so a slow transaction blocks
  later same-ID transactions' data even when their columns already completed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.axi.monitor import MonitoredAxiPort
from repro.axi.types import BResp, RBeat
from repro.dram.bank import Bank
from repro.dram.store import MemoryStore
from repro.dram.timing import DramTiming
from repro.obs.registry import Counter
from repro.sim import Component


@dataclass(slots=True)
class _ReadTxn:
    tag: int
    axi_id: int
    addr: int
    length: int
    accept_cycle: int
    cols_enqueued: int = 0
    cols_done: int = 0
    beats_sent: int = 0
    # (ready_cycle, data, err) per beat; err marks a modeled ECC failure.
    beats: List[Optional[Tuple[int, bytes, bool]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.beats = [None] * self.length


@dataclass(slots=True)
class _WriteTxn:
    tag: int
    axi_id: int
    addr: int
    length: int
    accept_cycle: int
    wbeats: List = field(default_factory=list)
    data_complete: bool = False
    cols_enqueued: int = 0
    cols_done: int = 0


@dataclass(slots=True)
class _ColReq:
    txn: object
    beat_idx: int
    addr: int
    bank: int
    row: int
    is_write: bool
    enqueued_cycle: int


class MemoryController(Component):
    """FR-FCFS DDR controller with an AXI4 slave frontend."""

    # Optional fault injector (repro.faults): filters column reads, flipping
    # bits and marking the beat ``err`` (the modeled ECC detects the flip).
    _fault = None

    def __init__(
        self,
        mport: MonitoredAxiPort,
        timing: DramTiming,
        store: Optional[MemoryStore] = None,
        name: str = "mc",
    ) -> None:
        super().__init__(name)
        self.mport = mport
        self.port = mport.port
        self.timing = timing
        if self.port.params.beat_bytes != timing.col_bytes:
            raise ValueError(
                "AXI beat width must match the DRAM column width "
                f"({self.port.params.beat_bytes} != {timing.col_bytes})"
            )
        self.store = store if store is not None else MemoryStore(timing.col_bytes)
        self.banks = [Bank(timing) for _ in range(timing.n_banks)]

        self._read_txns: Dict[int, _ReadTxn] = {}
        self._write_txns: Dict[int, _WriteTxn] = {}
        self._id_read_issue: Dict[int, Deque[_ReadTxn]] = {}
        self._id_read_return: Dict[int, Deque[_ReadTxn]] = {}
        self._id_write_issue: Dict[int, Deque[_WriteTxn]] = {}
        self._id_write_return: Dict[int, Deque[_WriteTxn]] = {}
        self._writes_awaiting_data: Deque[_WriteTxn] = deque()
        # Per-ID, per-direction transaction pipelines: AXI orders same-ID
        # transactions within each direction (reads with reads, writes with
        # writes), and the controller processes at most ``per_id_txn_limit``
        # of each in order.  Short-burst single-ID masters (HLS) therefore
        # expose serialisation bubbles and fine-grained read/write bus
        # turnaround that multi-ID masters hide.
        self._id_read_pipe: Dict[int, Deque[object]] = {}
        self._id_write_pipe: Dict[int, Deque[object]] = {}
        self._sched: List[_ColReq] = []
        self._bus_free_at = 0
        self._bus_dir_write = False
        self._dir_streak = 0
        self._return_rr: List[int] = []  # round-robin order of IDs for R channel
        self._return_rr_pos = 0

        # Statistics: typed counters (int-like), adopted by the metric
        # registry when this controller joins a simulator.
        self.stats = {
            "bus_cycles": Counter(),
            "read_cols": Counter(),
            "write_cols": Counter(),
            "turnarounds": Counter(),
            "row_hits": Counter(),
            "row_misses": Counter(),
            "refreshes": Counter(),
            # Contention accounting (repro.obs.attribution): activations that
            # had to close an already-open row, and the total cycles column
            # commands sat in the scheduler window before winning the bus.
            "row_conflicts": Counter(),
            "queue_wait_cycles": Counter(),
        }

    @property
    def metric_path(self) -> str:
        return "dram/" + self.name.replace(".", "/")

    def register_metrics(self, scope) -> None:
        for key, ctr in self.stats.items():
            scope.attach(key, ctr)
        scope.bind("outstanding_txns", self._outstanding)
        scope.bind("sched_queue_depth", lambda: len(self._sched))
        scope.bind(
            "activations", lambda: sum(b.activations for b in self.banks)
        )
        # Per-bank row-buffer outcomes, for the contention accounter.
        for i, bank in enumerate(self.banks):
            scope.bind(f"bank{i}/activations", lambda b=bank: b.activations)
            scope.bind(f"bank{i}/row_hits", lambda b=bank: b.row_hits)
            scope.bind(f"bank{i}/row_misses", lambda b=bank: b.row_misses)

    # ------------------------------------------------------------------ helpers
    def _outstanding(self) -> int:
        return len(self._read_txns) + len(self._write_txns)

    def _rr_ids(self) -> List[int]:
        ids = self._return_rr
        if not ids:
            return []
        pos = self._return_rr_pos % len(ids)
        return ids[pos:] + ids[:pos]

    def _note_id(self, axi_id: int) -> None:
        if axi_id not in self._return_rr:
            self._return_rr.append(axi_id)

    # ------------------------------------------------------------------ tick
    def tick(self, cycle: int) -> None:
        self._maybe_refresh(cycle)
        self._accept_requests(cycle)
        self._enqueue_columns(cycle)
        self._prep_banks(cycle)
        self._issue_column(cycle)
        self._return_read_data(cycle)
        self._return_write_responses(cycle)

    # ------------------------------------------------------------------ phases
    def _maybe_refresh(self, cycle: int) -> None:
        if cycle and cycle % self.timing.t_refi == 0:
            for bank in self.banks:
                bank.block_for_refresh(cycle)
            self.stats["refreshes"] += 1

    def _accept_requests(self, cycle: int) -> None:
        if self.port.ar.can_pop() and self._outstanding() < self.timing.max_outstanding_txns:
            req = self.port.ar.pop()
            txn = _ReadTxn(req.tag, req.axi_id, req.addr, req.length, cycle)
            self._read_txns[req.tag] = txn
            self._id_read_issue.setdefault(req.axi_id, deque()).append(txn)
            self._id_read_return.setdefault(req.axi_id, deque()).append(txn)
            self._id_read_pipe.setdefault(req.axi_id, deque()).append(txn)
            self._note_id(req.axi_id)
        if self.port.aw.can_pop() and self._outstanding() < self.timing.max_outstanding_txns:
            req = self.port.aw.pop()
            txn = _WriteTxn(req.tag, req.axi_id, req.addr, req.length, cycle)
            self._write_txns[req.tag] = txn
            self._id_write_issue.setdefault(req.axi_id, deque()).append(txn)
            self._id_write_return.setdefault(req.axi_id, deque()).append(txn)
            self._id_write_pipe.setdefault(req.axi_id, deque()).append(txn)
            self._writes_awaiting_data.append(txn)
            self._note_id(req.axi_id)
        if self.port.w.can_pop() and self._writes_awaiting_data:
            head = self._writes_awaiting_data[0]
            beat = self.port.w.pop()
            head.wbeats.append(beat)
            if beat.last:
                head.data_complete = True
                self._writes_awaiting_data.popleft()

    def _enqueue_columns(self, cycle: int) -> None:
        """Move column commands from head-of-ID transactions into the
        scheduler window.  Only the head transaction of each ID contributes —
        this is the per-ID serialisation rule."""
        budget = 8  # command-processing bandwidth per cycle
        beat_bytes = self.timing.col_bytes
        limit = self.timing.per_id_txn_limit
        for axi_id in list(self._id_read_issue):
            q = self._id_read_issue[axi_id]
            while q and budget > 0 and len(self._sched) < self.timing.sched_queue_depth:
                txn = q[0]
                if txn.cols_enqueued >= txn.length:
                    q.popleft()
                    continue
                if txn.cols_enqueued == 0 and not self._may_start(
                    self._id_read_pipe, axi_id, txn
                ):
                    break
                addr = txn.addr + txn.cols_enqueued * beat_bytes
                bank, row, _col = self.timing.decompose(addr)
                self._sched.append(
                    _ColReq(txn, txn.cols_enqueued, addr, bank, row, False, cycle)
                )
                txn.cols_enqueued += 1
                budget -= 1
                if txn.cols_enqueued >= txn.length:
                    q.popleft()
                    break  # next same-ID txn starts no earlier than next cycle
        for axi_id in list(self._id_write_issue):
            q = self._id_write_issue[axi_id]
            while q and budget > 0 and len(self._sched) < self.timing.sched_queue_depth:
                txn = q[0]
                if txn.cols_enqueued >= txn.length:
                    q.popleft()
                    continue
                # Cut-through: a write column is eligible as soon as its W
                # beat has arrived (no store-and-forward of whole bursts).
                if txn.cols_enqueued >= len(txn.wbeats):
                    break
                if txn.cols_enqueued == 0 and not self._may_start(
                    self._id_write_pipe, axi_id, txn
                ):
                    break
                addr = txn.addr + txn.cols_enqueued * beat_bytes
                bank, row, _col = self.timing.decompose(addr)
                self._sched.append(
                    _ColReq(txn, txn.cols_enqueued, addr, bank, row, True, cycle)
                )
                txn.cols_enqueued += 1
                budget -= 1
                if txn.cols_enqueued >= txn.length:
                    q.popleft()
                    break

    def _may_start(self, pipes: Dict[int, Deque[object]], axi_id: int, txn: object) -> bool:
        """A transaction enters the DRAM pipeline only when it is among the
        first ``per_id_txn_limit`` unretired same-ID, same-direction
        transactions (the controller's in-order processing window)."""
        pipeline = pipes.get(axi_id)
        if pipeline is None:
            return True
        limit = self.timing.per_id_txn_limit
        for i, entry in enumerate(pipeline):
            if i >= limit:
                return False
            if entry is txn:
                return True
        return True  # not tracked (should not happen) — fail open

    def _retire(self, pipes: Dict[int, Deque[object]], axi_id: int, txn: object) -> None:
        pipeline = pipes.get(axi_id)
        if pipeline is not None:
            try:
                pipeline.remove(txn)
            except ValueError:
                pass

    def _prep_banks(self, cycle: int) -> None:
        """Open rows for pending column commands (oldest-first per bank)."""
        preps = 2  # activate/precharge command bandwidth per cycle
        seen_banks = set()
        for req in self._sched:
            if preps == 0:
                break
            if req.bank in seen_banks:
                continue
            seen_banks.add(req.bank)
            bank = self.banks[req.bank]
            if bank.open_row != req.row and bank.can_prep(cycle):
                if bank.open_row is not None:
                    self.stats["row_conflicts"] += 1
                bank.prep(req.row, cycle)
                bank.record_access(False)
                self.stats["row_misses"] += 1
                preps -= 1

    def _issue_column(self, cycle: int) -> None:
        if cycle < self._bus_free_at or not self._sched:
            return
        ready = [
            (i, r)
            for i, r in enumerate(self._sched)
            if self.banks[r.bank].row_open(r.row, cycle)
        ]
        if not ready:
            return
        same_dir = [(i, r) for i, r in ready if r.is_write == self._bus_dir_write]
        if same_dir and self._dir_streak < self.timing.direction_streak:
            idx, req = same_dir[0]
        else:
            idx, req = ready[0]
        turnaround = req.is_write != self._bus_dir_write
        if turnaround:
            self._bus_dir_write = req.is_write
            self._dir_streak = 0
            self.stats["turnarounds"] += 1
        self._dir_streak += 1
        self._bus_free_at = cycle + 1 + (self.timing.t_bus_turn if turnaround else 0)
        self.stats["bus_cycles"] += 1
        self.stats["queue_wait_cycles"] += cycle - req.enqueued_cycle
        del self._sched[idx]
        self.banks[req.bank].record_access(True)
        self.stats["row_hits"] += 1
        if req.is_write:
            txn: _WriteTxn = req.txn
            beat = txn.wbeats[req.beat_idx]
            self.store.write(req.addr, beat.data, beat.strb)
            txn.cols_done += 1
            self.stats["write_cols"] += 1
        else:
            rtxn: _ReadTxn = req.txn
            data = self.store.read(req.addr, self.timing.col_bytes)
            err = False
            hook = self._fault
            if hook is not None:
                data, err = hook.filter_read(cycle, req.addr, data)
            rtxn.beats[req.beat_idx] = (cycle + self.timing.t_cl, data, err)
            rtxn.cols_done += 1
            self.stats["read_cols"] += 1

    def _return_read_data(self, cycle: int) -> None:
        if not self.port.r.can_push():
            return
        for axi_id in self._rr_ids():
            q = self._id_read_return.get(axi_id)
            if not q:
                continue
            txn = q[0]
            entry = txn.beats[txn.beats_sent]
            if entry is None or entry[0] > cycle:
                continue
            last = txn.beats_sent == txn.length - 1
            self.mport.push_r(
                cycle,
                RBeat(
                    axi_id=axi_id, data=entry[1], last=last, tag=txn.tag, err=entry[2]
                ),
            )
            txn.beats_sent += 1
            if last:
                q.popleft()
                del self._read_txns[txn.tag]
                # Pipeline slot frees once the data has left the controller.
                self._retire(self._id_read_pipe, axi_id, txn)
            self._return_rr_pos += 1
            return

    def _return_write_responses(self, cycle: int) -> None:
        if not self.port.b.can_push():
            return
        for axi_id in self._rr_ids():
            q = self._id_write_return.get(axi_id)
            if not q:
                continue
            txn = q[0]
            if txn.cols_done < txn.length:
                continue
            self.mport.push_b(cycle, BResp(axi_id=axi_id, okay=True, tag=txn.tag))
            q.popleft()
            del self._write_txns[txn.tag]
            self._retire(self._id_write_pipe, axi_id, txn)
            return

    # ----------------------------------------------------------- event skipping
    def wake_channels(self):
        # The AXI slave port channels belong to the monitor wrapper, not this
        # component; request arrivals (and freed R/B space) on them are the
        # only external events that unblock the controller.
        return self.port.channels()

    # ------------------------------------------------------------- compiled tick
    def compile_tick(self):
        """Specialised tick for the compiled scheduler.

        Same phases, same decisions, same statistics as :meth:`tick`; the
        difference is purely mechanical — channel endpoints, bank objects,
        timing constants and stat counters are captured as locals, the
        FR-FCFS ready scan runs once with an early exit instead of building
        ready/same-dir lists, the bank-prep row test is inlined, and the
        return-path round-robin rotation is computed arithmetically instead
        of slicing ``_return_rr`` twice per call.
        """
        timing = self.timing
        t_refi = timing.t_refi
        t_rfc = timing.t_rfc
        t_cl = timing.t_cl
        t_ras = timing.t_ras
        t_rcd = timing.t_rcd
        t_rp = timing.t_rp
        t_bus_turn = timing.t_bus_turn
        streak_limit = timing.direction_streak
        sched_depth = timing.sched_queue_depth
        max_txns = timing.max_outstanding_txns
        beat_bytes = timing.col_bytes
        decompose = timing.decompose
        banks = self.banks
        port = self.port
        ar, aw, w, r, b = port.ar, port.aw, port.w, port.r, port.b
        push_r, push_b = self.mport.push_r, self.mport.push_b
        sched = self._sched
        read_txns, write_txns = self._read_txns, self._write_txns
        id_read_issue = self._id_read_issue
        id_write_issue = self._id_write_issue
        id_read_return = self._id_read_return
        id_write_return = self._id_write_return
        id_read_pipe = self._id_read_pipe
        id_write_pipe = self._id_write_pipe
        awaiting = self._writes_awaiting_data
        store_read, store_write = self.store.read, self.store.write
        may_start, retire, note_id = self._may_start, self._retire, self._note_id
        rr = self._return_rr
        # [n_rr_ids, n_read_return_keys, n_write_return_keys, read_qs, write_qs]
        rr_cache: list = [0, -1, -1, (), ()]
        stats = self.stats
        s_bus = stats["bus_cycles"]
        s_rcols = stats["read_cols"]
        s_wcols = stats["write_cols"]
        s_turn = stats["turnarounds"]
        s_hits = stats["row_hits"]
        s_miss = stats["row_misses"]
        s_refresh = stats["refreshes"]
        s_conflict = stats["row_conflicts"]
        s_qwait = stats["queue_wait_cycles"]

        def tick(cycle, self=self):
            # -- refresh --------------------------------------------------
            if cycle and not cycle % t_refi:
                blocked = cycle + t_rfc
                for bank in banks:
                    if bank.ready_at < blocked:
                        bank.ready_at = blocked
                    bank.open_row = None
                s_refresh.value += 1
            # -- accept ---------------------------------------------------
            if ar._pop_count < len(ar._items) and (
                len(read_txns) + len(write_txns) < max_txns
            ):
                req = ar.pop()
                txn = _ReadTxn(req.tag, req.axi_id, req.addr, req.length, cycle)
                read_txns[req.tag] = txn
                id_read_issue.setdefault(req.axi_id, deque()).append(txn)
                id_read_return.setdefault(req.axi_id, deque()).append(txn)
                id_read_pipe.setdefault(req.axi_id, deque()).append(txn)
                note_id(req.axi_id)
            if aw._pop_count < len(aw._items) and (
                len(read_txns) + len(write_txns) < max_txns
            ):
                req = aw.pop()
                wtxn = _WriteTxn(req.tag, req.axi_id, req.addr, req.length, cycle)
                write_txns[req.tag] = wtxn
                id_write_issue.setdefault(req.axi_id, deque()).append(wtxn)
                id_write_return.setdefault(req.axi_id, deque()).append(wtxn)
                id_write_pipe.setdefault(req.axi_id, deque()).append(wtxn)
                awaiting.append(wtxn)
                note_id(req.axi_id)
            if awaiting and w._pop_count < len(w._items):
                head = awaiting[0]
                beat = w.pop()
                head.wbeats.append(beat)
                if beat.last:
                    head.data_complete = True
                    awaiting.popleft()
            # -- enqueue columns ------------------------------------------
            budget = 8
            n_sched = len(sched)
            if n_sched < sched_depth:
                for axi_id, q in id_read_issue.items():
                    while q:
                        txn = q[0]
                        enq = txn.cols_enqueued
                        if enq >= txn.length:
                            q.popleft()
                            continue
                        if enq == 0 and not may_start(id_read_pipe, axi_id, txn):
                            break
                        addr = txn.addr + enq * beat_bytes
                        bank_i, row, _col = decompose(addr)
                        sched.append(_ColReq(txn, enq, addr, bank_i, row, False, cycle))
                        n_sched += 1
                        enq += 1
                        txn.cols_enqueued = enq
                        budget -= 1
                        if enq >= txn.length:
                            q.popleft()
                            break
                        if not budget or n_sched >= sched_depth:
                            break
                    if not budget or n_sched >= sched_depth:
                        break
            if budget and n_sched < sched_depth:
                for axi_id, q in id_write_issue.items():
                    while q:
                        txn = q[0]
                        enq = txn.cols_enqueued
                        if enq >= txn.length:
                            q.popleft()
                            continue
                        if enq >= len(txn.wbeats):
                            break  # cut-through: wait for the W beat
                        if enq == 0 and not may_start(id_write_pipe, axi_id, txn):
                            break
                        addr = txn.addr + enq * beat_bytes
                        bank_i, row, _col = decompose(addr)
                        sched.append(_ColReq(txn, enq, addr, bank_i, row, True, cycle))
                        n_sched += 1
                        enq += 1
                        txn.cols_enqueued = enq
                        budget -= 1
                        if enq >= txn.length:
                            q.popleft()
                            break
                        if not budget or n_sched >= sched_depth:
                            break
                    if not budget or n_sched >= sched_depth:
                        break
            if sched:
                # -- prep banks + FR-FCFS pick, one fused walk ------------
                # Equivalent to the separate prep-then-issue passes: a
                # bank's prep decision happens at its first occurrence in
                # ``sched``, which precedes (or is) any entry of that bank
                # the issue check visits, so every readiness test still sees
                # post-prep bank state; preps consume their budget in the
                # same first-occurrence order; and the walk only stops early
                # once both the pick is settled and prep can do no more.
                preps = 2
                seen = 0
                full_mask = (1 << len(banks)) - 1
                can_issue = cycle >= self._bus_free_at
                dir_write = self._bus_dir_write
                want_same = self._dir_streak < streak_limit
                pick = -1
                first_ready = -1
                for i, req in enumerate(sched):
                    bank = banks[req.bank]
                    row = req.row
                    bit = 1 << req.bank
                    if not seen & bit:
                        seen |= bit
                        if preps and bank.open_row != row and cycle >= bank.ready_at:
                            prev_row = bank.open_row
                            if prev_row is None:
                                cost = t_rcd
                                can_prep = True
                            elif cycle >= bank.activated_at + t_ras:
                                cost = t_rcd + t_rp
                                can_prep = True
                            else:
                                can_prep = False  # t_ras not yet satisfied
                            if can_prep:
                                if prev_row is not None:
                                    s_conflict.value += 1
                                bank.open_row = row
                                bank.ready_at = cycle + cost
                                bank.activated_at = cycle + cost - t_rcd
                                bank.activations += 1
                                bank.row_misses += 1
                                s_miss.value += 1
                                preps -= 1
                    if (
                        can_issue
                        and pick < 0
                        and bank.open_row == row
                        and cycle >= bank.ready_at
                    ):
                        if first_ready < 0:
                            first_ready = i
                            if not want_same:
                                pick = i
                        if pick < 0 and req.is_write == dir_write:
                            pick = i
                    if (pick >= 0 or not can_issue) and (
                        not preps or seen == full_mask
                    ):
                        break
                if can_issue:
                    if pick < 0:
                        pick = first_ready  # no same-direction column ready
                    if pick >= 0:
                        req = sched[pick]
                        is_write = req.is_write
                        if is_write != dir_write:
                            self._bus_dir_write = is_write
                            self._dir_streak = 1
                            s_turn.value += 1
                            self._bus_free_at = cycle + 1 + t_bus_turn
                        else:
                            self._dir_streak += 1
                            self._bus_free_at = cycle + 1
                        s_bus.value += 1
                        s_qwait.value += cycle - req.enqueued_cycle
                        del sched[pick]
                        bank = banks[req.bank]
                        bank.row_hits += 1
                        s_hits.value += 1
                        txn = req.txn
                        if is_write:
                            beat = txn.wbeats[req.beat_idx]
                            store_write(req.addr, beat.data, beat.strb)
                            txn.cols_done += 1
                            s_wcols.value += 1
                        else:
                            data = store_read(req.addr, beat_bytes)
                            err = False
                            hook = self._fault
                            if hook is not None:
                                data, err = hook.filter_read(cycle, req.addr, data)
                            txn.beats[req.beat_idx] = (cycle + t_cl, data, err)
                            txn.cols_done += 1
                            s_rcols.value += 1
            # -- return read data -----------------------------------------
            # ``rr`` only grows (note_id) and the per-ID return deques are
            # created once and never deleted, so the rr-aligned queue lists
            # are rebuilt only when one of those key counts changes.
            n_ids = len(rr)
            if n_ids:
                if (
                    rr_cache[0] != n_ids
                    or rr_cache[1] != len(id_read_return)
                    or rr_cache[2] != len(id_write_return)
                ):
                    rr_cache[0] = n_ids
                    rr_cache[1] = len(id_read_return)
                    rr_cache[2] = len(id_write_return)
                    rr_cache[3] = [id_read_return.get(i) for i in rr]
                    rr_cache[4] = [id_write_return.get(i) for i in rr]
                rr_read_qs = rr_cache[3]
                rr_write_qs = rr_cache[4]
            if n_ids and len(r._items) + len(r._staged) < r.capacity:
                pos = self._return_rr_pos % n_ids
                for _ in range(n_ids):
                    axi_id = rr[pos]
                    q = rr_read_qs[pos]
                    pos += 1
                    if pos == n_ids:
                        pos = 0
                    if not q:
                        continue
                    txn = q[0]
                    sent = txn.beats_sent
                    entry = txn.beats[sent]
                    if entry is None or entry[0] > cycle:
                        continue
                    last = sent == txn.length - 1
                    push_r(
                        cycle,
                        RBeat(
                            axi_id=axi_id,
                            data=entry[1],
                            last=last,
                            tag=txn.tag,
                            err=entry[2],
                        ),
                    )
                    txn.beats_sent = sent + 1
                    if last:
                        q.popleft()
                        del read_txns[txn.tag]
                        retire(id_read_pipe, axi_id, txn)
                    self._return_rr_pos += 1
                    break
            # -- return write responses -----------------------------------
            if n_ids and len(b._items) + len(b._staged) < b.capacity:
                pos = self._return_rr_pos % n_ids
                for _ in range(n_ids):
                    axi_id = rr[pos]
                    q = rr_write_qs[pos]
                    pos += 1
                    if pos == n_ids:
                        pos = 0
                    if not q:
                        continue
                    txn = q[0]
                    if txn.cols_done < txn.length:
                        continue
                    push_b(cycle, BResp(axi_id=axi_id, okay=True, tag=txn.tag))
                    q.popleft()
                    del write_txns[txn.tag]
                    retire(id_write_pipe, axi_id, txn)
                    break

        return tick

    def compile_hint(self):
        """Conservative compiled hint: wake every cycle while any transaction
        is outstanding, else sleep to the next refresh edge.

        :meth:`next_event` walks the transaction tables to find the exact
        next progress cycle; under the compiled scheduler that walk costs
        more than the no-op ticks it saves (an outstanding transaction keeps
        the controller hot within a few cycles anyway).  Early wakes are
        no-op ticks by the hint contract, so decisions and cycle counts are
        unchanged; the refresh-edge cap when idle is identical to
        :meth:`next_event`'s.
        """
        t = self.timing.t_refi
        read_txns = self._read_txns
        write_txns = self._write_txns
        sched = self._sched

        def hint(cycle):
            if read_txns or write_txns or sched:
                return cycle
            return cycle if (cycle and cycle % t == 0) else (cycle // t + 1) * t

        return hint

    def next_event(self, cycle: int) -> float:
        """Earliest cycle this controller can make progress without new
        channel traffic.

        Refresh fires on a fixed cadence whether or not traffic is pending
        (it mutates bank state and the refresh counter), so the hint is
        always capped at the next refresh edge — skips can never jump over
        one.  While column work is pending the controller stays on the naive
        path (bank prep/bus arbitration is cheap and short-lived); the long
        sleeps it reports are CAS-latency waits on read data maturity.
        """
        t = self.timing.t_refi
        nxt = cycle if (cycle and cycle % t == 0) else (cycle // t + 1) * t
        busy = bool(self._sched)
        if not busy:
            for txn in self._read_txns.values():
                if txn.cols_enqueued < txn.length:
                    busy = True
                    break
        if not busy:
            for wtxn in self._write_txns.values():
                if wtxn.cols_enqueued < wtxn.length and len(wtxn.wbeats) > wtxn.cols_enqueued:
                    busy = True  # staged W data ready to enter the scheduler
                    break
                if wtxn.cols_done >= wtxn.length:
                    busy = True  # B response owed
                    break
        if busy:
            return cycle
        for q in self._id_read_return.values():
            if q:
                txn = q[0]
                if txn.beats_sent < txn.length:
                    entry = txn.beats[txn.beats_sent]
                    if entry is not None:
                        nxt = min(nxt, max(cycle, entry[0]))
        return nxt

    def debug_state(self):
        if not self._read_txns and not self._write_txns and not self._sched:
            return None
        reads = [
            {"tag": t.tag, "axi_id": t.axi_id, "addr": hex(t.addr),
             "beats_sent": t.beats_sent, "length": t.length}
            for t in list(self._read_txns.values())[:8]
        ]
        writes = [
            {"tag": t.tag, "axi_id": t.axi_id, "addr": hex(t.addr),
             "cols_done": t.cols_done, "length": t.length,
             "data_complete": t.data_complete}
            for t in list(self._write_txns.values())[:8]
        ]
        return {
            "reads_in_flight": len(self._read_txns),
            "writes_in_flight": len(self._write_txns),
            "sched_queue": len(self._sched),
            "awaiting_w_data": len(self._writes_awaiting_data),
            "bus_free_at": self._bus_free_at,
            "reads": reads,
            "writes": writes,
        }

    # ------------------------------------------------------------------ analysis
    def idle(self) -> bool:
        return (
            not self._read_txns
            and not self._write_txns
            and not self._sched
            and not len(self.port.ar)
            and not len(self.port.aw)
            and not len(self.port.w)
        )

    def bus_utilisation(self, cycles: int) -> float:
        return self.stats["bus_cycles"] / max(cycles, 1)

    def report(self, cycles: int, clock_mhz: float = 250.0) -> Dict[str, float]:
        """DRAMsim3-style channel summary over ``cycles`` of simulation."""
        beat = self.timing.col_bytes
        seconds = cycles / (clock_mhz * 1e6) if cycles else 1.0
        total_accesses = self.stats["read_cols"] + self.stats["write_cols"]
        activations = sum(b.activations for b in self.banks)
        return {
            "read_bytes": self.stats["read_cols"] * beat,
            "write_bytes": self.stats["write_cols"] * beat,
            "bandwidth_gbps": total_accesses * beat / seconds / 1e9,
            "bus_utilisation": self.bus_utilisation(cycles),
            "row_hit_rate": (
                1.0 - activations / total_accesses if total_accesses else 0.0
            ),
            "activations": float(activations),
            "turnarounds": float(self.stats["turnarounds"]),
            "refresh_overhead": self.stats["refreshes"]
            * self.timing.t_rfc
            / max(cycles, 1),
        }
