"""Bank-level DRAM model with an AXI4 frontend (DRAMsim3-inspired)."""

from repro.dram.bank import Bank
from repro.dram.controller import MemoryController
from repro.dram.store import MemoryStore
from repro.dram.timing import DDR4_AWS_F1, LPDDR4_KRIA, DramTiming

__all__ = [
    "Bank",
    "MemoryController",
    "MemoryStore",
    "DramTiming",
    "DDR4_AWS_F1",
    "LPDDR4_KRIA",
]
