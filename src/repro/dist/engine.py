"""The sharded-simulation engine: slice/barrier supervisor and workers.

:class:`DistSimulator` presents the ordinary :class:`repro.sim.Simulator`
driving surface (``cycle``/``step``/``run``/``add``/``register_channel``/
``registry``/``state_dump``) over a set of partition simulators produced by
:func:`repro.dist.partition.register_partitioned`.  Two engines share the
same slice loop:

* ``"serial"`` — every partition advances in-process, one slice at a time,
  with all bridges on the local transport.  This is the bit-identity
  reference: it exercises the exact cut structure without any IPC.
* ``"fork"`` — partitions 1..N-1 run in forked worker processes (farm-style
  private queue pairs, redirected stderr); cross-partition bridges run
  detached and their deltas are exchanged at slice barriers, along with
  fault-event deltas.  Workers are forked lazily at the first advance, after
  the runtime server and any late components have been added to partition 0.

The conservative-synchronization contract (slice width <= minimum bridge
latency) is established by the partitioner; the engine only has to ship
committed deltas at barriers and keep the partitions' cycle counters in
lockstep.  ``until`` predicates are evaluated at slice barriers **in both
engines**, so completion cycles are barrier-quantized identically.

A worker that dies, errors, or misses the barrier deadline surfaces as a
typed :class:`repro.sim.PartitionSyncTimeout` carrying whatever partition
state could still be collected.
"""

from __future__ import annotations

import time
import traceback
import weakref
from typing import Any, Dict, List, Optional, Tuple

from repro.dist.config import DistConfig, DistError
from repro.dist.partition import PartitionPlan
from repro.farm.pool import _POLL_S, multiprocessing_context
from repro.sim import (
    DeadlockError,
    PartitionSyncTimeout,
    compact_state_dump,
    render_deadlock_report,
)
from repro.snapshot.engine import capture_partition_state, restore_partition_state


class _WorkerFailure(Exception):
    """Internal: a recoverable worker failure detected at a slice barrier.

    Raised by ``_fail_partition`` instead of the terminal
    :class:`PartitionSyncTimeout` while checkpoint-armed failover can still
    roll the run back; carries everything the terminal path would need if
    the restart budget runs out mid-recovery.
    """

    def __init__(self, child, message: str, status: str, child_dump=None) -> None:
        super().__init__(message)
        self.child = child
        self.message = message
        self.status = status
        self.child_dump = child_dump


def _fork_available() -> bool:
    """Fork-engine precondition: real ``fork`` start method (workers inherit
    the elaborated object graph; nothing is pickled at spawn time)."""
    try:
        ctx = multiprocessing_context()
        if getattr(ctx, "_name", getattr(ctx, "get_start_method", lambda: "")()) != "fork":
            return False
        a, b = ctx.Pipe(duplex=True)
        a.close()
        b.close()
        return True
    except Exception:  # pragma: no cover — sandboxed /dev/shm etc.
        return False


class MergedRegistry:
    """One metric namespace over every partition's registry.

    Reads (``dump``/``value``/``names``) merge all partitions; writes
    (``scope``/``bind``/``counter``...) go to partition 0's registry, which
    is where runtime/serving metrics belong.  Merge rules:

    * ``sim/cycles_total`` appears in every partition and must agree (the
      barrier keeps them in lockstep) — one copy survives;
    * other *stable*-key collisions must be value-equal (e.g. the constant
      ``trace/spans = 0`` each partition binds) — unequal values mean the
      cut leaked state and raise :class:`DistError`;
    * volatile collisions (per-partition wall-clock, tick counts) are kept
      under a ``@p<n>`` suffix.
    """

    def __init__(self, engine: "DistSimulator") -> None:
        self._engine = engine
        self._root = engine.root.registry

    # Writes -> root registry.
    def scope(self, prefix: str):
        return self._root.scope(prefix)

    def counter(self, name: str):
        return self._root.counter(name)

    def gauge(self, name: str):
        return self._root.gauge(name)

    def histogram(self, name: str, *args, **kwargs):
        return self._root.histogram(name, *args, **kwargs)

    def attach(self, name: str, metric, volatile: bool = False):
        return self._root.attach(name, metric, volatile=volatile)

    def bind(self, name: str, fn, volatile: bool = False):
        return self._root.bind(name, fn, volatile=volatile)

    def get(self, name: str):
        return self._root.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._root or name in self.dump()

    # Reads -> merged view.
    def dump(self, prefix: Optional[str] = None, stable_only: bool = False) -> Dict[str, Any]:
        merged = self._root.dump(prefix, stable_only=stable_only)
        for pid, part_dump, stable_keys in self._engine._partition_dumps(prefix, stable_only):
            stable = set(stable_keys)
            for key, value in part_dump.items():
                if key not in merged:
                    merged[key] = value
                    continue
                if key == "sim/cycles_total" or key in stable:
                    if merged[key] != value:
                        raise DistError(
                            f"stable metric {key!r} disagrees between the "
                            f"root partition ({merged[key]!r}) and partition "
                            f"{pid} ({value!r}): the cut leaked state"
                        )
                    continue
                merged[f"{key}@p{pid}"] = value
        return merged

    def value(self, name: str, default=0):
        if name in self._root:
            return self._root.value(name, default)
        return self.dump().get(name, default)

    def names(self, prefix: Optional[str] = None) -> List[str]:
        return list(self.dump(prefix).keys())

    def to_json(self, prefix: Optional[str] = None, indent: int = 2) -> str:
        import json

        return json.dumps(self.dump(prefix), indent=indent, sort_keys=True)

    def render_report(self, prefix: Optional[str] = None) -> str:
        lines = [f"{'metric':<58} value"]
        for name, value in sorted(self.dump(prefix).items()):
            shown = f"{value:.4f}" if isinstance(value, float) else str(value)
            lines.append(f"{name:<58} {shown}")
        return "\n".join(lines)


class _Child:
    """Supervisor-side record of one forked partition worker.

    ``conn`` is the supervisor's end of a duplex pipe.  Pipes (not queues):
    a barrier is a latency-bound round trip repeated every ``slice_width``
    cycles, and a ``Connection`` round trip is several times cheaper than a
    feeder-thread ``multiprocessing.Queue`` — on dense designs the barrier
    rate makes that difference the bulk of the sharding overhead.
    """

    def __init__(self, pid: int, process, conn, stderr_path: str) -> None:
        self.pid = pid
        self.process = process
        self.conn = conn
        self.stderr_path = stderr_path


def _child_main(pid, sim, bridges, fault_state, conn, stderr_path) -> None:
    """Worker body: apply inbound deltas, advance slices, post committed
    deltas back.  Any exception becomes an ("error", ...) reply carrying the
    partition's state dump, so the supervisor can attach it to the typed
    :class:`PartitionSyncTimeout`."""
    import os

    try:
        fd = os.open(stderr_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
        os.dup2(fd, 2)
        os.close(fd)
    except OSError:
        pass  # diagnostics only
    egresses = [b for b in bridges if b.src == pid and b.cross_partition]
    ingress_of = {b.bridge_id: b.ingress for b in bridges if b.dst == pid and b.cross_partition}
    if fault_state is not None:
        # Everything logged pre-fork (compile-time hang schedules) is already
        # in the supervisor's copy — ship only post-fork deltas.
        fault_state.begin_partition_feed()
    while True:
        try:
            msg = conn.recv()
        except EOFError:  # supervisor went away
            return
        if msg is None or msg[0] == "stop":
            return
        try:
            kind = msg[0]
            if kind == "slice":
                _kind, n, inbound = msg
                for bid, batch in inbound:
                    ingress_of[bid].accept(batch)
                sim.run_slice(n)
                outs = [(b.bridge_id, b.egress.take_deltas()) for b in egresses]
                fd_ = fault_state.drain_deltas() if fault_state is not None else None
                conn.send(("done", pid, sim.cycle, outs, fd_))
            elif kind == "dump":
                _kind, prefix, stable_only, inbound = msg
                # Inbound deltas ride along so in-flight bridge items are
                # visible in the dump exactly as they would be in one process.
                for bid, batch in inbound:
                    ingress_of[bid].accept(batch)
                part_dump = sim.registry.dump(prefix, stable_only=stable_only)
                stable_keys = list(sim.registry.dump(prefix, stable_only=True))
                conn.send(("dumped", pid, part_dump, stable_keys))
            elif kind == "state":
                conn.send(("stated", pid, sim.state_dump()))
            elif kind == "snap":
                conn.send(("snapped", pid, capture_partition_state(sim, fault_state)))
            elif kind == "restore":
                _kind, payload = msg
                restore_partition_state(sim, payload, fault_state)
                conn.send(("restored", pid))
            else:  # pragma: no cover — protocol drift guard
                raise RuntimeError(f"unknown supervisor message {kind!r}")
        except Exception:
            tb = traceback.format_exc(limit=30)
            try:
                dump = sim.state_dump()
            except Exception:
                dump = {}
            try:
                conn.send(("error", pid, tb, dump))
            except (BrokenPipeError, OSError):
                pass
            return


def _shutdown_children(children: List[_Child]) -> None:
    import os

    for child in children:
        try:
            child.conn.send(("stop",))
        except Exception:
            pass
    for child in children:
        child.process.join(timeout=0.5)
        if child.process.is_alive():
            child.process.terminate()
            child.process.join(timeout=1.0)
        try:
            child.conn.close()
        except Exception:
            pass
        if child.stderr_path:
            try:
                os.unlink(child.stderr_path)
            except OSError:
                pass


class DistSimulator:
    """Slice/barrier supervisor presenting the single-``Simulator`` surface."""

    def __init__(
        self,
        plan: PartitionPlan,
        sims,
        config: DistConfig,
        fault_state=None,
    ) -> None:
        self.plan = plan
        self.sims = list(sims)
        self.config = config
        self.fault_state = fault_state
        self.root = self.sims[0]
        self.name = self.root.name + ":dist"
        self.slice_width = plan.slice_width
        if config.engine == "fork":
            if not _fork_available():
                raise DistError(
                    "engine='fork' needs the multiprocessing 'fork' start "
                    "method; use engine='serial' (or 'auto') here"
                )
            self.engine = "fork"
        elif config.engine == "serial":
            self.engine = "serial"
        else:
            self.engine = "fork" if _fork_available() else "serial"

        self._children: List[_Child] = []
        self._forked = False
        self._broken: Optional[Exception] = None
        self._finalizer = None
        #: Per-partition inbound delta buffers, shipped with the next message.
        self._inbound: Dict[int, List[Tuple[str, list]]] = {
            p: [] for p in range(plan.n_partitions)
        }
        self._root_egresses = [
            b for b in plan.bridges if b.src == 0 and b.cross_partition
        ]
        self._ingress_of = {b.bridge_id: b.ingress for b in plan.bridges}
        self._dst_of = {b.bridge_id: b.dst for b in plan.bridges}

        self._slices = 0
        self._barriers = 0
        self._items_shipped = 0
        self.barrier_wait_s = 0.0
        # Barrier-aligned checkpoint (cycle, root payload, worker payloads,
        # pending inbound deltas) + failover bookkeeping.
        self._checkpoint: Optional[Dict[str, Any]] = None
        self._checkpoints = 0
        self._restarts = 0
        self.checkpoint_write_s = 0.0
        self._in_slice = False
        self.registry = MergedRegistry(self)
        # All dist/* metrics are volatile: they describe the execution
        # harness, not the modeled hardware, and differ across engines and
        # worker counts by design.
        scope = self.root.registry.scope("dist")
        scope.bind("partitions", lambda: self.plan.n_partitions, volatile=True)
        scope.bind("slice_width", lambda: self.slice_width, volatile=True)
        scope.bind("slices", lambda: self._slices, volatile=True)
        scope.bind("barriers", lambda: self._barriers, volatile=True)
        scope.bind("items_shipped", lambda: self._items_shipped, volatile=True)
        scope.bind("barrier_wait_s", lambda: self.barrier_wait_s, volatile=True)
        scope.bind("checkpoints", lambda: self._checkpoints, volatile=True)
        scope.bind("restarts", lambda: self._restarts, volatile=True)
        scope.bind("checkpoint_write_s", lambda: self.checkpoint_write_s, volatile=True)

    # --------------------------------------------------- simulator surface
    @property
    def cycle(self) -> int:
        return self.root.cycle

    @property
    def scheduling(self) -> str:
        return self.root.scheduling

    @property
    def tracer(self):
        return self.root.tracer

    def add(self, component) -> None:
        self.root.add(component)

    def register_channel(self, chan) -> None:
        self.root.register_channel(chan)

    def step(self) -> int:
        self._advance(1)
        return self.cycle

    def run_slice(self, n_cycles: int) -> int:
        if n_cycles > 0:
            self._advance(n_cycles)
        return self.cycle

    def run(self, max_cycles: int, until=None) -> int:
        deadline = self.cycle + max_cycles
        while self.cycle < deadline:
            if until is not None and until():
                return self.cycle
            self._advance(min(self.slice_width, deadline - self.cycle))
        if until is None or until():
            return self.cycle
        self._raise_deadlock(max_cycles)

    def state_dump(self) -> Dict[str, Any]:
        dump = self.root.state_dump()
        dump["partitions"] = self._gather_partition_states()
        return dump

    # ------------------------------------------------------------ slice loop
    def _advance(self, n: int) -> None:
        """Advance ``n`` cycles, in at most ``slice_width`` steps.

        ``target`` is absolute: a recoverable worker failure rolls every
        partition back to the last checkpoint (possibly several slices), and
        the loop then re-advances to the same barrier the call was headed
        for — so callers (and ``until`` evaluation in :meth:`run`) observe
        identical barrier cycles whether or not a recovery happened.
        Determinism makes skipping ``until`` checks on re-advanced slices
        sound: the pre-kill execution already passed those barriers with the
        predicate false.
        """
        if self._broken is not None:
            raise self._broken
        target = self.cycle + n
        while self.cycle < target:
            step = min(self.slice_width, target - self.cycle)
            self._in_slice = True
            try:
                if self.engine == "serial":
                    for sim in self.sims:
                        sim.run_slice(step)
                else:
                    self._advance_fork(step)
                self._slices += 1
                self._barriers += 1
                if self.engine == "serial":
                    cycles = {sim.cycle for sim in self.sims}
                    if len(cycles) != 1:
                        raise DistError(
                            f"partition cycle skew after slice: {sorted(cycles)}"
                        )
                self._maybe_checkpoint()
            except _WorkerFailure as failure:
                self._recover(failure)
            finally:
                self._in_slice = False

    # ----------------------------------------------------- checkpoint/failover
    def _recovery_armed(self) -> bool:
        """Turn a worker failure into a rollback instead of a terminal error?

        Only at slice barriers (dump/state collection has per-child protocol
        state a rollback could not rewind), only with a checkpoint to roll
        back to, and only while the restart budget lasts.
        """
        return (
            self._in_slice
            and self.engine == "fork"
            and self._checkpoint is not None
            and self._restarts < self.config.max_restarts
        )

    def _maybe_checkpoint(self) -> None:
        every = self.config.checkpoint_every_slices
        if every <= 0 or self.engine != "fork" or self._slices % every:
            return
        import copy

        t0 = time.perf_counter()
        payloads: Dict[int, Any] = {}
        for child in self._children:
            self._send(child, ("snap",))
        for child in self._children:
            _kind, pid, payload = self._collect(child, "snapped")
            payloads[pid] = payload
        self._checkpoint = {
            "cycle": self.root.cycle,
            "root": capture_partition_state(self.root, self.fault_state),
            "workers": payloads,
            # Deltas routed but not yet delivered ride the checkpoint too.
            "inbound": copy.deepcopy(self._inbound),
        }
        self._checkpoints += 1
        self.checkpoint_write_s += time.perf_counter() - t0

    def _recover(self, failure: _WorkerFailure) -> None:
        while True:
            if self._checkpoint is None or self._restarts >= self.config.max_restarts:
                self._fail_terminal(
                    failure.child, failure.message, failure.status, failure.child_dump
                )
            self._restarts += 1
            if self.tracer is not None:
                self.tracer.record(
                    self.root.cycle,
                    "dist",
                    "worker_restart",
                    {
                        "partition": failure.child.pid,
                        "status": failure.status,
                        "restart": self._restarts,
                        "rollback_to": self._checkpoint["cycle"],
                    },
                )
            try:
                self._restore_from_checkpoint()
                return
            except _WorkerFailure as nxt:
                failure = nxt

    def _restore_from_checkpoint(self) -> None:
        """Roll every partition back to the last barrier checkpoint.

        The supervisor's ``sims[1..]`` copies never advance after the fork,
        so killing the old workers and re-forking hands each fresh worker a
        pristine pre-fork partition; the checkpoint payload then overwrites
        its mutable state.  The supervisor's own fault state is restored
        *before* the re-fork so new workers inherit it and their
        ``begin_partition_feed()`` marks line up with the restored payload.
        """
        import copy

        ck = self._checkpoint
        self.shutdown()
        self._forked = False
        restore_partition_state(self.root, ck["root"], self.fault_state)
        self._inbound = copy.deepcopy(ck["inbound"])
        self._ensure_forked()
        for child in self._children:
            self._send(child, ("restore", ck["workers"][child.pid]))
        for child in self._children:
            self._collect(child, "restored")

    def _advance_fork(self, n: int) -> None:
        self._ensure_forked()
        for child in self._children:
            self._send(child, ("slice", n, self._take_inbound(child.pid)))
        self.root.run_slice(n)
        t0 = time.perf_counter()
        replies = [self._collect(child, "done") for child in self._children]
        self.barrier_wait_s += time.perf_counter() - t0

        deltas: List[Tuple[str, list]] = [
            (b.bridge_id, b.egress.take_deltas()) for b in self._root_egresses
        ]
        for _kind, pid, cycle, outs, fault_delta in replies:
            if cycle != self.root.cycle:
                self._break(DistError(
                    f"partition {pid} is at cycle {cycle}, root at "
                    f"{self.root.cycle}: barrier protocol violated"
                ))
            deltas.extend(outs)
            if fault_delta is not None and self.fault_state is not None:
                self.fault_state.absorb(*fault_delta)
        # Deterministic routing order; root-bound batches are applied now so
        # metric dumps between slices see every committed item, child-bound
        # batches ride the next message to that partition.
        for bid, batch in sorted(deltas):
            if not batch:
                continue
            self._items_shipped += len(batch)
            dst = self._dst_of[bid]
            if dst == 0:
                self._ingress_of[bid].accept(batch)
            else:
                self._inbound[dst].append((bid, batch))

    def _take_inbound(self, pid: int) -> List[Tuple[str, list]]:
        out = self._inbound[pid]
        self._inbound[pid] = []
        return out

    def _ensure_forked(self) -> None:
        if self._forked:
            return
        # Detach every cross-partition bridge *before* forking so the
        # workers inherit the detached flag.
        for spec in self.plan.bridges:
            if spec.cross_partition:
                spec.egress.detached = True
        import tempfile
        import os

        ctx = multiprocessing_context()
        for pid in range(1, self.plan.n_partitions):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            fd, stderr_path = tempfile.mkstemp(prefix=f"dist-p{pid}-", suffix=".stderr")
            os.close(fd)
            bridges = [
                b for b in self.plan.bridges
                if b.cross_partition and pid in (b.src, b.dst)
            ]
            process = ctx.Process(
                target=_child_main,
                args=(pid, self.sims[pid], bridges, self.fault_state,
                      child_conn, stderr_path),
                daemon=True,
            )
            process.start()
            child_conn.close()  # the worker holds its end; EOF detection needs ours only
            self._children.append(_Child(pid, process, parent_conn, stderr_path))
        self._forked = True
        self._finalizer = weakref.finalize(self, _shutdown_children, self._children)

    # --------------------------------------------------------- reply plumbing
    def _send(self, child: _Child, msg: tuple) -> None:
        try:
            child.conn.send(msg)
        except (BrokenPipeError, OSError):
            child.process.join(timeout=1.0)
            self._fail_partition(
                child,
                f"partition {child.pid} worker is gone (exit code "
                f"{child.process.exitcode}); could not deliver {msg[0]!r} "
                f"for the slice barrier at cycle {self.root.cycle}",
                status="dead",
            )

    def _collect(self, child: _Child, expected: str):
        deadline = time.monotonic() + self.config.barrier_timeout_s
        while True:
            try:
                ready = child.conn.poll(_POLL_S)
                msg = child.conn.recv() if ready else None
            except (EOFError, OSError):
                # The worker's end closed mid-message: it is gone, whatever
                # ``is_alive`` says while the exit is still being reaped.
                child.process.join(timeout=1.0)
                self._fail_partition(
                    child,
                    f"partition {child.pid} worker hung up (exit code "
                    f"{child.process.exitcode}) before reaching the slice "
                    f"barrier at cycle {self.root.cycle}",
                    status="dead",
                )
            if not ready:
                if not child.process.is_alive():
                    self._fail_partition(
                        child,
                        f"partition {child.pid} worker died (exit code "
                        f"{child.process.exitcode}) before reaching the slice "
                        f"barrier at cycle {self.root.cycle}",
                        status="dead",
                    )
                if time.monotonic() > deadline:
                    self._fail_partition(
                        child,
                        f"partition {child.pid} missed the slice barrier at "
                        f"cycle {self.root.cycle} "
                        f"(barrier_timeout_s={self.config.barrier_timeout_s})",
                        status="stalled",
                    )
                continue
            if msg[0] == "error":
                _kind, pid, tb, child_dump = msg
                self._fail_partition(
                    child,
                    f"partition {pid} worker raised during its slice:\n{tb}",
                    status="error",
                    child_dump=child_dump,
                )
            if msg[0] != expected:
                self._fail_partition(
                    child,
                    f"partition {child.pid} replied {msg[0]!r} when the "
                    f"supervisor expected {expected!r}",
                    status="protocol",
                )
            return msg

    def _stderr_tail(self, child: _Child, max_chars: int = 2000) -> str:
        import os

        try:
            with open(child.stderr_path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                fh.seek(max(0, size - max_chars))
                return fh.read().decode("utf-8", "replace").strip()
        except OSError:
            return ""

    def _fail_partition(self, child, message, status, child_dump=None):
        if self._recovery_armed():
            raise _WorkerFailure(child, message, status, child_dump)
        self._fail_terminal(child, message, status, child_dump)

    def _fail_terminal(self, child, message, status, child_dump=None):
        # Dumps are bounded before they ride the exception: a large design's
        # raw state dump (every channel and component of every partition)
        # can run to megabytes, which no log sink wants embedded in an error.
        dump = compact_state_dump(self.root.state_dump())
        info: Dict[str, Any] = {"status": status}
        tail = self._stderr_tail(child)
        if tail:
            info["stderr_tail"] = tail
        if child_dump:
            info["state_dump"] = compact_state_dump(child_dump)
        if self._restarts:
            info["restarts"] = self._restarts
        dump["partitions"] = {child.pid: info}
        exc = PartitionSyncTimeout(message, dump=dump, partition=child.pid)
        self._break(exc)

    def _break(self, exc: Exception) -> None:
        self._broken = exc
        self.shutdown()
        raise exc

    def shutdown(self) -> None:
        """Stop worker processes (idempotent; also runs via finalizer)."""
        if self._children:
            _shutdown_children(self._children)
            self._children = []
            if self._finalizer is not None:
                self._finalizer.detach()

    # ----------------------------------------------------- dumps & deadlock
    def _partition_dumps(self, prefix, stable_only):
        """[(pid, dump, stable_keys)] for partitions 1..N-1."""
        if self.engine == "serial" or not self._forked:
            out = []
            for pid in range(1, self.plan.n_partitions):
                reg = self.sims[pid].registry
                out.append((
                    pid,
                    reg.dump(prefix, stable_only=stable_only),
                    list(reg.dump(prefix, stable_only=True)),
                ))
            return out
        if self._broken is not None:
            return []
        out = []
        for child in self._children:
            self._send(child, ("dump", prefix, stable_only, self._take_inbound(child.pid)))
        for child in self._children:
            _kind, pid, part_dump, stable_keys = self._collect(child, "dumped")
            out.append((pid, part_dump, stable_keys))
        return out

    def _gather_partition_states(self) -> Dict[int, Any]:
        states: Dict[int, Any] = {}
        if self.engine == "serial" or not self._forked:
            for pid in range(1, self.plan.n_partitions):
                states[pid] = self.sims[pid].state_dump()
            return states
        if self._broken is not None:
            return states
        for child in self._children:
            self._send(child, ("state",))
        for child in self._children:
            _kind, pid, part_dump = self._collect(child, "stated")
            states[pid] = part_dump
        return states

    def _raise_deadlock(self, max_cycles: int) -> None:
        dump = self.state_dump()
        dump["partitions"] = {
            pid: compact_state_dump(pdump) if isinstance(pdump, dict) else pdump
            for pid, pdump in dump.get("partitions", {}).items()
        }
        dump = compact_state_dump(dump)
        message = (
            f"distributed simulation ran {max_cycles} cycles (to cycle "
            f"{self.cycle}) without the completion condition becoming true "
            f"across {self.plan.n_partitions} partitions\n"
            + render_deadlock_report(dump)
        )
        raise DeadlockError(message, dump)
