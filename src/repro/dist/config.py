"""Configuration for sharded (distributed) simulation.

``BeethovenBuild(..., distributed=DistConfig(n_workers=4))`` partitions the
elaborated design at SLR boundaries and runs each partition in its own
process, synchronized conservatively at the inter-SLR bridges (see
:mod:`repro.dist.partition` for the contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Valid ``DistConfig.engine`` values.  ``"serial"`` runs every partition
#: in-process through the same slice/barrier loop — it is the bit-identity
#: reference the differential harness compares ``"fork"`` against.
DIST_ENGINES = ("auto", "fork", "serial")


class DistError(RuntimeError):
    """A design cannot be partitioned as requested (no cut points,
    zero-latency bridges, unpartitionable coupling, bad worker count)."""


@dataclass(frozen=True)
class DistConfig:
    """How to shard one design across simulation worker processes.

    * ``n_workers`` — number of partitions.  Partition 0 (the supervisor's
      own) always holds the memory/host-interface die plus the runtime-facing
      infrastructure; remaining SLRs are grouped onto the other workers by
      core count.
    * ``slice_width`` — cycles simulated between barriers.  Defaults to the
      minimum bridge latency (the conservative lookahead bound); smaller is
      allowed, larger is rejected because it would let bridge traffic arrive
      late.
    * ``engine`` — ``"fork"`` (real worker processes), ``"serial"``
      (all partitions in-process, the determinism reference), or ``"auto"``
      (fork when the platform supports it, else serial).
    * ``barrier_timeout_s`` — wall-clock budget a worker gets to reach each
      slice barrier before the supervisor raises
      :class:`repro.sim.PartitionSyncTimeout`.
    * ``checkpoint_every_slices`` — with a positive value the fork engine
      collects a barrier-aligned checkpoint of every partition each N slices
      and *arms worker failover*: a worker that dies, errors, or misses the
      barrier deadline is respawned and the whole simulation rolls back to
      the last checkpoint instead of raising a terminal
      :class:`repro.sim.PartitionSyncTimeout`.  ``0`` (the default) keeps
      the historical fail-fast behaviour.
    * ``max_restarts`` — worker-failover budget for one run; exhausted
      budget (or a failure before the first checkpoint) fails terminally.
    """

    n_workers: int = 2
    slice_width: Optional[int] = None
    engine: str = "auto"
    barrier_timeout_s: float = 60.0
    checkpoint_every_slices: int = 0
    max_restarts: int = 2

    def __post_init__(self) -> None:
        if self.n_workers < 2:
            raise DistError("distributed simulation needs n_workers >= 2")
        if self.engine not in DIST_ENGINES:
            raise DistError(
                f"unknown dist engine {self.engine!r}; pick one of {DIST_ENGINES}"
            )
        if self.slice_width is not None and self.slice_width < 1:
            raise DistError("slice_width must be >= 1 when given")
        if self.checkpoint_every_slices < 0:
            raise DistError("checkpoint_every_slices must be >= 0")
        if self.max_restarts < 0:
            raise DistError("max_restarts must be >= 0")
