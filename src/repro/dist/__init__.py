"""Sharded parallel simulation: one SoC partitioned across worker processes.

``BeethovenBuild(..., distributed=DistConfig(n_workers=4))`` cuts the
elaborated design at its SLR-bridge boundaries (the only inter-partition
edges are fixed-latency ``AxiPipe`` crossings and the command-network hops
into remote SLRs), runs each partition under its own simulator — optionally
in forked worker processes — and synchronizes them conservatively in cycle
slices bounded by the minimum bridge latency.  Metrics, completion cycles
and fault fingerprints are bit-identical to the in-process reference; see
DESIGN.md ("Sharded simulation") for the lookahead argument.
"""

from repro.dist.bridge import BridgeEgress, BridgeIngress, CommandProxy
from repro.dist.config import DIST_ENGINES, DistConfig, DistError
from repro.dist.engine import DistSimulator, MergedRegistry
from repro.dist.partition import (
    BridgeSpec,
    PartitionDescriptor,
    PartitionPlan,
    plan_partitions,
    register_partitioned,
)

__all__ = [
    "BridgeEgress",
    "BridgeIngress",
    "BridgeSpec",
    "CommandProxy",
    "DIST_ENGINES",
    "DistConfig",
    "DistError",
    "DistSimulator",
    "MergedRegistry",
    "PartitionDescriptor",
    "PartitionPlan",
    "plan_partitions",
    "register_partitioned",
]
