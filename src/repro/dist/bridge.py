"""Split-bridge halves: the only components allowed to span a partition cut.

Every inter-SLR edge in an elaborated design is a fixed-latency delay line —
an :class:`repro.noc.axi_node.AxiPipe` on the memory side, and the
SLR-latency command/response hop on the command side.  Splitting such an edge
puts the *pop* side (egress) in the producing partition and the delay deque +
*push* side (ingress) in the consuming partition, so no
:class:`~repro.sim.ChannelQueue` is ever shared between partitions.

The halves replicate the pipe's per-channel semantics exactly:

* egress: ``if chan.can_pop(): forward (cycle + latency, chan.pop())`` — at
  most one item per channel per cycle, unconditional (the stock pipe's
  ingest never exerts backpressure; the delay line is unbounded).
* ingress: ``if head due <= cycle and target.can_push(): push`` — the stock
  pipe's flow-controlled drain.

Two transports connect a pair:

* **local** (default): the egress appends straight into its peer's delay
  deque and requests a wake — used whenever both halves live in the same
  simulator (the serial reference engine, or a bridge whose two SLRs were
  grouped onto one partition).
* **detached**: the egress accumulates ``(key, due, item)`` deltas which the
  supervisor ships at the next slice barrier and the receiving side applies
  via :meth:`BridgeIngress.accept`.  Because every due cycle is at least one
  full slice in the future (``slice_width <= latency``), barrier shipping
  and direct appending produce identical drain behaviour — the bit-identity
  argument in DESIGN.md.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim import NEVER, ChannelQueue, Component

#: A shipped bridge item: (channel key, due cycle, payload).
Delta = Tuple[str, int, Any]


class BridgeEgress(Component):
    """Producer-partition half of a split bridge edge.

    Pops at most one item per source channel per cycle (mirroring
    ``AxiPipe._ingest``) and forwards it — stamped with its maturity cycle —
    either directly into the peer ingress (local transport) or into the
    pending delta list (detached transport).
    """

    #: Purely reactive: progress requires traffic on a source channel.
    wake_only = True

    def __init__(
        self,
        bridge_id: str,
        name: str,
        latency: int,
        sources: Sequence[Tuple[str, ChannelQueue]],
    ) -> None:
        super().__init__(name)
        if latency < 1:
            raise ValueError(
                f"bridge {bridge_id!r}: cut bridges need latency >= 1 "
                "(a zero-latency pipe must stay inside one partition)"
            )
        self.bridge_id = bridge_id
        self.latency = latency
        self._sources = list(sources)
        self.peer: Optional["BridgeIngress"] = None
        self.detached = False
        self.pending: List[Delta] = []
        self.items_sent = 0

    @property
    def metric_path(self) -> str:
        return "dist/bridge/" + self.bridge_id.replace(":", "/") + "/tx"

    def tick(self, cycle: int) -> None:
        latency = self.latency
        for key, chan in self._sources:
            if chan.can_pop():
                item = chan.pop()
                self.items_sent += 1
                if self.detached:
                    self.pending.append((key, cycle + latency, item))
                else:
                    self.peer.inject(key, cycle + latency, item)

    def next_event(self, cycle: int) -> float:
        return NEVER

    def wake_channels(self):
        return [chan for _key, chan in self._sources]

    def take_deltas(self) -> List[Delta]:
        """Drain the deltas accumulated since the previous barrier."""
        out = self.pending
        self.pending = []
        return out

    def debug_state(self):
        if self.pending:
            return {"pending_deltas": len(self.pending)}
        return None


class BridgeIngress(Component):
    """Consumer-partition half of a split bridge edge: the delay line.

    Holds one due-ordered deque per channel key and drains matured heads into
    the target channels under the exact flow-control guard the stock
    ``AxiPipe._drain`` uses.  ``targets`` entries are ``(key, push, chan)``
    where ``push(cycle, item)`` performs the channel push (link pushes take
    the cycle for burst checking; plain channel pushes ignore it) and
    ``chan`` is the channel probed for space.
    """

    def __init__(
        self,
        bridge_id: str,
        name: str,
        targets: Sequence[Tuple[str, Callable[[int, Any], None], ChannelQueue]],
        latency: Optional[int] = None,
        in_flight_metrics: Optional[Dict[str, str]] = None,
        metric_path: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.bridge_id = bridge_id
        self._targets = list(targets)
        self._delay: Dict[str, deque] = {key: deque() for key, _p, _c in self._targets}
        self.latency = latency
        self._in_flight_metrics = dict(in_flight_metrics or {})
        self._metric_path_override = metric_path
        self.items_delivered = 0

    @property
    def metric_path(self) -> str:
        if self._metric_path_override is not None:
            return self._metric_path_override
        return "dist/bridge/" + self.bridge_id.replace(":", "/") + "/rx"

    def register_metrics(self, scope) -> None:
        # A split AxiPipe keeps its stock stable metric surface: the forward
        # ingress binds noc/<pipe>/latency + in_flight_{ar,aw,w}, the reverse
        # ingress in_flight_{r,b} — same keys, same values at every barrier
        # (egress pending lists are empty after the exchange).
        if self.latency is not None:
            scope.bind("latency", lambda: self.latency)
        for metric_name, key in self._in_flight_metrics.items():
            q = self._delay[key]
            scope.bind(metric_name, lambda q=q: len(q))

    def inject(self, key: str, due: int, item: Any) -> None:
        """Local-transport delivery: append one item mid-cycle.

        The wake request covers the case where every delay deque was empty at
        the last hint (``next_event`` returned :data:`NEVER`) — without it
        the selective scheduler would never look at this component again.
        """
        self._delay[key].append((due, item))
        self.request_wake()

    def accept(self, batch: Sequence[Delta]) -> None:
        """Barrier-transport delivery: apply a shipped delta batch.

        Called between slices, never mid-cycle; the next ``run()`` re-wakes
        every component, so no wake request is needed.
        """
        delay = self._delay
        for key, due, item in batch:
            delay[key].append((due, item))

    def tick(self, cycle: int) -> None:
        for key, push, chan in self._targets:
            q = self._delay[key]
            if q and q[0][0] <= cycle and chan.can_push():
                push(cycle, q.popleft()[1])
                self.items_delivered += 1

    def next_event(self, cycle: int) -> float:
        nxt = NEVER
        for q in self._delay.values():
            if q:
                due = q[0][0]
                hint = due if due > cycle else cycle
                if hint < nxt:
                    nxt = hint
        return nxt

    def wake_channels(self):
        return [chan for _key, _push, chan in self._targets]

    def in_flight(self) -> int:
        return sum(len(q) for q in self._delay.values())

    def debug_state(self):
        held = {key: len(q) for key, q in self._delay.items() if q}
        if held:
            return {"in_flight": held}
        return None


class CommandProxy:
    """Root-partition stand-in for a remote core's command adapter.

    Duck-types the slice of :class:`repro.command.router.CoreCommandAdapter`
    the router touches (``system_id``/``core_id``/``cmd_in``/``resp_out``),
    so the router runs unmodified in the root partition while the real
    adapter lives with its core.  A pair of command bridges shuttles RoCC
    instructions/responses between proxy and adapter at the SLR-crossing
    latency.  Channel names use a ``cmdproxy.`` prefix so the merged metric
    dump never collides with the remote adapter's own channels.
    """

    def __init__(self, system_id: int, core_id: int) -> None:
        self.system_id = system_id
        self.core_id = core_id
        name = f"cmdproxy.{system_id}.{core_id}"
        self.name = name
        self.cmd_in: ChannelQueue = ChannelQueue(4, f"{name}.in")
        self.resp_out: ChannelQueue = ChannelQueue(4, f"{name}.out")

    def channels(self):
        return [self.cmd_in, self.resp_out]
