"""Partition planning: cut an elaborated design at SLR boundaries.

The transform is **canonical** — it depends only on the design's SLR
structure, never on the worker count:

* every inter-SLR :class:`~repro.noc.axi_node.AxiPipe` is split into four
  bridge halves (forward ar/aw/w egress+ingress, reverse r/b egress+ingress);
* every core on a non-root SLR gets a :class:`~repro.dist.bridge.CommandProxy`
  in the root partition plus a command/response bridge pair at the
  SLR-crossing latency, and the router is attached to the proxy.

The worker count only decides how SLRs are *grouped* onto partitions (and
therefore which bridges run detached instead of local), so the cycle-level
computation is identical for every ``n_workers`` — that is what makes the
differential harness's cross-worker-count bit-identity hold by construction.

The lookahead contract: the slice width never exceeds the minimum bridge
latency, so an item popped by an egress during a slice matures no earlier
than the *next* barrier — shipping deltas at barriers is indistinguishable
from appending them the cycle they were popped (DESIGN.md, "Sharded
simulation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dist.bridge import BridgeEgress, BridgeIngress, CommandProxy
from repro.dist.config import DistConfig, DistError

#: Extra load (in core-equivalents) the root partition carries for the DRAM
#: controller, command frontend and runtime server — biases the grouping so
#: partition 0 gets slightly fewer cores.
_ROOT_INFRA_WEIGHT = 2.0


@dataclass(frozen=True)
class PartitionDescriptor:
    """The cache-key identity of a partitioning (see satellite: fingerprints).

    ``slr_assignment`` maps each SLR to its partition; ``cut_set`` is the
    sorted tuple of bridge ids the transform created.  Two runs with equal
    descriptors execute the same sharded structure.
    """

    n_workers: int
    slice_width: int
    slr_assignment: Tuple[Tuple[int, int], ...]
    cut_set: Tuple[str, ...]


@dataclass
class BridgeSpec:
    """One directed split edge: egress in ``src``, ingress in ``dst``."""

    bridge_id: str
    egress: BridgeEgress
    ingress: BridgeIngress
    src: int
    dst: int

    @property
    def cross_partition(self) -> bool:
        return self.src != self.dst


class PartitionPlan:
    """Everything the registration pass and the engine need about the cut."""

    def __init__(
        self,
        config: DistConfig,
        n_partitions: int,
        slice_width: int,
        partition_of_slr: Dict[int, int],
        root_slrs: Tuple[int, ...],
    ) -> None:
        self.config = config
        self.n_partitions = n_partitions
        self.slice_width = slice_width
        self.partition_of_slr = dict(partition_of_slr)
        self.root_slrs = root_slrs
        #: id(AxiPipe) -> ordered [(half_component, partition)].
        self.pipe_halves: Dict[int, List[Tuple[object, int]]] = {}
        #: (system_id, core_id) -> ordered [(half_component, partition)].
        self.cmd_halves: Dict[Tuple[int, int], List[Tuple[object, int]]] = {}
        #: (system_id, core_id) -> CommandProxy for remote-SLR cores.
        self.proxies: Dict[Tuple[int, int], CommandProxy] = {}
        self.bridges: List[BridgeSpec] = []

    def descriptor(self) -> PartitionDescriptor:
        return PartitionDescriptor(
            n_workers=self.n_partitions,
            slice_width=self.slice_width,
            slr_assignment=tuple(sorted(self.partition_of_slr.items())),
            cut_set=tuple(sorted(spec.bridge_id for spec in self.bridges)),
        )


def _contiguous_grouping(weights: List[float], k: int) -> List[int]:
    """Split ``weights`` into ``k`` contiguous non-empty groups minimising the
    maximum group weight; returns the group index per unit.  Classic linear
    partition DP — unit counts are tiny (one per SLR)."""
    n = len(weights)
    prefix = [0.0]
    for w in weights:
        prefix.append(prefix[-1] + w)

    def seg(i: int, j: int) -> float:
        return prefix[j] - prefix[i]

    INF = float("inf")
    # cost[j][i]: minimal max-weight splitting the first i units into j groups.
    cost = [[INF] * (n + 1) for _ in range(k + 1)]
    split = [[0] * (n + 1) for _ in range(k + 1)]
    cost[0][0] = 0.0
    for j in range(1, k + 1):
        for i in range(j, n + 1):
            for m in range(j - 1, i):
                cand = max(cost[j - 1][m], seg(m, i))
                if cand < cost[j][i]:
                    cost[j][i] = cand
                    split[j][i] = m
    groups = [0] * n
    i = n
    for j in range(k, 0, -1):
        m = split[j][i]
        for u in range(m, i):
            groups[u] = j - 1
        i = m
    return groups


def plan_partitions(design, config: DistConfig) -> "PartitionPlan":
    """Compute the SLR grouping and build every bridge half and proxy.

    Runs after the memory network exists (it needs the floorplan and the
    pipes) and before the command network (which attaches the router to the
    proxies this creates).
    """
    from repro.noc.axi_node import AxiPipe

    net = design.network
    device = design.platform.device
    if device is None or device.n_slrs < 2:
        raise DistError(
            "distributed= needs a multi-die platform: single-die designs "
            "have no SLR bridges to cut"
        )
    if net is None or net.n_pipes == 0:
        raise DistError(
            "distributed= found no inter-SLR AxiPipe bridges to cut — the "
            "design's cores all placed on the memory-interface SLR (or the "
            "platform's tree_config is not slr_aware)"
        )
    root_slrs = tuple(sorted({device.memory_interface_slr, device.host_interface_slr}))

    pipes = [c for c in net.components if isinstance(c, AxiPipe)]
    bad = [p.name for p in pipes if p.latency < 1]
    if bad:
        raise DistError(
            f"bridges {bad} have latency=0: a zero-latency pipe gives no "
            "lookahead and cannot be cut — raise the platform's "
            "slr_crossing_latency (or keep the design single-process)"
        )
    cmd_latency = design.platform.tree_config.slr_crossing_latency
    min_latency = min([p.latency for p in pipes] + [cmd_latency])
    slice_width = config.slice_width if config.slice_width is not None else min_latency
    if slice_width > min_latency:
        raise DistError(
            f"slice_width={slice_width} exceeds the minimum bridge latency "
            f"{min_latency}: bridge traffic would arrive after its due cycle"
        )

    # ---- group SLRs onto partitions --------------------------------------
    # Units: the root group (memory + host interface dies, pinned to
    # partition 0) followed by each remaining SLR in order; weights are core
    # counts, with an infrastructure bonus on the root unit.
    cores_on = {slr: 0 for slr in range(device.n_slrs)}
    for system in design.systems:
        for ecore in system.cores:
            cores_on[ecore.slr] = cores_on.get(ecore.slr, 0) + 1
    units: List[List[int]] = [list(root_slrs)]
    for slr in range(device.n_slrs):
        if slr not in root_slrs:
            units.append([slr])
    if config.n_workers > len(units):
        raise DistError(
            f"n_workers={config.n_workers} exceeds the {len(units)} "
            "partitionable SLR groups of this device"
        )
    weights = [
        sum(cores_on.get(slr, 0) for slr in unit) for unit in units
    ]
    weights[0] += _ROOT_INFRA_WEIGHT
    groups = _contiguous_grouping([float(w) for w in weights], config.n_workers)
    partition_of_slr: Dict[int, int] = {}
    for unit, part in zip(units, groups):
        for slr in unit:
            partition_of_slr[slr] = part

    plan = PartitionPlan(
        config, config.n_workers, slice_width, partition_of_slr, root_slrs
    )

    # ---- split every inter-SLR pipe --------------------------------------
    root_part = 0
    for pipe in pipes:
        up_slr, down_slr = net.pipe_sides[id(pipe)]
        src_part = partition_of_slr[up_slr]
        dst_part = partition_of_slr[down_slr]
        up, down, lat = pipe.up, pipe.down, pipe.latency
        fwd_id = f"mem:{pipe.name}:fwd"
        rev_id = f"mem:{pipe.name}:rev"
        noc_path = "noc/" + pipe.name.replace(".", "/")
        fwd_eg = BridgeEgress(
            fwd_id, f"{pipe.name}.fwd.tx", lat,
            [("ar", up.ar), ("aw", up.aw), ("w", up.w)],
        )
        fwd_in = BridgeIngress(
            fwd_id, f"{pipe.name}.fwd.rx",
            [
                ("ar", (lambda cycle, item, lk=down: lk.push_ar(cycle, item)), down.port.ar),
                ("aw", (lambda cycle, item, lk=down: lk.push_aw(cycle, item)), down.port.aw),
                ("w", (lambda cycle, item, lk=down: lk.push_w(cycle, item)), down.port.w),
            ],
            latency=lat,
            in_flight_metrics={"in_flight_ar": "ar", "in_flight_aw": "aw", "in_flight_w": "w"},
            metric_path=noc_path,
        )
        rev_eg = BridgeEgress(
            rev_id, f"{pipe.name}.rev.tx", lat,
            [("r", down.port.r), ("b", down.port.b)],
        )
        rev_in = BridgeIngress(
            rev_id, f"{pipe.name}.rev.rx",
            [
                ("r", (lambda cycle, item, c=up.r: c.push(item)), up.r),
                ("b", (lambda cycle, item, c=up.b: c.push(item)), up.b),
            ],
            in_flight_metrics={"in_flight_r": "r", "in_flight_b": "b"},
            metric_path=noc_path,
        )
        fwd_eg.peer = fwd_in
        rev_eg.peer = rev_in
        plan.pipe_halves[id(pipe)] = [
            (fwd_eg, src_part),
            (fwd_in, dst_part),
            (rev_eg, dst_part),
            (rev_in, src_part),
        ]
        plan.bridges.append(BridgeSpec(fwd_id, fwd_eg, fwd_in, src_part, dst_part))
        plan.bridges.append(BridgeSpec(rev_id, rev_eg, rev_in, dst_part, src_part))

    # ---- command proxies + bridges for remote-SLR cores ------------------
    cmd_lat = cmd_latency
    for system in design.systems:
        for ecore in system.cores:
            if ecore.slr in root_slrs:
                continue
            key = (ecore.system_id, ecore.core_id)
            core_part = partition_of_slr[ecore.slr]
            proxy = CommandProxy(*key)
            adapter = ecore.adapter
            fwd_id = f"cmd:{key[0]}:{key[1]}:fwd"
            rev_id = f"cmd:{key[0]}:{key[1]}:rev"
            fwd_eg = BridgeEgress(
                fwd_id, f"{proxy.name}.fwd.tx", cmd_lat, [("cmd", proxy.cmd_in)]
            )
            fwd_in = BridgeIngress(
                fwd_id, f"{proxy.name}.fwd.rx",
                [("cmd", (lambda cycle, item, c=adapter.cmd_in: c.push(item)), adapter.cmd_in)],
            )
            rev_eg = BridgeEgress(
                rev_id, f"{proxy.name}.rev.tx", cmd_lat, [("resp", adapter.resp_out)]
            )
            rev_in = BridgeIngress(
                rev_id, f"{proxy.name}.rev.rx",
                [("resp", (lambda cycle, item, c=proxy.resp_out: c.push(item)), proxy.resp_out)],
            )
            fwd_eg.peer = fwd_in
            rev_eg.peer = rev_in
            plan.proxies[key] = proxy
            plan.cmd_halves[key] = [
                (fwd_eg, root_part),
                (fwd_in, core_part),
                (rev_eg, core_part),
                (rev_in, root_part),
            ]
            plan.bridges.append(BridgeSpec(fwd_id, fwd_eg, fwd_in, root_part, core_part))
            plan.bridges.append(BridgeSpec(rev_id, rev_eg, rev_in, core_part, root_part))

    return plan


def register_partitioned(design, plan: PartitionPlan, sims) -> None:
    """Mirror ``ElaboratedDesign._register_all`` across the partition sims.

    Every component/channel is registered with exactly one partition's
    simulator, in the same global encounter order as the single-process
    registration (restricted to each partition) — the registered-FIFO channel
    semantics make results independent of tick order, so the restriction
    preserves bit-identity.  Split pipes register their four halves instead
    of the pipe; proxied cores additionally register their command bridge
    halves and the proxy channels (root side).
    """
    part_of_slr = plan.partition_of_slr
    root = sims[0]
    root.add(design.controller)
    root.add(design.monitor)
    for chan in design.mem_mport.port.channels():
        root.register_channel(chan)
    net = design.network
    if net is not None:
        for comp in net.components:
            halves = plan.pipe_halves.get(id(comp))
            if halves is not None:
                for half, part in halves:
                    sims[part].add(half)
            else:
                slr = net.component_slr.get(id(comp))
                part = part_of_slr[slr] if slr is not None else 0
                sims[part].add(comp)
        for port in net.interior_ports:
            slr = net.port_slr.get(id(port))
            part = part_of_slr[slr] if slr is not None else 0
            for chan in port.channels():
                sims[part].register_channel(chan)
    for system in design.systems:
        for ecore in system.cores:
            part = part_of_slr[ecore.slr]
            for comp in ecore.ctx.all_components():
                sims[part].add(comp)
            sims[part].add(ecore.core)
            sims[part].add(ecore.adapter)
            key = (ecore.system_id, ecore.core_id)
            for half, hpart in plan.cmd_halves.get(key, ()):
                sims[hpart].add(half)
            proxy = plan.proxies.get(key)
            if proxy is not None:
                for chan in proxy.channels():
                    root.register_channel(chan)
    for bcast in design._broadcasts:
        part = 0
        for system in design.systems:
            for ecore in system.cores:
                if bcast.name.startswith(ecore.path + "."):
                    part = part_of_slr[ecore.slr]
                    break
        sims[part].add(bcast)
    root.add(design.router)
    root.add(design.mmio)
    _validate_ownership(plan, sims)


def _validate_ownership(plan: PartitionPlan, sims) -> None:
    """No channel may be touched from two partitions.

    Builds the channel -> partition map from what actually got registered,
    then checks every component's wake set (a superset of everything its tick
    reads or probes).  This catches the couplings the cut cannot express —
    intra-core links or broadcasts between cores grouped onto different
    partitions — with a configuration error instead of silent divergence.
    """
    chan_part: Dict[int, int] = {}
    for part, sim in enumerate(sims):
        for chan in sim._channels:
            chan_part.setdefault(id(chan), part)
    for part, sim in enumerate(sims):
        for comp in sim._components:
            for chan in comp.wake_channels():
                owner = chan_part.get(id(chan))
                if owner is not None and owner != part:
                    raise DistError(
                        f"component {comp.name!r} (partition {part}) touches "
                        f"channel {chan.name!r} owned by partition {owner}: "
                        "this coupling crosses the SLR cut (intra-core links "
                        "and broadcasts must stay within one partition group "
                        "— reduce n_workers or co-locate the systems)"
                    )
