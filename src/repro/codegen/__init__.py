"""Host software generation: C++ headers and Python binding objects."""

from repro.codegen.cpp import binding_signature, generate_header, response_struct

__all__ = ["binding_signature", "generate_header", "response_struct"]
