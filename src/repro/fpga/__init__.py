"""FPGA device models, floorplanning, memcell mapping, resource estimation."""

from repro.fpga.device import (
    FpgaDevice,
    ResourceVector,
    make_kria_k26,
    make_vu9p_aws_f1,
)
from repro.fpga.floorplan import (
    FANOUT_HARD_LIMIT,
    Floorplanner,
    Placement,
    RoutabilityReport,
    UTIL_HARD_LIMIT,
    emit_constraints,
    routability_report,
)
from repro.fpga.memcells import (
    MemcellMapper,
    MemcellUsage,
    SPILL_THRESHOLD,
    bram_count,
    uram_count,
)
from repro.fpga.resources import CostModel, ResourceEstimator, clb_for

__all__ = [
    "FpgaDevice",
    "ResourceVector",
    "make_kria_k26",
    "make_vu9p_aws_f1",
    "Floorplanner",
    "Placement",
    "RoutabilityReport",
    "emit_constraints",
    "routability_report",
    "UTIL_HARD_LIMIT",
    "FANOUT_HARD_LIMIT",
    "MemcellMapper",
    "MemcellUsage",
    "SPILL_THRESHOLD",
    "bram_count",
    "uram_count",
    "CostModel",
    "ResourceEstimator",
    "clb_for",
]
