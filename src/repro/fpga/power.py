"""FPGA power estimation.

A simple activity-based model: static power plus per-resource dynamic power
proportional to the clock.  Coefficients are calibrated so the paper's
23-core A^3 design (~887 K LUTs, ~1.3 K memory tiles at 250 MHz on a VU9P)
lands at its reported ~24 W average — the same anchoring a vendor power
estimator gets from its device characterisation tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.device import ResourceVector

#: Watts of static power for a VU9P-class device.
STATIC_W = 5.5
#: Dynamic watts per LUT per MHz (toggle-rate-averaged).
LUT_W_PER_MHZ = 6.4e-8
#: Dynamic watts per memory tile (BRAM or URAM) per MHz.
MEMTILE_W_PER_MHZ = 9.0e-6
#: Dynamic watts per flip-flop per MHz.
REG_W_PER_MHZ = 6.0e-9


@dataclass(frozen=True)
class PowerEstimate:
    static_w: float
    dynamic_w: float

    @property
    def total_w(self) -> float:
        return self.static_w + self.dynamic_w


def estimate_power(used: ResourceVector, clock_mhz: float) -> PowerEstimate:
    dynamic = clock_mhz * (
        LUT_W_PER_MHZ * used.lut
        + REG_W_PER_MHZ * used.reg
        + MEMTILE_W_PER_MHZ * (used.bram + used.uram)
    )
    return PowerEstimate(STATIC_W, dynamic)
