"""FPGA resource estimation for generated designs.

The estimator prices every component the elaborator creates.  The per-
primitive cost formulas are linear models in the primitive's parameters
(port width, AXI IDs in flight, fanout, ...) with coefficients calibrated
against the paper's Table II breakdown of the 23-core A^3 design — so the
model exercises the same accounting code paths (per-core, per-interconnect,
per-SLR) the paper reports, and reproduces its totals to first order.

CLB counts are derived from LUT/FF demand: an UltraScale+ CLB holds 8 LUTs
and 16 flip-flops, but placed designs never pack perfectly; Table II implies
an achieved packing of ~7 LUTs per CLB on the A^3 design, which we adopt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fpga.device import ResourceVector

LUTS_PER_CLB = 7.3
REGS_PER_CLB = 14.6


def clb_for(lut: float, reg: float) -> float:
    return max(lut / LUTS_PER_CLB, reg / REGS_PER_CLB)


def _vec(lut: float, reg: float, bram: float = 0.0, uram: float = 0.0) -> ResourceVector:
    return ResourceVector(clb=clb_for(lut, reg), lut=lut, reg=reg, bram=bram, uram=uram)


@dataclass(frozen=True)
class CostModel:
    """Calibratable coefficients for the per-primitive cost formulas."""

    # Reader: control FSM + per-byte datapath + per-in-flight tracking.
    reader_base_lut: float = 900.0
    reader_lut_per_byte: float = 18.0
    reader_lut_per_inflight: float = 60.0
    reader_base_reg: float = 1_100.0
    reader_reg_per_byte: float = 20.0
    # Writer: smaller FSM (no reorder tracking).
    writer_base_lut: float = 500.0
    writer_lut_per_byte: float = 16.0
    writer_base_reg: float = 650.0
    writer_reg_per_byte: float = 18.0
    # Scratchpad control (cells are priced by the memcell mapper).
    scratchpad_base_lut: float = 300.0
    scratchpad_lut_per_port: float = 90.0
    scratchpad_base_reg: float = 250.0
    # NoC: an N-to-1 buffer node muxes five channels of the full bus width.
    node_lut_per_up_per_byte: float = 2.0
    node_base_lut: float = 450.0
    node_reg_per_byte: float = 1.2
    pipe_reg_per_byte_per_stage: float = 9.0
    # Command plumbing.
    adapter_lut: float = 350.0
    adapter_reg: float = 420.0
    mmio_lut: float = 2_500.0
    mmio_reg: float = 3_000.0
    router_lut_per_core: float = 120.0
    router_reg_per_core: float = 150.0


class ResourceEstimator:
    """Prices components and aggregates per-core / interconnect / totals."""

    def __init__(self, model: Optional[CostModel] = None) -> None:
        self.model = model or CostModel()

    # ----------------------------------------------------------- primitives
    def reader(self, data_bytes: int, max_in_flight: int, n_axi_ids: int) -> ResourceVector:
        m = self.model
        lut = (
            m.reader_base_lut
            + m.reader_lut_per_byte * data_bytes
            + m.reader_lut_per_inflight * (max_in_flight + n_axi_ids)
        )
        reg = m.reader_base_reg + m.reader_reg_per_byte * data_bytes
        return _vec(lut, reg)

    def writer(self, data_bytes: int, max_in_flight: int) -> ResourceVector:
        m = self.model
        lut = m.writer_base_lut + m.writer_lut_per_byte * data_bytes + 40.0 * max_in_flight
        reg = m.writer_base_reg + m.writer_reg_per_byte * data_bytes
        return _vec(lut, reg)

    def scratchpad_logic(self, n_ports: int, width_bits: int) -> ResourceVector:
        m = self.model
        lut = m.scratchpad_base_lut + m.scratchpad_lut_per_port * n_ports + width_bits * 0.8
        reg = m.scratchpad_base_reg + width_bits * 1.2 * n_ports
        return _vec(lut, reg)

    def noc_node(self, n_upstreams: int, beat_bytes: int) -> ResourceVector:
        m = self.model
        lut = m.node_base_lut + m.node_lut_per_up_per_byte * n_upstreams * beat_bytes * 8
        reg = m.node_reg_per_byte * beat_bytes * 8
        return _vec(lut, reg)

    def slr_pipe(self, beat_bytes: int, stages: int) -> ResourceVector:
        reg = self.model.pipe_reg_per_byte_per_stage * beat_bytes * 8 * max(stages, 1)
        return _vec(reg * 0.05, reg)

    def command_adapter(self) -> ResourceVector:
        return _vec(self.model.adapter_lut, self.model.adapter_reg)

    def mmio_frontend(self, n_cores: int) -> ResourceVector:
        m = self.model
        lut = m.mmio_lut + m.router_lut_per_core * n_cores
        reg = m.mmio_reg + m.router_reg_per_core * n_cores
        return _vec(lut, reg)

    def memory_cells(self, kind: str, count: int) -> ResourceVector:
        if kind == "BRAM":
            return ResourceVector(bram=count)
        if kind == "URAM":
            return ResourceVector(uram=count)
        if kind == "LUTRAM":
            # Distributed RAM burns LUTs: 64 bits per LUT6 as RAM64X1.
            return _vec(count / 64.0, 0.0)
        raise ValueError(f"unknown memory cell kind {kind!r}")
