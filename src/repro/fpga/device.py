"""FPGA device models: per-SLR resource inventories and shell footprints.

The numbers for the VU9P (Alveo U200 / AWS F1) are the public device totals
split evenly over its three SLRs; the AWS F1 shell footprint is calibrated
from the paper's Table II (total-with-shell minus Beethoven-only rows) and is
anchored to SLR0/SLR1, which is what motivated Beethoven's per-SLR placement
affinity in the A^3 case study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ResourceVector:
    """CLB/LUT/FF/BRAM36/URAM amounts (absolute counts)."""

    clb: float = 0.0
    lut: float = 0.0
    reg: float = 0.0
    bram: float = 0.0
    uram: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.clb + other.clb,
            self.lut + other.lut,
            self.reg + other.reg,
            self.bram + other.bram,
            self.uram + other.uram,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.clb - other.clb,
            self.lut - other.lut,
            self.reg - other.reg,
            self.bram - other.bram,
            self.uram - other.uram,
        )

    def scaled(self, k: float) -> "ResourceVector":
        return ResourceVector(
            self.clb * k, self.lut * k, self.reg * k, self.bram * k, self.uram * k
        )

    def fits_in(self, capacity: "ResourceVector") -> bool:
        return (
            self.clb <= capacity.clb
            and self.lut <= capacity.lut
            and self.reg <= capacity.reg
            and self.bram <= capacity.bram
            and self.uram <= capacity.uram
        )

    def utilisation_of(self, capacity: "ResourceVector") -> Dict[str, float]:
        out = {}
        for key in ("clb", "lut", "reg", "bram", "uram"):
            cap = getattr(capacity, key)
            out[key] = getattr(self, key) / cap if cap else 0.0
        return out

    def max_utilisation_of(self, capacity: "ResourceVector") -> float:
        return max(self.utilisation_of(capacity).values())


@dataclass
class FpgaDevice:
    """A (possibly multi-die) FPGA."""

    name: str
    slr_capacity: List[ResourceVector]
    shell_usage: Dict[int, ResourceVector] = field(default_factory=dict)
    memory_interface_slr: int = 0
    host_interface_slr: int = 0

    @property
    def n_slrs(self) -> int:
        return len(self.slr_capacity)

    def total_capacity(self) -> ResourceVector:
        total = ResourceVector()
        for cap in self.slr_capacity:
            total = total + cap
        return total

    def free_capacity(self, slr: int) -> ResourceVector:
        cap = self.slr_capacity[slr]
        shell = self.shell_usage.get(slr, ResourceVector())
        return cap - shell


def _vu9p_slr() -> ResourceVector:
    # VU9P totals: ~1182k LUT, 2364k FF, 2160 BRAM36, 960 URAM, ~147k CLB.
    return ResourceVector(clb=49_260, lut=394_080, reg=788_160, bram=720, uram=320)


def make_vu9p_aws_f1() -> FpgaDevice:
    """The Alveo U200 / AWS F1 target with the F1 shell pre-placed.

    Shell footprint ≈ Table II (total w/ shell − Beethoven rows):
    ~31K CLB, 150K LUT, 206K FF, 140 BRAM, 43 URAM, split 70/30 over
    SLR0/SLR1 (the shell's fixed regions).
    """
    shell = ResourceVector(clb=31_000, lut=150_000, reg=206_000, bram=140, uram=43)
    return FpgaDevice(
        name="xcvu9p",
        slr_capacity=[_vu9p_slr(), _vu9p_slr(), _vu9p_slr()],
        shell_usage={0: shell.scaled(0.7), 1: shell.scaled(0.3)},
        memory_interface_slr=0,
        host_interface_slr=0,
    )


def make_multi_die(n_slrs: int, name: str = "") -> FpgaDevice:
    """A synthetic ``n_slrs``-die device of VU9P-class SLRs.

    Interfaces stay on SLR0 (the common Alveo arrangement), so every other
    die reaches memory through an SLR-crossing pipe — the topology the
    sharded-simulation benchmarks partition along.
    """
    if n_slrs < 1:
        raise ValueError("a device needs at least one SLR")
    return FpgaDevice(
        name=name or f"multi-die-{n_slrs}",
        slr_capacity=[_vu9p_slr() for _ in range(n_slrs)],
        memory_interface_slr=0,
        host_interface_slr=0,
    )


def make_kria_k26() -> FpgaDevice:
    """The Kria KV260 (Zynq UltraScale+ K26 SOM): a single-die device."""
    return FpgaDevice(
        name="xck26",
        slr_capacity=[
            ResourceVector(clb=14_616, lut=116_928, reg=233_856, bram=144, uram=64)
        ],
        shell_usage={0: ResourceVector(clb=1_200, lut=8_000, reg=12_000, bram=4, uram=0)},
    )
