"""SLR-aware floorplanning and the routability/timing feasibility model.

Beethoven places accelerator cores across SLRs before elaborating networks,
emits placement constraint files, and uses the placement to buffer SLR
crossings (Section II-B).  The floorplanner here is the greedy load balancer
that produced the paper's Figure 8 shape: cores go to the SLR with the lowest
projected worst-resource utilisation, which naturally biases cores away from
the shell-occupied SLR0/SLR1.

Because we have no Vivado, routing feasibility is a model:
:func:`routability_report` scores a placed design on the failure modes the
paper encountered — CLB over-utilisation, interconnect fanout congestion and
unbuffered die crossings — and reports pass/fail the way a timing run would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fpga.device import FpgaDevice, ResourceVector

#: Above this worst-resource utilisation a placement is unroutable.
UTIL_HARD_LIMIT = 0.97
#: Above this fanout a single arbiter is congestion-infeasible.
FANOUT_HARD_LIMIT = 24


@dataclass
class Placement:
    """Result of floorplanning: core -> SLR plus per-SLR loads."""

    assignment: Dict[str, int] = field(default_factory=dict)
    slr_load: Dict[int, ResourceVector] = field(default_factory=dict)

    def cores_on(self, slr: int) -> List[str]:
        return [name for name, s in self.assignment.items() if s == slr]


class Floorplanner:
    """Greedy worst-utilisation-balancing placer.

    ``reserve_fraction`` holds back capacity on every SLR for the networks
    that are elaborated *after* placement (memory tree nodes, command
    routing, SLR bridge buffering).
    """

    def __init__(self, device: FpgaDevice, reserve_fraction: float = 0.10) -> None:
        self.device = device
        self.reserve_fraction = reserve_fraction

    def _budget(self, slr: int) -> ResourceVector:
        return self.device.free_capacity(slr).scaled(1.0 - self.reserve_fraction)

    def place(self, cores: Sequence[Tuple[str, ResourceVector]]) -> Placement:
        """Assign each (name, resource) core to an SLR."""
        placement = Placement()
        for slr in range(self.device.n_slrs):
            placement.slr_load[slr] = ResourceVector()
        for name, vec in cores:
            best_slr, best_util = None, None
            for slr in range(self.device.n_slrs):
                projected = placement.slr_load[slr] + vec
                util = projected.max_utilisation_of(self._budget(slr))
                if best_util is None or util < best_util:
                    best_slr, best_util = slr, util
            placement.assignment[name] = best_slr
            placement.slr_load[best_slr] = placement.slr_load[best_slr] + vec
        return placement

    def utilisation(self, placement: Placement) -> Dict[int, Dict[str, float]]:
        out = {}
        for slr in range(self.device.n_slrs):
            free = self.device.free_capacity(slr)
            out[slr] = placement.slr_load[slr].utilisation_of(free)
        return out


def emit_constraints(placement: Placement, device: FpgaDevice) -> str:
    """Emit an XDC-style placement constraint file for the design."""
    lines = [
        f"# Placement constraints generated for {device.name}",
        "# (Beethoven reproduction — pblock per SLR)",
    ]
    for slr in range(device.n_slrs):
        lines.append(f"create_pblock pblock_slr{slr}")
        lines.append(
            f"resize_pblock pblock_slr{slr} -add SLR{slr}"
        )
    for name in sorted(placement.assignment):
        slr = placement.assignment[name]
        lines.append(
            f"add_cells_to_pblock pblock_slr{slr} [get_cells {name}]"
        )
    return "\n".join(lines) + "\n"


@dataclass
class RoutabilityReport:
    """Outcome of the feasibility model for one placed design."""

    feasible: bool
    score: float  # 1.0 = comfortable, 0.0 = hopeless
    reasons: List[str] = field(default_factory=list)
    worst_util: float = 0.0
    max_fanout: int = 0
    unbuffered_crossings: int = 0


def routability_report(
    device: FpgaDevice,
    placement: Placement,
    interconnect_per_slr: Optional[Dict[int, ResourceVector]] = None,
    max_fanout: int = 0,
    unbuffered_crossings: int = 0,
    memcells_feasible: bool = True,
    constraints_emitted: bool = True,
) -> RoutabilityReport:
    """Score a placed design against the paper's observed failure modes."""
    reasons: List[str] = []
    worst = 0.0
    for slr in range(device.n_slrs):
        free = device.free_capacity(slr)
        load = placement.slr_load.get(slr, ResourceVector())
        if interconnect_per_slr:
            load = load + interconnect_per_slr.get(slr, ResourceVector())
        util = load.max_utilisation_of(free)
        worst = max(worst, util)
        if util > UTIL_HARD_LIMIT:
            reasons.append(f"SLR{slr} over-utilised ({util:.1%})")
        if util > 1.0:
            reasons.append(f"SLR{slr} demand exceeds capacity ({util:.1%})")
    if max_fanout > FANOUT_HARD_LIMIT:
        reasons.append(
            f"arbiter fanout {max_fanout} exceeds congestion limit {FANOUT_HARD_LIMIT}"
        )
    if unbuffered_crossings > 0:
        reasons.append(
            f"{unbuffered_crossings} unbuffered SLR crossings fail timing"
        )
    if not memcells_feasible:
        reasons.append("on-chip memory demand exceeds BRAM+URAM supply")
    if not constraints_emitted and device.n_slrs > 1:
        # The paper: the same RTL without placement constraints consistently
        # yielded poorer QoR and failed timing.
        reasons.append("multi-die design without placement constraints")
    score = max(0.0, 1.0 - worst) * (0.3 if reasons else 1.0)
    return RoutabilityReport(
        feasible=not reasons,
        score=score,
        reasons=reasons,
        worst_util=worst,
        max_fanout=max_fanout,
        unbuffered_crossings=unbuffered_crossings,
    )
