"""On-chip memory cell mapping with the per-SLR 80% spill rule.

FPGA on-chip memories come in fixed shapes — BRAM36 tiles (36 Kb, up to 72 b
wide at 512 deep) and URAM tiles (288 Kb, fixed 72 b x 4096).  Beethoven's
Xilinx backend monitors per-SLR utilisation of each cell type during RTL
generation and maps each requested memory to the most efficient type, but
spills to the other type once the preferred one exceeds 80% utilisation on
that SLR (Section II-B).  The paper's A^3 design shows the effect: identical
Value scratchpads implemented as 15 BRAMs in some cores and 16 URAMs in
others, which is what let a 96%-CLB design route at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.fpga.device import FpgaDevice
from repro.hdl.ir import HdlMemory

BRAM_BITS = 36 * 1024
BRAM_MAX_WIDTH = 72
BRAM_BASE_DEPTH = 512
URAM_BITS = 288 * 1024
URAM_WIDTH = 72
URAM_DEPTH = 4096
LUTRAM_MAX_BITS = 1024  # below this we use distributed RAM

SPILL_THRESHOLD = 0.80


def bram_count(width_bits: int, depth: int) -> int:
    """BRAM36 tiles needed, allowing width/depth cascading.

    A BRAM36 offers width x depth trade-offs (72x512, 36x1024, 18x2048,
    9x4096, ...).  We pick the aspect that minimises tile count.  Dual-port
    behaviour is native, so port count does not change the tile count for
    the 1R1W memories Beethoven generates.
    """
    best = None
    width_cfg = BRAM_MAX_WIDTH
    depth_cfg = BRAM_BASE_DEPTH
    while width_cfg >= 1:
        tiles = -(-width_bits // width_cfg) * -(-depth // depth_cfg)
        if best is None or tiles < best:
            best = tiles
        width_cfg //= 2
        depth_cfg *= 2
    return max(best, 1)


def uram_count(width_bits: int, depth: int) -> int:
    """URAM tiles needed (fixed 72 x 4096 geometry, cascadable)."""
    return max(-(-width_bits // URAM_WIDTH) * -(-depth // URAM_DEPTH), 1)


@dataclass
class MemcellUsage:
    bram: int = 0
    uram: int = 0
    lutram_bits: int = 0


@dataclass
class MemcellMapper:
    """Per-SLR stateful mapper applying the preference + spill policy."""

    device: FpgaDevice
    spill_threshold: float = SPILL_THRESHOLD
    spill_enabled: bool = True
    usage: Dict[int, MemcellUsage] = field(default_factory=dict)
    spills: int = 0
    infeasible: List[str] = field(default_factory=list)

    def _usage(self, slr: int) -> MemcellUsage:
        return self.usage.setdefault(slr, MemcellUsage())

    def _util(self, slr: int, kind: str, extra: int) -> float:
        cap = getattr(self.device.free_capacity(slr), kind)
        if cap <= 0:
            return float("inf")
        used = getattr(self._usage(slr), kind)
        return (used + extra) / cap

    def preferred_kind(self, mem: HdlMemory) -> str:
        """The natural cell for this memory shape, ignoring utilisation."""
        if mem.bits <= LUTRAM_MAX_BITS:
            return "LUTRAM"
        n_bram = bram_count(mem.width_bits, mem.depth)
        n_uram = uram_count(mem.width_bits, mem.depth)
        # Efficiency: bits wasted per implementing tile set; ties break
        # toward fewer tiles (less cascading logic and routing).
        bram_waste = n_bram * BRAM_BITS - mem.bits
        uram_waste = n_uram * URAM_BITS - mem.bits
        if bram_waste == uram_waste:
            return "BRAM" if n_bram <= n_uram else "URAM"
        return "BRAM" if bram_waste < uram_waste else "URAM"

    def map_memory(self, mem: HdlMemory, slr: int, path: str = "") -> str:
        """Choose and record a cell mapping for ``mem`` on ``slr``.

        Returns the mapping kind and annotates ``mem.cell_mapping``.
        """
        kind = self.preferred_kind(mem)
        if kind == "LUTRAM":
            self._usage(slr).lutram_bits += mem.bits
            mem.cell_mapping = "LUTRAM"
            return "LUTRAM"
        n_bram = bram_count(mem.width_bits, mem.depth)
        n_uram = uram_count(mem.width_bits, mem.depth)
        order = ["BRAM", "URAM"] if kind == "BRAM" else ["URAM", "BRAM"]
        if self.spill_enabled:
            primary = order[0]
            count = n_bram if primary == "BRAM" else n_uram
            if self._util(slr, primary.lower(), count) > self.spill_threshold:
                order.reverse()
                self.spills += 1
        chosen = order[0]
        count = n_bram if chosen == "BRAM" else n_uram
        if self._util(slr, chosen.lower(), count) > 1.0:
            # Preferred (possibly post-spill) type is exhausted; with the
            # spill rule we may fall through to the other type, otherwise
            # the naive flow simply fails to place the memory.
            other = order[1]
            other_count = n_bram if other == "BRAM" else n_uram
            if self.spill_enabled and self._util(slr, other.lower(), other_count) <= 1.0:
                chosen, count = other, other_count
            else:
                self.infeasible.append(path or mem.name)
        usage = self._usage(slr)
        if chosen == "BRAM":
            usage.bram += count
        else:
            usage.uram += count
        mem.cell_mapping = chosen
        return chosen

    def counts(self, mem: HdlMemory) -> Dict[str, int]:
        return {
            "BRAM": bram_count(mem.width_bits, mem.depth),
            "URAM": uram_count(mem.width_bits, mem.depth),
        }

    @property
    def feasible(self) -> bool:
        return not self.infeasible

    def total_usage(self) -> MemcellUsage:
        total = MemcellUsage()
        for u in self.usage.values():
            total.bram += u.bram
            total.uram += u.uram
            total.lutram_bits += u.lutram_bits
        return total
