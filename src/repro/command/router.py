"""Command/response routing fabric and the per-core command adapter.

The MMIO frontend turns host register writes into RoCC instructions; the
router delivers them to the addressed (system, core) with an SLR-aware
latency; the per-core adapter reassembles multi-chunk custom commands,
presents decoded commands on the core's ``BeethovenIO`` queues and packs core
responses back into RoCC responses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Tuple

from repro.command.packing import CommandSpec, ResponseSpec
from repro.command.rocc import RoccInstruction, RoccResponse
from repro.sim import NEVER, ChannelQueue, Component, SimulationError


class BeethovenIO:
    """One named command/response interface of a core (paper Figure 2).

    The core pops decoded commands (dicts of field values) from ``req`` and
    pushes response dicts into ``resp``.
    """

    def __init__(
        self,
        command: CommandSpec,
        response: ResponseSpec,
        depth: int = 2,
        owner: str = "",
    ) -> None:
        self.command_spec = command
        self.response_spec = response
        # The owner prefix keeps channel (and metric) names unique per core;
        # without it every core's "io.<cmd>.req" would collide in the registry.
        stem = f"io.{owner}.{command.name}" if owner else f"io.{command.name}"
        self.req: ChannelQueue[dict] = ChannelQueue(depth, f"{stem}.req")
        self.resp: ChannelQueue[dict] = ChannelQueue(depth, f"{stem}.resp")


class CoreCommandAdapter(Component):
    """Command unpacker + response packer sitting next to one core."""

    def __init__(
        self,
        system_id: int,
        core_id: int,
        ios: List[BeethovenIO],
        addr_bits: int,
        name: str = "cmdadapt",
    ) -> None:
        super().__init__(f"{name}.{system_id}.{core_id}")
        self.system_id = system_id
        self.core_id = core_id
        self.ios = ios
        self.addr_bits = addr_bits
        self.cmd_in: ChannelQueue[RoccInstruction] = ChannelQueue(4, f"{self.name}.in")
        self.resp_out: ChannelQueue[RoccResponse] = ChannelQueue(4, f"{self.name}.out")
        self._chunks: Dict[int, List[Tuple[int, int]]] = {}
        self._pending_rd: List[Deque[int]] = [deque() for _ in ios]
        self.commands_delivered = 0
        self.responses_packed = 0
        # Optional CommandSpanTracker: delivery/response are the lifecycle
        # hooks that bracket a command's "execute" span.
        self.spans = None

    @property
    def metric_path(self) -> str:
        return "cmd/" + self.name.replace(".", "/")

    def register_metrics(self, scope) -> None:
        scope.bind("commands_delivered", lambda: self.commands_delivered)
        scope.bind("responses_packed", lambda: self.responses_packed)

    def channels(self):
        chans = [self.cmd_in, self.resp_out]
        for io in self.ios:
            chans += [io.req, io.resp]
        return chans

    def tick(self, cycle: int) -> None:
        self._unpack(cycle)
        self._pack_responses(cycle)

    def next_event(self, cycle: int) -> float:
        return NEVER  # purely reactive: unpack/pack both pop channel items

    #: Constant-NEVER hint — lets the compiled scheduler skip the hint call.
    wake_only = True

    def compile_tick(self):
        """Specialised tick: phase guards inlined so an idle adapter wake
        (the common case — commands are rare events) costs two comparisons."""
        cmd_in = self.cmd_in
        resp_out = self.resp_out
        ios = self.ios
        pending = self._pending_rd
        unpack = self._unpack
        pack = self._pack_responses

        def tick(cycle):
            if cmd_in._pop_count < len(cmd_in._items):
                unpack(cycle)
            if len(resp_out._items) + len(resp_out._staged) < resp_out.capacity:
                for idx, io in enumerate(ios):
                    resp = io.resp
                    if resp._pop_count < len(resp._items) and pending[idx]:
                        pack(cycle)
                        break

        return tick

    def _unpack(self, cycle: int) -> None:
        if not self.cmd_in.can_pop():
            return
        inst = self.cmd_in.peek()
        io_idx = inst.funct7
        if io_idx >= len(self.ios):
            raise SimulationError(
                f"{self.name}: command for unknown IO index {io_idx}"
            )
        io = self.ios[io_idx]
        expected = io.command_spec.n_chunks(self.addr_bits)
        got = self._chunks.setdefault(io_idx, [])
        if len(got) + 1 < expected:
            self.cmd_in.pop()
            got.append((inst.rs1, inst.rs2))
            return
        # Final chunk: only consume when the core can accept the command.
        if not io.req.can_push():
            return
        self.cmd_in.pop()
        got.append((inst.rs1, inst.rs2))
        values = io.command_spec.unpack(got, self.addr_bits)
        self._chunks[io_idx] = []
        io.req.push(values)
        self.commands_delivered += 1
        if self.spans is not None:
            self.spans.delivered(cycle, (self.system_id, self.core_id))
        if inst.xd:
            self._pending_rd[io_idx].append(inst.rd)

    def _pack_responses(self, cycle: int) -> None:
        if not self.resp_out.can_push():
            return
        for idx, io in enumerate(self.ios):
            if io.resp.can_pop() and self._pending_rd[idx]:
                values = io.resp.pop()
                rd = self._pending_rd[idx].popleft()
                data = io.response_spec.pack(values) if io.response_spec.fields else 0
                self.resp_out.push(
                    RoccResponse(self.system_id, self.core_id, rd, data)
                )
                self.responses_packed += 1
                if self.spans is not None:
                    self.spans.response_sent(
                        cycle, (self.system_id, self.core_id)
                    )
                return


@dataclass
class _RouteEntry:
    adapter: CoreCommandAdapter
    latency: int


class CommandRouter(Component):
    """Routes RoCC instructions to core adapters and responses back.

    Beethoven builds SLR-aware command networks; we model the network's
    *effect* — per-destination pipeline latency proportional to SLR distance
    plus tree depth — while the structural cost is priced by the FPGA
    resource model.
    """

    def __init__(self, name: str = "cmdrouter") -> None:
        super().__init__(name)
        self.cmd_in: ChannelQueue[RoccInstruction] = ChannelQueue(4, f"{name}.cmd")
        self.resp_out: ChannelQueue[RoccResponse] = ChannelQueue(4, f"{name}.resp")
        self._routes: Dict[Tuple[int, int], _RouteEntry] = {}
        self._cmd_delay: Deque[Tuple[int, RoccInstruction]] = deque()
        self._resp_delay: Deque[Tuple[int, RoccResponse]] = deque()
        self._resp_rr = 0
        self.commands_routed = 0
        self.responses_routed = 0

    @property
    def metric_path(self) -> str:
        return "cmd/" + self.name.replace(".", "/")

    def register_metrics(self, scope) -> None:
        scope.bind("commands_routed", lambda: self.commands_routed)
        scope.bind("responses_routed", lambda: self.responses_routed)
        scope.bind("cmd_delay_depth", lambda: len(self._cmd_delay))
        scope.bind("resp_delay_depth", lambda: len(self._resp_delay))

    def attach(self, adapter: CoreCommandAdapter, latency: int = 2) -> None:
        key = (adapter.system_id, adapter.core_id)
        if key in self._routes:
            raise ValueError(f"duplicate route for {key}")
        self._routes[key] = _RouteEntry(adapter, latency)

    def tick(self, cycle: int) -> None:
        # Ingest one command per cycle into the delay line.
        if self.cmd_in.can_pop():
            inst = self.cmd_in.peek()
            entry = self._routes.get((inst.system_id, inst.core_id))
            if entry is None:
                raise SimulationError(
                    f"{self.name}: command for unknown core "
                    f"({inst.system_id}, {inst.core_id})"
                )
            self.cmd_in.pop()
            self._cmd_delay.append((cycle + entry.latency, inst))
        # Deliver matured commands.
        if self._cmd_delay:
            ready_at, inst = self._cmd_delay[0]
            entry = self._routes[(inst.system_id, inst.core_id)]
            if ready_at <= cycle and entry.adapter.cmd_in.can_push():
                self._cmd_delay.popleft()
                entry.adapter.cmd_in.push(inst)
                self.commands_routed += 1
        # Collect one response per cycle, round-robin over cores.
        adapters = list(self._routes.values())
        if adapters:
            for k in range(len(adapters)):
                entry = adapters[(self._resp_rr + k) % len(adapters)]
                if entry.adapter.resp_out.can_pop():
                    resp = entry.adapter.resp_out.pop()
                    self._resp_delay.append((cycle + entry.latency, resp))
                    self._resp_rr = (self._resp_rr + k + 1) % len(adapters)
                    break
        if self._resp_delay and self._resp_delay[0][0] <= cycle and self.resp_out.can_push():
            self.resp_out.push(self._resp_delay.popleft()[1])
            self.responses_routed += 1

    def next_event(self, cycle: int) -> float:
        """Sleep until the head of either delay line matures; ingest and
        response collection are channel-reactive."""
        nxt = NEVER
        if self._cmd_delay:
            nxt = min(nxt, max(cycle, self._cmd_delay[0][0]))
        if self._resp_delay:
            nxt = min(nxt, max(cycle, self._resp_delay[0][0]))
        return nxt

    def wake_channels(self):
        # Besides its own queues, the router pushes into every adapter's
        # cmd_in (freed space there unblocks delivery) and pops every
        # adapter's resp_out (new responses there need collecting).
        chans = [self.cmd_in, self.resp_out]
        for entry in self._routes.values():
            chans.append(entry.adapter.cmd_in)
            chans.append(entry.adapter.resp_out)
        return chans

    def compile_tick(self):
        """Specialised tick: the adapter list is cached (rebuilt only when a
        route is attached) and the four phases carry inline guards; the
        round-robin response sweep only runs when some adapter has a
        response pending."""
        cmd_in = self.cmd_in
        resp_out = self.resp_out
        routes = self._routes
        cmd_delay = self._cmd_delay
        resp_delay = self._resp_delay
        state = {"n": len(routes), "adapters": list(routes.values())}

        def tick(cycle, self=self):
            if len(routes) != state["n"]:
                state["n"] = len(routes)
                state["adapters"] = list(routes.values())
            if cmd_in._pop_count < len(cmd_in._items):
                inst = cmd_in._items[cmd_in._pop_count]
                entry = routes.get((inst.system_id, inst.core_id))
                if entry is None:
                    raise SimulationError(
                        f"{self.name}: command for unknown core "
                        f"({inst.system_id}, {inst.core_id})"
                    )
                cmd_in.pop()
                cmd_delay.append((cycle + entry.latency, inst))
            if cmd_delay:
                ready_at, inst = cmd_delay[0]
                entry = routes[(inst.system_id, inst.core_id)]
                target = entry.adapter.cmd_in
                if ready_at <= cycle and (
                    len(target._items) + len(target._staged) < target.capacity
                ):
                    cmd_delay.popleft()
                    target.push(inst)
                    self.commands_routed += 1
            adapters = state["adapters"]
            n = len(adapters)
            if n:
                rr = self._resp_rr
                for k in range(n):
                    i = rr + k
                    if i >= n:
                        i -= n
                    entry = adapters[i]
                    source = entry.adapter.resp_out
                    if source._pop_count < len(source._items):
                        resp = source.pop()
                        resp_delay.append((cycle + entry.latency, resp))
                        self._resp_rr = (rr + k + 1) % n
                        break
            if resp_delay and resp_delay[0][0] <= cycle and (
                len(resp_out._items) + len(resp_out._staged) < resp_out.capacity
            ):
                resp_out.push(resp_delay.popleft()[1])
                self.responses_routed += 1

        return tick


class MmioFrontend(Component):
    """The AXI-MMIO command/response system (paper Figure 1a).

    The host (runtime model) writes 32-bit words into the command FIFO and
    polls the response FIFO; the frontend reassembles RoCC instructions and
    feeds the router.  ``mmio_word_cycles`` models the cost of one MMIO
    register access as seen from the fabric side.
    """

    # Optional fault injector (repro.faults): may eat whole responses off the
    # MMIO path, modelling a lost interrupt/register read on real hardware.
    _fault = None

    def __init__(self, router: CommandRouter, name: str = "mmio") -> None:
        super().__init__(name)
        self.router = router
        self.cmd_words: ChannelQueue[int] = ChannelQueue(16, f"{name}.cmdw")
        self.resp_words: ChannelQueue[int] = ChannelQueue(16, f"{name}.respw")
        self._partial: List[int] = []
        self.commands_forwarded = 0
        self.responses_forwarded = 0

    @property
    def metric_path(self) -> str:
        return "cmd/" + self.name.replace(".", "/")

    def register_metrics(self, scope) -> None:
        scope.bind("commands_forwarded", lambda: self.commands_forwarded)
        scope.bind("responses_forwarded", lambda: self.responses_forwarded)

    def tick(self, cycle: int) -> None:
        if self.cmd_words.can_pop() and self.router.cmd_in.can_push():
            self._partial.append(self.cmd_words.pop())
            if len(self._partial) == 6:
                self.router.cmd_in.push(RoccInstruction.decode_words(self._partial))
                self._partial.clear()
                self.commands_forwarded += 1
        if self.router.resp_out.can_pop() and self.resp_words.can_push(4):
            resp = self.router.resp_out.pop()
            hook = self._fault
            if hook is not None and hook.drop_response(cycle, resp):
                return  # response lost; the server's watchdog must recover
            for word in resp.encode_words():
                self.resp_words.push(word)
            self.responses_forwarded += 1

    def next_event(self, cycle: int) -> float:
        return NEVER  # purely reactive: word assembly and response encode pop channels

    #: Constant-NEVER hint — lets the compiled scheduler skip the hint call.
    wake_only = True

    def wake_channels(self):
        # Bridges its own word FIFOs to the router's instruction queues.
        return [self.cmd_words, self.resp_words, self.router.cmd_in, self.router.resp_out]
