"""Host-to-accelerator command subsystem (RoCC over MMIO)."""

from repro.command.packing import (
    ADDRESS_WIDTH,
    Address,
    CommandSpec,
    EmptyAccelResponse,
    Field,
    Float32,
    ResponseSpec,
    UInt,
)
from repro.command.rocc import CUSTOM_0, RoccInstruction, RoccResponse
from repro.command.router import (
    BeethovenIO,
    CommandRouter,
    CoreCommandAdapter,
    MmioFrontend,
)

__all__ = [
    "ADDRESS_WIDTH",
    "Address",
    "CommandSpec",
    "EmptyAccelResponse",
    "Field",
    "Float32",
    "ResponseSpec",
    "UInt",
    "CUSTOM_0",
    "RoccInstruction",
    "RoccResponse",
    "BeethovenIO",
    "CommandRouter",
    "CoreCommandAdapter",
    "MmioFrontend",
]
