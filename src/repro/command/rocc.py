"""RoCC instruction format (RocketChip custom co-processor extension).

Beethoven delivers host commands in the RoCC format so generated accelerators
can also drop into RISC-V systems with RoCC ports.  One RoCC command carries
an instruction word (opcode, funct7, register specifiers) plus two 64-bit
source register payloads; responses carry a destination register and one
64-bit payload.  Wider custom commands are transparently split over several
RoCC instructions by :mod:`repro.command.packing`.
"""

from __future__ import annotations

from dataclasses import dataclass

CUSTOM_0 = 0b0001011  # RISC-V custom-0 opcode, the RoCC default

#: funct7 sub-fields Beethoven uses for routing/segmenting custom commands.
FUNCT7_BITS = 7
PAYLOAD_BITS = 128  # rs1 + rs2


@dataclass(frozen=True)
class RoccInstruction:
    """One RoCC command as delivered to the accelerator fabric."""

    system_id: int
    core_id: int
    funct7: int
    rs1: int
    rs2: int
    xd: bool = False  # does the host expect a response?
    rd: int = 0
    opcode: int = CUSTOM_0

    def __post_init__(self) -> None:
        if not 0 <= self.funct7 < (1 << FUNCT7_BITS):
            raise ValueError(f"funct7 {self.funct7} out of range")
        if not 0 <= self.rs1 < (1 << 64) or not 0 <= self.rs2 < (1 << 64):
            raise ValueError("rs1/rs2 must be unsigned 64-bit values")
        if not 0 <= self.rd < 32:
            raise ValueError("rd must be a 5-bit register specifier")

    @property
    def payload(self) -> int:
        """The 128-bit payload (rs2 in the high half)."""
        return (self.rs2 << 64) | self.rs1

    def encode_words(self) -> list:
        """Pack into the 32-bit MMIO words the host writes (inst + payload)."""
        inst = (
            (self.funct7 << 25)
            | (self.rd << 7)
            | ((1 if self.xd else 0) << 14)
            | self.opcode
        )
        route = (self.system_id << 8) | self.core_id
        return [
            inst & 0xFFFFFFFF,
            route & 0xFFFFFFFF,
            self.rs1 & 0xFFFFFFFF,
            (self.rs1 >> 32) & 0xFFFFFFFF,
            self.rs2 & 0xFFFFFFFF,
            (self.rs2 >> 32) & 0xFFFFFFFF,
        ]

    @classmethod
    def decode_words(cls, words) -> "RoccInstruction":
        if len(words) != 6:
            raise ValueError("a RoCC MMIO command is six 32-bit words")
        inst, route, rs1_lo, rs1_hi, rs2_lo, rs2_hi = words
        return cls(
            system_id=(route >> 8) & 0xFFFFFF,
            core_id=route & 0xFF,
            funct7=(inst >> 25) & 0x7F,
            rs1=(rs1_hi << 32) | rs1_lo,
            rs2=(rs2_hi << 32) | rs2_lo,
            xd=bool((inst >> 14) & 1),
            rd=(inst >> 7) & 0x1F,
            opcode=inst & 0x7F,
        )


@dataclass(frozen=True)
class RoccResponse:
    """One RoCC response travelling back to the host."""

    system_id: int
    core_id: int
    rd: int
    data: int  # 64-bit payload

    def encode_words(self) -> list:
        route = (self.system_id << 8) | self.core_id
        return [
            ((self.rd & 0x1F) << 8) | 1,  # valid bit + rd
            route & 0xFFFFFFFF,
            self.data & 0xFFFFFFFF,
            (self.data >> 32) & 0xFFFFFFFF,
        ]

    @classmethod
    def decode_words(cls, words) -> "RoccResponse":
        if len(words) != 4:
            raise ValueError("a RoCC MMIO response is four 32-bit words")
        head, route, lo, hi = words
        return cls(
            system_id=(route >> 8) & 0xFFFFFF,
            core_id=route & 0xFF,
            rd=(head >> 8) & 0x1F,
            data=(hi << 32) | lo,
        )
