"""Custom command/response formats and their RoCC packing.

Developers declare command payloads as named, typed fields (the Python
equivalent of the paper's ``new AccelCommand { val addend = UInt(32.W) ... }``
in Figure 2).  Beethoven transparently maps such commands onto the RoCC
instruction format: the fields are concatenated LSB-first and split over as
many 128-bit RoCC payloads as needed; the generated hardware unpacker
reassembles them.  Because ``Address`` fields resolve to the platform's
address width, the same declaration produces different bit layouts on
different platforms — which is exactly why Beethoven generates the host-side
binding code instead of letting the user hand-pack bits (Section II-B,
Command Abstractions).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.command.rocc import PAYLOAD_BITS

ADDRESS_WIDTH = "address"  # sentinel: resolved to the platform address width


@dataclass(frozen=True)
class Field:
    """One named field of a custom command or response."""

    name: str
    width: object  # int bit width, ADDRESS_WIDTH, or "float32"

    def resolved_width(self, addr_bits: int) -> int:
        if self.width == ADDRESS_WIDTH:
            return addr_bits
        if self.width == "float32":
            return 32
        if isinstance(self.width, int) and self.width > 0:
            return self.width
        raise ValueError(f"bad field width {self.width!r} for {self.name!r}")

    @property
    def is_float(self) -> bool:
        return self.width == "float32"

    @property
    def is_address(self) -> bool:
        return self.width == ADDRESS_WIDTH


def UInt(width: int) -> object:
    """Width helper mirroring Chisel's ``UInt(32.W)`` for readability."""
    return width


def Address() -> object:
    """Platform-address-width field (paper Figure 2: ``Address()``)."""
    return ADDRESS_WIDTH


def Float32() -> object:
    return "float32"


@dataclass(frozen=True)
class CommandSpec:
    """A named custom command format (an ``AccelCommand``)."""

    name: str
    fields: Tuple[Field, ...] = ()

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in command {self.name!r}")

    def total_bits(self, addr_bits: int) -> int:
        return sum(f.resolved_width(addr_bits) for f in self.fields)

    def n_chunks(self, addr_bits: int) -> int:
        return max(1, -(-self.total_bits(addr_bits) // PAYLOAD_BITS))

    # -- packing ------------------------------------------------------------
    def pack(self, values: Dict[str, object], addr_bits: int) -> List[Tuple[int, int]]:
        """Pack field values into (rs1, rs2) payload pairs, LSB-first."""
        missing = {f.name for f in self.fields} - set(values)
        if missing:
            raise ValueError(f"missing fields for {self.name!r}: {sorted(missing)}")
        extra = set(values) - {f.name for f in self.fields}
        if extra:
            raise ValueError(f"unknown fields for {self.name!r}: {sorted(extra)}")
        blob = 0
        pos = 0
        for f in self.fields:
            width = f.resolved_width(addr_bits)
            raw = _encode_value(f, values[f.name], width)
            blob |= raw << pos
            pos += width
        chunks = []
        mask64 = (1 << 64) - 1
        for _ in range(self.n_chunks(addr_bits)):
            rs1 = blob & mask64
            rs2 = (blob >> 64) & mask64
            chunks.append((rs1, rs2))
            blob >>= PAYLOAD_BITS
        return chunks

    def unpack(self, chunks: Sequence[Tuple[int, int]], addr_bits: int) -> Dict[str, object]:
        """Reassemble field values from (rs1, rs2) payload pairs."""
        if len(chunks) != self.n_chunks(addr_bits):
            raise ValueError(
                f"{self.name!r} expects {self.n_chunks(addr_bits)} chunks, got {len(chunks)}"
            )
        blob = 0
        for i, (rs1, rs2) in enumerate(chunks):
            blob |= ((rs2 << 64) | rs1) << (i * PAYLOAD_BITS)
        out: Dict[str, object] = {}
        pos = 0
        for f in self.fields:
            width = f.resolved_width(addr_bits)
            raw = (blob >> pos) & ((1 << width) - 1)
            out[f.name] = _decode_value(f, raw)
            pos += width
        return out


@dataclass(frozen=True)
class ResponseSpec:
    """A custom response format; must fit one 64-bit RoCC response."""

    name: str
    fields: Tuple[Field, ...] = ()

    def __post_init__(self) -> None:
        if self.total_bits(64) > 64:
            raise ValueError(
                f"response {self.name!r} exceeds the 64-bit RoCC response payload"
            )

    def total_bits(self, addr_bits: int) -> int:
        return sum(f.resolved_width(addr_bits) for f in self.fields)

    def pack(self, values: Dict[str, object]) -> int:
        blob = 0
        pos = 0
        for f in self.fields:
            width = f.resolved_width(64)
            blob |= _encode_value(f, values[f.name], width) << pos
            pos += width
        return blob

    def unpack(self, data: int) -> Dict[str, object]:
        out: Dict[str, object] = {}
        pos = 0
        for f in self.fields:
            width = f.resolved_width(64)
            out[f.name] = _decode_value(f, (data >> pos) & ((1 << width) - 1))
            pos += width
        return out


def EmptyAccelResponse() -> ResponseSpec:
    """A response with no payload — just completion (paper Figure 2)."""
    return ResponseSpec("empty")


def _encode_value(f: Field, value: object, width: int) -> int:
    if f.is_float:
        return struct.unpack("<I", struct.pack("<f", float(value)))[0]
    ivalue = int(value)
    if ivalue < 0 or ivalue >= (1 << width):
        raise ValueError(
            f"value {value!r} does not fit field {f.name!r} ({width} bits)"
        )
    return ivalue


def _decode_value(f: Field, raw: int) -> object:
    if f.is_float:
        return struct.unpack("<f", struct.pack("<I", raw))[0]
    return raw
