"""Fixed-point arithmetic helpers for the A^3 attention pipeline.

A^3 operates on 1-byte fixed-point operands with wider intermediates through
the pipeline (paper Section III-C).  We reproduce that numerical regime:
int8 inputs, int32 dot products, a base-2 exponential approximated by a
small lookup table on the fractional part (the hardware-friendly trick the
A^3 family of accelerators uses), and Q1.15 weights.
"""

from __future__ import annotations

import numpy as np

#: Fractional LUT for 2^f, f in [0, 1): 32 entries, Q1.15.
EXP2_LUT_BITS = 5
EXP2_LUT = np.round(
    (2.0 ** (np.arange(1 << EXP2_LUT_BITS) / (1 << EXP2_LUT_BITS))) * (1 << 15)
).astype(np.int64)

WEIGHT_FRAC_BITS = 15


def quantize_int8(x: np.ndarray, scale: float) -> np.ndarray:
    """Symmetric int8 quantisation: round(x/scale) clipped to [-128, 127]."""
    q = np.round(x / scale)
    return np.clip(q, -128, 127).astype(np.int8)


def dequantize(q: np.ndarray, scale: float) -> np.ndarray:
    return q.astype(np.float32) * scale


def exp2_fixed(x_q: np.ndarray, frac_bits: int) -> np.ndarray:
    """2^x for fixed-point x (signed, ``frac_bits`` fractional bits).

    Splits x into integer and fractional parts; the fraction indexes the
    LUT, the integer becomes a shift.  Returns Q1.15 values; inputs are
    expected to be <= 0 (scores are normalised against the running maximum),
    so results are in (0, 1].
    """
    x_q = x_q.astype(np.int64)
    if frac_bits < EXP2_LUT_BITS:
        raise ValueError("need at least EXP2_LUT_BITS fractional bits")
    int_part = x_q >> frac_bits  # floor division (negative-safe)
    frac_part = x_q - (int_part << frac_bits)
    lut_idx = frac_part >> (frac_bits - EXP2_LUT_BITS)
    mant = EXP2_LUT[lut_idx]
    shift = -int_part  # int_part <= 0 for normalised scores
    out = np.where(shift >= 31, 0, mant >> np.minimum(shift, 31))
    return out.astype(np.int64)


def fixed_weights(scores: np.ndarray, scale_log2e_q: int, frac_bits: int) -> np.ndarray:
    """Softmax weights in Q1.15 from integer scores.

    ``scores`` are int32 dot products; they are normalised against the
    maximum (one global reduction), scaled by log2(e)*softmax_scale in fixed
    point, exponentiated with the LUT, and normalised by the accumulated sum
    (the second global reduction, with one fixed-point divide per key).
    """
    scores = scores.astype(np.int64)
    shifted = scores - scores.max()
    # Integer score x Q(frac_bits) temperature = Q(frac_bits) exponent.
    x_q = shifted * scale_log2e_q
    e_q = exp2_fixed(x_q, frac_bits)
    total = int(e_q.sum())
    if total == 0:
        raise ZeroDivisionError("all exponentials underflowed")
    w = (e_q << WEIGHT_FRAC_BITS) // total
    return w.astype(np.int64)
