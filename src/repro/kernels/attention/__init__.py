"""A^3 approximate attention accelerator (paper Section III-C)."""

from repro.kernels.attention.a3 import A3Core, a3_config
from repro.kernels.attention.reference import (
    BERT_DIM,
    BERT_KEYS,
    attention_a3_fixed,
    attention_error,
    attention_float,
    scale_log2e_q,
)

__all__ = [
    "A3Core",
    "a3_config",
    "BERT_DIM",
    "BERT_KEYS",
    "attention_a3_fixed",
    "attention_error",
    "attention_float",
    "scale_log2e_q",
]
