"""The A^3 approximate-attention accelerator core (paper Section III-C).

Three coarse-grained stages, exactly the published structure:

1. **Dot product** — one key row per cycle against the resident query
   (a 64-wide int8 MAC tree), with the first global reduction (running
   max/min of the scores) tracked as rows stream.  Scores are staged in a
   FIFO because the reduction result is only known once all keys are done.
2. **Exponent / softmax** — LUT-based base-2 exponentiation, one score per
   cycle, plus the second global reduction (the sum) and one fixed-point
   divide per key.
3. **Output** — one value row per cycle, Q1.15-weighted accumulation into
   the output vector.

The key and value matrices are *stationary* in Beethoven scratchpads
(initialised from DRAM via their built-in Readers); queries stream in
through a Reader (one 64-byte row per beat) and results stream out through a
Writer.  Stages are pipelined across queries through FIFOs, so steady-state
throughput is one query per ``n_keys`` cycles per core — which at 250 MHz and
320 keys is the ~780 K attentions/s/core that makes a 23-core design land at
the paper's 16.6 M ops/s.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.command.packing import Address, CommandSpec, EmptyAccelResponse, Field, UInt
from repro.core.accelerator import AcceleratorCore
from repro.core.config import (
    AcceleratorConfig,
    ReadChannelConfig,
    ScratchpadConfig,
    ScratchpadFeatures,
    WriteChannelConfig,
)
from repro.fpga.device import ResourceVector
from repro.kernels.attention.fixedpoint import WEIGHT_FRAC_BITS, fixed_weights
from repro.kernels.attention.reference import SCALE_FRAC_BITS
from repro.memory.types import ReadRequest, WriteRequest

DIV_LATENCY = 16  # fixed-point divider pipeline in stage 2
STAGE_FIFO_DEPTH = 2


class A3Core(AcceleratorCore):
    """One A^3 core: stationary K/V, streaming queries."""

    def __init__(self, ctx, dim: int = 64, n_keys: int = 320) -> None:
        super().__init__(ctx)
        if dim % 8:
            raise ValueError("embedding dimension must be a multiple of 8")
        self.dim = dim
        self.n_keys = n_keys
        self.io_init = self.beethoven_io(
            CommandSpec(
                "load_kv",
                (Field("key_addr", Address()), Field("value_addr", Address())),
            ),
            EmptyAccelResponse(),
        )
        self.io_attend = self.beethoven_io(
            CommandSpec(
                "attend",
                (
                    Field("query_addr", Address()),
                    Field("out_addr", Address()),
                    Field("n_queries", UInt(16)),
                    Field("temp_q", UInt(32)),  # Q18 softmax temperature
                ),
            ),
            EmptyAccelResponse(),
        )
        self.queries = self.get_reader_module("queries")
        self.out = self.get_writer_module("attn_out")
        self.keys_sp = self.get_scratchpad("keys")
        self.values_sp = self.get_scratchpad("values")

        self._init_pending = 0
        self._k_mat: Optional[np.ndarray] = None
        self._v_mat: Optional[np.ndarray] = None
        self._attending = False
        self._temp_q = 1
        self._queries_left = 0
        # Stage slots: (busy_cycles_remaining, payload)
        self._s1 = None
        self._s2 = None
        self._s3 = None
        self._fifo_scores: Deque[np.ndarray] = deque()
        self._fifo_weights: Deque[np.ndarray] = deque()
        self._out_chunks: Deque[bytes] = deque()
        self.queries_processed = 0

    def kernel_resources(self) -> ResourceVector:
        """The Table II 'Kernel' row: the A^3 pipeline proper (MAC tree,
        exponent unit, divider, output accumulators and stage FIFOs)."""
        from repro.fpga.resources import clb_for

        return ResourceVector(clb=clb_for(16_900, 8_200), lut=16_900, reg=8_200, bram=1)

    # ------------------------------------------------------------------ tick
    def tick(self, cycle: int) -> None:
        self._tick_init()
        self._tick_attend_cmd()
        self._tick_pipeline()
        self._tick_output()

    # ------------------------------------------------------------- K/V load
    def _tick_init(self) -> None:
        io = self.io_init
        if (
            self._init_pending == 0
            and io.req.can_pop()
            and self.keys_sp.init.can_push()
            and self.values_sp.init.can_push()
        ):
            cmd = io.req.pop()
            nbytes = self.n_keys * self.dim
            self.keys_sp.init.push(ReadRequest(cmd["key_addr"], nbytes))
            self.values_sp.init.push(ReadRequest(cmd["value_addr"], nbytes))
            self._init_pending = 2
        if self._init_pending > 0:
            for sp in (self.keys_sp, self.values_sp):
                if sp.init_done.can_pop():
                    sp.init_done.pop()
                    self._init_pending -= 1
            if self._init_pending == 0 and io.resp.can_push():
                self._k_mat = self._matrix_from(self.keys_sp)
                self._v_mat = self._matrix_from(self.values_sp)
                io.resp.push({})
            elif self._init_pending == 0:
                self._init_pending = -1  # retry response next cycle
        elif self._init_pending == -1 and io.resp.can_push():
            self._k_mat = self._matrix_from(self.keys_sp)
            self._v_mat = self._matrix_from(self.values_sp)
            io.resp.push({})
            self._init_pending = 0

    def _matrix_from(self, sp) -> np.ndarray:
        row_bytes = self.dim
        rows = []
        for cell in sp.mem._cells[: self.n_keys]:
            rows.append(
                np.frombuffer(
                    int(cell).to_bytes(row_bytes, "little"), dtype=np.int8
                )
            )
        return np.stack(rows)

    # --------------------------------------------------------------- attend
    def _tick_attend_cmd(self) -> None:
        io = self.io_attend
        if (
            not self._attending
            and self._k_mat is not None
            and io.req.can_pop()
            and self.queries.request.can_push()
            and self.out.request.can_push()
        ):
            cmd = io.req.pop()
            n = cmd["n_queries"]
            self.queries.request.push(ReadRequest(cmd["query_addr"], n * self.dim))
            self.out.request.push(WriteRequest(cmd["out_addr"], n * self.dim))
            self._temp_q = cmd["temp_q"]
            self._queries_left = n
            self._attending = True
        if self._attending and self.out.done.can_pop() and io.resp.can_push():
            self.out.done.pop()
            io.resp.push({})
            self._attending = False

    def _tick_pipeline(self) -> None:
        if not self._attending:
            return
        # Stage 3: weighted value accumulation, one row per cycle.
        if self._s3 is not None:
            busy, weights = self._s3
            busy -= 1
            if busy <= 0:
                acc = weights @ self._v_mat.astype(np.int64)
                out = (acc + (1 << (WEIGHT_FRAC_BITS - 1))) >> WEIGHT_FRAC_BITS
                out8 = np.clip(out, -128, 127).astype(np.int8)
                self._out_chunks.append(out8.tobytes())
                self.queries_processed += 1
                self._s3 = None
            else:
                self._s3 = (busy, weights)
        if self._s3 is None and self._fifo_weights:
            self._s3 = (self.n_keys, self._fifo_weights.popleft())
        # Stage 2: exponent + normalise.
        if self._s2 is not None:
            busy, scores = self._s2
            busy -= 1
            if busy <= 0:
                if len(self._fifo_weights) < STAGE_FIFO_DEPTH:
                    weights = fixed_weights(scores, self._temp_q, SCALE_FRAC_BITS)
                    self._fifo_weights.append(weights)
                    self._s2 = None
                else:
                    self._s2 = (1, scores)  # stall on full FIFO
            else:
                self._s2 = (busy, scores)
        if self._s2 is None and self._fifo_scores:
            # The divider is pipelined: DIV_LATENCY is fill latency, charged
            # once per query on top of the n_keys-cycle exponent stream only
            # as a small constant (II stays one score per cycle).
            self._s2 = (self.n_keys + 2, self._fifo_scores.popleft())
        # Stage 1: dot products, one key row per cycle.
        if self._s1 is not None:
            busy, query = self._s1
            busy -= 1
            if busy <= 0:
                if len(self._fifo_scores) < STAGE_FIFO_DEPTH:
                    scores = self._k_mat.astype(np.int32) @ query.astype(np.int32)
                    self._fifo_scores.append(scores)
                    self._s1 = None
                else:
                    self._s1 = (1, query)
            else:
                self._s1 = (busy, query)
        if self._s1 is None and self._queries_left > 0 and self.queries.data.can_pop():
            chunk = self.queries.data.pop()
            query = np.frombuffer(chunk, dtype=np.int8)
            self._s1 = (self.n_keys, query)
            self._queries_left -= 1

    def _tick_output(self) -> None:
        if self._out_chunks and self.out.data.can_push():
            self.out.data.push(self._out_chunks.popleft())


def a3_config(
    n_cores: int = 1, dim: int = 64, n_keys: int = 320, name: str = "A3"
) -> AcceleratorConfig:
    """The BERT-parameterised A^3 System (23 cores in the paper's build).

    Four memory interfaces per core — query Reader, output Writer, and the
    two scratchpad init Readers — which is how the paper's 23-core design
    reaches its 92 distinct memory interfaces.
    """

    def make(ctx):
        return A3Core(ctx, dim, n_keys)

    row_bits = dim * 8
    double_buffered = ScratchpadFeatures(init_via_reader=True, double_buffered=True)
    return AcceleratorConfig(
        name=name,
        n_cores=n_cores,
        module_constructor=make,
        memory_channel_config=(
            ReadChannelConfig("queries", data_bytes=dim),
            WriteChannelConfig("attn_out", data_bytes=dim),
            ScratchpadConfig("keys", row_bits, n_keys, latency=1, features=double_buffered),
            ScratchpadConfig("values", row_bits, n_keys, latency=1, features=double_buffered),
        ),
    )
