"""Table III harness: attention throughput/energy across platforms.

Rows: CPU roofline, GPU roofline, the multi-core Beethoven A^3 FPGA design
(cycle-simulated end to end, including K/V loading, query streaming and the
runtime), and the original 1-core A^3 ASIC model at 1 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.baselines.roofline import (
    AsicA3Baseline,
    CPU_I7_12700K,
    GPU_RTX_3090,
)
from repro.core.build import BeethovenBuild, BuildMode
from repro.fpga.power import estimate_power
from repro.kernels.attention.a3 import a3_config
from repro.kernels.attention.reference import BERT_DIM, BERT_KEYS, scale_log2e_q
from repro.platforms import AWSF1Platform
from repro.platforms.base import Platform
from repro.runtime import FpgaHandle


@dataclass
class Table3Row:
    platform: str
    ops_per_second: float
    energy_per_op_uj: Optional[float]
    power_w: Optional[float]


@dataclass
class BeethovenA3Result:
    n_cores: int
    queries: int
    cycles: int
    ops_per_second: float
    power_w: float
    verified: bool
    cycles_per_query_per_core: float

    @property
    def energy_per_op_uj(self) -> float:
        return self.power_w / self.ops_per_second * 1e6


def run_beethoven_a3(
    n_cores: int = 23,
    queries_per_core: int = 128,
    dim: int = BERT_DIM,
    n_keys: int = BERT_KEYS,
    platform: Optional[Platform] = None,
    quant_scale: float = 0.05,
) -> BeethovenA3Result:
    """Simulate the multi-core A^3 design end to end and measure throughput."""
    platform = platform or AWSF1Platform()
    build = BeethovenBuild(a3_config(n_cores, dim, n_keys), platform, BuildMode.Simulation)
    handle = FpgaHandle(build.design)
    rng = np.random.default_rng(99)
    keys = rng.integers(-40, 40, (n_keys, dim)).astype(np.int8)
    values = rng.integers(-40, 40, (n_keys, dim)).astype(np.int8)
    pk, pv = handle.malloc(keys.nbytes), handle.malloc(values.nbytes)
    pk.write(keys.tobytes())
    pv.write(values.tobytes())
    handle.copy_to_fpga(pk)
    handle.copy_to_fpga(pv)
    # All cores share the same stationary K/V (one BERT head replicated).
    loads = [
        handle.call("A3", "load_kv", core, key_addr=pk.fpga_addr, value_addr=pv.fpga_addr)
        for core in range(n_cores)
    ]
    for fut in loads:
        fut.get()
    queries = rng.integers(-40, 40, (n_cores, queries_per_core, dim)).astype(np.int8)
    temp = scale_log2e_q(dim, quant_scale)
    in_ptrs, out_ptrs, futures = [], [], []
    for core in range(n_cores):
        pq = handle.malloc(queries_per_core * dim)
        po = handle.malloc(queries_per_core * dim)
        pq.write(queries[core].tobytes())
        handle.copy_to_fpga(pq)
        in_ptrs.append(pq)
        out_ptrs.append(po)
    start = handle.cycle
    for core in range(n_cores):
        futures.append(
            handle.call(
                "A3", "attend", core,
                query_addr=in_ptrs[core].fpga_addr,
                out_addr=out_ptrs[core].fpga_addr,
                n_queries=queries_per_core,
                temp_q=temp,
            )
        )
    for fut in futures:
        fut.get(max_cycles=50_000_000)
    cycles = handle.cycle - start
    total_queries = n_cores * queries_per_core
    seconds = platform.cycles_to_seconds(cycles)
    # Verify one core's output against the fixed-point reference.
    from repro.kernels.attention.reference import attention_a3_fixed

    handle.copy_from_fpga(out_ptrs[0])
    got = np.frombuffer(out_ptrs[0].read(), dtype=np.int8).reshape(queries_per_core, dim)
    expected = np.stack(
        [attention_a3_fixed(q, keys, values, quant_scale) for q in queries[0]]
    )
    power = estimate_power(build.resource_report.with_shell, platform.clock_mhz)
    return BeethovenA3Result(
        n_cores=n_cores,
        queries=total_queries,
        cycles=cycles,
        ops_per_second=total_queries / seconds,
        power_w=power.total_w,
        verified=bool((got == expected).all()),
        cycles_per_query_per_core=cycles / queries_per_core,
    )


def table3(
    n_cores: int = 23, queries_per_core: int = 128, dim: int = BERT_DIM, n_keys: int = BERT_KEYS
) -> List[Table3Row]:
    rows = [
        Table3Row(
            "CPU (roofline)",
            CPU_I7_12700K.ops_per_second(dim, n_keys),
            CPU_I7_12700K.energy_per_op_uj(dim, n_keys),
            CPU_I7_12700K.power_w,
        ),
        Table3Row(
            "GPU (roofline)",
            GPU_RTX_3090.ops_per_second(dim, n_keys),
            GPU_RTX_3090.energy_per_op_uj(dim, n_keys),
            GPU_RTX_3090.power_w,
        ),
    ]
    result = run_beethoven_a3(n_cores, queries_per_core, dim, n_keys)
    rows.append(
        Table3Row(
            f"Beethoven ({result.n_cores}-core FPGA @250MHz)",
            result.ops_per_second,
            result.energy_per_op_uj,
            result.power_w,
        )
    )
    asic = AsicA3Baseline()
    rows.append(
        Table3Row("1-core A3 ASIC @1GHz (model)", asic.ops_per_second(n_keys), None, None)
    )
    return rows


def render_table3(rows: List[Table3Row]) -> str:
    lines = [f"{'platform':<36} {'ops/s':>12} {'uJ/op':>8} {'power W':>8}"]
    for r in rows:
        energy = f"{r.energy_per_op_uj:8.2f}" if r.energy_per_op_uj is not None else "       -"
        power = f"{r.power_w:8.1f}" if r.power_w is not None else "       -"
        lines.append(f"{r.platform:<36} {r.ops_per_second:>12.3e} {energy} {power}")
    return "\n".join(lines)
