"""Attention references: exact float softmax and the fixed-point A^3 model.

``attention_float`` is the ground truth (BERT-style scaled dot-product
attention).  ``attention_a3_fixed`` is the bit-level model of what the
accelerator pipeline computes — the hardware core must match it *exactly*,
and it must match the float reference within the approximation tolerance the
A^3 paper reports acceptable for BERT.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.attention.fixedpoint import (
    WEIGHT_FRAC_BITS,
    fixed_weights,
)

#: BERT-base head geometry used in the paper's case study.
BERT_DIM = 64
BERT_KEYS = 320

#: Fixed-point softmax temperature: log2(e) * s^2 / sqrt(d) in Q18, where s
#: is the int8 quantisation scale (integer scores are true scores / s^2).
SCALE_FRAC_BITS = 18


def scale_log2e_q(dim: int, quant_scale: float) -> int:
    factor = np.log2(np.e) * (quant_scale**2) / np.sqrt(dim)
    q = int(round(factor * (1 << SCALE_FRAC_BITS)))
    if q == 0:
        raise ValueError("softmax temperature underflows the fixed-point format")
    return q


def attention_float(query: np.ndarray, keys: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Exact scaled dot-product attention for one query (float32)."""
    scores = keys.astype(np.float64) @ query.astype(np.float64)
    scores = scores / np.sqrt(query.shape[0])
    scores -= scores.max()
    weights = np.exp(scores)
    weights /= weights.sum()
    return (weights @ values.astype(np.float64)).astype(np.float32)


def attention_a3_fixed(
    query_q: np.ndarray,
    keys_q: np.ndarray,
    values_q: np.ndarray,
    quant_scale: float = 0.05,
) -> np.ndarray:
    """The A^3 pipeline's arithmetic for one int8 query.

    Stage 1: int8 x int8 dot products into int32 scores.
    Stage 2: LUT-based exp2 softmax in fixed point (two global reductions).
    Stage 3: Q1.15-weighted sum of int8 value rows, rounded to int8 range
             scaled by the value magnitude (we return the int32 accumulator
             scaled back at int8 resolution x 2^15).
    """
    if query_q.dtype != np.int8 or keys_q.dtype != np.int8 or values_q.dtype != np.int8:
        raise TypeError("A^3 operates on int8 operands")
    scores = keys_q.astype(np.int32) @ query_q.astype(np.int32)
    weights = fixed_weights(
        scores, scale_log2e_q(query_q.shape[0], quant_scale), SCALE_FRAC_BITS
    )
    acc = weights @ values_q.astype(np.int64)  # Q1.15-weighted sum
    out = (acc + (1 << (WEIGHT_FRAC_BITS - 1))) >> WEIGHT_FRAC_BITS
    return np.clip(out, -128, 127).astype(np.int8)


def attention_error(
    query: np.ndarray, keys: np.ndarray, values: np.ndarray, scale: float
) -> float:
    """RMS error of the fixed-point pipeline vs exact attention, in the
    dequantised domain, normalised by the exact output RMS."""
    from repro.kernels.attention.fixedpoint import quantize_int8

    q8 = quantize_int8(query, scale)
    k8 = quantize_int8(keys, scale)
    v8 = quantize_int8(values, scale)
    exact = attention_float(query, keys, values)
    approx = attention_a3_fixed(q8, k8, v8, scale).astype(np.float32) * scale
    rms = float(np.sqrt(np.mean((exact - approx) ** 2)))
    denom = float(np.sqrt(np.mean(exact**2))) or 1.0
    return rms / denom
