"""Memory-copy microbenchmark core (paper Section III-A).

The Beethoven implementation is exactly the paper's: a Reader and a Writer at
full bus width wired back-to-back (23 lines of Chisel in the original).  The
TLP and burst-length knobs of the underlying primitives give the
``Beethoven`` / ``Beethoven No-TLP`` / ``Beethoven 16-beat`` variants of
Figures 4 and 5.
"""

from __future__ import annotations

from repro.command.packing import Address, CommandSpec, EmptyAccelResponse, Field, UInt
from repro.core.accelerator import AcceleratorCore
from repro.core.config import AcceleratorConfig, ReadChannelConfig, WriteChannelConfig
from repro.fpga.device import ResourceVector
from repro.memory.reader import ReaderTuning
from repro.memory.types import ReadRequest, WriteRequest
from repro.memory.writer import WriterTuning
from repro.sim import NEVER


class MemcpyCore(AcceleratorCore):
    """Copy ``len_bytes`` from ``src`` to ``dst`` at full bus width."""

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self.io = self.beethoven_io(
            CommandSpec(
                "memcpy",
                (
                    Field("src", Address()),
                    Field("dst", Address()),
                    Field("len_bytes", UInt(32)),
                ),
            ),
            EmptyAccelResponse(),
        )
        self.src_reader = self.get_reader_module("copy_in")
        self.dst_writer = self.get_writer_module("copy_out")
        self._active = False
        self.bytes_copied = 0

    def kernel_resources(self) -> ResourceVector:
        return ResourceVector(clb=15, lut=90, reg=110)

    def tick(self, cycle: int) -> None:
        io = self.io
        if (
            not self._active
            and io.req.can_pop()
            and self.src_reader.request.can_push()
            and self.dst_writer.request.can_push()
        ):
            cmd = io.req.pop()
            self.src_reader.request.push(ReadRequest(cmd["src"], cmd["len_bytes"]))
            self.dst_writer.request.push(WriteRequest(cmd["dst"], cmd["len_bytes"]))
            self._active = True
        if self._active and self.src_reader.data.can_pop() and self.dst_writer.data.can_push():
            chunk = self.src_reader.data.pop()
            self.dst_writer.data.push(chunk)
            self.bytes_copied += len(chunk)
        if self._active and self.dst_writer.done.can_pop() and io.resp.can_push():
            self.dst_writer.done.pop()
            io.resp.push({})
            self._active = False

    def next_event(self, cycle: int) -> float:
        return NEVER  # purely reactive: command, data and done all arrive on channels

    #: Constant-NEVER hint — lets the compiled scheduler skip the hint call.
    wake_only = True


def memcpy_config(
    n_cores: int = 1,
    tlp: bool = True,
    burst_beats: int = 64,
    name: str = "Memcpy",
    data_bytes: int = 64,
) -> AcceleratorConfig:
    """Beethoven memcpy System.

    ``tlp=False`` gives the single-AXI-ID variant; ``burst_beats=16``
    reproduces the short-burst ablation the paper ran against HLS.
    """
    n_ids = 4 if tlp else 1
    in_flight = 8
    reader = ReaderTuning(
        max_txn_beats=burst_beats,
        n_axi_ids=n_ids,
        max_in_flight=in_flight,
        buffer_bytes=8 * 4096,
    )
    writer = WriterTuning(
        max_txn_beats=burst_beats,
        n_axi_ids=n_ids,
        max_in_flight=in_flight,
        buffer_bytes=8 * 4096,
    )
    return AcceleratorConfig(
        name=name,
        n_cores=n_cores,
        module_constructor=MemcpyCore,
        memory_channel_config=(
            ReadChannelConfig("copy_in", data_bytes=data_bytes, tuning=reader),
            WriteChannelConfig("copy_out", data_bytes=data_bytes, tuning=writer),
        ),
    )
