"""Accelerator kernels used by the examples, tests and benchmarks."""

from repro.kernels.vecadd import VectorAddCore, vector_add_config

__all__ = ["VectorAddCore", "vector_add_config"]
