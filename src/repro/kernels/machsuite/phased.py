"""Phased kernel-core machinery shared by the MachSuite accelerators.

The low-effort Beethoven MachSuite designs share one shape: stream operands
in through Readers, run a fixed-function pipeline over on-chip data, stream
results out through Writers (Section III-B: "implemented ... over an
afternoon").  ``PhasedKernelCore`` captures that shape: subclasses describe
each command as a :class:`KernelPlan` (loads -> compute -> stores) and the
base class runs the cycle-level FSM — parallel load streams, a busy counter
for the compute schedule (whose cycle count the subclass derives from its
pipeline structure), parallel store streams, then the response.

Functional results are exact: the compute callback sees the actual loaded
bytes and produces the actual stored bytes, checked against the software
references in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.accelerator import AcceleratorCore
from repro.memory.types import ReadRequest, WriteRequest


@dataclass
class KernelPlan:
    """One command's worth of work."""

    loads: List[Tuple[str, int, int]]  # (reader channel name, addr, bytes)
    stores: List[Tuple[str, int]]  # (writer channel name, addr); data from compute
    compute: Callable[[Dict[str, bytes]], Tuple[Dict[str, bytes], int]]
    """Maps loaded bytes (by channel name) to (stored bytes by channel name,
    compute busy cycles)."""

    response: Dict[str, object] = field(default_factory=dict)


class PhasedKernelCore(AcceleratorCore):
    """Load-compute-store FSM; subclasses provide ``plan()`` and IO."""

    IDLE, LOAD, COMPUTE, STORE, RESPOND = range(5)

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._state = self.IDLE
        self._plan: Optional[KernelPlan] = None
        self._load_buf: Dict[str, bytearray] = {}
        self._load_need: Dict[str, int] = {}
        self._load_requested: bool = False
        self._store_data: Dict[str, bytes] = {}
        self._store_off: Dict[str, int] = {}
        self._stores_done: int = 0
        self._busy = 0
        self.commands_completed = 0
        self.total_compute_cycles = 0

    # -- subclass interface ---------------------------------------------------
    def plan(self, cmd: Dict[str, object]) -> KernelPlan:
        raise NotImplementedError

    @property
    def command_io(self):
        """The BeethovenIO commands arrive on (first declared by default)."""
        return self.ios[0]

    # -- FSM ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        if self._state == self.IDLE:
            self._tick_idle()
        elif self._state == self.LOAD:
            self._tick_load()
        elif self._state == self.COMPUTE:
            self._tick_compute()
        elif self._state == self.STORE:
            self._tick_store()
        elif self._state == self.RESPOND:
            self._tick_respond()

    def _tick_idle(self) -> None:
        io = self.command_io
        if not io.req.can_pop():
            return
        cmd = io.req.pop()
        self._plan = self.plan(cmd)
        self._load_buf = {name: bytearray() for name, _, _ in self._plan.loads}
        self._load_need = {name: nbytes for name, _, nbytes in self._plan.loads}
        self._load_requested = False
        self._state = self.LOAD

    def _tick_load(self) -> None:
        plan = self._plan
        if not self._load_requested:
            if all(
                self.get_reader_module(name).request.can_push()
                for name, _, _ in plan.loads
            ):
                for name, addr, nbytes in plan.loads:
                    self.get_reader_module(name).request.push(ReadRequest(addr, nbytes))
                self._load_requested = True
            if not plan.loads:
                self._load_requested = True
            return
        done = True
        for name, _, _ in plan.loads:
            reader = self.get_reader_module(name)
            buf = self._load_buf[name]
            while reader.data.can_pop() and len(buf) < self._load_need[name]:
                buf.extend(reader.data.pop())
            if len(buf) < self._load_need[name]:
                done = False
        if done:
            outputs, cycles = plan.compute(
                {name: bytes(buf) for name, buf in self._load_buf.items()}
            )
            self._store_data = outputs
            self._busy = max(int(cycles), 1)
            self.total_compute_cycles += self._busy
            self._state = self.COMPUTE

    def _tick_compute(self) -> None:
        self._busy -= 1
        if self._busy <= 0:
            plan = self._plan
            if not plan.stores:
                self._state = self.RESPOND
                return
            for name, addr in plan.stores:
                writer = self.get_writer_module(name)
                data = self._store_data[name]
                writer.request.push(WriteRequest(addr, len(data)))
            self._store_off = {name: 0 for name, _ in plan.stores}
            self._stores_done = 0
            self._state = self.STORE

    def _tick_store(self) -> None:
        plan = self._plan
        finished = 0
        for name, _ in plan.stores:
            writer = self.get_writer_module(name)
            data = self._store_data[name]
            off = self._store_off[name]
            if off < len(data) and writer.data.can_push():
                chunk = data[off : off + writer.data_bytes]
                writer.data.push(bytes(chunk))
                self._store_off[name] = off + len(chunk)
            if writer.done.can_pop():
                writer.done.pop()
                self._stores_done += 1
        if self._stores_done == len(plan.stores):
            self._state = self.RESPOND

    def _tick_respond(self) -> None:
        io = self.command_io
        if io.resp.can_push():
            io.resp.push(self._plan.response)
            self.commands_completed += 1
            self._plan = None
            self._state = self.IDLE
