"""Software reference implementations of the MachSuite kernels (Table I).

These define functional correctness for the accelerator cores: every
simulated run is checked against them.  Data types follow the reproduction's
convention of exact integer arithmetic (int32 with wraparound) for the dense
kernels and float32 for MD-KNN, so hardware/software comparisons are
bit-exact or tolerance-bounded respectively.
"""

from __future__ import annotations

import numpy as np

#: Needleman-Wunsch scoring (MachSuite's constants).
NW_MATCH = 1
NW_MISMATCH = -1
NW_GAP = -1


def gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense N x N matrix multiply with int32 wraparound semantics."""
    if a.dtype != np.int32 or b.dtype != np.int32:
        raise TypeError("gemm reference expects int32 operands")
    with np.errstate(over="ignore"):
        return (a.astype(np.int64) @ b.astype(np.int64)).astype(np.int32)


def nw_score_matrix(seq_a: bytes, seq_b: bytes) -> np.ndarray:
    """Needleman-Wunsch dynamic-programming matrix (scores only)."""
    n, m = len(seq_a), len(seq_b)
    score = np.zeros((n + 1, m + 1), dtype=np.int32)
    score[:, 0] = np.arange(n + 1) * NW_GAP
    score[0, :] = np.arange(m + 1) * NW_GAP
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            match = NW_MATCH if seq_a[i - 1] == seq_b[j - 1] else NW_MISMATCH
            score[i, j] = max(
                score[i - 1, j - 1] + match,
                score[i - 1, j] + NW_GAP,
                score[i, j - 1] + NW_GAP,
            )
    return score


def nw(seq_a: bytes, seq_b: bytes):
    """Alignment score and traceback-aligned sequences ('-' = gap)."""
    score = nw_score_matrix(seq_a, seq_b)
    i, j = len(seq_a), len(seq_b)
    out_a, out_b = bytearray(), bytearray()
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            match = NW_MATCH if seq_a[i - 1] == seq_b[j - 1] else NW_MISMATCH
            if score[i, j] == score[i - 1, j - 1] + match:
                out_a.append(seq_a[i - 1])
                out_b.append(seq_b[j - 1])
                i -= 1
                j -= 1
                continue
        if i > 0 and score[i, j] == score[i - 1, j] + NW_GAP:
            out_a.append(seq_a[i - 1])
            out_b.append(ord("-"))
            i -= 1
        else:
            out_a.append(ord("-"))
            out_b.append(seq_b[j - 1])
            j -= 1
    return int(score[-1, -1]), bytes(reversed(out_a)), bytes(reversed(out_b))


def stencil2d(grid: np.ndarray, coeffs: np.ndarray) -> np.ndarray:
    """3x3 stencil over an N x N int32 grid; borders pass through."""
    if grid.dtype != np.int32 or coeffs.shape != (3, 3):
        raise TypeError("stencil2d expects int32 grid and 3x3 coefficients")
    out = grid.copy()
    acc = np.zeros((grid.shape[0] - 2, grid.shape[1] - 2), dtype=np.int64)
    for di in range(3):
        for dj in range(3):
            acc += (
                coeffs[di, dj].astype(np.int64)
                * grid[di : di + acc.shape[0], dj : dj + acc.shape[1]].astype(np.int64)
            )
    out[1:-1, 1:-1] = acc.astype(np.int32)
    return out


def stencil3d(grid: np.ndarray, c0: int, c1: int) -> np.ndarray:
    """7-point 3D stencil over an N^3 int32 grid; borders pass through."""
    if grid.dtype != np.int32:
        raise TypeError("stencil3d expects an int32 grid")
    out = grid.copy()
    core = grid[1:-1, 1:-1, 1:-1].astype(np.int64)
    neigh = (
        grid[:-2, 1:-1, 1:-1].astype(np.int64)
        + grid[2:, 1:-1, 1:-1].astype(np.int64)
        + grid[1:-1, :-2, 1:-1].astype(np.int64)
        + grid[1:-1, 2:, 1:-1].astype(np.int64)
        + grid[1:-1, 1:-1, :-2].astype(np.int64)
        + grid[1:-1, 1:-1, 2:].astype(np.int64)
    )
    out[1:-1, 1:-1, 1:-1] = (c0 * core + c1 * neigh).astype(np.int32)
    return out


def md_knn(positions: np.ndarray, neighbors: np.ndarray) -> np.ndarray:
    """Lennard-Jones force accumulation over a k-nearest-neighbour list.

    ``positions``: (n_atoms, 3) float32; ``neighbors``: (n_atoms, k) int32.
    Returns (n_atoms, 3) float32 forces — MachSuite's md/knn kernel.
    """
    if positions.dtype != np.float32:
        raise TypeError("md_knn expects float32 positions")
    n, k = neighbors.shape
    forces = np.zeros((n, 3), dtype=np.float64)
    pos = positions.astype(np.float64)
    for i in range(n):
        delta = pos[i] - pos[neighbors[i]]
        r2 = (delta * delta).sum(axis=1)
        r2 = np.maximum(r2, 1e-12)
        r2inv = 1.0 / r2
        r6inv = r2inv * r2inv * r2inv
        potential = r6inv * (1.5 * r6inv - 2.0)
        forces[i] = ((r2inv * potential)[:, None] * delta).sum(axis=0)
    return forces.astype(np.float32)
