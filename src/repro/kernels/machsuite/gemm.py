"""MachSuite GeMM accelerator (Table I: O(N^3), N=256, high parallelism).

The medium-effort Beethoven design of Section III-B: the outer and middle
loop bodies are parallelised by a configurable factor (a grid of
``unroll_i x unroll_j`` MAC lanes), identical to the loop parallelism factors
one would give Vitis HLS or Spatial.  Schedule: the MAC grid retires
``unroll_i * unroll_j`` multiply-accumulates per cycle at II=1, so the
compute phase takes ``N^3 / (unroll_i * unroll_j)`` cycles plus pipeline
fill.
"""

from __future__ import annotations

import numpy as np

from repro.command.packing import Address, CommandSpec, EmptyAccelResponse, Field, UInt
from repro.core.config import (
    AcceleratorConfig,
    ReadChannelConfig,
    ScratchpadConfig,
    ScratchpadFeatures,
    WriteChannelConfig,
)
from repro.fpga.device import ResourceVector
from repro.kernels.machsuite.phased import KernelPlan, PhasedKernelCore
from repro.kernels.machsuite.reference import gemm

PIPELINE_DEPTH = 12


class GemmCore(PhasedKernelCore):
    """C = A @ B over int32, streamed from/to memory."""

    def __init__(self, ctx, unroll_i: int = 4, unroll_j: int = 4) -> None:
        super().__init__(ctx)
        self.unroll_i = unroll_i
        self.unroll_j = unroll_j
        self.io = self.beethoven_io(
            CommandSpec(
                "gemm",
                (
                    Field("a_addr", Address()),
                    Field("b_addr", Address()),
                    Field("c_addr", Address()),
                    Field("n", UInt(12)),
                ),
            ),
            EmptyAccelResponse(),
        )
        self.get_reader_module("mat_a")
        self.get_reader_module("mat_b")
        self.get_writer_module("mat_c")

    def kernel_resources(self) -> ResourceVector:
        lanes = self.unroll_i * self.unroll_j
        lut = 900 + 210 * lanes  # one int32 MAC lane ~ 210 LUTs
        reg = 1_200 + 180 * lanes
        return ResourceVector(clb=max(lut / 6.6, reg / 13.2), lut=lut, reg=reg)

    def compute_cycles(self, n: int) -> int:
        lanes = self.unroll_i * self.unroll_j
        return -(-(n**3) // lanes) + PIPELINE_DEPTH

    def plan(self, cmd) -> KernelPlan:
        n = cmd["n"]
        nbytes = n * n * 4

        def compute(loaded):
            a = np.frombuffer(loaded["mat_a"], dtype=np.int32).reshape(n, n)
            b = np.frombuffer(loaded["mat_b"], dtype=np.int32).reshape(n, n)
            c = gemm(a, b)
            return {"mat_c": c.tobytes()}, self.compute_cycles(n)

        return KernelPlan(
            loads=[("mat_a", cmd["a_addr"], nbytes), ("mat_b", cmd["b_addr"], nbytes)],
            stores=[("mat_c", cmd["c_addr"])],
            compute=compute,
        )


def gemm_config(
    n_cores: int = 1,
    unroll_i: int = 4,
    unroll_j: int = 4,
    n: int = 256,
    name: str = "Gemm",
) -> AcceleratorConfig:
    """GeMM System; on-chip A/B/C tiles declared as scratchpads so the
    memcell mapper accounts for them (working set = 3 * N^2 * 4 bytes)."""

    def make(ctx):
        return GemmCore(ctx, unroll_i, unroll_j)

    depth = max(n * n * 4 // 64, 1)
    no_init = ScratchpadFeatures(init_via_reader=False)
    return AcceleratorConfig(
        name=name,
        n_cores=n_cores,
        module_constructor=make,
        memory_channel_config=(
            ReadChannelConfig("mat_a", data_bytes=64),
            ReadChannelConfig("mat_b", data_bytes=64),
            WriteChannelConfig("mat_c", data_bytes=64),
            ScratchpadConfig("tile_a", 512, depth, features=no_init),
            ScratchpadConfig("tile_b", 512, depth, features=no_init),
            ScratchpadConfig("tile_c", 512, depth, features=no_init),
        ),
    )
