"""MachSuite benchmark kernels (paper Section III-B, Table I)."""

from repro.kernels.machsuite.gemm import GemmCore, gemm_config
from repro.kernels.machsuite.mdknn import MdKnnCore, mdknn_config
from repro.kernels.machsuite.nw import NwCore, nw_config
from repro.kernels.machsuite.phased import KernelPlan, PhasedKernelCore
from repro.kernels.machsuite.stencil import (
    Stencil2dCore,
    Stencil3dCore,
    stencil2d_config,
    stencil3d_config,
)

__all__ = [
    "GemmCore",
    "gemm_config",
    "NwCore",
    "nw_config",
    "Stencil2dCore",
    "Stencil3dCore",
    "stencil2d_config",
    "stencil3d_config",
    "MdKnnCore",
    "mdknn_config",
    "KernelPlan",
    "PhasedKernelCore",
]
