"""MachSuite MD-KNN accelerator (Table I: N=1024 atoms, K=32, high parallelism).

Lennard-Jones force accumulation over a precomputed k-nearest-neighbour
list.  The pipeline evaluates ``unroll`` atom-neighbour interactions per
cycle (each interaction is a fixed-latency arithmetic pipeline at II=1), so
the compute phase takes ``N*K / unroll`` cycles plus fill.
"""

from __future__ import annotations

import numpy as np

from repro.command.packing import Address, CommandSpec, EmptyAccelResponse, Field, UInt
from repro.core.config import (
    AcceleratorConfig,
    ReadChannelConfig,
    ScratchpadConfig,
    ScratchpadFeatures,
    WriteChannelConfig,
)
from repro.fpga.device import ResourceVector
from repro.kernels.machsuite.phased import KernelPlan, PhasedKernelCore
from repro.kernels.machsuite.reference import md_knn

PIPELINE_DEPTH = 24  # deep FP pipeline: rsqrt chain


class MdKnnCore(PhasedKernelCore):
    """Forces from positions + neighbour lists (float32)."""

    def __init__(self, ctx, unroll: int = 4) -> None:
        super().__init__(ctx)
        self.unroll = unroll
        self.io = self.beethoven_io(
            CommandSpec(
                "md_knn",
                (
                    Field("pos_addr", Address()),
                    Field("nl_addr", Address()),
                    Field("force_addr", Address()),
                    Field("n_atoms", UInt(16)),
                    Field("k", UInt(8)),
                ),
            ),
            EmptyAccelResponse(),
        )
        self.get_reader_module("positions")
        self.get_reader_module("neighbors")
        self.get_writer_module("forces")

    def kernel_resources(self) -> ResourceVector:
        lut = 2_600 + 1_900 * self.unroll  # FP32 mul/add/div lane
        reg = 3_400 + 2_200 * self.unroll
        return ResourceVector(clb=max(lut / 6.6, reg / 13.2), lut=lut, reg=reg)

    def compute_cycles(self, n_atoms: int, k: int) -> int:
        return -(-(n_atoms * k) // self.unroll) + PIPELINE_DEPTH

    def plan(self, cmd) -> KernelPlan:
        n, k = cmd["n_atoms"], cmd["k"]

        def compute(loaded):
            pos = np.frombuffer(loaded["positions"], dtype=np.float32).reshape(n, 3)
            nl = np.frombuffer(loaded["neighbors"], dtype=np.int32).reshape(n, k)
            forces = md_knn(pos, nl)
            return {"forces": forces.tobytes()}, self.compute_cycles(n, k)

        return KernelPlan(
            loads=[
                ("positions", cmd["pos_addr"], n * 12),
                ("neighbors", cmd["nl_addr"], n * k * 4),
            ],
            stores=[("forces", cmd["force_addr"])],
            compute=compute,
        )


def mdknn_config(
    n_cores: int = 1, unroll: int = 4, n_atoms: int = 1024, name: str = "MdKnn"
) -> AcceleratorConfig:
    """MD-KNN System; positions and force accumulators live on chip while
    the neighbour list streams (it is only read once)."""

    def make(ctx):
        return MdKnnCore(ctx, unroll)

    no_init = ScratchpadFeatures(init_via_reader=False)
    return AcceleratorConfig(
        name=name,
        n_cores=n_cores,
        module_constructor=make,
        memory_channel_config=(
            ReadChannelConfig("positions", data_bytes=4),
            ReadChannelConfig("neighbors", data_bytes=64),
            WriteChannelConfig("forces", data_bytes=4),
            ScratchpadConfig("pos_sp", 96, n_atoms, features=no_init),
            ScratchpadConfig("force_sp", 96, n_atoms, features=no_init),
        ),
    )
