"""Figure 6 harness: MachSuite speedups over Vitis HLS.

For each Table I workload this produces the four bars of the paper's figure:

* ``spatial``             — Spatial's tuned schedule (normalised to HLS)
* ``beethoven_ideal``     — single-core throughput x feasible core count
* ``beethoven_measured``  — multi-core throughput through the simulated
  runtime server (lock + MMIO serialisation), or the validated queueing
  model of the same server for kernels too long to simulate whole
* the feasible core count itself, with the resource that limits it

Core counts are not copied from the paper: they are *derived* by packing
cores with the resource model until the synthesis feasibility check fails,
which reproduces the paper's claims about which resource binds (BRAM for the
stencils and NW, LUTs for GeMM and MD-KNN).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.baselines.delay_core import delay_config
from repro.core.build import BeethovenBuild, BuildMode
from repro.kernels.machsuite.gemm import gemm_config
from repro.kernels.machsuite.mdknn import mdknn_config
from repro.kernels.machsuite.nw import nw_config
from repro.kernels.machsuite.stencil import stencil2d_config, stencil3d_config
from repro.kernels.machsuite.workloads import (
    BEETHOVEN_CLOCK_MHZ,
    SCHEDULES,
    TABLE1,
    ToolSchedule,
    Workload,
)
from repro.platforms import AWSF1Platform
from repro.platforms.base import Platform
from repro.runtime import FpgaHandle

#: Configuration factory per workload (full Table I parameters).
CONFIG_FACTORIES: Dict[str, Callable[[int], object]] = {
    "gemm": lambda n_cores: gemm_config(n_cores=n_cores, unroll_i=16, unroll_j=16),
    "nw": lambda n_cores: nw_config(n_cores=n_cores),
    "stencil2d": lambda n_cores: stencil2d_config(n_cores=n_cores),
    "stencil3d": lambda n_cores: stencil3d_config(n_cores=n_cores),
    "md-knn": lambda n_cores: mdknn_config(n_cores=n_cores, unroll=8),
}

#: Simulate the measured bar when the whole run fits in this many cycles.
SIMULATION_CYCLE_BUDGET = 400_000


def config_for(bench: str, n_cores: int):
    """Importable (hence picklable) factory entry point for farm jobs.

    ``functools.partial(config_for, bench)`` is the payload-safe equivalent
    of the lambdas in :data:`CONFIG_FACTORIES`: worker processes resolve it
    by name, so sweeps over Table I workloads shard cleanly.
    """
    return CONFIG_FACTORIES[bench](n_cores)


def max_feasible_cores(bench: str, platform: Optional[Platform] = None, limit: int = 64):
    """Largest core count that passes the place/route feasibility model.

    Returns (n_cores, limiter): the classified resource whose utilisation is
    highest at the first infeasible count — the paper's "limited by BRAM /
    LUT overutilisation" observation.  Thin wrapper over :mod:`repro.dse`.
    """
    from repro.dse import max_feasible_cores as dse_max

    platform = platform or AWSF1Platform(clock_mhz=BEETHOVEN_CLOCK_MHZ)
    return dse_max(CONFIG_FACTORIES[bench], platform, limit)


@dataclass
class ContentionResult:
    ops_per_second: float
    simulated: bool
    server_bound: bool


def dispatch_cost_cycles(platform: Platform) -> int:
    """Host cycles the runtime server spends per command (lock + 6 words)."""
    host = platform.host
    return host.command_lock_cycles + 6 * host.mmio_word_cycles


def analytic_measured(
    n_cores: int, kernel_cycles: int, platform: Platform
) -> ContentionResult:
    """Queueing model of the runtime server (validated against simulation).

    The server serialises one command every D cycles; each core is busy L
    cycles per command plus the command/response network latency.  With n
    cores the system is server-bound when n*D > L, else core-bound.
    """
    d = dispatch_cost_cycles(platform)
    overhead = platform.command_latency_for(0) * 2 + platform.host.response_poll_cycles
    l_eff = kernel_cycles + overhead
    per_op_server = d
    per_op_cores = l_eff / n_cores
    bottleneck = max(per_op_server, per_op_cores)
    ops = (platform.clock_mhz * 1e6) / bottleneck
    return ContentionResult(ops, simulated=False, server_bound=per_op_server >= per_op_cores)


def simulate_measured(
    n_cores: int,
    kernel_cycles: int,
    platform: Optional[Platform] = None,
    rounds: int = 3,
    scheduling: Optional[str] = None,
) -> ContentionResult:
    """Measure multi-core throughput through the real runtime-server model.

    ``scheduling`` overrides the kernel schedule (default: selective); the
    result is schedule-independent — the differential harness pins that down
    on these exact configurations.
    """
    platform = platform or AWSF1Platform(clock_mhz=BEETHOVEN_CLOCK_MHZ)
    build = BeethovenBuild(
        delay_config(n_cores, kernel_cycles),
        platform,
        BuildMode.Simulation,
        scheduling=scheduling,
    )
    handle = FpgaHandle(build.design)
    futures = []
    start = handle.cycle
    for r in range(rounds):
        for core in range(n_cores):
            futures.append(handle.call("Delay", "run", core, job=r))
    for fut in futures:
        fut.get(max_cycles=50_000_000)
    elapsed = handle.cycle - start
    ops = len(futures) / (elapsed / (platform.clock_mhz * 1e6))
    d = dispatch_cost_cycles(platform)
    return ContentionResult(ops, simulated=True, server_bound=n_cores * d > kernel_cycles)


def measured_ops(
    n_cores: int, kernel_cycles: int, platform: Optional[Platform] = None
) -> ContentionResult:
    platform = platform or AWSF1Platform(clock_mhz=BEETHOVEN_CLOCK_MHZ)
    rounds = 3
    if kernel_cycles * rounds <= SIMULATION_CYCLE_BUDGET:
        return simulate_measured(n_cores, kernel_cycles, platform, rounds)
    return analytic_measured(n_cores, kernel_cycles, platform)


@dataclass
class Fig6Row:
    bench: str
    parallelism: str
    n_cores: int
    limiter: str
    hls_ops: float
    spatial_speedup: float
    beethoven_ideal_speedup: float
    beethoven_measured_speedup: float
    measured_simulated: bool


def beethoven_kernel_cycles(bench: str) -> int:
    """Single-core, full-size kernel latency (compute + streaming) in cycles
    at the Beethoven clock, from the core's own schedule."""
    sched: ToolSchedule = SCHEDULES[bench]["beethoven"]
    workload: Workload = TABLE1[bench]
    seconds = sched.kernel_seconds(workload)
    return int(seconds * BEETHOVEN_CLOCK_MHZ * 1e6)


def fig6_row(bench: str, platform: Optional[Platform] = None, max_cores: int = 64) -> Fig6Row:
    platform = platform or AWSF1Platform(clock_mhz=BEETHOVEN_CLOCK_MHZ)
    workload = TABLE1[bench]
    hls = SCHEDULES[bench]["hls"]
    spatial = SCHEDULES[bench]["spatial"]
    beethoven = SCHEDULES[bench]["beethoven"]
    hls_ops = hls.ops_per_second(workload)
    n_cores, limiter, _build = max_feasible_cores(bench, platform, max_cores)
    single = beethoven.ops_per_second(workload)
    ideal = single * n_cores
    kernel_cycles = beethoven_kernel_cycles(bench)
    measured = measured_ops(n_cores, kernel_cycles, platform)
    return Fig6Row(
        bench=bench,
        parallelism=workload.parallelism,
        n_cores=n_cores,
        limiter=limiter,
        hls_ops=hls_ops,
        spatial_speedup=spatial.ops_per_second(workload) / hls_ops,
        beethoven_ideal_speedup=ideal / hls_ops,
        beethoven_measured_speedup=measured.ops_per_second / hls_ops,
        measured_simulated=measured.simulated,
    )


def fig6_all(platform: Optional[Platform] = None, max_cores: int = 64, farm=None):
    """All Figure 6 rows; pass a :class:`repro.farm.Farm` to shard them.

    ``fig6_row`` is a pure function of (bench, platform, max_cores), so the
    farm path is bit-identical to the serial path — rows simply build in
    parallel worker processes and repeat sweeps are served from the result
    cache.
    """
    benches = list(CONFIG_FACTORIES)
    if farm is None:
        return [fig6_row(bench, platform, max_cores) for bench in benches]
    from repro.farm import Job

    jobs = [
        Job(
            "repro.kernels.machsuite.fig6:fig6_row",
            (bench, platform, max_cores),
            label=f"fig6/{bench}",
        )
        for bench in benches
    ]
    return farm.map(jobs)


def render_fig6(rows) -> str:
    lines = [
        f"{'bench':<10} {'par':<7} {'cores':>5} {'limit':>5} "
        f"{'spatial':>8} {'bthvn(ideal)':>13} {'bthvn(meas)':>12} {'meas-src':>8}",
    ]
    for r in rows:
        lines.append(
            f"{r.bench:<10} {r.parallelism:<7} {r.n_cores:>5} {r.limiter:>5} "
            f"{r.spatial_speedup:>7.2f}x {r.beethoven_ideal_speedup:>12.2f}x "
            f"{r.beethoven_measured_speedup:>11.2f}x "
            f"{'sim' if r.measured_simulated else 'model':>8}"
        )
    return "\n".join(lines)
