"""MachSuite Stencil2D and Stencil3D accelerators (Table I).

Stencil2D (N=256, medium parallelism): a 3x3 filter with coefficients loaded
from memory.  The low-effort Beethoven pipeline retires ``unroll`` output
cells per cycle using a row-buffered window (II=1).

Stencil3D (N=32, high parallelism): a 7-point stencil with immediate
coefficients; ``unroll`` output cells per cycle from plane buffers.
"""

from __future__ import annotations

import numpy as np

from repro.command.packing import Address, CommandSpec, EmptyAccelResponse, Field, UInt
from repro.core.config import (
    AcceleratorConfig,
    ReadChannelConfig,
    ScratchpadConfig,
    ScratchpadFeatures,
    WriteChannelConfig,
)
from repro.fpga.device import ResourceVector
from repro.kernels.machsuite.phased import KernelPlan, PhasedKernelCore
from repro.kernels.machsuite.reference import stencil2d, stencil3d

PIPELINE_DEPTH = 10


class Stencil2dCore(PhasedKernelCore):
    """out = conv3x3(grid, coeffs) with pass-through borders."""

    def __init__(self, ctx, unroll: int = 2) -> None:
        super().__init__(ctx)
        self.unroll = unroll
        self.io = self.beethoven_io(
            CommandSpec(
                "stencil2d",
                (
                    Field("grid_addr", Address()),
                    Field("coeff_addr", Address()),
                    Field("out_addr", Address()),
                    Field("n", UInt(12)),
                ),
            ),
            EmptyAccelResponse(),
        )
        self.get_reader_module("grid")
        self.get_reader_module("coeffs")
        self.get_writer_module("result")

    def kernel_resources(self) -> ResourceVector:
        lut = 1_400 + 350 * self.unroll  # 9-tap MAC window per lane
        reg = 2_000 + 300 * self.unroll
        return ResourceVector(clb=max(lut / 6.6, reg / 13.2), lut=lut, reg=reg)

    def compute_cycles(self, n: int) -> int:
        cells = (n - 2) * (n - 2)
        return -(-cells // self.unroll) + PIPELINE_DEPTH

    def plan(self, cmd) -> KernelPlan:
        n = cmd["n"]

        def compute(loaded):
            grid = np.frombuffer(loaded["grid"], dtype=np.int32).reshape(n, n)
            coeffs = np.frombuffer(loaded["coeffs"], dtype=np.int32).reshape(3, 3)
            out = stencil2d(grid, coeffs)
            return {"result": out.tobytes()}, self.compute_cycles(n)

        return KernelPlan(
            loads=[
                ("grid", cmd["grid_addr"], n * n * 4),
                ("coeffs", cmd["coeff_addr"], 36),
            ],
            stores=[("result", cmd["out_addr"])],
            compute=compute,
        )


class Stencil3dCore(PhasedKernelCore):
    """7-point stencil: out = c0*x + c1*sum(neighbours)."""

    def __init__(self, ctx, unroll: int = 4) -> None:
        super().__init__(ctx)
        self.unroll = unroll
        self.io = self.beethoven_io(
            CommandSpec(
                "stencil3d",
                (
                    Field("grid_addr", Address()),
                    Field("out_addr", Address()),
                    Field("n", UInt(8)),
                    Field("c0", UInt(16)),
                    Field("c1", UInt(16)),
                ),
            ),
            EmptyAccelResponse(),
        )
        self.get_reader_module("grid")
        self.get_writer_module("result")

    def kernel_resources(self) -> ResourceVector:
        lut = 1_800 + 420 * self.unroll
        reg = 2_600 + 380 * self.unroll
        return ResourceVector(clb=max(lut / 6.6, reg / 13.2), lut=lut, reg=reg)

    def compute_cycles(self, n: int) -> int:
        cells = (n - 2) ** 3
        return -(-cells // self.unroll) + PIPELINE_DEPTH

    def plan(self, cmd) -> KernelPlan:
        n = cmd["n"]

        def compute(loaded):
            grid = np.frombuffer(loaded["grid"], dtype=np.int32).reshape(n, n, n)
            out = stencil3d(grid, cmd["c0"], cmd["c1"])
            return {"result": out.tobytes()}, self.compute_cycles(n)

        return KernelPlan(
            loads=[("grid", cmd["grid_addr"], n * n * n * 4)],
            stores=[("result", cmd["out_addr"])],
            compute=compute,
        )


def stencil2d_config(
    n_cores: int = 1, unroll: int = 2, n: int = 256, name: str = "Stencil2d"
) -> AcceleratorConfig:
    """Stencil2D System; input and output grids are buffered on chip."""

    def make(ctx):
        return Stencil2dCore(ctx, unroll)

    depth = max(n * n * 4 // 64, 1)
    no_init = ScratchpadFeatures(init_via_reader=False)
    return AcceleratorConfig(
        name=name,
        n_cores=n_cores,
        module_constructor=make,
        memory_channel_config=(
            ReadChannelConfig("grid", data_bytes=64),
            ReadChannelConfig("coeffs", data_bytes=4),
            WriteChannelConfig("result", data_bytes=64),
            ScratchpadConfig("grid_in", 512, depth, features=no_init),
            ScratchpadConfig("grid_out", 512, depth, features=no_init),
        ),
    )


def stencil3d_config(
    n_cores: int = 1, unroll: int = 4, n: int = 32, name: str = "Stencil3d"
) -> AcceleratorConfig:
    """Stencil3D System; both N^3 grids are buffered on chip."""

    def make(ctx):
        return Stencil3dCore(ctx, unroll)

    depth = max(n * n * n * 4 // 64, 1)
    no_init = ScratchpadFeatures(init_via_reader=False)
    return AcceleratorConfig(
        name=name,
        n_cores=n_cores,
        module_constructor=make,
        memory_channel_config=(
            ReadChannelConfig("grid", data_bytes=64),
            WriteChannelConfig("result", data_bytes=64),
            ScratchpadConfig("vol_in", 512, depth, features=no_init),
            ScratchpadConfig("vol_out", 512, depth, features=no_init),
        ),
    )
