"""Table I workloads and per-tool schedule models for Figure 6.

Every implementation (Vitis HLS, Spatial, Beethoven) of a MachSuite kernel is
described by the same schedule family::

    time = (compute_iterations / unroll) * II / clock  +  bytes_moved / mem_bw

The per-tool parameters are the manually-tuned pragma outcomes of Section
III-B, documented here as explicit model inputs:

* **Vitis HLS** selects its own clock at synthesis (we use the 273 MHz a
  typical U200 kernel closes at; the paper notes HLS picks its clock) but is
  stuck at a long initiation interval on loop-carried recurrences (NW) and at
  modest unrolling where on-chip memory ports bottleneck (stencils).
* **Spatial** runs at the platform default 125 MHz with its hardware
  line-buffer/reduce constructs (II = 1 where structurally possible).
* **Beethoven** also runs at 125 MHz (the paper clocks both at the default);
  per-core schedules come from the actual core implementations in this
  package, and multi-core throughput from the real runtime simulation.

The paper's qualitative anchors this table reproduces: NW is unparallelisable
with pragmas (HLS II >> 1) so one Beethoven core already wins ~2x; GeMM and
MD-KNN are LUT-limited for Beethoven; the stencils and NW are BRAM-limited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

HLS_CLOCK_MHZ = 273.0
SPATIAL_CLOCK_MHZ = 125.0
BEETHOVEN_CLOCK_MHZ = 125.0
#: Effective streaming bandwidth one kernel instance achieves (bytes/s); a
#: single stream at 64B/beat on the shared controller, derated by the
#: measured ~85% streaming efficiency of the substrate.
STREAM_BYTES_PER_SEC = 0.85 * 16e9


@dataclass(frozen=True)
class Workload:
    """One Table I row."""

    name: str
    description: str
    parallelism: str  # High / Medium / None (Table I)
    compute_iterations: int  # structural op count of the kernel
    bytes_moved: int  # DRAM traffic per invocation


@dataclass(frozen=True)
class ToolSchedule:
    """One tool's tuned implementation of one workload."""

    tool: str
    clock_mhz: float
    unroll: int
    ii: float
    notes: str = ""

    def kernel_seconds(self, workload: Workload) -> float:
        compute = workload.compute_iterations / self.unroll * self.ii
        compute_s = compute / (self.clock_mhz * 1e6)
        stream_s = workload.bytes_moved / STREAM_BYTES_PER_SEC
        return compute_s + stream_s

    def ops_per_second(self, workload: Workload, instances: int = 1) -> float:
        return instances / self.kernel_seconds(workload)


def _table1() -> Dict[str, Workload]:
    n = 256
    gemm = Workload(
        "gemm", "O(N^3) matrix multiply", "High",
        compute_iterations=n * n * n,  # MAC lattice points
        bytes_moved=3 * n * n * 4,
    )
    nw = Workload(
        "nw", "O(N^2) string alignment", "None",
        compute_iterations=(n + 1) * (n + 1),  # DP cells
        bytes_moved=2 * n + 4 * n,
    )
    stencil2d = Workload(
        "stencil2d", "2D stencil pattern", "Medium",
        compute_iterations=(n - 2) * (n - 2),  # output cells
        bytes_moved=2 * n * n * 4,
    )
    m = 32
    stencil3d = Workload(
        "stencil3d", "3D stencil pattern", "High",
        compute_iterations=(m - 2) ** 3,
        bytes_moved=2 * m**3 * 4,
    )
    atoms, k = 1024, 32
    mdknn = Workload(
        "md-knn", "N-body via k-nearest neighbours", "High",
        compute_iterations=atoms * k,  # pairwise interactions
        bytes_moved=atoms * 12 + atoms * k * 4 + atoms * 12,
    )
    return {w.name: w for w in (gemm, nw, stencil2d, stencil3d, mdknn)}


TABLE1: Dict[str, Workload] = _table1()

#: Manually-tuned pragma outcomes per tool (Section III-B), per workload.
SCHEDULES: Dict[str, Dict[str, ToolSchedule]] = {
    "gemm": {
        "hls": ToolSchedule("hls", HLS_CLOCK_MHZ, unroll=16, ii=1.0,
                            notes="16-lane unroll; deeper unrolls failed routing"),
        "spatial": ToolSchedule("spatial", SPATIAL_CLOCK_MHZ, unroll=16, ii=1.0,
                                notes="same unroll; DSE points beyond failed synthesis"),
        "beethoven": ToolSchedule("beethoven", BEETHOVEN_CLOCK_MHZ, unroll=256, ii=1.0,
                                  notes="16x16 MAC grid per core (medium effort)"),
    },
    "nw": {
        "hls": ToolSchedule("hls", HLS_CLOCK_MHZ, unroll=1, ii=5.0,
                            notes="loop-carried max() recurrence defeats pragmas"),
        "spatial": ToolSchedule("spatial", SPATIAL_CLOCK_MHZ, unroll=1, ii=2.0,
                                notes="explicit wavefront, still dependence-bound"),
        "beethoven": ToolSchedule("beethoven", BEETHOVEN_CLOCK_MHZ, unroll=1, ii=1.0,
                                  notes="hand-pipelined DP cell, one cell/cycle"),
    },
    "stencil2d": {
        "hls": ToolSchedule("hls", HLS_CLOCK_MHZ, unroll=1, ii=2.0,
                            notes="BRAM port bound without manual line buffers"),
        "spatial": ToolSchedule("spatial", SPATIAL_CLOCK_MHZ, unroll=2, ii=1.0,
                                notes="line-buffer construct"),
        "beethoven": ToolSchedule("beethoven", BEETHOVEN_CLOCK_MHZ, unroll=2, ii=1.0,
                                  notes="row-buffered 3x3 window"),
    },
    "stencil3d": {
        "hls": ToolSchedule("hls", HLS_CLOCK_MHZ, unroll=2, ii=1.0,
                            notes="small volume partitions fully"),
        "spatial": ToolSchedule("spatial", SPATIAL_CLOCK_MHZ, unroll=4, ii=1.0,
                                notes="plane buffers"),
        "beethoven": ToolSchedule("beethoven", BEETHOVEN_CLOCK_MHZ, unroll=4, ii=1.0,
                                  notes="plane-buffered 7-point window"),
    },
    "md-knn": {
        "hls": ToolSchedule("hls", 250.0, unroll=4, ii=1.0,
                            notes="FP pipeline lowers achievable clock"),
        "spatial": ToolSchedule("spatial", SPATIAL_CLOCK_MHZ, unroll=4, ii=1.0),
        "beethoven": ToolSchedule("beethoven", BEETHOVEN_CLOCK_MHZ, unroll=8, ii=1.0,
                                  notes="8 interaction lanes per core"),
    },
}
