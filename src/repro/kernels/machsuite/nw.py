"""MachSuite NW accelerator (Table I: O(N^2) string alignment, no parallelism).

Needleman-Wunsch has loop-carried dependencies that defeat HLS unroll
pragmas; the paper's Beethoven implementation still reached 2x the baselines
with a *single* core because a hand-pipelined systolic cell evaluates one DP
cell per cycle (II=1) whereas the HLS schedule is stuck at a longer II on the
anti-diagonal recurrence.  Schedule: (N+1)^2 DP cells at II=1, plus a
traceback phase of at most 2N cycles.
"""

from __future__ import annotations

from repro.command.packing import Address, CommandSpec, Field, ResponseSpec, UInt
from repro.core.config import (
    AcceleratorConfig,
    ReadChannelConfig,
    ScratchpadConfig,
    ScratchpadFeatures,
    WriteChannelConfig,
)
from repro.fpga.device import ResourceVector
from repro.kernels.machsuite.phased import KernelPlan, PhasedKernelCore
from repro.kernels.machsuite.reference import nw

PIPELINE_DEPTH = 6


class NwCore(PhasedKernelCore):
    """Aligns two byte strings; emits padded aligned sequences + score."""

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self.io = self.beethoven_io(
            CommandSpec(
                "nw",
                (
                    Field("seq_a_addr", Address()),
                    Field("seq_b_addr", Address()),
                    Field("out_addr", Address()),
                    Field("n", UInt(12)),
                ),
            ),
            ResponseSpec("nw_result", (Field("score", UInt(32)),)),
        )
        self.get_reader_module("seq_a")
        self.get_reader_module("seq_b")
        self.get_writer_module("aligned")

    def kernel_resources(self) -> ResourceVector:
        # One DP cell datapath + score SRAM row buffers + traceback logic.
        return ResourceVector(clb=520, lut=3_400, reg=2_900)

    def compute_cycles(self, n: int) -> int:
        return (n + 1) * (n + 1) + 2 * n + PIPELINE_DEPTH

    def plan(self, cmd) -> KernelPlan:
        n = cmd["n"]

        def compute(loaded):
            score, out_a, out_b = nw(loaded["seq_a"], loaded["seq_b"])
            # Fixed-size output region: each aligned string padded to 2N.
            blob = out_a.ljust(2 * n, b"-") + out_b.ljust(2 * n, b"-")
            plan_resp = {"score": score & 0xFFFFFFFF}
            self._plan.response.update(plan_resp)
            return {"aligned": blob}, self.compute_cycles(n)

        return KernelPlan(
            loads=[("seq_a", cmd["seq_a_addr"], n), ("seq_b", cmd["seq_b_addr"], n)],
            stores=[("aligned", cmd["out_addr"])],
            compute=compute,
        )


def nw_config(n_cores: int = 1, n: int = 256, name: str = "Nw") -> AcceleratorConfig:
    """NW System; the traceback-pointer matrix (2 bits per DP cell) and the
    score wavefront buffers live on chip."""
    no_init = ScratchpadFeatures(init_via_reader=False)
    cells = (n + 1) * (n + 1)
    return AcceleratorConfig(
        name=name,
        n_cores=n_cores,
        module_constructor=NwCore,
        memory_channel_config=(
            ReadChannelConfig("seq_a", data_bytes=16),
            ReadChannelConfig("seq_b", data_bytes=16),
            WriteChannelConfig("aligned", data_bytes=16),
            # MachSuite's nw keeps the whole DP score matrix on chip for the
            # traceback, plus a 2-bit direction matrix.
            ScratchpadConfig("score_matrix", 32, cells, features=no_init),
            ScratchpadConfig("ptr_matrix", 8, max(cells // 4, 1), features=no_init),
        ),
    )
