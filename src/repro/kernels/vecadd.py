"""Vector-addition core — the paper's running example (Figures 2 and 3).

Streams a vector of 32-bit words from memory through a Reader, adds a scalar
``addend``, and writes the result back over the same region through a Writer.
The configuration helper builds the exact System of Figure 3a.
"""

from __future__ import annotations

from repro.command.packing import Address, CommandSpec, EmptyAccelResponse, Field, UInt
from repro.core.accelerator import AcceleratorCore
from repro.core.config import (
    AcceleratorConfig,
    ReadChannelConfig,
    WriteChannelConfig,
)
from repro.fpga.device import ResourceVector
from repro.memory.types import ReadRequest, WriteRequest


class VectorAddCore(AcceleratorCore):
    """``for i in range(n_eles): vec[i] += addend`` (32-bit wraparound)."""

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self.io = self.beethoven_io(
            CommandSpec(
                "my_accel",
                (
                    Field("addend", UInt(32)),
                    Field("vec_addr", Address()),
                    Field("n_eles", UInt(20)),
                ),
            ),
            EmptyAccelResponse(),
        )
        self.vec_in = self.get_reader_module("vec_in")
        self.vec_out = self.get_writer_module("vec_out")
        self._addend = 0
        self._active = False
        self.words_processed = 0

    def kernel_resources(self) -> ResourceVector:
        # A 32-bit adder plus a tiny FSM.
        return ResourceVector(clb=20, lut=120, reg=140)

    def tick(self, cycle: int) -> None:
        io = self.io
        if (
            not self._active
            and io.req.can_pop()
            and self.vec_in.request.can_push()
            and self.vec_out.request.can_push()
        ):
            cmd = io.req.pop()
            n_bytes = cmd["n_eles"] * 4
            self.vec_in.request.push(ReadRequest(cmd["vec_addr"], n_bytes))
            self.vec_out.request.push(WriteRequest(cmd["vec_addr"], n_bytes))
            self._addend = cmd["addend"]
            self._active = True
        if self._active and self.vec_in.data.can_pop() and self.vec_out.data.can_push():
            word = int.from_bytes(self.vec_in.data.pop(), "little")
            total = (word + self._addend) & 0xFFFFFFFF
            self.vec_out.data.push(total.to_bytes(4, "little"))
            self.words_processed += 1
        if self._active and self.vec_out.done.can_pop() and io.resp.can_push():
            self.vec_out.done.pop()
            io.resp.push({})
            self._active = False


def vector_add_config(n_cores: int = 1, name: str = "MyAcceleratorSystem") -> AcceleratorConfig:
    """The configuration of paper Figure 3a."""
    return AcceleratorConfig(
        name=name,
        n_cores=n_cores,
        module_constructor=VectorAddCore,
        memory_channel_config=(
            ReadChannelConfig("vec_in", data_bytes=4),
            WriteChannelConfig("vec_out", data_bytes=4),
        ),
    )
