"""Analytical CPU/GPU baselines for the attention case study (Table III).

We have neither the paper's 12-core i7-12700K nor its RTX 3090, so these
baselines are roofline models with documented constants: peak arithmetic
throughput, memory bandwidth, TDP-class power, and an *achieved fraction*
anchored to the attention throughputs the paper measured (attention at batch
size is softmax/memory-bound, far from peak FLOPs on both machines — the
paper's own numbers imply ~2-3% of peak on each, which is what we encode).
``measure_numpy_attention`` additionally reports a genuinely measured number
on the local machine as a sanity row.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.kernels.attention.reference import attention_float


def attention_flops(dim: int, n_keys: int) -> float:
    """FLOPs per attention op: scores (2nd per key) + weighted sum + softmax."""
    return 2.0 * n_keys * dim + 2.0 * n_keys * dim + 5.0 * n_keys


@dataclass(frozen=True)
class RooflineBaseline:
    """A machine described by peak numbers and an achieved fraction."""

    name: str
    peak_flops: float  # at the relevant precision
    mem_bw_bytes: float
    power_w: float
    achieved_fraction: float  # of peak, for this workload class

    def ops_per_second(self, dim: int, n_keys: int) -> float:
        return self.achieved_fraction * self.peak_flops / attention_flops(dim, n_keys)

    def energy_per_op_uj(self, dim: int, n_keys: int) -> float:
        return self.power_w / self.ops_per_second(dim, n_keys) * 1e6


#: 12-core i7-12700K, FP32: ~0.6 TFLOP/s peak, 75 W package power under
#: this load.  Fraction anchored to the paper's 84.8 K attention ops/s.
CPU_I7_12700K = RooflineBaseline(
    "cpu-i7-12700k", peak_flops=0.6e12, mem_bw_bytes=75e9, power_w=75.0,
    achieved_fraction=0.0118,
)

#: RTX 3090, FP16 tensor: ~35.6 TFLOP/s peak, 320 W.  Fraction anchored to
#: the paper's 5.0 M attention ops/s at batch 1024x18.
GPU_RTX_3090 = RooflineBaseline(
    "gpu-rtx3090", peak_flops=35.6e12, mem_bw_bytes=936e9, power_w=320.0,
    achieved_fraction=0.0117,
)


@dataclass(frozen=True)
class AsicA3Baseline:
    """The original single-core A^3 ASIC at 1 GHz (paper Table III)."""

    clock_hz: float = 1.0e9
    pipeline_overhead_cycles: int = 20

    def ops_per_second(self, n_keys: int) -> float:
        return self.clock_hz / (n_keys + self.pipeline_overhead_cycles)


def measure_numpy_attention(dim: int, n_keys: int, iterations: int = 200) -> float:
    """Actually measured single-thread NumPy attention ops/s on this host."""
    rng = np.random.default_rng(0)
    q = rng.normal(0, 1, dim).astype(np.float32)
    keys = rng.normal(0, 1, (n_keys, dim)).astype(np.float32)
    values = rng.normal(0, 1, (n_keys, dim)).astype(np.float32)
    attention_float(q, keys, values)  # warm
    start = time.perf_counter()
    for _ in range(iterations):
        attention_float(q, keys, values)
    elapsed = time.perf_counter() - start
    return iterations / elapsed
