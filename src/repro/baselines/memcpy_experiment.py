"""Memcpy microbenchmark harness (Figures 4 and 5, ablation E8).

Runs the four implementations of Section III-A against the same DRAM model
and reports throughput plus per-transaction timelines:

* ``beethoven``      — framework-generated core, 64-beat bursts over 4 AXI IDs
* ``beethoven-notlp``— same core, single AXI ID
* ``pure-hdl``       — hand-written master, direct controller attach
* ``hls``            — Vitis-style master, 16-beat bursts on one ID
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.axi import AxiMonitor, AxiParams, AxiPort, MonitoredAxiPort, TxnRecord
from repro.baselines.hdl_memcpy import HdlMemcpyMaster
from repro.baselines.hls_memcpy import HlsMemcpyMaster
from repro.core.build import BeethovenBuild, BuildMode
from repro.dram import DDR4_AWS_F1, MemoryController
from repro.kernels.memcpy import memcpy_config
from repro.platforms import AWSF1Platform
from repro.runtime import FpgaHandle
from repro.sim import Simulator

CLOCK_NS = 4.0  # 250 MHz


@dataclass
class MemcpyResult:
    implementation: str
    size_bytes: int
    cycles: int
    records: List[TxnRecord] = field(default_factory=list)
    verified: bool = False

    @property
    def gbps(self) -> float:
        seconds = self.cycles * CLOCK_NS * 1e-9
        return self.size_bytes / seconds / 1e9 if seconds else 0.0


def _pattern(size: int) -> bytes:
    return bytes((i * 131 + 17) % 256 for i in range(size))


def _standalone_stack():
    port = AxiPort(AxiParams(), depth=8)
    monitor = AxiMonitor("mem")
    mport = MonitoredAxiPort(port, monitor)
    controller = MemoryController(mport, DDR4_AWS_F1)
    sim = Simulator()
    sim.add(controller)
    for chan in port.channels():
        sim.register_channel(chan)
    return sim, controller, mport, monitor


def run_hdl_memcpy(size_bytes: int, burst_beats: int = 64) -> MemcpyResult:
    sim, controller, mport, monitor = _standalone_stack()
    master = HdlMemcpyMaster(mport, burst_beats=burst_beats)
    sim.add(master)
    src, dst = 0x0, 0x4000_0000
    controller.store.write(src, _pattern(size_bytes))
    master.start(src, dst, size_bytes)
    start = sim.cycle
    sim.run(200 * max(size_bytes // 64, 64) + 50_000, until=lambda: master.done)
    result = MemcpyResult("pure-hdl", size_bytes, sim.cycle - start, monitor.records)
    result.verified = controller.store.read(dst, size_bytes) == _pattern(size_bytes)
    return result


def run_hls_memcpy(
    size_bytes: int, burst_beats: int = 16, fifo_bytes: int = 4096
) -> MemcpyResult:
    sim, controller, mport, monitor = _standalone_stack()
    master = HlsMemcpyMaster(mport, burst_beats=burst_beats, fifo_bytes=fifo_bytes)
    sim.add(master)
    src, dst = 0x0, 0x4000_0000
    controller.store.write(src, _pattern(size_bytes))
    master.start(src, dst, size_bytes)
    start = sim.cycle
    sim.run(200 * max(size_bytes // 64, 64) + 50_000, until=lambda: master.done)
    result = MemcpyResult("hls", size_bytes, sim.cycle - start, monitor.records)
    result.verified = controller.store.read(dst, size_bytes) == _pattern(size_bytes)
    return result


def run_beethoven_memcpy(
    size_bytes: int,
    tlp: bool = True,
    burst_beats: int = 64,
    label: Optional[str] = None,
) -> MemcpyResult:
    build = BeethovenBuild(
        memcpy_config(n_cores=1, tlp=tlp, burst_beats=burst_beats),
        AWSF1Platform(),
        BuildMode.Simulation,
    )
    handle = FpgaHandle(build.design)
    src = handle.malloc(size_bytes)
    dst = handle.malloc(size_bytes)
    src.write(_pattern(size_bytes))
    handle.copy_to_fpga(src)
    # Measure fabric time: from when the command reaches the core to response.
    start = handle.cycle
    resp = handle.call(
        "Memcpy", "memcpy", 0,
        src=src.fpga_addr, dst=dst.fpga_addr, len_bytes=size_bytes,
    )
    resp.get(max_cycles=200 * max(size_bytes // 64, 64) + 100_000)
    cycles = handle.cycle - start
    handle.copy_from_fpga(dst)
    name = label or ("beethoven" if tlp else "beethoven-notlp")
    result = MemcpyResult(name, size_bytes, cycles, build.design.monitor.records)
    result.verified = dst.read() == _pattern(size_bytes)
    return result


def run_all(size_bytes: int) -> Dict[str, MemcpyResult]:
    """The Figure 4 comparison at one copy size."""
    return {
        "hls": run_hls_memcpy(size_bytes),
        "beethoven": run_beethoven_memcpy(size_bytes, tlp=True),
        "beethoven-notlp": run_beethoven_memcpy(size_bytes, tlp=False),
        "pure-hdl": run_hdl_memcpy(size_bytes),
    }


def timeline(result: MemcpyResult) -> List[dict]:
    """Figure-5-style transaction spans, sorted by issue time."""
    rows = []
    for rec in result.records:
        if rec.complete_cycle is None:
            continue
        rows.append(
            {
                "kind": rec.kind,
                "id": rec.axi_id,
                "addr": rec.addr,
                "beats": rec.length,
                "issue": rec.issue_cycle,
                "first_data": rec.first_data_cycle,
                "complete": rec.complete_cycle,
            }
        )
    return sorted(rows, key=lambda r: r["issue"])


def render_timeline(result: MemcpyResult, width: int = 72) -> str:
    """ASCII reproduction of the Figure 5 timing diagrams."""
    rows = timeline(result)
    if not rows:
        return "(no transactions)"
    t0 = min(r["issue"] for r in rows)
    t1 = max(r["complete"] for r in rows)
    span = max(t1 - t0, 1)
    lines = [f"{result.implementation}: {len(rows)} txns over {span} cycles"]
    for r in rows:
        a = int((r["issue"] - t0) / span * (width - 1))
        b = int((r["complete"] - t0) / span * (width - 1))
        bar = " " * a + ("R" if r["kind"] == "read" else "W") * max(b - a, 1)
        lines.append(
            f"  id{r['id']:>2} {r['kind'][0]} {bar:<{width}} "
            f"[{r['issue'] - t0:>6},{r['complete'] - t0:>6}]"
        )
    return "\n".join(lines)
