"""A fixed-latency stand-in core for host-contention studies.

``DelayCore`` accepts a command, stays busy for a configured number of
cycles, then responds — the minimal core that still exercises the *entire*
host path (runtime server lock, MMIO words, command router, response
polling).  The Figure 6 ideal-vs-measured gap is a host-path property, so
measuring it with DelayCores at each kernel's latency is exact while keeping
multi-core simulations tractable for long kernels.
"""

from __future__ import annotations

from repro.command.packing import CommandSpec, EmptyAccelResponse, Field, UInt
from repro.core.accelerator import AcceleratorCore
from repro.core.config import AcceleratorConfig


class DelayCore(AcceleratorCore):
    """Busy for ``latency_cycles`` per command, then responds."""

    def __init__(self, ctx, latency_cycles: int) -> None:
        super().__init__(ctx)
        self.latency_cycles = max(int(latency_cycles), 1)
        self.io = self.beethoven_io(
            CommandSpec("run", (Field("job", UInt(32)),)),
            EmptyAccelResponse(),
        )
        self._busy = 0
        self._responding = False
        self.jobs_done = 0

    def tick(self, cycle: int) -> None:
        if self._responding:
            if self.io.resp.can_push():
                self.io.resp.push({})
                self.jobs_done += 1
                self._responding = False
            return
        if self._busy > 0:
            self._busy -= 1
            if self._busy == 0:
                self._responding = True
            return
        if self.io.req.can_pop():
            self.io.req.pop()
            self._busy = self.latency_cycles

    def idle(self) -> bool:
        return self._busy == 0 and not self._responding


def delay_config(n_cores: int, latency_cycles: int, name: str = "Delay") -> AcceleratorConfig:
    def make(ctx):
        return DelayCore(ctx, latency_cycles)

    return AcceleratorConfig(name=name, n_cores=n_cores, module_constructor=make)
