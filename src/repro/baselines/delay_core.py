"""A fixed-latency stand-in core for host-contention studies.

``DelayCore`` accepts a command, stays busy for a configured number of
cycles, then responds — the minimal core that still exercises the *entire*
host path (runtime server lock, MMIO words, command router, response
polling).  The Figure 6 ideal-vs-measured gap is a host-path property, so
measuring it with DelayCores at each kernel's latency is exact while keeping
multi-core simulations tractable for long kernels.
"""

from __future__ import annotations

from typing import Optional

from repro.command.packing import CommandSpec, EmptyAccelResponse, Field, UInt
from repro.core.accelerator import AcceleratorCore
from repro.core.config import AcceleratorConfig
from repro.sim import NEVER


class DelayCore(AcceleratorCore):
    """Busy for ``latency_cycles`` per command, then responds.

    The busy window is tracked as an absolute cycle (``_respond_at``) rather
    than a decrementing counter so that the core is a genuine no-op while it
    waits — which lets it advertise the wake-up cycle via ``next_event`` and
    makes long-latency kernels cheap under event-skipping simulation.
    """

    def __init__(self, ctx, latency_cycles: int, io_name: str = "run") -> None:
        super().__init__(ctx)
        self.latency_cycles = max(int(latency_cycles), 1)
        self.io = self.beethoven_io(
            CommandSpec(io_name, (Field("job", UInt(32)),)),
            EmptyAccelResponse(),
        )
        self._respond_at: Optional[int] = None
        self._responding = False
        self.jobs_done = 0

    def tick(self, cycle: int) -> None:
        if self._responding:
            if self.io.resp.can_push():
                self.io.resp.push({})
                self.jobs_done += 1
                self._responding = False
            return
        if self._respond_at is not None:
            if cycle >= self._respond_at:
                self._respond_at = None
                self._responding = True
            return
        if self.io.req.can_pop():
            self.io.req.pop()
            self._respond_at = cycle + self.latency_cycles

    def next_event(self, cycle: int) -> float:
        if self._responding:
            return cycle
        if self._respond_at is not None:
            return max(cycle, self._respond_at)
        return NEVER  # waiting for a command: purely channel-reactive

    def idle(self) -> bool:
        return self._respond_at is None and not self._responding


def delay_config(
    n_cores: int,
    latency_cycles: int,
    name: str = "Delay",
    io_name: str = "run",
) -> AcceleratorConfig:
    """``io_name`` names the command IO — i.e. the *kernel class* the serving
    layer routes on — so heterogeneous pools ("gemm" cores vs "attn" cores)
    can be modelled with delay cores of different latencies."""

    def make(ctx):
        return DelayCore(ctx, latency_cycles, io_name=io_name)

    return AcceleratorConfig(name=name, n_cores=n_cores, module_constructor=make)
