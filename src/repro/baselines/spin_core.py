"""A compute-dense stand-in core for parallel-simulation benchmarks.

``SpinCore`` is the opposite of :class:`repro.baselines.delay_core.DelayCore`:
where DelayCore sleeps through its latency window (making simulation nearly
free under event skipping), SpinCore *computes* every cycle of its window —
a fixed number of integer-hash steps per tick — so simulating a many-core
design costs real host CPU.  That is exactly the workload profile where
sharding the SoC across worker processes (``repro.dist``) pays: the per-tick
arithmetic parallelises across partitions while the synchronization traffic
stays on the thin SLR bridges.

The config declares one (unused) read channel so the elaborated design has
AXI endpoints and therefore a memory tree with SLR-crossing pipes — the cut
points the partitioner needs.
"""

from __future__ import annotations

from repro.command.packing import CommandSpec, EmptyAccelResponse, Field, UInt
from repro.core.accelerator import AcceleratorCore
from repro.core.config import AcceleratorConfig, ReadChannelConfig
from repro.fpga.device import ResourceVector
from repro.sim import NEVER


class SpinCore(AcceleratorCore):
    """Spins ``rounds`` cycles of integer hashing per command, then responds."""

    def __init__(self, ctx, work_per_tick: int = 64) -> None:
        super().__init__(ctx)
        self.work_per_tick = max(int(work_per_tick), 1)
        self.io = self.beethoven_io(
            CommandSpec(
                "spin",
                (Field("rounds", UInt(24)), Field("seed", UInt(32))),
            ),
            EmptyAccelResponse(),
        )
        self._remaining = 0
        self._state = 0
        self._done_pending = False
        self.jobs_done = 0

    def kernel_resources(self) -> ResourceVector:
        # A wide integer datapath; roughly a small ALU cluster.
        return ResourceVector(clb=120, lut=900, reg=1100)

    def tick(self, cycle: int) -> None:
        if self._done_pending:
            if self.io.resp.can_push():
                self.io.resp.push({})
                self.jobs_done += 1
                self._done_pending = False
            return
        if self._remaining > 0:
            x = self._state
            for _ in range(self.work_per_tick):
                x = (x * 1103515245 + 12345) & 0xFFFFFFFF
                x ^= x >> 13
            self._state = x
            self._remaining -= 1
            if self._remaining == 0:
                self._done_pending = True
            return
        if self.io.req.can_pop():
            cmd = self.io.req.pop()
            self._remaining = max(int(cmd["rounds"]), 1)
            self._state = int(cmd["seed"]) & 0xFFFFFFFF

    def next_event(self, cycle: int) -> float:
        if self._remaining > 0 or self._done_pending:
            return cycle  # compute-dense: must be ticked every cycle
        return NEVER  # idle: woken by the next command

    def idle(self) -> bool:
        return self._remaining == 0 and not self._done_pending


def spin_config(
    n_cores: int,
    name: str = "Spin",
    work_per_tick: int = 64,
) -> AcceleratorConfig:
    def make(ctx):
        return SpinCore(ctx, work_per_tick=work_per_tick)

    return AcceleratorConfig(
        name=name,
        n_cores=n_cores,
        module_constructor=make,
        memory_channel_config=(
            # Unused data path; present so the design elaborates a memory
            # tree (and with it the SLR bridges the partitioner cuts).
            ReadChannelConfig("probe", data_bytes=4),
        ),
    )
