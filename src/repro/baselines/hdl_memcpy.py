"""Hand-written-HDL memcpy baseline (paper Section III-A, Figure 5c).

Models the paper's ~470-line pure-Chisel implementation: read and write
transactions overlap, but the design uses a single AXI ID per direction and
keeps only one transaction per ID in flight at a time, issuing 64-beat
bursts.  It connects *directly* to the memory controller port — no generated
interconnect — which is exactly why it edges out Beethoven by a few percent
on large copies (no framework plumbing) while remaining a one-off,
non-portable design.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.axi.monitor import MonitoredAxiPort
from repro.axi.types import ARReq, AWReq, WBeat
from repro.memory.types import split_into_bursts
from repro.sim import Component


class HdlMemcpyMaster(Component):
    """Single-outstanding-per-direction streaming copier."""

    def __init__(
        self,
        mport: MonitoredAxiPort,
        burst_beats: int = 64,
        fifo_bytes: int = 16 * 4096,
        name: str = "hdl_memcpy",
    ) -> None:
        super().__init__(name)
        self.mport = mport
        self.port = mport.port
        self.burst_beats = burst_beats
        self.fifo_bytes = fifo_bytes
        self._read_segments: Deque = deque()
        self._write_segments: Deque = deque()
        self._fifo: Deque[bytes] = deque()  # beat-sized chunks read but unwritten
        self._fifo_bytes = 0
        self._read_open = False
        self._aw_open: Optional[int] = None  # beats remaining in open write burst
        self._w_payload: Deque[bytes] = deque()
        self._writes_outstanding = 0
        self._write_inflight = False
        self.done = False
        self.started = False
        self._src = self._dst = self._len = 0

    def start(self, src: int, dst: int, length: int) -> None:
        beat = self.port.params.beat_bytes
        self._read_segments = deque(
            split_into_bursts(src, length, beat, self.burst_beats)
        )
        self._write_segments = deque(
            split_into_bursts(dst, length, beat, self.burst_beats)
        )
        self.done = False
        self.started = True

    def idle(self) -> bool:
        return self.done or not self.started

    def tick(self, cycle: int) -> None:
        if not self.started or self.done:
            return
        beat = self.port.params.beat_bytes
        # Issue the next read burst when none is in flight and the FIFO has
        # room for a whole burst (single outstanding transaction per ID).
        if (
            not self._read_open
            and self._read_segments
            and self.port.ar.can_push()
            and self._fifo_bytes + self.burst_beats * beat <= self.fifo_bytes
        ):
            addr, beats, _payload = self._read_segments.popleft()
            self.mport.push_ar(cycle, ARReq(axi_id=0, addr=addr, length=beats))
            self._read_open = True
        if self.port.r.can_pop():
            rbeat = self.port.r.pop()
            self._fifo.append(rbeat.data)
            self._fifo_bytes += len(rbeat.data)
            if rbeat.last:
                self._read_open = False
        # Open a write burst as soon as a full burst of data is banked.
        if (
            not self._write_inflight
            and self._write_segments
            and self.port.aw.can_push()
        ):
            addr, beats, _payload = self._write_segments[0]
            if self._fifo_bytes >= beats * beat:
                self._write_segments.popleft()
                self.mport.push_aw(cycle, AWReq(axi_id=0, addr=addr, length=beats))
                self._aw_open = beats
                self._write_inflight = True
        if self._aw_open and self.port.w.can_push() and self._fifo:
            chunk = self._fifo.popleft()
            self._fifo_bytes -= len(chunk)
            last = self._aw_open == 1
            self.mport.push_w(cycle, WBeat(chunk, last=last))
            self._aw_open -= 1
            if last:
                self._aw_open = None
                self._writes_outstanding += 1
        if self.port.b.can_pop():
            self.port.b.pop()
            self._writes_outstanding -= 1
            self._write_inflight = False
            if (
                not self._write_segments
                and not self._read_segments
                and self._writes_outstanding == 0
                and not self._fifo
            ):
                self.done = True
