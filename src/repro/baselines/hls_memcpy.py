"""Vitis-HLS-style memcpy baseline (paper Section III-A, Figure 5a).

Models the behaviour the paper measured from the compiled HLS kernel:

* every transaction uses the *same* AXI ID (HLS m_axi ports do not split
  traffic over IDs), so the memory controller must process them in order;
* although the source was annotated for 64-beat bursts, the compiled output
  only issued 16-beat bursts — we default to that observed burst length;
* read requests are emitted back-to-back up to the port's outstanding limit,
  and writes are produced by the dataflow pipeline once a full burst of data
  has passed through its (modest) stream FIFO.

The combination — short bursts, single-ID in-order service, and a shallow
dataflow FIFO — is what lets reads monopolise the controller while writes
queue up behind them under load.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.axi.monitor import MonitoredAxiPort
from repro.axi.types import ARReq, AWReq, WBeat
from repro.memory.types import split_into_bursts
from repro.sim import Component


class HlsMemcpyMaster(Component):
    """Single-ID, short-burst, FIFO-coupled copier."""

    def __init__(
        self,
        mport: MonitoredAxiPort,
        burst_beats: int = 16,
        max_outstanding_reads: int = 16,
        fifo_bytes: int = 4096,
        name: str = "hls_memcpy",
    ) -> None:
        super().__init__(name)
        self.mport = mport
        self.port = mport.port
        self.burst_beats = burst_beats
        self.max_outstanding_reads = max_outstanding_reads
        self.fifo_bytes = fifo_bytes
        self._read_segments: Deque = deque()
        self._write_segments: Deque = deque()
        self._fifo: Deque[bytes] = deque()
        self._fifo_bytes = 0
        self._reads_outstanding = 0
        self._reserved_bytes = 0
        self._aw_open: Optional[int] = None
        self._writes_outstanding = 0
        self.done = False
        self.started = False

    def start(self, src: int, dst: int, length: int) -> None:
        beat = self.port.params.beat_bytes
        self._read_segments = deque(split_into_bursts(src, length, beat, self.burst_beats))
        self._write_segments = deque(split_into_bursts(dst, length, beat, self.burst_beats))
        self.done = False
        self.started = True

    def idle(self) -> bool:
        return self.done or not self.started

    def tick(self, cycle: int) -> None:
        if not self.started or self.done:
            return
        beat = self.port.params.beat_bytes
        # Burst-mode read prefetch: issue ARs while credit remains.  The FIFO
        # reservation bounds read-ahead to the stream depth HLS synthesised.
        if (
            self._read_segments
            and self._reads_outstanding < self.max_outstanding_reads
            and self.port.ar.can_push()
        ):
            addr, beats, _payload = self._read_segments[0]
            if self._reserved_bytes + beats * beat <= self.fifo_bytes:
                self._read_segments.popleft()
                self.mport.push_ar(cycle, ARReq(axi_id=0, addr=addr, length=beats))
                self._reads_outstanding += 1
                self._reserved_bytes += beats * beat
        if self.port.r.can_pop():
            rbeat = self.port.r.pop()
            self._fifo.append(rbeat.data)
            self._fifo_bytes += len(rbeat.data)
            if rbeat.last:
                self._reads_outstanding -= 1
        # The write side of the dataflow pipeline: open a burst once its data
        # has fully arrived in the stream FIFO, also on AXI ID 0.
        if self._aw_open is None and self._write_segments and self.port.aw.can_push():
            addr, beats, _payload = self._write_segments[0]
            if self._fifo_bytes >= beats * beat:
                self._write_segments.popleft()
                self.mport.push_aw(cycle, AWReq(axi_id=0, addr=addr, length=beats))
                self._aw_open = beats
        if self._aw_open and self.port.w.can_push() and self._fifo:
            chunk = self._fifo.popleft()
            self._fifo_bytes -= len(chunk)
            self._reserved_bytes -= len(chunk)
            last = self._aw_open == 1
            self.mport.push_w(cycle, WBeat(chunk, last=last))
            self._aw_open -= 1
            if last:
                self._aw_open = None
                self._writes_outstanding += 1
        if self.port.b.can_pop():
            self.port.b.pop()
            self._writes_outstanding -= 1
            if (
                not self._read_segments
                and not self._write_segments
                and self._writes_outstanding == 0
                and self._aw_open is None
                and not self._fifo
            ):
                self.done = True
