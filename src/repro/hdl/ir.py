"""Structural HDL intermediate representation.

The paper's Beethoven elaborates Chisel into FIRRTL/Verilog.  We reproduce
the *composition* layer: a structural IR of modules, typed ports, nets and
memory instances, which the elaborator populates while it builds the
simulation model, and which can be emitted as synthesisable-looking Verilog
netlists plus constraint files.  Behavioural bodies are represented as
attributes/comments (reduced fidelity, per DESIGN.md): what matters for the
reproduction is that the hierarchy, port widths, memory shapes and placement
annotations — the inputs to floorplanning, memcell mapping and resource
estimation — are exact.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def sanitize(name: str) -> str:
    """Make an arbitrary instance path a legal Verilog identifier."""
    cleaned = re.sub(r"[^A-Za-z0-9_]", "_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "m_" + cleaned
    return cleaned


@dataclass(frozen=True)
class HdlPort:
    name: str
    direction: str  # "input" | "output"
    width: int = 1

    def __post_init__(self) -> None:
        if self.direction not in ("input", "output"):
            raise ValueError(f"bad port direction {self.direction!r}")
        if self.width < 1:
            raise ValueError(f"bad port width {self.width}")
        if not _IDENT.match(self.name):
            raise ValueError(f"illegal port name {self.name!r}")


@dataclass
class HdlMemory:
    """An on-chip memory instance; the memcell mapper annotates it."""

    name: str
    width_bits: int
    depth: int
    n_read_ports: int = 1
    n_write_ports: int = 1
    latency: int = 1
    cell_mapping: Optional[str] = None  # "BRAM" | "URAM" | "LUTRAM" | "SRAM_MACRO"
    macro_plan: Optional[object] = None  # filled by the ASIC memory compiler

    @property
    def bits(self) -> int:
        return self.width_bits * self.depth


@dataclass
class HdlInstance:
    inst_name: str
    module: "HdlModule"
    connections: Dict[str, str] = field(default_factory=dict)  # port -> net


class HdlModule:
    """A module definition: ports, nets, child instances, memories."""

    def __init__(self, name: str, doc: str = "") -> None:
        if not _IDENT.match(name):
            raise ValueError(f"illegal module name {name!r}")
        self.name = name
        self.doc = doc
        self.ports: List[HdlPort] = []
        self.nets: Dict[str, int] = {}  # net name -> width
        self.instances: List[HdlInstance] = []
        self.memories: List[HdlMemory] = []
        self.attrs: Dict[str, object] = {}  # slr, resource annotations, etc.

    # -- construction -----------------------------------------------------
    def add_port(self, name: str, direction: str, width: int = 1) -> HdlPort:
        if any(p.name == name for p in self.ports):
            raise ValueError(f"duplicate port {name!r} on {self.name}")
        port = HdlPort(name, direction, width)
        self.ports.append(port)
        return port

    def add_net(self, name: str, width: int = 1) -> str:
        if not _IDENT.match(name):
            raise ValueError(f"illegal net name {name!r}")
        existing = self.nets.get(name)
        if existing is not None and existing != width:
            raise ValueError(f"net {name!r} redefined with different width")
        self.nets[name] = width
        return name

    def instantiate(
        self, module: "HdlModule", inst_name: str, connections: Optional[Dict[str, str]] = None
    ) -> HdlInstance:
        inst_name = sanitize(inst_name)
        if any(i.inst_name == inst_name for i in self.instances):
            raise ValueError(f"duplicate instance {inst_name!r} in {self.name}")
        conns = dict(connections or {})
        port_names = {p.name for p in module.ports}
        unknown = set(conns) - port_names
        if unknown:
            raise ValueError(
                f"instance {inst_name!r}: no such ports {sorted(unknown)} on {module.name}"
            )
        inst = HdlInstance(inst_name, module, conns)
        self.instances.append(inst)
        return inst

    def add_memory(self, mem: HdlMemory) -> HdlMemory:
        self.memories.append(mem)
        return mem

    # -- queries ------------------------------------------------------------
    def walk(self) -> Iterable["HdlModule"]:
        """Yield this module and all unique descendants, leaves first."""
        seen: Dict[str, HdlModule] = {}

        def visit(mod: "HdlModule") -> None:
            for inst in mod.instances:
                visit(inst.module)
            if mod.name not in seen:
                seen[mod.name] = mod

        visit(self)
        return seen.values()

    def count_instances(self) -> int:
        return sum(1 for _ in self._walk_instances())

    def _walk_instances(self):
        for inst in self.instances:
            yield inst
            yield from inst.module._walk_instances()

    def all_memories(self) -> List[Tuple[str, HdlMemory]]:
        """(hierarchical path, memory) for every memory in the tree."""
        out: List[Tuple[str, HdlMemory]] = []

        def visit(mod: "HdlModule", path: str) -> None:
            for mem in mod.memories:
                out.append((f"{path}/{mem.name}" if path else mem.name, mem))
            for inst in mod.instances:
                visit(inst.module, f"{path}/{inst.inst_name}" if path else inst.inst_name)

        visit(self, "")
        return out
