"""Structural HDL IR and Verilog emission."""

from repro.hdl.ir import HdlInstance, HdlMemory, HdlModule, HdlPort, sanitize
from repro.hdl.verilog import emit_design, emit_module

__all__ = [
    "HdlInstance",
    "HdlMemory",
    "HdlModule",
    "HdlPort",
    "sanitize",
    "emit_design",
    "emit_module",
]
