"""Post-simulation analysis helpers.

Operate on :class:`~repro.axi.TxnRecord` lists (from the AXI monitor) and on
controller reports to extract the quantities the paper's evaluation plots:
throughput, latency distributions, latency-under-load growth, and per-master
bandwidth shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.axi.monitor import TxnRecord


@dataclass(frozen=True)
class LatencyStats:
    count: int
    mean: float
    p50: float
    p95: float
    max: float
    growth: float  # max latency / first-quartile mean: queueing indicator

    @staticmethod
    def empty() -> "LatencyStats":
        return LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 1.0)


def _percentile(sorted_vals: Sequence[int], frac: float) -> float:
    """Percentile with linear interpolation between closest ranks.

    ``frac`` in [0, 1] maps onto rank ``frac * (n - 1)``; fractional ranks
    interpolate between the two bracketing observations (the numpy
    ``linear`` convention), so p50 of ``[1, 2, 3, 4]`` is 2.5, not 3.
    """
    if not sorted_vals:
        return 0.0
    frac = min(max(frac, 0.0), 1.0)
    rank = frac * (len(sorted_vals) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_vals) - 1)
    weight = rank - lo
    return float(sorted_vals[lo]) + (float(sorted_vals[hi]) - float(sorted_vals[lo])) * weight


def latency_stats(records: Sequence[TxnRecord], kind: Optional[str] = None) -> LatencyStats:
    """Latency distribution of completed transactions."""
    lats = [
        r.latency
        for r in records
        if r.complete_cycle is not None and (kind is None or r.kind == kind)
    ]
    if not lats:
        return LatencyStats.empty()
    ordered = sorted(lats)
    quartile = max(len(lats) // 4, 1)
    by_issue = [
        r.latency
        for r in sorted(
            (
                r
                for r in records
                if r.complete_cycle is not None and (kind is None or r.kind == kind)
            ),
            key=lambda r: r.issue_cycle,
        )
    ]
    head_mean = sum(by_issue[:quartile]) / quartile
    return LatencyStats(
        count=len(lats),
        mean=sum(lats) / len(lats),
        p50=_percentile(ordered, 0.50),
        p95=_percentile(ordered, 0.95),
        max=float(ordered[-1]),
        growth=ordered[-1] / head_mean if head_mean else 1.0,
    )


def bytes_transferred(records: Sequence[TxnRecord], beat_bytes: int = 64) -> Dict[str, int]:
    out = {"read": 0, "write": 0}
    for r in records:
        if r.complete_cycle is not None:
            out[r.kind] += r.length * beat_bytes
    return out


def bandwidth_share(
    records: Sequence[TxnRecord], region_of, beat_bytes: int = 64
) -> Dict[object, int]:
    """Bytes moved per region key (``region_of(addr) -> key``): used to
    check that the tree arbitration shares bandwidth fairly across masters
    working in disjoint address regions."""
    shares: Dict[object, int] = {}
    for r in records:
        if r.complete_cycle is None:
            continue
        key = region_of(r.addr)
        shares[key] = shares.get(key, 0) + r.length * beat_bytes
    return shares


# ---------------------------------------------------------------------------
# Registry-backed views (see :mod:`repro.obs.registry`).
#
# These read the unified metric namespace instead of reaching into model
# internals, so they work on any design — or on a metrics dump loaded back
# from ``export_metrics`` — without holding the live objects.
# ---------------------------------------------------------------------------


def registry_frame(registry, prefix: Optional[str] = None) -> Dict[str, float]:
    """Flatten a :class:`MetricRegistry` dump into scalar rows.

    Histogram entries contribute ``<name>/count`` and ``<name>/mean`` rows;
    counters and gauges map straight through.
    """
    out: Dict[str, float] = {}
    for name, value in registry.dump(prefix).items():
        if isinstance(value, dict):
            count = float(value.get("count", 0))
            out[f"{name}/count"] = count
            out[f"{name}/mean"] = float(value.get("total", 0)) / count if count else 0.0
        else:
            out[name] = float(value)
    return out


def dram_bus_utilisation(registry, controller: str = "dram/mc") -> float:
    """Data-bus utilisation of one controller, from registry counters alone."""
    cycles = registry.value("sim/cycles_total", 0)
    busy = registry.value(f"{controller}/bus_cycles", 0)
    return int(busy) / max(int(cycles), 1)


def dram_row_hit_rate(registry, controller: str = "dram/mc") -> float:
    """Fraction of column accesses that hit an open row."""
    hits = int(registry.value(f"{controller}/row_hits", 0))
    misses = int(registry.value(f"{controller}/row_misses", 0))
    total = hits + misses
    return hits / total if total else 0.0


def skip_fraction(registry) -> float:
    """Fraction of simulated cycles the event-skipping kernel fast-forwarded."""
    cycles = int(registry.value("sim/cycles_total", 0))
    skipped = int(registry.value("sim/cycles_skipped", 0))
    return skipped / cycles if cycles else 0.0


def noc_link_beats(registry) -> Dict[str, int]:
    """Total beats forwarded per NoC buffer node (sum over AXI channels)."""
    totals: Dict[str, int] = {}
    for name in registry.names("noc"):
        stem, _, leaf = name.rpartition("/")
        if leaf.startswith("forwarded_"):
            node = stem[len("noc/"):]
            totals[node] = totals.get(node, 0) + int(registry.value(name))
    return totals


# ---------------------------------------------------------------------------
# Sweep views (see :mod:`repro.dse` and :mod:`repro.farm`).
#
# DesignPoints carry their own provenance — build wall-time, cache hit/miss,
# worker id — so sweep reports can show *where the time went* without
# holding the farm that produced them.
# ---------------------------------------------------------------------------


def sweep_frame(points: Sequence) -> Dict[str, float]:
    """Scalar summary of a sweep: frontier, build cost, cache effectiveness.

    ``build_seconds`` on a cache-served point is the original compute time
    stored with the entry, so ``build_seconds_saved`` is real time the cache
    returned to the caller.
    """
    built = [p for p in points if not getattr(p, "cache_hit", False)]
    hits = [p for p in points if getattr(p, "cache_hit", False)]
    feasible = [p.n_cores for p in points if p.feasible]
    return {
        "points": float(len(points)),
        "built": float(len(built)),
        "cache_hits": float(len(hits)),
        "cache_hit_rate": len(hits) / len(points) if points else 0.0,
        "build_seconds_spent": sum(getattr(p, "build_seconds", 0.0) for p in built),
        "build_seconds_saved": sum(getattr(p, "build_seconds", 0.0) for p in hits),
        "max_feasible_cores": float(max(feasible)) if feasible else 0.0,
    }


def render_sweep_report(points: Sequence) -> str:
    """Human-readable sweep table with per-point provenance and a footer."""
    lines = [
        f"{'cores':>5} {'feasible':>8} {'worst util':>10} {'build s':>8} "
        f"{'source':>8} {'limited by':<30}"
    ]
    for p in sorted(points, key=lambda p: p.n_cores):
        source = "cache" if getattr(p, "cache_hit", False) else (
            getattr(p, "worker", "") or "local"
        )
        reasons = "; ".join(p.reasons[:1]) if p.reasons else "-"
        lines.append(
            f"{p.n_cores:>5} {'yes' if p.feasible else 'NO':>8} "
            f"{p.worst_util:>9.1%} {getattr(p, 'build_seconds', 0.0):>8.3f} "
            f"{source:>8} {reasons:<30}"
        )
    f = sweep_frame(points)
    lines.append(
        f"frontier: {f['max_feasible_cores']:.0f} cores | "
        f"built {f['built']:.0f}/{f['points']:.0f} points in "
        f"{f['build_seconds_spent']:.2f}s | cache served "
        f"{f['cache_hits']:.0f} ({f['cache_hit_rate']:.0%}), saving "
        f"{f['build_seconds_saved']:.2f}s"
    )
    return "\n".join(lines)


def fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one master hogs."""
    vals = [float(v) for v in values]
    if not vals or not any(vals):
        return 1.0
    num = sum(vals) ** 2
    den = len(vals) * sum(v * v for v in vals)
    return num / den
