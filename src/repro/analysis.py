"""Post-simulation analysis helpers.

Operate on :class:`~repro.axi.TxnRecord` lists (from the AXI monitor) and on
controller reports to extract the quantities the paper's evaluation plots:
throughput, latency distributions, latency-under-load growth, and per-master
bandwidth shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.axi.monitor import TxnRecord


@dataclass(frozen=True)
class LatencyStats:
    count: int
    mean: float
    p50: float
    p95: float
    max: float
    growth: float  # max latency / first-quartile mean: queueing indicator

    @staticmethod
    def empty() -> "LatencyStats":
        return LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 1.0)


def _percentile(sorted_vals: Sequence[int], frac: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(int(frac * len(sorted_vals)), len(sorted_vals) - 1)
    return float(sorted_vals[idx])


def latency_stats(records: Sequence[TxnRecord], kind: Optional[str] = None) -> LatencyStats:
    """Latency distribution of completed transactions."""
    lats = [
        r.latency
        for r in records
        if r.complete_cycle is not None and (kind is None or r.kind == kind)
    ]
    if not lats:
        return LatencyStats.empty()
    ordered = sorted(lats)
    quartile = max(len(lats) // 4, 1)
    by_issue = [
        r.latency
        for r in sorted(
            (
                r
                for r in records
                if r.complete_cycle is not None and (kind is None or r.kind == kind)
            ),
            key=lambda r: r.issue_cycle,
        )
    ]
    head_mean = sum(by_issue[:quartile]) / quartile
    return LatencyStats(
        count=len(lats),
        mean=sum(lats) / len(lats),
        p50=_percentile(ordered, 0.50),
        p95=_percentile(ordered, 0.95),
        max=float(ordered[-1]),
        growth=ordered[-1] / head_mean if head_mean else 1.0,
    )


def bytes_transferred(records: Sequence[TxnRecord], beat_bytes: int = 64) -> Dict[str, int]:
    out = {"read": 0, "write": 0}
    for r in records:
        if r.complete_cycle is not None:
            out[r.kind] += r.length * beat_bytes
    return out


def bandwidth_share(
    records: Sequence[TxnRecord], region_of, beat_bytes: int = 64
) -> Dict[object, int]:
    """Bytes moved per region key (``region_of(addr) -> key``): used to
    check that the tree arbitration shares bandwidth fairly across masters
    working in disjoint address regions."""
    shares: Dict[object, int] = {}
    for r in records:
        if r.complete_cycle is None:
            continue
        key = region_of(r.addr)
        shares[key] = shares.get(key, 0) + r.length * beat_bytes
    return shares


def fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one master hogs."""
    vals = [float(v) for v in values]
    if not vals or not any(vals):
        return 1.0
    num = sum(vals) ** 2
    den = len(vals) * sum(v * v for v in vals)
    return num / den
