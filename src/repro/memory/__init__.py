"""Beethoven memory primitives: Readers, Writers, Scratchpads."""

from repro.memory.reader import Reader, ReaderTuning
from repro.memory.scratchpad import Memory, Scratchpad, ScratchpadPort, SpReq
from repro.memory.types import ReadRequest, WriteRequest, split_into_bursts
from repro.memory.writer import Writer, WriterTuning

__all__ = [
    "Reader",
    "ReaderTuning",
    "Writer",
    "WriterTuning",
    "Memory",
    "Scratchpad",
    "ScratchpadPort",
    "SpReq",
    "ReadRequest",
    "WriteRequest",
    "split_into_bursts",
]
