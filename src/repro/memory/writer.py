"""The Beethoven ``Writer`` primitive.

The core pushes fixed-width data chunks; the Writer packs them into beats,
cuts the logical transfer into AXI bursts, and streams them out — across
several AXI IDs when transaction-level parallelism is enabled, so write
bursts may complete out of order at the controller ("writes finished early",
as the paper observes for the Beethoven memcpy).  A ``done`` token is emitted
when every burst of a request has its write response.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.axi.types import AWReq, AxiParams, AxiPort, WBeat
from repro.memory.types import WriteRequest, split_into_bursts
from repro.noc.axi_node import bits_for
from repro.sim import NEVER, ChannelQueue, Component


@dataclass
class WriterTuning:
    """Platform-tunable Writer internals; ``n_axi_ids = 1`` disables TLP."""

    max_txn_beats: int = 64
    n_axi_ids: int = 4
    max_in_flight: int = 4
    buffer_bytes: int = 4 * 4096
    aw_issue_gap: int = 1

    @property
    def id_bits(self) -> int:
        return bits_for(self.n_axi_ids)


@dataclass
class _WrSubTxn:
    addr: int
    beats: int
    payload_bytes: int
    axi_id: int = 0
    tag: int = -1
    queued: bool = False  # payload carved off and waiting for / past AW
    issued: bool = False
    beats_sent: int = 0
    done: bool = False


@dataclass
class _ActiveRequest:
    req: WriteRequest
    subs: list = field(default_factory=list)
    buffered: int = 0  # payload bytes received from the core

    def all_done(self) -> bool:
        return all(s.done for s in self.subs)


class Writer(Component):
    """Streams core data to memory; pops ``done`` when the request landed."""

    def __init__(
        self,
        name: str,
        data_bytes: int,
        axi_params: AxiParams,
        tuning: Optional[WriterTuning] = None,
    ) -> None:
        super().__init__(f"writer.{name}")
        self.data_bytes = data_bytes
        self.tuning = tuning or WriterTuning()
        beat = axi_params.beat_bytes
        if data_bytes < 1 or data_bytes > beat or beat % data_bytes:
            raise ValueError(
                f"writer port width {data_bytes} must divide the bus width {beat}"
            )
        self.port = AxiPort(
            AxiParams(
                beat,
                max(self.tuning.id_bits, 1),
                axi_params.addr_bits,
                axi_params.max_burst_beats,
            ),
            f"{self.name}.axi",
        )
        self.request: ChannelQueue[WriteRequest] = ChannelQueue(2, f"{self.name}.req")
        self.data: ChannelQueue[bytes] = ChannelQueue(2, f"{self.name}.data")
        self.done: ChannelQueue[bool] = ChannelQueue(2, f"{self.name}.done")

        self._requests: Deque[_ActiveRequest] = deque()
        self._fill_buffer = bytearray()  # staging for the request being fed
        self._issue_q: Deque[_WrSubTxn] = deque()  # fully-buffered, awaiting AW
        self._queued_payload: Dict[int, bytes] = {}  # id(sub) -> burst payload
        self._w_stream: Deque[_WrSubTxn] = deque()  # AW sent, W beats owed
        self._sub_payload: Dict[int, bytes] = {}  # tag -> burst payload
        self._by_tag: Dict[int, _WrSubTxn] = {}
        self._in_flight = 0
        self._buffered_bytes = 0
        self._next_id = 0
        self._next_aw_cycle = 0
        self.bytes_accepted = 0
        self.requests_accepted = 0
        self.bursts_issued = 0
        # Contention accounting (repro.obs.attribution): per-burst AW stall
        # attribution, computed retroactively at issue time from stamps that
        # are only updated by genuinely mutating ticks — see Reader for the
        # determinism argument.  There is no buffer gate on the AW path, so
        # the reasons are gap / in-flight window / downstream backpressure.
        self._head_since = 0
        self._inflight_ok_since = 0
        self.stall_gap_cycles = 0
        self.stall_inflight_cycles = 0
        self.stall_backpressure_cycles = 0
        # Observability: set by the elaborator so AXI bursts are attributed
        # to the host command currently executing on this Writer's core.
        self.spans = None
        self.span_key = None
        self._span_by_tag: Dict[int, int] = {}

    def channels(self):
        return [self.request, self.data, self.done] + self.port.channels()

    def register_metrics(self, scope) -> None:
        scope.bind("bytes_accepted", lambda: self.bytes_accepted)
        scope.bind("requests_accepted", lambda: self.requests_accepted)
        scope.bind("bursts_issued", lambda: self.bursts_issued)
        scope.bind("in_flight", lambda: self._in_flight)
        scope.bind("buffered_bytes", lambda: self._buffered_bytes)
        scope.bind("stall_gap_cycles", lambda: self.stall_gap_cycles)
        scope.bind("stall_inflight_cycles", lambda: self.stall_inflight_cycles)
        scope.bind(
            "stall_backpressure_cycles", lambda: self.stall_backpressure_cycles
        )

    # -- behaviour ----------------------------------------------------------
    def tick(self, cycle: int) -> None:
        self._accept_request()
        self._accept_data(cycle)
        self._issue_aw(cycle)
        self._stream_w()
        self._collect_b(cycle)
        self._report_done()

    def _accept_request(self) -> None:
        if not self.request.can_pop() or len(self._requests) >= 2:
            return
        req = self.request.pop()
        self.requests_accepted += 1
        active = _ActiveRequest(req)
        beat = self.port.params.beat_bytes
        for addr, beats, payload in split_into_bursts(
            req.addr, req.len_bytes, beat, self.tuning.max_txn_beats
        ):
            active.subs.append(_WrSubTxn(addr, beats, payload))
        self._requests.append(active)

    def _accept_data(self, cycle: int) -> None:
        """Take one core chunk per cycle into the staging buffer, then carve
        fully-buffered bursts off the front (store-and-forward per burst)."""
        if not self._requests:
            return
        active = self._requests[0]
        total_payload = active.req.len_bytes
        if (
            self.data.can_pop()
            and active.buffered < total_payload
            and self._buffered_bytes + self.data_bytes <= self.tuning.buffer_bytes
        ):
            chunk = self.data.pop()
            self._fill_buffer.extend(chunk)
            active.buffered += len(chunk)
            self._buffered_bytes += len(chunk)
            self.bytes_accepted += len(chunk)
        # Release bursts whose payload is fully staged.
        for sub in active.subs:
            if sub.queued:
                continue
            if len(self._fill_buffer) >= sub.payload_bytes:
                payload = bytes(self._fill_buffer[: sub.payload_bytes])
                del self._fill_buffer[: sub.payload_bytes]
                sub.queued = True
                if not self._issue_q:
                    # Issue runs after burst release in the same tick, so the
                    # new head is eligible for issue from this very cycle.
                    self._head_since = cycle
                self._issue_q.append(sub)
                self._queued_payload[id(sub)] = payload
            break  # only the front un-queued burst can complete

    def _attribute_stall(self, cycle: int) -> None:
        """Book the cycles the issued head burst waited, split by the first
        binding reason in guard order: issue-gap FSM, in-flight window, then
        downstream AW backpressure."""
        t = self._head_since
        if t >= cycle:
            return
        gap_until = self._next_aw_cycle  # pre-issue value: the old gap deadline
        if gap_until > t:
            adv = gap_until if gap_until < cycle else cycle
            self.stall_gap_cycles += adv - t
            t = adv
        ok = self._inflight_ok_since
        if ok > t:
            adv = ok if ok < cycle else cycle
            self.stall_inflight_cycles += adv - t
            t = adv
        if cycle > t:
            self.stall_backpressure_cycles += cycle - t

    def _issue_aw(self, cycle: int) -> None:
        if not self._issue_q or cycle < self._next_aw_cycle:
            return
        if self._in_flight >= self.tuning.max_in_flight:
            return
        if not self.port.aw.can_push():
            return
        self._attribute_stall(cycle)
        sub = self._issue_q.popleft()
        sub.axi_id = self._next_id
        self._next_id = (self._next_id + 1) % max(self.tuning.n_axi_ids, 1)
        req = AWReq(axi_id=sub.axi_id, addr=sub.addr, length=sub.beats)
        sub.tag = req.tag
        sub.issued = True
        payload = self._queued_payload.pop(id(sub))
        self._sub_payload[req.tag] = payload
        self._by_tag[req.tag] = sub
        self.port.aw.push(req)
        self._w_stream.append(sub)
        self._in_flight += 1
        self.bursts_issued += 1
        self._next_aw_cycle = cycle + self.tuning.aw_issue_gap
        # The next queued burst (if any) cannot issue before the next tick.
        self._head_since = cycle + 1
        if self.spans is not None:
            self._span_by_tag[req.tag] = self.spans.axi_begin(
                cycle, self.span_key, self.name, "write", sub.addr, sub.beats
            )

    def _stream_w(self) -> None:
        if not self._w_stream or not self.port.w.can_push():
            return
        sub = self._w_stream[0]
        payload = self._sub_payload[sub.tag]
        beat_bytes = self.port.params.beat_bytes
        start = sub.beats_sent * beat_bytes
        chunk = payload[start : start + beat_bytes]
        strb = None
        if len(chunk) < beat_bytes:
            strb = b"\x01" * len(chunk) + b"\x00" * (beat_bytes - len(chunk))
            chunk = chunk + bytes(beat_bytes - len(chunk))
        last = sub.beats_sent == sub.beats - 1
        self.port.w.push(WBeat(chunk, last=last, strb=strb))
        sub.beats_sent += 1
        if last:
            self._w_stream.popleft()

    def _collect_b(self, cycle: int) -> None:
        if not self.port.b.can_pop():
            return
        resp = self.port.b.pop()
        sub = self._by_tag.pop(resp.tag, None)
        if sub is None:
            raise RuntimeError(f"{self.name}: B resp with unknown tag")
        sub.done = True
        self._in_flight -= 1
        if self._in_flight == self.tuning.max_in_flight - 1:
            # Freed slot is usable from the next tick (issue ran already).
            self._inflight_ok_since = cycle + 1
        self._buffered_bytes -= sub.payload_bytes
        del self._sub_payload[resp.tag]
        span_id = self._span_by_tag.pop(resp.tag, 0)
        if span_id and self.spans is not None:
            self.spans.axi_end(span_id, cycle)

    def _report_done(self) -> None:
        if not self._requests or not self.done.can_push():
            return
        active = self._requests[0]
        if active.buffered >= active.req.len_bytes and active.all_done():
            self.done.push(True)
            self._requests.popleft()

    def compile_tick(self):
        """Specialised tick: the six phases with their entry guards inlined,
        so an idle phase costs one comparison instead of a method call."""
        request = self.request
        done = self.done
        port_aw = self.port.aw
        port_w = self.port.w
        port_b = self.port.b
        tuning = self.tuning
        accept_req = self._accept_request
        accept_data = self._accept_data
        issue = self._issue_aw
        stream = self._stream_w
        collect = self._collect_b
        report = self._report_done

        def tick(cycle, self=self):
            requests = self._requests
            if len(requests) < 2 and request._pop_count < len(request._items):
                accept_req()
            if requests:
                accept_data(cycle)
            if (
                self._issue_q
                and cycle >= self._next_aw_cycle
                and self._in_flight < tuning.max_in_flight
            ):
                issue(cycle)
            if self._w_stream and (
                len(port_w._items) + len(port_w._staged) < port_w.capacity
            ):
                stream()
            if port_b._pop_count < len(port_b._items):
                collect(cycle)
            if requests and (
                len(done._items) + len(done._staged) < done.capacity
            ):
                report()

        return tick

    def next_event(self, cycle: int) -> float:
        """AW issue is self-scheduled (issue-gap FSM); burst release from the
        staging buffer, W streaming of accepted bursts and the final done
        token are immediate events on internal state; data/request intake
        and B collection are channel traffic.  Channel-blocked terms (AW/W
        pushes, the done token) are gated on space actually being available:
        the pop that frees it wakes the Writer through its wake set.  Burst
        release stays ungated — it only moves bytes between internal queues.
        """
        nxt = NEVER
        if (
            self._issue_q
            and self._in_flight < self.tuning.max_in_flight
            and self.port.aw.can_push()
        ):
            nxt = min(nxt, max(cycle, self._next_aw_cycle))
        if self._w_stream and self.port.w.can_push():
            nxt = min(nxt, cycle)
        if self._requests:
            active = self._requests[0]
            for sub in active.subs:
                if not sub.queued:
                    if len(self._fill_buffer) >= sub.payload_bytes:
                        nxt = min(nxt, cycle)
                    break
            if (
                active.buffered >= active.req.len_bytes
                and active.all_done()
                and self.done.can_push()
            ):
                nxt = min(nxt, cycle)
        return nxt

    def idle(self) -> bool:
        return not self._requests and not self._issue_q and not self._w_stream
