"""The Beethoven ``Reader`` primitive.

A Reader streams a contiguous memory region to the core at a configurable
data-port width.  Internally it maximises throughput by *prefetching*:
splitting the logical transfer into several AXI bursts, keeping many of them
in flight at once, and (with transaction-level parallelism enabled) spreading
them over multiple AXI IDs so the memory controller may service them out of
order.  Prefetched data lands in an on-chip buffer whose size bounds how far
ahead the Reader runs — exactly the resource/parallelism trade-off the paper
describes ("Readers use on-chip memory to store prefetched data internally").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.axi.types import ARReq, AxiParams, AxiPort
from repro.memory.types import ReadRequest, split_into_bursts
from repro.noc.axi_node import bits_for
from repro.sim import NEVER, ChannelQueue, Component


@dataclass
class ReaderTuning:
    """Platform-tunable Reader internals (paper: 'Reader/Writer internal
    performance knobs').  ``n_axi_ids = 1`` disables TLP."""

    max_txn_beats: int = 64
    n_axi_ids: int = 4
    max_in_flight: int = 4
    buffer_bytes: int = 4 * 4096
    ar_issue_gap: int = 1  # min cycles between AR issues (request FSM cost)

    @property
    def id_bits(self) -> int:
        return bits_for(self.n_axi_ids)


@dataclass
class _SubTxn:
    addr: int
    beats: int
    payload_bytes: int  # bytes of this burst the user actually wants
    axi_id: int = 0
    tag: int = -1
    received: bytearray = field(default_factory=bytearray)
    delivered: int = 0


class Reader(Component):
    """Streams memory to the core; the core pops ``data`` in program order."""

    # Fault detection (repro.faults): when the elaborator compiles a
    # FaultPlan it points every master at the shared FaultState so beats
    # arriving with ``err`` set poison the owning core's in-flight command
    # (detected corruption, never silent).  Class attributes keep existing
    # constructions unchanged.
    _fault_state = None
    _fault_key = None

    def __init__(
        self,
        name: str,
        data_bytes: int,
        axi_params: AxiParams,
        tuning: Optional[ReaderTuning] = None,
    ) -> None:
        super().__init__(f"reader.{name}")
        self.data_bytes = data_bytes
        self.tuning = tuning or ReaderTuning()
        beat = axi_params.beat_bytes
        if data_bytes < 1 or data_bytes > beat or beat % data_bytes:
            raise ValueError(
                f"reader port width {data_bytes} must divide the bus width {beat}"
            )
        self.port = AxiPort(
            AxiParams(
                beat,
                max(self.tuning.id_bits, 1),
                axi_params.addr_bits,
                axi_params.max_burst_beats,
            ),
            f"{self.name}.axi",
        )
        self.request: ChannelQueue[ReadRequest] = ChannelQueue(2, f"{self.name}.req")
        self.data: ChannelQueue[bytes] = ChannelQueue(2, f"{self.name}.data")

        self._pending: Deque[_SubTxn] = deque()  # not yet issued
        self._order: Deque[_SubTxn] = deque()  # issued or pending, delivery order
        self._by_tag: Dict[int, _SubTxn] = {}
        self._in_flight = 0
        self._reserved_bytes = 0
        self._next_id = 0
        self._next_ar_cycle = 0
        self.bytes_delivered = 0
        self.requests_accepted = 0
        self.bursts_issued = 0
        # Contention accounting (repro.obs.attribution): per-burst AR stall
        # attribution, computed retroactively at issue time from stamps that
        # are only updated by genuinely mutating ticks (so the counters stay
        # bit-identical under every scheduling mode, including fast-forward
        # jumps over quiescent windows).  ``_head_since`` is the cycle the
        # current head-of-pending burst became eligible for issue;
        # ``_inflight_ok_since``/``_buffer_ok_since`` are the cycles the
        # in-flight window and prefetch buffer last stopped being binding.
        self._head_since = 0
        self._inflight_ok_since = 0
        self._buffer_ok_since = 0
        self.stall_gap_cycles = 0
        self.stall_inflight_cycles = 0
        self.stall_buffer_cycles = 0
        self.stall_backpressure_cycles = 0
        # Observability: set by the elaborator so AXI bursts are attributed
        # to the host command currently executing on this Reader's core.
        self.spans = None
        self.span_key = None
        self._span_by_tag: Dict[int, int] = {}

    # -- elaboration hooks ---------------------------------------------------
    def channels(self):
        return [self.request, self.data] + self.port.channels()

    def register_metrics(self, scope) -> None:
        scope.bind("bytes_delivered", lambda: self.bytes_delivered)
        scope.bind("requests_accepted", lambda: self.requests_accepted)
        scope.bind("bursts_issued", lambda: self.bursts_issued)
        scope.bind("in_flight", lambda: self._in_flight)
        scope.bind("reserved_bytes", lambda: self._reserved_bytes)
        scope.bind("stall_gap_cycles", lambda: self.stall_gap_cycles)
        scope.bind("stall_inflight_cycles", lambda: self.stall_inflight_cycles)
        scope.bind("stall_buffer_cycles", lambda: self.stall_buffer_cycles)
        scope.bind(
            "stall_backpressure_cycles", lambda: self.stall_backpressure_cycles
        )

    # -- behaviour ------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        self._accept_request(cycle)
        self._issue_ar(cycle)
        self._collect_beats(cycle)
        self._deliver(cycle)

    def _accept_request(self, cycle: int) -> None:
        if not self.request.can_pop():
            return
        # Only buffer one logical request's segments at a time beyond what is
        # in flight, to bound bookkeeping.
        if len(self._pending) > 2 * self.tuning.max_in_flight:
            return
        req = self.request.pop()
        self.requests_accepted += 1
        beat = self.port.params.beat_bytes
        if not self._pending:
            # Issue runs after accept in the same tick, so the new head is
            # eligible for issue attention from this very cycle.
            self._head_since = cycle
        for addr, beats, payload in split_into_bursts(
            req.addr, req.len_bytes, beat, self.tuning.max_txn_beats
        ):
            sub = _SubTxn(addr, beats, payload)
            self._pending.append(sub)
            self._order.append(sub)

    def _attribute_stall(self, cycle: int) -> None:
        """Book the cycles the issued head burst waited, split by the first
        binding reason in guard order: issue-gap FSM, in-flight window,
        prefetch-buffer space, then downstream AR backpressure."""
        t = self._head_since
        if t >= cycle:
            return
        gap_until = self._next_ar_cycle  # pre-issue value: the old gap deadline
        if gap_until > t:
            adv = gap_until if gap_until < cycle else cycle
            self.stall_gap_cycles += adv - t
            t = adv
        ok = self._inflight_ok_since
        if ok > t:
            adv = ok if ok < cycle else cycle
            self.stall_inflight_cycles += adv - t
            t = adv
        ok = self._buffer_ok_since
        if ok > t:
            adv = ok if ok < cycle else cycle
            self.stall_buffer_cycles += adv - t
            t = adv
        if cycle > t:
            self.stall_backpressure_cycles += cycle - t

    def _issue_ar(self, cycle: int) -> None:
        if not self._pending or cycle < self._next_ar_cycle:
            return
        if self._in_flight >= self.tuning.max_in_flight:
            return
        sub = self._pending[0]
        burst_bytes = sub.beats * self.port.params.beat_bytes
        if self._reserved_bytes + burst_bytes > self.tuning.buffer_bytes:
            return
        if not self.port.ar.can_push():
            return
        self._attribute_stall(cycle)
        sub.axi_id = self._next_id
        self._next_id = (self._next_id + 1) % max(self.tuning.n_axi_ids, 1)
        req = ARReq(axi_id=sub.axi_id, addr=sub.addr, length=sub.beats)
        sub.tag = req.tag
        self.port.ar.push(req)
        self._by_tag[req.tag] = sub
        self._pending.popleft()
        self._in_flight += 1
        self.bursts_issued += 1
        self._reserved_bytes += burst_bytes
        self._next_ar_cycle = cycle + self.tuning.ar_issue_gap
        # The next pending burst (if any) cannot issue before the next tick.
        self._head_since = cycle + 1
        if self.spans is not None:
            self._span_by_tag[req.tag] = self.spans.axi_begin(
                cycle, self.span_key, self.name, "read", sub.addr, sub.beats
            )

    def _collect_beats(self, cycle: int) -> None:
        if not self.port.r.can_pop():
            return
        beat = self.port.r.pop()
        sub = self._by_tag.get(beat.tag)
        if sub is None:
            raise RuntimeError(f"{self.name}: R beat with unknown tag")
        if beat.err and self._fault_state is not None:
            self._fault_state.mark_detected(
                self._fault_key, cycle, self.name, f"err beat id={beat.axi_id}"
            )
        sub.received.extend(beat.data)
        if beat.last:
            self._in_flight -= 1
            if self._in_flight == self.tuning.max_in_flight - 1:
                # Freed slot is usable from the next tick (issue ran already).
                self._inflight_ok_since = cycle + 1
            del self._by_tag[beat.tag]
            span_id = self._span_by_tag.pop(beat.tag, 0)
            if span_id and self.spans is not None:
                self.spans.axi_end(span_id, cycle)

    def _deliver(self, cycle: int) -> None:
        if not self._order or not self.data.can_push():
            return
        sub = self._order[0]
        end = sub.delivered + self.data_bytes
        if end > sub.payload_bytes:
            # Partial tail chunk: only deliver once all payload bytes arrived.
            if len(sub.received) >= sub.payload_bytes and sub.delivered < sub.payload_bytes:
                chunk = bytes(sub.received[sub.delivered : sub.payload_bytes])
                self.data.push(chunk)
                self.bytes_delivered += len(chunk)
                sub.delivered = sub.payload_bytes
        elif len(sub.received) >= end:
            self.data.push(bytes(sub.received[sub.delivered : end]))
            sub.delivered = end
            self.bytes_delivered += self.data_bytes
        if sub.delivered >= sub.payload_bytes:
            self._order.popleft()
            self._reserved_bytes -= sub.beats * self.port.params.beat_bytes
            # Freed buffer space is usable from the next tick.
            self._buffer_ok_since = cycle + 1

    def _deliverable(self) -> bool:
        """Would :meth:`_deliver` push a chunk if ``data`` had space?"""
        if not self._order:
            return False
        sub = self._order[0]
        end = sub.delivered + self.data_bytes
        if end > sub.payload_bytes:
            return len(sub.received) >= sub.payload_bytes and sub.delivered < sub.payload_bytes
        return len(sub.received) >= end

    def compile_tick(self):
        """Specialised tick: the four phases with their entry guards inlined,
        so an idle phase costs one comparison instead of a method call."""
        request = self.request
        data = self.data
        port_ar = self.port.ar
        port_r = self.port.r
        tuning = self.tuning
        accept = self._accept_request
        issue = self._issue_ar
        collect = self._collect_beats
        deliver = self._deliver

        def tick(cycle, self=self):
            if request._pop_count < len(request._items):
                accept(cycle)
            if (
                self._pending
                and cycle >= self._next_ar_cycle
                and self._in_flight < tuning.max_in_flight
            ):
                issue(cycle)
            if port_r._pop_count < len(port_r._items):
                collect(cycle)
            if self._order and (
                len(data._items) + len(data._staged) < data.capacity
            ):
                deliver(cycle)

        return tick

    def next_event(self, cycle: int) -> float:
        """AR issue is self-scheduled (issue-gap FSM); everything else —
        request intake, R-beat collection, freed buffer space — arrives as
        channel traffic, and delivery of already-collected bytes is flagged
        as an immediate event.  Both terms are gated on the output channel
        actually having room: a stalled Reader sleeps until the pop that
        frees space wakes it (the AR and data channels are in its wake set).
        """
        nxt = NEVER
        if self._pending and self._in_flight < self.tuning.max_in_flight:
            sub = self._pending[0]
            burst_bytes = sub.beats * self.port.params.beat_bytes
            if (
                self._reserved_bytes + burst_bytes <= self.tuning.buffer_bytes
                and self.port.ar.can_push()
            ):
                nxt = min(nxt, max(cycle, self._next_ar_cycle))
        if self._deliverable() and self.data.can_push():
            nxt = min(nxt, cycle)
        return nxt

    # -- status ------------------------------------------------------------
    def idle(self) -> bool:
        return not self._pending and not self._order and not len(self.request)
