"""User-facing request types for the memory primitives."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReadRequest:
    """One logical read stream request: ``len_bytes`` from ``addr``."""

    addr: int
    len_bytes: int


@dataclass(frozen=True)
class WriteRequest:
    """One logical write stream request: ``len_bytes`` to ``addr``."""

    addr: int
    len_bytes: int


def split_into_bursts(
    addr: int, len_bytes: int, beat_bytes: int, max_beats: int
) -> list:
    """Split a transfer into AXI-legal (addr, beats, bytes) bursts.

    Bursts never cross 4 KB boundaries and never exceed ``max_beats``.  The
    final burst may cover a partial beat (the caller masks the tail).
    """
    if addr % beat_bytes:
        raise ValueError(f"address {addr:#x} not aligned to beat size {beat_bytes}")
    if len_bytes <= 0:
        raise ValueError("transfer length must be positive")
    segments = []
    pos = addr
    remaining = len_bytes
    while remaining > 0:
        to_4k = 4096 - (pos % 4096)
        max_bytes = min(max_beats * beat_bytes, to_4k)
        chunk = min(remaining, max_bytes)
        beats = -(-chunk // beat_bytes)  # ceil division
        segments.append((pos, beats, chunk))
        pos += chunk
        remaining -= chunk
    return segments
