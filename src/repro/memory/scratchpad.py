"""Scratchpads and manually-managed on-chip memory.

``Memory`` is the appendix's raw SRAM-like utility: fixed latency, a given
number of ports, no framework management.  ``Scratchpad`` wraps a ``Memory``
with the Beethoven-managed features: a Reader-based initialisation routine
that fills it from external memory, and the bookkeeping (width/depth) that the
platform memcell mapper uses to choose BRAM/URAM/SRAM-macro implementations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.axi.types import AxiParams
from repro.memory.reader import Reader, ReaderTuning
from repro.memory.types import ReadRequest
from repro.sim import NEVER, ChannelQueue, Component


class Memory:
    """A multi-port, fixed-latency on-chip memory (appendix `Memory`).

    The owning core drives ports during its ``tick`` via :meth:`read` /
    :meth:`write`; read data appears ``latency`` calls to :meth:`clock` later
    and is fetched with :meth:`rdata`.  One access per port per cycle.

    ``on_activity`` (optional) is invoked on every :meth:`read`/:meth:`write`.
    The component that clocks this memory sets it to its own
    :meth:`~repro.sim.Component.request_wake` so that a *different* component
    accessing the memory directly (non-channel coupling, invisible to the
    selective scheduler's wake sets) still re-wakes the clocking component.
    """

    on_activity = None

    def __init__(
        self,
        latency: int,
        data_width: int,
        n_rows: int,
        n_read_ports: int = 1,
        n_write_ports: int = 1,
        name: str = "mem",
    ) -> None:
        if latency < 1:
            raise ValueError("memory latency must be >= 1")
        self.name = name
        self.latency = latency
        self.data_width = data_width
        self.n_rows = n_rows
        self.n_read_ports = n_read_ports
        self.n_write_ports = n_write_ports
        self._cells: List[int] = [0] * n_rows
        self._pipes: List[Deque[Optional[int]]] = [
            deque([None] * latency) for _ in range(n_read_ports)
        ]
        self._out: List[Optional[int]] = [None] * n_read_ports
        self._read_used = [False] * n_read_ports
        self._write_used = [False] * n_write_ports
        self._mask = (1 << data_width) - 1

    @property
    def bits(self) -> int:
        return self.data_width * self.n_rows

    def read(self, port: int, row: int) -> None:
        if self._read_used[port]:
            raise RuntimeError(f"{self.name}: read port {port} used twice in a cycle")
        if not 0 <= row < self.n_rows:
            raise IndexError(f"{self.name}: row {row} out of range")
        self._read_used[port] = True
        self._pipes[port][-1] = self._cells[row]
        if self.on_activity is not None:
            self.on_activity()

    def write(self, port: int, row: int, value: int) -> None:
        if self._write_used[port]:
            raise RuntimeError(f"{self.name}: write port {port} used twice in a cycle")
        if not 0 <= row < self.n_rows:
            raise IndexError(f"{self.name}: row {row} out of range")
        self._write_used[port] = True
        self._cells[row] = value & self._mask
        if self.on_activity is not None:
            self.on_activity()

    def rdata(self, port: int) -> Optional[int]:
        """Data for the read issued exactly ``latency`` clocks ago."""
        return self._out[port]

    def clock(self) -> None:
        """Advance the read pipelines; call once per cycle (cores' ticks)."""
        for i, pipe in enumerate(self._pipes):
            self._out[i] = pipe.popleft()
            pipe.append(None)
        self._read_used = [False] * self.n_read_ports
        self._write_used = [False] * self.n_write_ports


@dataclass(frozen=True)
class SpReq:
    """One scratchpad port operation."""

    row: int
    write: bool = False
    wdata: int = 0


class ScratchpadPort:
    """Channel pair for one scratchpad port."""

    def __init__(self, name: str, depth: int = 2) -> None:
        self.req: ChannelQueue[SpReq] = ChannelQueue(depth, f"{name}.req")
        self.resp: ChannelQueue[int] = ChannelQueue(depth, f"{name}.resp")


class Scratchpad(Component):
    """Beethoven-managed on-chip memory with Reader-based initialisation.

    ``init`` takes a (base address, length) request; the internal Reader
    streams external memory and the scratchpad packs it into rows of
    ``data_width_bits`` (little-endian), signalling ``init_done`` when full.
    """

    def __init__(
        self,
        name: str,
        data_width_bits: int,
        n_datas: int,
        axi_params: AxiParams,
        n_ports: int = 1,
        latency: int = 2,
        reader_tuning: Optional[ReaderTuning] = None,
        with_init: bool = True,
    ) -> None:
        super().__init__(f"scratchpad.{name}")
        if data_width_bits % 8:
            raise ValueError("scratchpad width must be a whole number of bytes")
        self.data_width_bits = data_width_bits
        self.n_datas = n_datas
        self.latency = latency
        self.mem = Memory(
            latency, data_width_bits, n_datas, n_read_ports=n_ports, n_write_ports=1,
            name=f"{name}.mem",
        )
        # Direct (non-channel) accesses to the backing memory must re-wake
        # this component so the read pipeline keeps getting clocked.
        self.mem.on_activity = self.request_wake
        self.ports = [ScratchpadPort(f"{name}.p{i}") for i in range(n_ports)]
        self.with_init = with_init
        self.reader: Optional[Reader] = None
        if with_init:
            word_bytes = data_width_bits // 8
            data_bytes = min(max(word_bytes, 1), axi_params.beat_bytes)
            self.reader = Reader(
                f"{name}.init", data_bytes, axi_params, reader_tuning
            )
        self.init: ChannelQueue[ReadRequest] = ChannelQueue(2, f"{name}.init")
        self.init_done: ChannelQueue[bool] = ChannelQueue(2, f"{name}.initdone")
        self._init_active = False
        self._init_row = 0
        self._init_bytes_left = 0
        self._init_residue = bytearray()
        # Matured read data awaiting space in a port's response queue.
        self._resp_overflow: List[Deque[int]] = [deque() for _ in range(n_ports)]
        self._reads_in_flight = [0] * n_ports
        # Statistics (plain ints; bound lazily into the metric registry).
        self.reads_served = 0
        self.writes_served = 0
        self.init_words = 0
        self.inits_completed = 0

    def register_metrics(self, scope) -> None:
        scope.bind("reads_served", lambda: self.reads_served)
        scope.bind("writes_served", lambda: self.writes_served)
        scope.bind("init_words", lambda: self.init_words)
        scope.bind("inits_completed", lambda: self.inits_completed)
        scope.bind("rows", lambda: self.n_datas)

    def channels(self):
        chans = [self.init, self.init_done]
        for port in self.ports:
            chans += [port.req, port.resp]
        if self.reader is not None:
            chans += list(self.reader.channels())
        return chans

    def components(self):
        """Sub-components the elaborator must register (the init Reader)."""
        return [self.reader] if self.reader is not None else []

    def tick(self, cycle: int) -> None:
        self._run_init()
        self._serve_ports()
        self.mem.clock()

    def next_event(self, cycle: int) -> float:
        """The scratchpad must tick every cycle while its read pipeline is
        non-empty or responses are queued (``mem.clock`` advances real
        state); otherwise it is purely channel-reactive."""
        if (
            any(self._reads_in_flight)
            or any(self._resp_overflow)
            or (self._init_active and self._init_bytes_left <= 0)
        ):
            return cycle
        return NEVER

    def _run_init(self) -> None:
        if self.reader is None:
            return
        if not self._init_active and self.init.can_pop() and self.reader.request.can_push():
            req = self.init.pop()
            self.reader.request.push(req)
            self._init_active = True
            self._init_row = 0
            self._init_bytes_left = req.len_bytes
            self._init_residue.clear()
        if self._init_active and self.reader.data.can_pop():
            chunk = self.reader.data.pop()
            self._init_residue.extend(chunk)
            self._init_bytes_left -= len(chunk)
            word_bytes = self.data_width_bits // 8
            while len(self._init_residue) >= word_bytes and self._init_row < self.n_datas:
                word = int.from_bytes(self._init_residue[:word_bytes], "little")
                del self._init_residue[:word_bytes]
                self.mem._cells[self._init_row] = word
                self._init_row += 1
                self.init_words += 1
            if self._init_bytes_left <= 0 and self.init_done.can_push():
                self.init_done.push(True)
                self._init_active = False
                self.inits_completed += 1

    def _serve_ports(self) -> None:
        for i, port in enumerate(self.ports):
            overflow = self._resp_overflow[i]
            rdata = self.mem.rdata(i)
            if rdata is not None:
                overflow.append(rdata)
                self._reads_in_flight[i] -= 1
            while overflow and port.resp.can_push():
                port.resp.push(overflow.popleft())
            if port.req.can_pop():
                op = port.req.peek()
                if op.write:
                    port.req.pop()
                    self.mem.write(0, op.row, op.wdata)
                    self.writes_served += 1
                else:
                    # Issue a read only when its response is guaranteed a
                    # buffer slot at maturity (conservative credit rule).
                    committed = len(overflow) + self._reads_in_flight[i] + len(port.resp)
                    if committed < port.resp.capacity:
                        port.req.pop()
                        self.mem.read(i, op.row)
                        self._reads_in_flight[i] += 1
                        self.reads_served += 1
