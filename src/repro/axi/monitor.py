"""AXI protocol monitor.

The monitor snoops an :class:`~repro.axi.types.AxiPort` and asserts the
ordering rules the memory controller and every master must obey.  It is wired
into every simulation built by the Beethoven elaborator, so a protocol
violation in any model fails tests instead of silently skewing results.

It also doubles as the transaction tracer behind the Figure-5 timelines: for
every burst it records issue and completion cycles.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.axi.types import AxiPort
from repro.sim import Component, SimulationError, Tracer, NULL_TRACER


@dataclass
class TxnRecord:
    """Lifetime record of one AXI burst, for timeline reconstruction."""

    kind: str  # "read" | "write"
    axi_id: int
    addr: int
    length: int
    issue_cycle: int
    first_data_cycle: Optional[int] = None
    complete_cycle: Optional[int] = None

    @property
    def latency(self) -> Optional[int]:
        if self.complete_cycle is None:
            return None
        return self.complete_cycle - self.issue_cycle


class AxiMonitor(Component):
    """Passive checker + tracer attached between a master and a slave.

    The monitor does not own the port's channels; it inspects committed
    (visible) items non-destructively each cycle by diffing pop counters, so
    it must be ticked *after* being attached to the same simulator as the
    endpoints.  To keep things simple and robust we instead intercept at
    push-time: the endpoints are expected to call :meth:`on_*` hooks.  The
    standard slave (:class:`repro.dram.controller.MemoryController`) and all
    Beethoven masters call these hooks through :class:`MonitoredAxiPort`.
    """

    def __init__(self, port_name: str, tracer: Tracer = NULL_TRACER) -> None:
        super().__init__(f"mon.{port_name}")
        self.port_name = port_name
        self.tracer = tracer
        self.records: List[TxnRecord] = []
        self._open_reads: Dict[int, TxnRecord] = {}  # tag -> record
        self._open_writes: Dict[int, TxnRecord] = {}
        self._read_order: Dict[int, Deque[int]] = defaultdict(deque)  # id -> tags
        self._write_order: Dict[int, Deque[int]] = defaultdict(deque)
        self._read_beats_seen: Dict[int, int] = defaultdict(int)
        self._active_read_tag: Dict[int, Optional[int]] = {}
        self.errors: List[str] = []

    # -- hooks ---------------------------------------------------------------
    def on_ar(self, cycle: int, tag: int, axi_id: int, addr: int, length: int) -> None:
        rec = TxnRecord("read", axi_id, addr, length, cycle)
        self._open_reads[tag] = rec
        self._read_order[axi_id].append(tag)
        self.records.append(rec)
        self.tracer.record(cycle, self.port_name, "ar", tag)

    def on_r(self, cycle: int, tag: int, axi_id: int, last: bool) -> None:
        rec = self._open_reads.get(tag)
        if rec is None:
            self._fail(f"R beat for unknown read tag {tag}")
            return
        order = self._read_order[axi_id]
        if not order or order[0] != tag:
            self._fail(
                f"same-ID read reorder on id {axi_id}: beat for tag {tag} "
                f"while tag {order[0] if order else '?'} is outstanding"
            )
        if rec.first_data_cycle is None:
            rec.first_data_cycle = cycle
            self.tracer.record(cycle, self.port_name, "r_first", tag)
        self._read_beats_seen[tag] += 1
        if last:
            if self._read_beats_seen[tag] != rec.length:
                self._fail(
                    f"read tag {tag} returned {self._read_beats_seen[tag]} beats, "
                    f"expected {rec.length}"
                )
            rec.complete_cycle = cycle
            order.popleft()
            del self._open_reads[tag]
            del self._read_beats_seen[tag]
            self.tracer.record(cycle, self.port_name, "r_last", tag)
        elif self._read_beats_seen[tag] >= rec.length:
            self._fail(f"read tag {tag} missing last on final beat")

    def on_aw(self, cycle: int, tag: int, axi_id: int, addr: int, length: int) -> None:
        rec = TxnRecord("write", axi_id, addr, length, cycle)
        self._open_writes[tag] = rec
        self._write_order[axi_id].append(tag)
        self.records.append(rec)
        self.tracer.record(cycle, self.port_name, "aw", tag)

    def on_w_last(self, cycle: int, tag: int) -> None:
        rec = self._open_writes.get(tag)
        if rec is not None and rec.first_data_cycle is None:
            rec.first_data_cycle = cycle
        self.tracer.record(cycle, self.port_name, "w_last", tag)

    def on_b(self, cycle: int, tag: int, axi_id: int) -> None:
        rec = self._open_writes.get(tag)
        if rec is None:
            self._fail(f"B response for unknown write tag {tag}")
            return
        order = self._write_order[axi_id]
        if not order or order[0] != tag:
            self._fail(f"same-ID write response reorder on id {axi_id}")
        else:
            order.popleft()
        rec.complete_cycle = cycle
        del self._open_writes[tag]
        self.tracer.record(cycle, self.port_name, "b", tag)

    # -- Component -------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        pass  # purely hook-driven

    def next_event(self, cycle: int):
        from repro.sim import NEVER

        return NEVER  # never self-schedules; endpoints drive the hooks

    def wake_channels(self):
        return []  # tick is a no-op under all conditions; hooks do the work

    @property
    def metric_path(self) -> str:
        return "axi/" + self.port_name

    def register_metrics(self, scope) -> None:
        scope.bind("bursts", lambda: len(self.records))
        scope.bind(
            "read_bursts",
            lambda: sum(1 for r in self.records if r.kind == "read"),
        )
        scope.bind(
            "write_bursts",
            lambda: sum(1 for r in self.records if r.kind == "write"),
        )
        scope.bind("outstanding", self.outstanding)
        scope.bind("protocol_errors", lambda: len(self.errors))

    def _fail(self, msg: str) -> None:
        self.errors.append(msg)
        raise SimulationError(f"AXI protocol violation on {self.port_name}: {msg}")

    # -- analysis ----------------------------------------------------------------
    def completed(self, kind: Optional[str] = None) -> List[TxnRecord]:
        recs = [r for r in self.records if r.complete_cycle is not None]
        if kind is not None:
            recs = [r for r in recs if r.kind == kind]
        return recs

    def outstanding(self) -> int:
        return len(self._open_reads) + len(self._open_writes)


class MonitoredAxiPort:
    """Wraps an :class:`AxiPort` so endpoint models fire monitor hooks.

    Masters push AR/AW/W through this wrapper; the slave pushes R/B through
    it.  The wrapper keeps the W-beat to AW-tag association (AXI4: write data
    arrives in address order).
    """

    def __init__(self, port: AxiPort, monitor: AxiMonitor) -> None:
        self.port = port
        self.monitor = monitor
        self._w_tags: Deque[int] = deque()
        self._w_beats_left: Deque[int] = deque()

    # master-side helpers
    def push_ar(self, cycle: int, req) -> None:
        self.port.params.check_burst(req.addr, req.length)
        self.port.ar.push(req)
        self.monitor.on_ar(cycle, req.tag, req.axi_id, req.addr, req.length)

    def push_aw(self, cycle: int, req) -> None:
        self.port.params.check_burst(req.addr, req.length)
        self.port.aw.push(req)
        self._w_tags.append(req.tag)
        self._w_beats_left.append(req.length)
        self.monitor.on_aw(cycle, req.tag, req.axi_id, req.addr, req.length)

    def push_w(self, cycle: int, beat) -> None:
        if not self._w_tags:
            raise SimulationError("W beat with no outstanding AW")
        self.port.w.push(beat)
        self._w_beats_left[0] -= 1
        if beat.last:
            if self._w_beats_left[0] != 0:
                raise SimulationError("W last asserted before burst complete")
            tag = self._w_tags.popleft()
            self._w_beats_left.popleft()
            self.monitor.on_w_last(cycle, tag)
        elif self._w_beats_left[0] == 0:
            raise SimulationError("W burst overran its AW length")

    # slave-side helpers
    def push_r(self, cycle: int, beat) -> None:
        self.port.r.push(beat)
        self.monitor.on_r(cycle, beat.tag, beat.axi_id, beat.last)

    def push_b(self, cycle: int, resp) -> None:
        self.port.b.push(resp)
        self.monitor.on_b(cycle, resp.tag, resp.axi_id)
