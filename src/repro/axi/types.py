"""AXI4 transaction-level protocol types.

We model the five AXI4 channels at beat granularity.  Addresses are byte
addresses, bursts are INCR bursts of ``length`` beats of ``beat_bytes`` each.
Data is carried as ``bytes`` so simulations stay functionally exact: a memcpy
through the model really copies the bytes.

AXI rules the model enforces (via :mod:`repro.axi.monitor`):

* read data for transactions sharing an ARID is returned in issue order;
* beats within a transaction are returned in order, the final beat has
  ``last`` set;
* write data follows address order (AXI4 has no write interleave);
* one B response per write transaction, per-ID in issue order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.sim import ChannelQueue

_txn_counter = itertools.count()


def _next_txn_tag() -> int:
    return next(_txn_counter)


@dataclass(frozen=True)
class AxiParams:
    """Bus parameterisation; mirrors what a Beethoven platform declares."""

    beat_bytes: int = 64
    id_bits: int = 6
    addr_bits: int = 34
    max_burst_beats: int = 64

    @property
    def n_ids(self) -> int:
        return 1 << self.id_bits

    def check_burst(self, addr: int, length: int) -> None:
        if length < 1 or length > self.max_burst_beats:
            raise ValueError(f"illegal burst length {length}")
        if addr % self.beat_bytes:
            raise ValueError(f"unaligned burst address {addr:#x}")
        # AXI bursts must not cross a 4 KB boundary.
        if (addr // 4096) != ((addr + length * self.beat_bytes - 1) // 4096):
            raise ValueError(
                f"burst at {addr:#x} x{length} beats crosses a 4KB boundary"
            )


@dataclass(frozen=True, slots=True)
class ARReq:
    """Read address channel payload (one burst)."""

    axi_id: int
    addr: int
    length: int  # beats
    tag: int = field(default_factory=_next_txn_tag)

    def bytes_total(self, beat_bytes: int) -> int:
        return self.length * beat_bytes


@dataclass(frozen=True, slots=True)
class RBeat:
    """Read data channel payload (one beat).

    ``err`` models the SLVERR/ECC-poison signalling real links carry: a
    corrupted beat is delivered with ``err=True`` so downstream consumers can
    detect (never silently absorb) the corruption.  Every hop that re-creates
    an RBeat (ID remap, compression) must propagate it.
    """

    axi_id: int
    data: bytes
    last: bool
    tag: int = -1
    err: bool = False


@dataclass(frozen=True, slots=True)
class AWReq:
    """Write address channel payload (one burst)."""

    axi_id: int
    addr: int
    length: int  # beats
    tag: int = field(default_factory=_next_txn_tag)


@dataclass(frozen=True, slots=True)
class WBeat:
    """Write data channel payload (one beat); strb masks written bytes."""

    data: bytes
    last: bool
    strb: Optional[bytes] = None  # None means all bytes valid


@dataclass(frozen=True, slots=True)
class BResp:
    """Write response channel payload."""

    axi_id: int
    okay: bool = True
    tag: int = -1


class AxiPort:
    """A bundle of the five AXI channels, named from the master's view.

    The component that *owns* the port drives ``ar``/``aw``/``w`` and consumes
    ``r``/``b``; a slave does the opposite.  Channel capacities model the
    skid/register slices real interconnects insert.
    """

    def __init__(self, params: AxiParams, name: str = "axi", depth: int = 4) -> None:
        self.params = params
        self.name = name
        self.ar: ChannelQueue[ARReq] = ChannelQueue(depth, f"{name}.ar")
        self.r: ChannelQueue[RBeat] = ChannelQueue(depth, f"{name}.r")
        self.aw: ChannelQueue[AWReq] = ChannelQueue(depth, f"{name}.aw")
        self.w: ChannelQueue[WBeat] = ChannelQueue(depth, f"{name}.w")
        self.b: ChannelQueue[BResp] = ChannelQueue(depth, f"{name}.b")

    def channels(self):
        return [self.ar, self.r, self.aw, self.w, self.b]
