"""Transaction-level AXI4 protocol model."""

from repro.axi.monitor import AxiMonitor, MonitoredAxiPort, TxnRecord
from repro.axi.types import ARReq, AWReq, AxiParams, AxiPort, BResp, RBeat, WBeat

__all__ = [
    "ARReq",
    "AWReq",
    "AxiParams",
    "AxiPort",
    "AxiMonitor",
    "MonitoredAxiPort",
    "BResp",
    "RBeat",
    "WBeat",
    "TxnRecord",
]
