"""Supported deployment platforms (paper Section II-D)."""

from repro.platforms.asic_platforms import (
    Asap7Platform,
    AsicPlatform,
    ChipKitPlatform,
    SimulationPlatform,
    SynopsysPdkPlatform,
)
from repro.platforms.base import HostInterface, Platform, kernel_mode
from repro.platforms.fpga_platforms import (
    AWSF1Platform,
    KriaPlatform,
    multi_die_platform,
)

__all__ = [
    "Platform",
    "HostInterface",
    "kernel_mode",
    "AWSF1Platform",
    "KriaPlatform",
    "multi_die_platform",
    "Asap7Platform",
    "AsicPlatform",
    "ChipKitPlatform",
    "SimulationPlatform",
    "SynopsysPdkPlatform",
]
