"""Platform abstraction (Section II-B, Platform Development).

A platform declares the three things the paper lists as the minimum for a new
target — ASIC/FPGA choice, external memory space and protocol parameters, and
host-communication properties — plus the optional performance knobs (SLR
topology, Reader/Writer tuning defaults, network elaboration limits).  The
elaborator consumes only this interface, which is what makes user designs
retargetable by swapping the platform object (paper Figure 3a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.axi.types import AxiParams
from repro.dram.timing import DramTiming
from repro.fpga.device import FpgaDevice
from repro.memory.reader import ReaderTuning
from repro.memory.writer import WriterTuning
from repro.noc.tree import TreeConfig


@dataclass(frozen=True)
class HostInterface:
    """Host-accelerator communication properties."""

    discrete: bool  # separate address spaces (PCIe card) vs shared (embedded)
    mmio_word_cycles: int  # fabric cycles one host MMIO word access occupies
    dma_bytes_per_cycle: float  # host<->device copy bandwidth (discrete only)
    response_poll_cycles: int  # server polling interval for responses
    command_lock_cycles: int  # runtime-server lock + bookkeeping per command


@dataclass(frozen=True)
class Platform:
    """Everything Beethoven needs to target a device."""

    name: str
    is_asic: bool
    clock_mhz: float
    axi_params: AxiParams
    dram_timing: DramTiming
    host: HostInterface
    tree_config: TreeConfig = field(default_factory=TreeConfig)
    device: Optional[FpgaDevice] = None  # None for ASIC targets
    memory_base: int = 0x0
    memory_bytes: int = 16 * 2**30
    reader_tuning: ReaderTuning = field(default_factory=ReaderTuning)
    writer_tuning: WriterTuning = field(default_factory=WriterTuning)
    command_hop_latency: int = 2  # per-SLR-crossing command network latency

    @property
    def addr_bits(self) -> int:
        return self.axi_params.addr_bits

    @property
    def n_slrs(self) -> int:
        return self.device.n_slrs if self.device is not None else 1

    @property
    def clock_ns(self) -> float:
        return 1_000.0 / self.clock_mhz

    def cycles_to_seconds(self, cycles: int) -> float:
        return cycles * self.clock_ns * 1e-9

    def command_latency_for(self, slr: int) -> int:
        """Command-network latency from the host interface to ``slr``."""
        host_slr = self.device.host_interface_slr if self.device else 0
        return 2 + self.command_hop_latency * abs(slr - host_slr)


def kernel_mode(platform: Platform) -> Platform:
    """The paper's future-work runtime: a kernel-module server.

    Moving the management runtime from a userspace server into the kernel
    removes the userspace lock round-trip, lets responses be collected from
    the interrupt path instead of timed polling, and allows the command
    words to be posted as one write-combined MMIO burst instead of six
    independent uncached writes.  Modelled as a 4x cheaper lock, 3x tighter
    response collection and 3x cheaper per-word MMIO cost; the dispatch
    serialisation itself (one command at a time) remains.
    """
    from dataclasses import replace

    host = replace(
        platform.host,
        command_lock_cycles=max(platform.host.command_lock_cycles // 4, 1),
        response_poll_cycles=max(platform.host.response_poll_cycles // 3, 1),
        mmio_word_cycles=max(platform.host.mmio_word_cycles // 3, 1),
    )
    return replace(platform, host=host)
