"""ASIC and simulation platform definitions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.asic.macros import ASAP7_MACROS, SAED_MACROS, SramMacro
from repro.axi.types import AxiParams
from repro.dram.timing import DramTiming
from repro.memory.reader import ReaderTuning
from repro.memory.writer import WriterTuning
from repro.noc.tree import TreeConfig
from repro.platforms.base import HostInterface, Platform


@dataclass(frozen=True)
class AsicPlatform(Platform):
    """A Platform plus the ASIC technology information."""

    macro_library: Sequence[SramMacro] = ASAP7_MACROS
    m0_source_path: Optional[str] = None  # required for ChipKIT integration


def _asic_host() -> HostInterface:
    # On a test chip the on-die CPU *is* the host: MMIO is a bus register
    # access, there is no DMA (single memory), and polling is cheap.
    return HostInterface(
        discrete=False,
        mmio_word_cycles=2,
        dma_bytes_per_cycle=0.0,
        response_poll_cycles=8,
        command_lock_cycles=8,
    )


def Asap7Platform(clock_mhz: float = 1000.0) -> AsicPlatform:
    """ASAP7 predictive-PDK target (paper Section II-D)."""
    return AsicPlatform(
        name="asap7",
        is_asic=True,
        clock_mhz=clock_mhz,
        axi_params=AxiParams(beat_bytes=32, id_bits=4, addr_bits=32, max_burst_beats=32),
        dram_timing=DramTiming(
            n_banks=8, row_bytes=1024, col_bytes=32,
            t_rcd=14, t_rp=14, t_cl=14, t_ras=32, t_bus_turn=6,
        ),
        host=_asic_host(),
        tree_config=TreeConfig(fanout=4, interior_depth=2, slr_crossing_latency=0),
        device=None,
        memory_bytes=2 * 2**30,
        reader_tuning=ReaderTuning(max_txn_beats=32, n_axi_ids=2, max_in_flight=2,
                                   buffer_bytes=2048),
        writer_tuning=WriterTuning(max_txn_beats=32, n_axi_ids=2, max_in_flight=2,
                                   buffer_bytes=2048),
        macro_library=ASAP7_MACROS,
    )


def SynopsysPdkPlatform(clock_mhz: float = 400.0) -> AsicPlatform:
    """Synopsys academic PDK target."""
    base = Asap7Platform(clock_mhz)
    return AsicPlatform(
        name="synopsys-pdk",
        is_asic=True,
        clock_mhz=clock_mhz,
        axi_params=base.axi_params,
        dram_timing=base.dram_timing,
        host=base.host,
        tree_config=base.tree_config,
        device=None,
        memory_bytes=base.memory_bytes,
        reader_tuning=base.reader_tuning,
        writer_tuning=base.writer_tuning,
        macro_library=SAED_MACROS,
    )


def ChipKitPlatform(m0_source_path: str, clock_mhz: float = 400.0) -> AsicPlatform:
    """ChipKIT test-chip target; requires the licensed ARM M0 source path."""
    base = Asap7Platform(clock_mhz)
    return AsicPlatform(
        name="chipkit",
        is_asic=True,
        clock_mhz=clock_mhz,
        axi_params=base.axi_params,
        dram_timing=base.dram_timing,
        host=base.host,
        tree_config=base.tree_config,
        device=None,
        memory_bytes=base.memory_bytes,
        reader_tuning=base.reader_tuning,
        writer_tuning=base.writer_tuning,
        macro_library=ASAP7_MACROS,
        m0_source_path=m0_source_path,
    )


def SimulationPlatform(clock_mhz: float = 250.0) -> Platform:
    """A debugging platform: AWS F1 fabric with a free host.

    Mirrors the paper's Verilator/VCS + DRAMsim3 simulation platform: the
    memory model is the full DRAM simulator, but host interactions cost
    (almost) nothing, which makes functional unit tests fast and focused.
    """
    from repro.platforms.fpga_platforms import AWSF1Platform

    f1 = AWSF1Platform(clock_mhz)
    return Platform(
        name="simulation",
        is_asic=False,
        clock_mhz=clock_mhz,
        axi_params=f1.axi_params,
        dram_timing=f1.dram_timing,
        host=HostInterface(
            discrete=True,
            mmio_word_cycles=1,
            dma_bytes_per_cycle=64.0,
            response_poll_cycles=4,
            command_lock_cycles=2,
        ),
        tree_config=f1.tree_config,
        device=f1.device,
        memory_bytes=f1.memory_bytes,
        reader_tuning=f1.reader_tuning,
        writer_tuning=f1.writer_tuning,
    )
