"""Concrete FPGA platforms: AWS F1 (discrete) and Kria/Zynq (embedded)."""

from __future__ import annotations

import dataclasses

from repro.axi.types import AxiParams
from repro.dram.timing import DDR4_AWS_F1, LPDDR4_KRIA
from repro.fpga.device import make_kria_k26, make_multi_die, make_vu9p_aws_f1
from repro.memory.reader import ReaderTuning
from repro.memory.writer import WriterTuning
from repro.noc.tree import TreeConfig
from repro.platforms.base import HostInterface, Platform


def AWSF1Platform(clock_mhz: float = 250.0) -> Platform:
    """The AWS F1 / Alveo U200 target used throughout the paper's evaluation.

    Discrete PCIe-attached card: MMIO accesses cross PCIe (~120 ns each at
    250 MHz fabric), DMA runs at shell bandwidth, and the 3-SLR VU9P needs
    SLR-aware networks.
    """
    return Platform(
        name="aws-f1",
        is_asic=False,
        clock_mhz=clock_mhz,
        axi_params=AxiParams(beat_bytes=64, id_bits=6, addr_bits=34, max_burst_beats=64),
        dram_timing=DDR4_AWS_F1,
        host=HostInterface(
            discrete=True,
            mmio_word_cycles=30,
            dma_bytes_per_cycle=32.0,
            response_poll_cycles=60,
            command_lock_cycles=50,
        ),
        tree_config=TreeConfig(fanout=8, interior_depth=4, slr_crossing_latency=4),
        device=make_vu9p_aws_f1(),
        memory_bytes=16 * 2**30,
        reader_tuning=ReaderTuning(max_txn_beats=64, n_axi_ids=4, max_in_flight=4),
        writer_tuning=WriterTuning(max_txn_beats=64, n_axi_ids=4, max_in_flight=4),
    )


def multi_die_platform(
    n_slrs: int = 4,
    slr_crossing_latency: int = 8,
    clock_mhz: float = 250.0,
) -> Platform:
    """An F1-style discrete platform on a synthetic ``n_slrs``-die device.

    The deeper SLR-crossing pipelining (default 8 cycles vs F1's 4) is an
    honest platform parameter — very large multi-die parts need it to close
    timing — and it doubles as the sharded simulator's lookahead window: the
    conservative slice width equals the minimum bridge latency, so deeper
    crossings mean fewer synchronization barriers per simulated cycle.
    """
    base = AWSF1Platform(clock_mhz=clock_mhz)
    return dataclasses.replace(
        base,
        name=f"multi-die-{n_slrs}",
        tree_config=dataclasses.replace(
            base.tree_config, slr_crossing_latency=slr_crossing_latency
        ),
        device=make_multi_die(n_slrs),
    )


def KriaPlatform(clock_mhz: float = 100.0) -> Platform:
    """The Kria KV260 embedded target (paper Figure 3a).

    Embedded: the FPGA shares the host address space (hugepage-backed
    physical allocations, AXI-ACE-coherent), MMIO is an on-die register
    access, and the single-die device needs no SLR machinery.
    """
    return Platform(
        name="kria",
        is_asic=False,
        clock_mhz=clock_mhz,
        axi_params=AxiParams(beat_bytes=16, id_bits=4, addr_bits=40, max_burst_beats=64),
        dram_timing=LPDDR4_KRIA,
        host=HostInterface(
            discrete=False,
            mmio_word_cycles=4,
            dma_bytes_per_cycle=0.0,  # no DMA needed: shared address space
            response_poll_cycles=12,
            command_lock_cycles=20,
        ),
        tree_config=TreeConfig(fanout=6, interior_depth=2, slr_crossing_latency=0),
        device=make_kria_k26(),
        memory_bytes=4 * 2**30,
        reader_tuning=ReaderTuning(max_txn_beats=32, n_axi_ids=2, max_in_flight=2,
                                   buffer_bytes=2 * 4096),
        writer_tuning=WriterTuning(max_txn_beats=32, n_axi_ids=2, max_in_flight=2,
                                   buffer_bytes=2 * 4096),
    )
