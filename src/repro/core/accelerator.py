"""The ``AcceleratorCore`` base class (paper Figure 2).

Users subclass this, declare IOs with :meth:`beethoven_io`, fetch their
configured Readers/Writers/Scratchpads by name, and implement per-cycle
behaviour in :meth:`tick`.  Everything else — the command plumbing, the
memory network, floorplanning, host bindings — is generated around the core
by the elaborator.
"""

from __future__ import annotations

from typing import List, Optional

from repro.command.packing import CommandSpec, ResponseSpec
from repro.command.router import BeethovenIO
from repro.core.context import CoreContext
from repro.fpga.device import ResourceVector
from repro.memory.reader import Reader
from repro.memory.scratchpad import Scratchpad
from repro.memory.writer import Writer
from repro.sim import Component


class AcceleratorCore(Component):
    """Base class for user cores.

    Subclasses must call ``super().__init__(ctx)`` and then declare their IO
    and fetch primitives in their own ``__init__``, mirroring the paper's
    Chisel idiom::

        class MyAccelerator(AcceleratorCore):
            def __init__(self, ctx):
                super().__init__(ctx)
                self.io = self.beethoven_io(
                    CommandSpec("my_accel", (
                        Field("addend", UInt(32)),
                        Field("vec_addr", Address()),
                        Field("n_eles", UInt(20)),
                    )),
                    EmptyAccelResponse(),
                )
                self.vec_in = self.get_reader_module("vec_in")
                self.vec_out = self.get_writer_module("vec_out")

            def tick(self, cycle): ...
    """

    def __init__(self, ctx: CoreContext) -> None:
        super().__init__(f"{ctx.system_name}.core{ctx.core_id}")
        self.ctx = ctx

    # -- declaration API -------------------------------------------------------
    def beethoven_io(self, command: CommandSpec, response: ResponseSpec) -> BeethovenIO:
        """Declare a named command/response interface for this core."""
        return self.ctx.beethoven_io(command, response)

    def get_reader_module(self, name: str, idx: int = 0) -> Reader:
        return self.ctx.get_reader_module(name, idx)

    def get_writer_module(self, name: str, idx: int = 0) -> Writer:
        return self.ctx.get_writer_module(name, idx)

    def get_scratchpad(self, name: str) -> Scratchpad:
        return self.ctx.get_scratchpad(name)

    def get_intra_core_mem_ins(self, name: str):
        return self.ctx.get_intra_core_mem_ins(name)

    def get_intra_core_mem_out(self, name: str):
        return self.ctx.get_intra_core_mem_out(name)

    # -- properties ----------------------------------------------------------
    @property
    def core_id(self) -> int:
        return self.ctx.core_id

    @property
    def ios(self) -> List[BeethovenIO]:
        return self.ctx.ios

    # -- costing hooks ----------------------------------------------------------
    def kernel_resources(self) -> Optional[ResourceVector]:
        """Per-core *kernel logic* estimate (excluding Beethoven primitives).

        Defaults to the system configuration's ``kernel_resources``;
        subclasses may override with a parameter-derived estimate.
        """
        return self.ctx.config.kernel_resources

    # -- behaviour ---------------------------------------------------------------
    def tick(self, cycle: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError("accelerator cores must implement tick()")

    def wake_channels(self):
        """Every channel a core's tick can legally touch, from the context.

        Covers the declared command IOs, Reader/Writer queues, scratchpad
        ports, and intra-core links, so a hinted core (one overriding
        :meth:`~repro.sim.Component.next_event`) is woken by any traffic on
        its primitives without naming them individually.  Direct reads of an
        intra-core memory are covered separately by its access hook.
        """
        ctx = self.ctx
        chans = []
        for io in ctx.ios:
            chans += [io.req, io.resp]
        for readers in ctx.readers.values():
            for r in readers:
                chans += [r.request, r.data]
        for writers in ctx.writers.values():
            for w in writers:
                chans += [w.request, w.data, w.done]
        for sp in ctx.scratchpads.values():
            chans += [sp.init, sp.init_done]
            for port in sp.ports:
                chans += [port.req, port.resp]
        for imem in ctx.intra_in.values():
            chans += [link.chan for link in imem.links]
        for links in ctx.intra_out.values():
            chans += [link.chan for link in links]
        return chans
