"""Intra-accelerator (core-to-core) communication memories.

``IntraCoreMemoryPortIn`` declares a scratchpad-like memory writeable from
other cores; ``...Out`` declares a write port targeting such a memory in
another system (appendix tables).  The elaborator aliases each Out link's
channel onto the matching In link's channel, so a producer core pushing
``(row, data)`` tuples lands writes in the consumer core's memory, which the
consumer reads through ordinary memory ports.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.memory.scratchpad import Memory
from repro.sim import NEVER, ChannelQueue, Component


class IntraCoreLink:
    """A one-way (row, data) channel between cores."""

    def __init__(self, name: str, depth: int = 4) -> None:
        self.name = name
        self.chan: ChannelQueue[Tuple[int, int]] = ChannelQueue(depth, name)

    def push(self, row: int, data: int) -> None:
        self.chan.push((row, data))

    def can_push(self) -> bool:
        return self.chan.can_push()


class IntraCoreBroadcast(Component):
    """Fans one producer link out to every consumer core's memory.

    Implements ``comm_degree="broadcast"``: an item is forwarded only when
    every sink has space (a physical broadcast bus stalls on any busy
    endpoint).
    """

    def __init__(self, name: str, sinks: List[IntraCoreLink]) -> None:
        super().__init__(f"bcast.{name}")
        self.input = IntraCoreLink(f"{name}.in")
        self.sinks = sinks
        self.forwarded = 0

    def channels(self):
        return [self.input.chan]

    def tick(self, cycle: int) -> None:
        if self.input.chan.can_pop() and all(s.chan.can_push() for s in self.sinks):
            row, data = self.input.chan.pop()
            for sink in self.sinks:
                sink.chan.push((row, data))
            self.forwarded += 1

    def next_event(self, cycle: int) -> float:
        return NEVER  # purely reactive: forwarding pops the input channel

    def wake_channels(self):
        # Forwarding needs space in every sink link, none of which it owns.
        return [self.input.chan] + [s.chan for s in self.sinks]


class IntraCoreMemory(Component):
    """The receiving-side memory: drains write links into an SRAM.

    The local core reads it through ``mem`` like any other on-chip memory;
    remote cores write through the aliased links at one write per link per
    cycle (matching a physical write port per channel).
    """

    def __init__(
        self,
        name: str,
        data_width_bits: int,
        n_datas: int,
        n_channels: int,
        ports_per_channel: int = 1,
        latency: int = 2,
        read_only_local: bool = False,
    ) -> None:
        super().__init__(f"intramem.{name}")
        self.links: List[IntraCoreLink] = [
            IntraCoreLink(f"{name}.in{i}") for i in range(n_channels)
        ]
        self.mem = Memory(
            latency,
            data_width_bits,
            n_datas,
            n_read_ports=max(n_channels * ports_per_channel, 1),
            n_write_ports=n_channels,
            name=f"{name}.mem",
        )
        self.read_only_local = read_only_local
        self.writes_applied = 0
        # The local core reads ``mem`` directly (no channel crossing), which
        # the wake sets cannot see; the access hook re-wakes this component
        # so the read pipeline keeps getting clocked.
        self.mem.on_activity = self.request_wake

    def channels(self):
        return [link.chan for link in self.links]

    def tick(self, cycle: int) -> None:
        for i, link in enumerate(self.links):
            if link.chan.can_pop():
                row, data = link.chan.pop()
                self.mem.write(i, row, data)
                self.writes_applied += 1
        self.mem.clock()

    def next_event(self, cycle: int) -> float:
        """``mem.clock`` only changes observable state while a read is in the
        pipeline or parked at the output; otherwise writes arrive as channel
        traffic and the tick is a no-op."""
        if any(e is not None for pipe in self.mem._pipes for e in pipe) or any(
            o is not None for o in self.mem._out
        ):
            return cycle
        return NEVER
