"""Per-core elaboration context.

The context is what a core's constructor receives (the Python analogue of
Chisel's implicit ``Parameters``): it owns the Readers/Writers/Scratchpads
declared in the system configuration for this core and hands them out by
name, records the core's command IOs, and exposes platform parameters.
"""

from __future__ import annotations

from typing import Dict, List

from repro.command.packing import CommandSpec, ResponseSpec
from repro.command.router import BeethovenIO
from repro.core.config import (
    AcceleratorConfig,
    IntraCoreMemoryPortInConfig,
    IntraCoreMemoryPortOutConfig,
    ReadChannelConfig,
    ScratchpadConfig,
    WriteChannelConfig,
)
from repro.core.intra import IntraCoreLink, IntraCoreMemory
from repro.memory.reader import Reader
from repro.memory.scratchpad import Scratchpad
from repro.memory.writer import Writer
from repro.platforms.base import Platform


class CoreContext:
    """Everything one core instance may touch during construction."""

    def __init__(
        self,
        system_name: str,
        system_id: int,
        core_id: int,
        config: AcceleratorConfig,
        platform: Platform,
    ) -> None:
        self.system_name = system_name
        self.system_id = system_id
        self.core_id = core_id
        self.config = config
        self.platform = platform
        self.readers: Dict[str, List[Reader]] = {}
        self.writers: Dict[str, List[Writer]] = {}
        self.scratchpads: Dict[str, Scratchpad] = {}
        self.intra_in: Dict[str, IntraCoreMemory] = {}
        self.intra_out: Dict[str, List[IntraCoreLink]] = {}
        self.ios: List[BeethovenIO] = []
        self._build_primitives()

    # -- construction -------------------------------------------------------
    def _build_primitives(self) -> None:
        prefix = f"{self.system_name}.c{self.core_id}"
        for cfg in self.config.memory_channel_config:
            if isinstance(cfg, ReadChannelConfig):
                tuning = cfg.tuning or self.platform.reader_tuning
                self.readers[cfg.name] = [
                    Reader(
                        f"{prefix}.{cfg.name}{i}",
                        cfg.data_bytes,
                        self.platform.axi_params,
                        tuning,
                    )
                    for i in range(cfg.n_channels)
                ]
            elif isinstance(cfg, WriteChannelConfig):
                tuning = cfg.tuning or self.platform.writer_tuning
                self.writers[cfg.name] = [
                    Writer(
                        f"{prefix}.{cfg.name}{i}",
                        cfg.data_bytes,
                        self.platform.axi_params,
                        tuning,
                    )
                    for i in range(cfg.n_channels)
                ]
            elif isinstance(cfg, ScratchpadConfig):
                self.scratchpads[cfg.name] = Scratchpad(
                    f"{prefix}.{cfg.name}",
                    cfg.data_width_bits,
                    cfg.n_datas,
                    self.platform.axi_params,
                    n_ports=cfg.n_ports,
                    latency=cfg.latency,
                    with_init=cfg.features.init_via_reader,
                )
            elif isinstance(cfg, IntraCoreMemoryPortInConfig):
                self.intra_in[cfg.name] = IntraCoreMemory(
                    f"{prefix}.{cfg.name}",
                    cfg.data_width_bits,
                    cfg.n_datas,
                    cfg.n_channels,
                    cfg.ports_per_channel,
                    cfg.latency,
                    read_only_local=cfg.read_only,
                )
            elif isinstance(cfg, IntraCoreMemoryPortOutConfig):
                self.intra_out[cfg.name] = [
                    IntraCoreLink(f"{prefix}.{cfg.name}.out{i}")
                    for i in range(cfg.n_channels)
                ]
            else:  # pragma: no cover - config union is closed
                raise TypeError(f"unknown memory channel config {cfg!r}")

    # -- core-facing API ------------------------------------------------------
    def beethoven_io(self, command: CommandSpec, response: ResponseSpec) -> BeethovenIO:
        io = BeethovenIO(
            command, response, owner=f"{self.system_name}.c{self.core_id}"
        )
        self.ios.append(io)
        return io

    def get_reader_module(self, name: str, idx: int = 0) -> Reader:
        try:
            return self.readers[name][idx]
        except (KeyError, IndexError):
            raise KeyError(
                f"no reader channel {name!r}[{idx}] configured for {self.system_name}"
            ) from None

    def get_writer_module(self, name: str, idx: int = 0) -> Writer:
        try:
            return self.writers[name][idx]
        except (KeyError, IndexError):
            raise KeyError(
                f"no writer channel {name!r}[{idx}] configured for {self.system_name}"
            ) from None

    def get_scratchpad(self, name: str) -> Scratchpad:
        try:
            return self.scratchpads[name]
        except KeyError:
            raise KeyError(
                f"no scratchpad {name!r} configured for {self.system_name}"
            ) from None

    def get_intra_core_mem_ins(self, name: str) -> IntraCoreMemory:
        return self.intra_in[name]

    def get_intra_core_mem_out(self, name: str) -> List[IntraCoreLink]:
        return self.intra_out[name]

    # -- elaborator-facing API -------------------------------------------------
    def all_axi_masters(self):
        """Every AXI master port this core contributes to the memory NoC."""
        ports = []
        for readers in self.readers.values():
            ports += [r.port for r in readers]
        for writers in self.writers.values():
            ports += [w.port for w in writers]
        for sp in self.scratchpads.values():
            if sp.reader is not None:
                ports.append(sp.reader.port)
        return ports

    def all_components(self):
        comps = []
        for readers in self.readers.values():
            comps += readers
        for writers in self.writers.values():
            comps += writers
        for sp in self.scratchpads.values():
            comps.append(sp)
            comps += sp.components()
        comps += list(self.intra_in.values())
        return comps
