"""Accelerator configuration (paper Figure 3a).

Configurations let the developer declare memory interfaces for a Core, scale
the core count of a System, or add whole Systems, without touching the
functional description of the design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

from repro.fpga.device import ResourceVector
from repro.memory.reader import ReaderTuning
from repro.memory.writer import WriterTuning


@dataclass(frozen=True)
class ReadChannelConfig:
    """Declares a named Reader channel group for a Core."""

    name: str
    data_bytes: int
    n_channels: int = 1
    tuning: Optional[ReaderTuning] = None

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ValueError("n_channels must be >= 1")


@dataclass(frozen=True)
class WriteChannelConfig:
    """Declares a named Writer channel group for a Core."""

    name: str
    data_bytes: int
    n_channels: int = 1
    tuning: Optional[WriterTuning] = None

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ValueError("n_channels must be >= 1")


@dataclass(frozen=True)
class ScratchpadFeatures:
    """Optional scratchpad behaviours."""

    init_via_reader: bool = True
    #: Two banks so the next operand set can load while the current one is
    #: read (costs double the memory cells — the A^3 scratchpads use this).
    double_buffered: bool = False


@dataclass(frozen=True)
class ScratchpadConfig:
    """Declares a named Beethoven-managed scratchpad for a Core."""

    name: str
    data_width_bits: int
    n_datas: int
    n_ports: int = 1
    latency: int = 2
    features: ScratchpadFeatures = field(default_factory=ScratchpadFeatures)


@dataclass(frozen=True)
class IntraCoreMemoryPortInConfig:
    """A scratchpad writeable from other cores on chip (appendix)."""

    name: str
    n_channels: int
    ports_per_channel: int
    data_width_bits: int
    n_datas: int
    comm_degree: str = "point_to_point"  # or "broadcast"
    read_only: bool = False
    latency: int = 2


@dataclass(frozen=True)
class IntraCoreMemoryPortOutConfig:
    """A write port into another system's intra-core memory (appendix)."""

    name: str
    to_system: str
    to_memory_port: str
    n_channels: int = 1


MemoryChannelConfig = Union[
    ReadChannelConfig,
    WriteChannelConfig,
    ScratchpadConfig,
    IntraCoreMemoryPortInConfig,
    IntraCoreMemoryPortOutConfig,
]


@dataclass(frozen=True)
class AcceleratorConfig:
    """One Beethoven System: ``n_cores`` identical cores of one module type.

    ``module_constructor`` receives a :class:`~repro.core.context.CoreContext`
    and returns the user's :class:`~repro.core.accelerator.AcceleratorCore`.
    """

    name: str
    n_cores: int
    module_constructor: Callable
    memory_channel_config: Sequence[MemoryChannelConfig] = ()
    kernel_resources: Optional[ResourceVector] = None  # per-core logic estimate

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("a System needs at least one core")
        names = [c.name for c in self.memory_channel_config]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate memory channel names in {self.name!r}")

    def channel(self, name: str) -> MemoryChannelConfig:
        for cfg in self.memory_channel_config:
            if cfg.name == name:
                return cfg
        raise KeyError(f"no memory channel {name!r} in system {self.name!r}")


def as_config_list(
    configs: Union[AcceleratorConfig, Sequence[AcceleratorConfig]]
) -> List[AcceleratorConfig]:
    if isinstance(configs, AcceleratorConfig):
        return [configs]
    out = list(configs)
    names = [c.name for c in out]
    if len(set(names)) != len(names):
        raise ValueError("duplicate System names in accelerator configuration")
    return out
