"""``BeethovenBuild`` — the user entry point (paper Figure 3a).

Elaborates an accelerator configuration for a platform and exposes every
generated artefact: the simulatable design, the structural Verilog, the
placement constraints, the C++ host bindings and the reports.  The build
modes mirror the paper's flows:

* ``Simulation`` — elaborate + wire the cycle simulator (Verilator/DRAMsim3
  role); the returned design is ready for :class:`repro.runtime.FpgaHandle`.
* ``Synthesis`` — additionally runs the feasibility model (floorplan,
  memcell mapping, routability) and refuses designs that would not route.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence, Union

from repro.asic.chipkit import ChipKitIntegration
from repro.codegen.cpp import generate_header
from repro.core.config import AcceleratorConfig, as_config_list
from repro.core.elaboration import ElaboratedDesign
from repro.core.hdlgen import build_hdl
from repro.hdl.verilog import emit_design
from repro.obs.config import Observability
from repro.platforms.base import Platform
from repro.sim import Tracer


class BuildMode(enum.Enum):
    Simulation = "simulation"
    Synthesis = "synthesis"


class InfeasibleDesignError(RuntimeError):
    """Raised in Synthesis mode when the design would not place/route."""


class BeethovenBuild:
    """Elaborate a configuration onto a platform and collect the artefacts."""

    def __init__(
        self,
        configs: Union[AcceleratorConfig, Sequence[AcceleratorConfig]],
        platform: Platform,
        build_mode: BuildMode = BuildMode.Simulation,
        tracer: Optional[Tracer] = None,
        fast_forward: bool = True,
        observability: Optional["Observability"] = None,
        scheduling: Optional[str] = None,
        faults=None,
        watchdog=None,
        distributed=None,
    ) -> None:
        self.platform = platform
        self.build_mode = build_mode
        self.configs = as_config_list(configs)
        self.design = ElaboratedDesign(
            self.configs,
            platform,
            tracer,
            fast_forward=fast_forward,
            observability=observability,
            scheduling=scheduling,
            faults=faults,
            watchdog=watchdog,
            distributed=distributed,
        )
        if build_mode is BuildMode.Synthesis:
            report = self.design.routability
            if report is not None and not report.feasible:
                raise InfeasibleDesignError(
                    "design fails the place/route feasibility model: "
                    + "; ".join(report.reasons)
                )

    # ------------------------------------------------------------- artefacts
    def emit_verilog(self) -> str:
        return emit_design(self.hdl_top())

    def hdl_top(self):
        return build_hdl(self.design)

    def emit_constraints(self) -> str:
        return self.design.emit_constraints()

    def emit_cpp_header(self) -> str:
        return generate_header(self.design)

    def emit_chipkit_top(self):
        """ASIC flow: wrap the fabric with the user's licensed CPU."""
        m0_path = getattr(self.platform, "m0_source_path", None)
        integration = ChipKitIntegration(m0_source_path=m0_path or "")
        return integration.build_top(self.hdl_top())

    # ---------------------------------------------------------- observability
    @property
    def registry(self):
        """Design-wide metric registry (see :mod:`repro.obs`)."""
        return self.design.registry

    def metrics(self, prefix=None, stable_only: bool = False):
        return self.design.metrics(prefix, stable_only=stable_only)

    def metrics_report(self, prefix=None) -> str:
        return self.design.metrics_report(prefix)

    def export_metrics(self, path: str, prefix=None):
        return self.design.export_metrics(path, prefix)

    def chrome_trace(self):
        return self.design.chrome_trace()

    def export_chrome_trace(self, path: str):
        """Write a Perfetto-loadable (ui.perfetto.dev) trace JSON file."""
        return self.design.export_chrome_trace(path)

    def profile_report(self, top: int = 0) -> str:
        return self.design.profile_report(top=top)

    def attribution_report(self, by_tenant: bool = False):
        """Cycle-attribution rollup (see :mod:`repro.obs.attribution`)."""
        return self.design.attribution_report(by_tenant=by_tenant)

    def attribution_report_text(self) -> str:
        return self.design.attribution_report_text()

    def export_attribution(self, path: str, by_tenant: bool = False):
        return self.design.export_attribution(path, by_tenant=by_tenant)

    # ---------------------------------------------------------------- reports
    @property
    def resource_report(self):
        return self.design.report

    @property
    def placement(self):
        return self.design.placement

    @property
    def routability(self):
        return self.design.routability

    def summary(self) -> str:
        """One-paragraph human summary of the build."""
        d = self.design
        n_cores = sum(len(s.cores) for s in d.systems)
        lines = [
            f"Beethoven build: {len(d.systems)} system(s), {n_cores} core(s) "
            f"on {self.platform.name}",
        ]
        if d.network is not None:
            lines.append(
                f"  memory network: {getattr(d, 'n_memory_interfaces', 0)} interfaces, "
                f"{d.network.n_nodes} nodes, {d.network.n_pipes} SLR bridges"
            )
        if getattr(d, "dist_plan", None) is not None:
            desc = d.dist_plan.descriptor()
            lines.append(
                f"  sharded: {desc.n_workers} partitions, slice width "
                f"{desc.slice_width}, {len(desc.cut_set)} cut bridges "
                f"({d.sim.engine} engine)"
            )
        if d.placement is not None and self.platform.device is not None:
            per_slr = {
                slr: len(d.placement.cores_on(slr))
                for slr in range(self.platform.device.n_slrs)
            }
            lines.append(f"  floorplan: cores per SLR {per_slr}")
        if d.routability is not None:
            verdict = "routable" if d.routability.feasible else "NOT routable"
            lines.append(
                f"  feasibility: {verdict} (worst util {d.routability.worst_util:.1%})"
            )
        return "\n".join(lines)
