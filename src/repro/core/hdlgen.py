"""HDL IR construction for an elaborated design.

Builds the structural module hierarchy Beethoven would emit: the top level
contains the MMIO frontend, the command router, the memory network nodes and
one module per System containing its Cores; each Core module contains the
user kernel stub plus the generated Readers/Writers/Scratchpads with their
(mapped) memories.  The emitted Verilog is a structural netlist with
behavioural bodies summarised — see DESIGN.md for the fidelity statement.
"""

from __future__ import annotations

from typing import Dict

from repro.hdl.ir import HdlModule, sanitize
from repro.hdl.verilog import emit_design


def _reader_module(name: str, data_bytes: int, axi_beat_bytes: int) -> HdlModule:
    mod = HdlModule(sanitize(f"reader_{name}"), doc="Beethoven Reader (prefetching, TLP)")
    mod.add_port("clk", "input")
    mod.add_port("req_valid", "input")
    mod.add_port("req_ready", "output")
    mod.add_port("req_addr", "input", 64)
    mod.add_port("req_len", "input", 32)
    mod.add_port("data_valid", "output")
    mod.add_port("data_ready", "input")
    mod.add_port("data_bits", "output", data_bytes * 8)
    for ch, d in (("ar", "output"), ("r", "input")):
        mod.add_port(f"axi_{ch}_valid", d)
        mod.add_port(f"axi_{ch}_ready", "input" if d == "output" else "output")
    mod.add_port("axi_r_bits", "input", axi_beat_bytes * 8)
    return mod


def _writer_module(name: str, data_bytes: int, axi_beat_bytes: int) -> HdlModule:
    mod = HdlModule(sanitize(f"writer_{name}"), doc="Beethoven Writer (TLP)")
    mod.add_port("clk", "input")
    mod.add_port("req_valid", "input")
    mod.add_port("req_ready", "output")
    mod.add_port("req_addr", "input", 64)
    mod.add_port("req_len", "input", 32)
    mod.add_port("data_valid", "input")
    mod.add_port("data_ready", "output")
    mod.add_port("data_bits", "input", data_bytes * 8)
    mod.add_port("done_valid", "output")
    for ch in ("aw", "w", "b"):
        mod.add_port(f"axi_{ch}_valid", "output" if ch != "b" else "input")
        mod.add_port(f"axi_{ch}_ready", "input" if ch != "b" else "output")
    mod.add_port("axi_w_bits", "output", axi_beat_bytes * 8)
    return mod


def build_hdl(design) -> HdlModule:
    """Construct the HDL hierarchy for an :class:`ElaboratedDesign`."""
    platform = design.platform
    beat = platform.axi_params.beat_bytes
    top = HdlModule(
        sanitize(f"beethoven_top_{platform.name}"),
        doc=f"Beethoven accelerator top for platform {platform.name}",
    )
    top.add_port("clk", "input")
    top.add_port("rst_n", "input")
    # External memory interface.
    for port_name, width, direction in (
        ("m_axi_ar", 64, "output"),
        ("m_axi_r", beat * 8, "input"),
        ("m_axi_aw", 64, "output"),
        ("m_axi_w", beat * 8, "output"),
        ("m_axi_b", 2, "input"),
    ):
        top.add_port(port_name, direction, width)
    # Host MMIO interface.
    top.add_port("s_mmio_awaddr", "input", 32)
    top.add_port("s_mmio_wdata", "input", 32)
    top.add_port("s_mmio_rdata", "output", 32)

    mmio = HdlModule("mmio_frontend", doc="AXI-MMIO command/response system")
    mmio.add_port("clk", "input")
    top.instantiate(mmio, "u_mmio", {"clk": "clk"})
    router = HdlModule("command_router", doc="SLR-aware command routing network")
    router.add_port("clk", "input")
    top.instantiate(router, "u_cmd_router", {"clk": "clk"})

    module_cache: Dict[str, HdlModule] = {}
    for system in design.systems:
        sys_mod = HdlModule(
            sanitize(f"system_{system.config.name}"),
            doc=f"Beethoven System {system.config.name!r} ({len(system.cores)} cores)",
        )
        sys_mod.add_port("clk", "input")
        for ecore in system.cores:
            core_mod = HdlModule(
                sanitize(f"core_{system.config.name}_{ecore.core_id}"),
                doc=f"Core {ecore.core_id} of system {system.config.name!r}",
            )
            core_mod.add_port("clk", "input")
            core_mod.attrs["slr"] = ecore.slr
            kernel = HdlModule(
                sanitize(f"kernel_{system.config.name}"),
                doc=f"User kernel logic ({type(ecore.core).__name__})",
            )
            kernel.add_port("clk", "input")
            if kernel.name not in module_cache:
                module_cache[kernel.name] = kernel
            core_mod.instantiate(module_cache[kernel.name], "u_kernel", {"clk": "clk"})
            ctx = ecore.ctx
            for rname, readers in ctx.readers.items():
                for i, r in enumerate(readers):
                    rmod_name = sanitize(f"reader_{system.config.name}_{rname}")
                    if rmod_name not in module_cache:
                        module_cache[rmod_name] = _reader_module(
                            f"{system.config.name}_{rname}", r.data_bytes, beat
                        )
                    core_mod.instantiate(
                        module_cache[rmod_name], f"u_{rname}_{i}", {"clk": "clk"}
                    )
            for wname, writers in ctx.writers.items():
                for i, w in enumerate(writers):
                    wmod_name = sanitize(f"writer_{system.config.name}_{wname}")
                    if wmod_name not in module_cache:
                        module_cache[wmod_name] = _writer_module(
                            f"{system.config.name}_{wname}", w.data_bytes, beat
                        )
                    core_mod.instantiate(
                        module_cache[wmod_name], f"u_{wname}_{i}", {"clk": "clk"}
                    )
            for _name, mem in ecore.memories:
                core_mod.add_memory(mem)
            sys_mod.instantiate(core_mod, f"u_core{ecore.core_id}", {"clk": "clk"})
        top.instantiate(sys_mod, f"u_{sanitize(system.config.name)}", {"clk": "clk"})

    if design.network is not None:
        noc = HdlModule(
            "memory_noc",
            doc=(
                f"Generated memory network: {design.network.n_nodes} buffer nodes, "
                f"{design.network.n_pipes} SLR bridges, depth {design.network.depth}"
            ),
        )
        noc.add_port("clk", "input")
        top.instantiate(noc, "u_memory_noc", {"clk": "clk"})
    return top


def emit_verilog(design) -> str:
    return emit_design(build_hdl(design))
