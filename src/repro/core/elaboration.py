"""SoC elaboration: from configurations to a simulatable, costed design.

This is the heart of the reproduction — the code path that plays the role of
Beethoven's Chisel elaboration:

1. construct every System's cores and their declared memory primitives;
2. estimate per-core resources and floorplan cores onto SLRs;
3. map each core's on-chip memories to BRAM/URAM (80% spill rule) or, on
   ASIC targets, compile them to SRAM macros;
4. build the SLR-aware memory tree network from every Reader/Writer port to
   the DDR controller, and the command network from the MMIO frontend to
   every core;
5. register everything with a cycle simulator and produce the resource,
   floorplan and routability reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.asic.macros import MemoryCompiler
from repro.axi.monitor import AxiMonitor, MonitoredAxiPort
from repro.axi.types import AxiPort
from repro.command.router import CommandRouter, CoreCommandAdapter, MmioFrontend
from repro.core.accelerator import AcceleratorCore
from repro.core.config import (
    AcceleratorConfig,
    IntraCoreMemoryPortOutConfig,
    ReadChannelConfig,
    ScratchpadConfig,
    WriteChannelConfig,
    as_config_list,
)
from repro.core.context import CoreContext
from repro.dram.controller import MemoryController
from repro.fpga.device import ResourceVector
from repro.fpga.floorplan import (
    Floorplanner,
    Placement,
    RoutabilityReport,
    emit_constraints,
    routability_report,
)
from repro.fpga.memcells import MemcellMapper
from repro.fpga.resources import ResourceEstimator
from repro.hdl.ir import HdlMemory
from repro.noc.tree import BuiltNetwork, TreeBuilder
from repro.platforms.base import Platform
from repro.sim import Simulator, Tracer


@dataclass
class ElaboratedCore:
    """One placed core instance plus its plumbing."""

    system_id: int
    core_id: int
    core: AcceleratorCore
    ctx: CoreContext
    adapter: CoreCommandAdapter
    slr: int = 0
    resources: ResourceVector = field(default_factory=ResourceVector)
    primitive_resources: Dict[str, ResourceVector] = field(default_factory=dict)
    memories: List[Tuple[str, HdlMemory]] = field(default_factory=list)

    @property
    def path(self) -> str:
        return f"{self.ctx.system_name}/core{self.core_id}"


@dataclass
class ElaboratedSystem:
    config: AcceleratorConfig
    system_id: int
    cores: List[ElaboratedCore] = field(default_factory=list)


@dataclass
class ResourceReport:
    """Table-II-style accounting of the elaborated design."""

    per_core: Dict[str, ResourceVector] = field(default_factory=dict)
    per_core_breakdown: Dict[str, Dict[str, ResourceVector]] = field(default_factory=dict)
    interconnect: ResourceVector = field(default_factory=ResourceVector)
    command: ResourceVector = field(default_factory=ResourceVector)
    total: ResourceVector = field(default_factory=ResourceVector)
    with_shell: ResourceVector = field(default_factory=ResourceVector)
    interconnect_per_slr: Dict[int, ResourceVector] = field(default_factory=dict)


class ElaboratedDesign:
    """The output of elaboration; consumed by the runtime and the reports."""

    def __init__(
        self,
        configs,
        platform: Platform,
        tracer: Optional[Tracer] = None,
        fast_forward: bool = True,
        observability: Optional["Observability"] = None,
        scheduling: Optional[str] = None,
        faults=None,
        watchdog=None,
        distributed=None,
    ) -> None:
        from repro.obs import CommandSpanTracker, Observability

        self.platform = platform
        self.configs = as_config_list(configs)
        # ``distributed=`` shards the design across partition simulators at
        # SLR-bridge boundaries (repro.dist).  Accepts a DistConfig or a
        # plain worker count.
        if distributed is not None:
            from repro.dist import DistConfig, DistError

            if isinstance(distributed, bool) or (
                not isinstance(distributed, (int, DistConfig))
            ):
                raise DistError(
                    "distributed= expects a DistConfig or a worker count, "
                    f"got {type(distributed).__name__}"
                )
            if isinstance(distributed, int):
                distributed = DistConfig(n_workers=distributed)
        self.dist_config = distributed
        self.dist_plan = None
        self.root_sim = None
        # Metrics are always collected; the Observability config gates span
        # tracking, the wall-clock profiler, and trace ring-buffer caps.
        self.observability = (
            observability
            if observability is not None
            else Observability(profile=False)
        )
        self.tracer = tracer or Tracer(max_events=self.observability.max_events)
        # Span tracking follows one command across the server, adapter and
        # memory ports — a lifecycle that spans partitions in a sharded
        # build, so it is forced off there (documented in DESIGN.md).
        self.span_tracker = (
            CommandSpanTracker(self.tracer)
            if self.observability.enabled and self.dist_config is None
            else None
        )
        # Built designs default to the per-component selective scheduler:
        # every framework component declares wake channels and hints, and
        # unhinted user cores are still ticked every cycle.  ``scheduling``
        # overrides explicitly ("naive"/"fast_forward"/"selective"), e.g. for
        # the differential harness; ``fast_forward=False`` keeps its legacy
        # meaning of plain naive stepping.
        if scheduling is None:
            scheduling = "selective" if fast_forward else "naive"
        self.sim = Simulator(
            "beethoven",
            tracer=self.tracer,
            profile=self.observability.profile,
            scheduling=scheduling,
        )
        self.estimator = ResourceEstimator()
        self.systems: List[ElaboratedSystem] = []
        self.memcell_mapper: Optional[MemcellMapper] = None
        self.macro_plans: List[Tuple[str, object]] = []
        self.placement: Optional[Placement] = None
        self.network: Optional[BuiltNetwork] = None
        self._broadcasts: List = []
        self.routability: Optional[RoutabilityReport] = None
        self.report = ResourceReport()

        self._build_cores()
        self._wire_intra_core_links()
        self._estimate_core_resources()
        self._floorplan()
        self._map_memories()
        # Default watchdog policy handed to FpgaHandle (None = disabled).
        self.watchdog = watchdog
        #: FaultState of the compiled FaultPlan (None when no plan was given).
        self.faults = None

        self._build_memory_network()
        if self.dist_config is not None:
            from repro.dist import plan_partitions

            self.dist_plan = plan_partitions(self, self.dist_config)
        self._build_command_network()
        self._wire_observability()
        self._compile_faults(faults)
        self._register_all()
        self._finalise_report()
        self._check_routability()
        if self.dist_plan is not None:
            from repro.dist import DistSimulator

            # From here on the design drives like any other: ``self.sim`` is
            # the slice/barrier supervisor, the single-process kernel stays
            # reachable as ``root_sim`` (partition 0).
            self.root_sim = self.sim
            self.sim = DistSimulator(
                self.dist_plan, self.part_sims, self.dist_config,
                fault_state=self.faults,
            )

    # ------------------------------------------------------------------ cores
    def _build_cores(self) -> None:
        for system_id, config in enumerate(self.configs):
            system = ElaboratedSystem(config, system_id)
            for core_id in range(config.n_cores):
                ctx = CoreContext(config.name, system_id, core_id, config, self.platform)
                core = config.module_constructor(ctx)
                if not isinstance(core, AcceleratorCore):
                    raise TypeError(
                        f"module_constructor for {config.name!r} must return an "
                        f"AcceleratorCore, got {type(core).__name__}"
                    )
                if not ctx.ios:
                    raise ValueError(
                        f"core {config.name!r} declares no BeethovenIO; the host "
                        "could never command it"
                    )
                adapter = CoreCommandAdapter(
                    system_id, core_id, ctx.ios, self.platform.addr_bits
                )
                system.cores.append(ElaboratedCore(system_id, core_id, core, ctx, adapter))
            self.systems.append(system)

    def _wire_intra_core_links(self) -> None:
        by_name = {s.config.name: s for s in self.systems}
        for system in self.systems:
            for cfg in system.config.memory_channel_config:
                if not isinstance(cfg, IntraCoreMemoryPortOutConfig):
                    continue
                target_system = by_name.get(cfg.to_system)
                if target_system is None:
                    raise ValueError(
                        f"intra-core port {cfg.name!r} targets unknown system "
                        f"{cfg.to_system!r}"
                    )
                for ecore in system.cores:
                    out_links = ecore.ctx.intra_out[cfg.name]
                    tgt_core = target_system.cores[
                        ecore.core_id % len(target_system.cores)
                    ]
                    in_mem = tgt_core.ctx.intra_in.get(cfg.to_memory_port)
                    if in_mem is None:
                        raise ValueError(
                            f"intra-core port {cfg.name!r} targets unknown memory "
                            f"port {cfg.to_memory_port!r} on {cfg.to_system!r}"
                        )
                    in_cfg = target_system.config.channel(cfg.to_memory_port)
                    if getattr(in_cfg, "comm_degree", "point_to_point") == "broadcast":
                        # Broadcast: one producer feeds the same-named memory
                        # of EVERY consumer core via a fan-out component.
                        sinks = [
                            c.ctx.intra_in[cfg.to_memory_port] for c in target_system.cores
                        ]
                        from repro.core.intra import IntraCoreBroadcast

                        for i, link in enumerate(out_links):
                            fanout = IntraCoreBroadcast(
                                f"{ecore.path}.{cfg.name}.bcast{i}",
                                [s.links[i % len(s.links)] for s in sinks],
                            )
                            link.chan = fanout.input.chan
                            self._broadcasts.append(fanout)
                    else:
                        for i, link in enumerate(out_links):
                            link.chan = in_mem.links[i % len(in_mem.links)].chan

    # ------------------------------------------------------------ resources
    def _core_memories(self, ecore: ElaboratedCore) -> List[Tuple[str, HdlMemory]]:
        mems: List[Tuple[str, HdlMemory]] = []
        ctx = ecore.ctx
        for cfg in ctx.config.memory_channel_config:
            if isinstance(cfg, ScratchpadConfig):
                depth = cfg.n_datas * (2 if cfg.features.double_buffered else 1)
                mems.append(
                    (
                        cfg.name,
                        HdlMemory(
                            f"{cfg.name}_mem",
                            cfg.data_width_bits,
                            depth,
                            n_read_ports=cfg.n_ports,
                            latency=cfg.latency,
                        ),
                    )
                )
                sp = ctx.scratchpads[cfg.name]
                if sp.reader is not None:
                    tuning = sp.reader.tuning
                    mems.append(
                        (
                            f"{cfg.name}_init_buf",
                            HdlMemory(
                                f"{cfg.name}_init_buf",
                                ctx.platform.axi_params.beat_bytes * 8,
                                tuning.buffer_bytes // ctx.platform.axi_params.beat_bytes,
                            ),
                        )
                    )
            elif isinstance(cfg, ReadChannelConfig):
                for i, reader in enumerate(ctx.readers[cfg.name]):
                    mems.append(
                        (
                            f"{cfg.name}{i}_buf",
                            HdlMemory(
                                f"{cfg.name}{i}_buf",
                                ctx.platform.axi_params.beat_bytes * 8,
                                reader.tuning.buffer_bytes
                                // ctx.platform.axi_params.beat_bytes,
                            ),
                        )
                    )
            elif isinstance(cfg, WriteChannelConfig):
                for i, writer in enumerate(ctx.writers[cfg.name]):
                    mems.append(
                        (
                            f"{cfg.name}{i}_buf",
                            HdlMemory(
                                f"{cfg.name}{i}_buf",
                                ctx.platform.axi_params.beat_bytes * 8,
                                writer.tuning.buffer_bytes
                                // ctx.platform.axi_params.beat_bytes,
                            ),
                        )
                    )
        return mems

    def _estimate_core_resources(self) -> None:
        est = self.estimator
        for system in self.systems:
            for ecore in system.cores:
                ctx = ecore.ctx
                breakdown: Dict[str, ResourceVector] = {}
                for name, readers in ctx.readers.items():
                    for i, r in enumerate(readers):
                        breakdown[f"reader.{name}{i}"] = est.reader(
                            r.data_bytes, r.tuning.max_in_flight, r.tuning.n_axi_ids
                        )
                for name, writers in ctx.writers.items():
                    for i, w in enumerate(writers):
                        breakdown[f"writer.{name}{i}"] = est.writer(
                            w.data_bytes, w.tuning.max_in_flight
                        )
                for name, sp in ctx.scratchpads.items():
                    breakdown[f"scratchpad.{name}"] = est.scratchpad_logic(
                        len(sp.ports), sp.data_width_bits
                    )
                    if sp.reader is not None:
                        breakdown[f"scratchpad.{name}.reader"] = est.reader(
                            sp.reader.data_bytes,
                            sp.reader.tuning.max_in_flight,
                            sp.reader.tuning.n_axi_ids,
                        )
                breakdown["cmd_adapter"] = est.command_adapter()
                kernel = ecore.core.kernel_resources()
                if kernel is not None:
                    breakdown["kernel"] = kernel
                ecore.memories = self._core_memories(ecore)
                ecore.primitive_resources = breakdown
                total = ResourceVector()
                for vec in breakdown.values():
                    total = total + vec
                ecore.resources = total

    # ------------------------------------------------------------ floorplan
    def _floorplan(self) -> None:
        device = self.platform.device
        all_cores = [c for s in self.systems for c in s.cores]
        if device is None or device.n_slrs == 1:
            self.placement = Placement(
                assignment={c.path: 0 for c in all_cores},
                slr_load={0: sum((c.resources for c in all_cores), ResourceVector())},
            )
            return
        planner = Floorplanner(device)
        # Balance on logic resources only: on-chip memories are mapped after
        # placement and the 80% spill rule lets them move between BRAM and
        # URAM, so they should not skew the logic balance.
        items = [(c.path, c.resources) for c in all_cores]
        self.placement = planner.place(items)
        for c in all_cores:
            c.slr = self.placement.assignment[c.path]

    def _map_memories(self) -> None:
        if self.platform.is_asic:
            library = getattr(self.platform, "macro_library", None)
            compiler = MemoryCompiler(library) if library else MemoryCompiler()
            for system in self.systems:
                for ecore in system.cores:
                    for name, mem in ecore.memories:
                        plan = compiler.compile(mem.width_bits, mem.depth)
                        mem.cell_mapping = "SRAM_MACRO"
                        mem.macro_plan = plan
                        self.macro_plans.append((f"{ecore.path}/{name}", plan))
            return
        device = self.platform.device
        if device is None:
            return
        mapper = MemcellMapper(device)
        self.memcell_mapper = mapper
        for system in self.systems:
            for ecore in system.cores:
                for name, mem in ecore.memories:
                    kind = mapper.map_memory(mem, ecore.slr, f"{ecore.path}/{name}")
                    counts = mapper.counts(mem)
                    if kind in ("BRAM", "URAM"):
                        cells = self.estimator.memory_cells(kind, counts[kind])
                    else:
                        cells = self.estimator.memory_cells("LUTRAM", mem.bits)
                    ecore.primitive_resources[f"mem.{name}"] = cells
                    ecore.resources = ecore.resources + cells
        # Refresh the per-SLR loads with the *mapped* cell demand: the spill
        # rule may have moved memories from the preferred cell type the
        # floorplanner estimated with, and the feasibility check must see
        # the real mix (this is what lets 80%-spill designs route).
        if self.placement is not None:
            loads = {slr: ResourceVector() for slr in range(device.n_slrs)}
            for system in self.systems:
                for ecore in system.cores:
                    loads[ecore.slr] = loads[ecore.slr] + ecore.resources
            self.placement.slr_load = loads

    # ------------------------------------------------------------- networks
    def _build_memory_network(self) -> None:
        params = self.platform.axi_params
        slave_port = AxiPort(params, "ddr", depth=8)
        self.monitor = AxiMonitor("ddr", self.tracer)
        self.mem_mport = MonitoredAxiPort(slave_port, self.monitor)
        self.controller = MemoryController(self.mem_mport, self.platform.dram_timing)
        endpoints: List[Tuple[AxiPort, int]] = []
        child_bits = 1
        for system in self.systems:
            for ecore in system.cores:
                for port in ecore.ctx.all_axi_masters():
                    endpoints.append((port, ecore.slr))
                    child_bits = max(child_bits, port.params.id_bits)
        if not endpoints:
            self.network = None
            return
        builder = TreeBuilder(self.platform.tree_config, endpoints[0][0].params)
        root_slr = (
            self.platform.device.memory_interface_slr if self.platform.device else 0
        )
        self.network = builder.build(endpoints, self.mem_mport, child_bits, root_slr)
        self.n_memory_interfaces = len(endpoints)

    def _build_command_network(self) -> None:
        self.router = CommandRouter()
        self.mmio = MmioFrontend(self.router)
        proxies = self.dist_plan.proxies if self.dist_plan is not None else {}
        for system in self.systems:
            for ecore in system.cores:
                latency = self.platform.command_latency_for(ecore.slr)
                # In a sharded build, cores on non-root SLRs are commanded
                # through a root-partition proxy; the command bridge adds the
                # SLR-crossing hop on top of the stock attach latency.
                proxy = proxies.get((ecore.system_id, ecore.core_id))
                self.router.attach(proxy if proxy is not None else ecore.adapter, latency)

    # -------------------------------------------------------- observability
    def _wire_observability(self) -> None:
        """Hand the span tracker to every model on a command's lifecycle path.

        The tracker follows a host command from the runtime server (which is
        attached later, by :class:`repro.runtime.FpgaHandle`) through the
        per-core adapter to the Reader/Writer ports that issue AXI bursts on
        the command's behalf.
        """
        tracker = self.span_tracker
        if tracker is None:
            return
        for system in self.systems:
            for ecore in system.cores:
                key = (ecore.system_id, ecore.core_id)
                tracker.set_track(key, ecore.path)
                ecore.adapter.spans = tracker
                ctx = ecore.ctx
                masters = [r for rs in ctx.readers.values() for r in rs]
                masters += [w for ws in ctx.writers.values() for w in ws]
                masters += [
                    sp.reader
                    for sp in ctx.scratchpads.values()
                    if sp.reader is not None
                ]
                for master in masters:
                    master.spans = tracker
                    master.span_key = key

    # ------------------------------------------------------------- faults
    def _compile_faults(self, plan) -> None:
        """Compile a :class:`repro.faults.FaultPlan` into the built models.

        Runs after the networks exist (hooks attach to live components) and
        before metric registration, so ``fault/*`` counters participate in
        the same registry dumps as everything else.
        """
        if plan is None:
            return
        from repro.faults.plan import FaultPlan

        if not isinstance(plan, FaultPlan):
            raise TypeError(
                f"faults= expects a FaultPlan, got {type(plan).__name__}"
            )
        self.faults = plan.compile(self)

    # ------------------------------------------------------------- simulator
    def _register_all(self) -> None:
        if self.dist_plan is not None:
            from repro.dist import register_partitioned

            self.part_sims = [self.sim] + [
                Simulator(f"part{p}", scheduling=self.sim.scheduling)
                for p in range(1, self.dist_plan.n_partitions)
            ]
            register_partitioned(self, self.dist_plan, self.part_sims)
            return
        sim = self.sim
        sim.add(self.controller)
        sim.add(self.monitor)
        for chan in self.mem_mport.port.channels():
            sim.register_channel(chan)
        if self.network is not None:
            self.network.register_with(sim)
        for system in self.systems:
            for ecore in system.cores:
                for comp in ecore.ctx.all_components():
                    sim.add(comp)
                sim.add(ecore.core)
                sim.add(ecore.adapter)
        for bcast in self._broadcasts:
            sim.add(bcast)
        sim.add(self.router)
        sim.add(self.mmio)

    # --------------------------------------------------------------- report
    def _finalise_report(self) -> None:
        rep = self.report
        est = self.estimator
        beat = self.platform.axi_params.beat_bytes
        total = ResourceVector()
        for system in self.systems:
            for ecore in system.cores:
                rep.per_core[ecore.path] = ecore.resources
                rep.per_core_breakdown[ecore.path] = dict(ecore.primitive_resources)
                total = total + ecore.resources
        interconnect = ResourceVector()
        per_slr: Dict[int, ResourceVector] = {}
        if self.network is not None:
            for comp in self.network.components:
                from repro.noc.axi_node import AxiBufferNode, AxiPipe

                if isinstance(comp, AxiBufferNode):
                    vec = est.noc_node(len(comp.upstreams), beat)
                elif isinstance(comp, AxiPipe):
                    vec = est.slr_pipe(beat, comp.latency)
                else:
                    vec = est.noc_node(1, beat).scaled(0.5)  # id compressor
                interconnect = interconnect + vec
            for slr, count in self.network.nodes_per_slr.items():
                share = count / max(self.network.n_nodes, 1)
                per_slr[slr] = interconnect.scaled(share)
        n_cores = sum(len(s.cores) for s in self.systems)
        command = est.mmio_frontend(n_cores)
        rep.interconnect = interconnect
        rep.interconnect_per_slr = per_slr
        rep.command = command
        rep.total = total + interconnect + command
        shell = ResourceVector()
        if self.platform.device is not None:
            for vec in self.platform.device.shell_usage.values():
                shell = shell + vec
        rep.with_shell = rep.total + shell

    def _check_routability(self) -> None:
        device = self.platform.device
        if device is None or self.placement is None:
            self.routability = RoutabilityReport(feasible=True, score=1.0)
            return
        net = self.network
        self.routability = routability_report(
            device,
            self.placement,
            interconnect_per_slr=self.report.interconnect_per_slr,
            max_fanout=net.max_fanout if net else 0,
            unbuffered_crossings=0 if (net is None or net.n_pipes or device.n_slrs == 1 or not self._crosses_slrs()) else 1,
            memcells_feasible=self.memcell_mapper.feasible if self.memcell_mapper else True,
            constraints_emitted=True,
        )

    def _crosses_slrs(self) -> bool:
        if self.placement is None:
            return False
        return len({slr for slr in self.placement.assignment.values()}) > 1

    # ---------------------------------------------------------------- emits
    def emit_constraints(self) -> str:
        if self.placement is None or self.platform.device is None:
            return "# single-die platform: no placement constraints\n"
        return emit_constraints(self.placement, self.platform.device)

    # ------------------------------------------------------------- lookups
    def core(self, system_name: str, core_id: int = 0) -> ElaboratedCore:
        for system in self.systems:
            if system.config.name == system_name:
                return system.cores[core_id]
        raise KeyError(f"no system {system_name!r}")

    def all_cores(self) -> List[ElaboratedCore]:
        return [c for s in self.systems for c in s.cores]

    # -------------------------------------------------------------- exports
    @property
    def registry(self):
        """The design-wide metric registry (owned by the simulator)."""
        return self.sim.registry

    def metrics(self, prefix: Optional[str] = None, stable_only: bool = False):
        return self.sim.registry.dump(prefix, stable_only=stable_only)

    def metrics_report(self, prefix: Optional[str] = None) -> str:
        return self.sim.registry.render_report(prefix)

    def export_metrics(self, path: str, prefix: Optional[str] = None):
        from repro.obs.export import export_metrics

        return export_metrics(path, self.sim.registry, prefix)

    def chrome_trace(self):
        from repro.obs.attribution import counter_track_events
        from repro.obs.export import chrome_trace

        return chrome_trace(
            self.tracer,
            [self.monitor],
            extra_events=counter_track_events([self.monitor]),
        )

    def export_chrome_trace(self, path: str):
        from repro.obs.attribution import counter_track_events
        from repro.obs.export import export_chrome_trace

        return export_chrome_trace(
            path,
            self.tracer,
            [self.monitor],
            extra_events=counter_track_events([self.monitor]),
        )

    def profile_report(self, top: int = 0) -> str:
        from repro.obs.profiler import render_profile_report

        # In a sharded build the wall-clock profiler only covers partition 0.
        return render_profile_report(getattr(self.sim, "root", self.sim), top=top)

    def attribution_report(self, by_tenant: bool = False):
        """Cycle-attribution rollup (see :mod:`repro.obs.attribution`).

        ``by_tenant=True`` adds a per-tenant rollup keyed on the serving
        layer's tenant span tags.
        """
        from repro.obs.attribution import attribution_report

        return attribution_report(
            self.tracer,
            [self.monitor],
            registry=self.sim.registry,
            cycles=self.sim.cycle,
            timing=self.platform.dram_timing,
            by_tenant=by_tenant,
        )

    def attribution_report_text(self) -> str:
        from repro.obs.attribution import render_attribution_report

        return render_attribution_report(self.attribution_report())

    def export_attribution(self, path: str, by_tenant: bool = False):
        """Write the attribution rollup as JSON; returns the report dict."""
        import json

        report = self.attribution_report(by_tenant=by_tenant)
        with open(path, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True, default=float)
        return report
