"""The Beethoven core framework: configs, cores, elaboration, builds."""

from repro.core.accelerator import AcceleratorCore
from repro.core.build import BeethovenBuild, BuildMode, InfeasibleDesignError
from repro.core.config import (
    AcceleratorConfig,
    IntraCoreMemoryPortInConfig,
    IntraCoreMemoryPortOutConfig,
    ReadChannelConfig,
    ScratchpadConfig,
    ScratchpadFeatures,
    WriteChannelConfig,
    as_config_list,
)
from repro.core.context import CoreContext
from repro.core.elaboration import ElaboratedCore, ElaboratedDesign, ElaboratedSystem
from repro.core.intra import IntraCoreLink, IntraCoreMemory

__all__ = [
    "AcceleratorCore",
    "BeethovenBuild",
    "BuildMode",
    "InfeasibleDesignError",
    "AcceleratorConfig",
    "ReadChannelConfig",
    "WriteChannelConfig",
    "ScratchpadConfig",
    "ScratchpadFeatures",
    "IntraCoreMemoryPortInConfig",
    "IntraCoreMemoryPortOutConfig",
    "as_config_list",
    "CoreContext",
    "ElaboratedCore",
    "ElaboratedDesign",
    "ElaboratedSystem",
    "IntraCoreLink",
    "IntraCoreMemory",
]
