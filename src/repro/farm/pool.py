"""Worker pools: multiprocess sharding with a serial in-process fallback.

:class:`WorkerPool` shards jobs across ``n_workers`` OS processes.  The
supervisor owns one inbox/outbox queue pair per worker (private queues mean
a killed worker can never corrupt a sibling's channel) and enforces the
farm's failure policy:

* **per-job timeout** — a job that exceeds its deadline has its worker
  terminated and is marked failed immediately; siblings keep running and
  the worker slot is respawned;
* **crash retry with backoff** — a worker that dies mid-job (OOM-kill,
  ``os._exit``, segfault in an extension) gets its job requeued with
  exponential backoff, up to ``max_attempts``; the attempt number is
  visible to job code via :func:`current_attempt`;
* **fail-fast on exceptions** — an ordinary Python exception is a property
  of the job, not the infrastructure, so it is reported once and not
  retried.

Jobs whose payload cannot be pickled (e.g. a sweep over closures) degrade
gracefully: they run inline in the supervisor process and are labelled
``worker="inline"``.  When multiprocessing itself is unavailable — or
``n_workers <= 1`` — :class:`SerialPool` provides the same interface fully
in-process.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.farm.job import Job, resolve_fn

_ATTEMPT_ENV = "REPRO_FARM_ATTEMPT"
_WORKER_ENV = "REPRO_FARM_WORKER"

#: Supervisor poll interval while waiting on workers.
_POLL_S = 0.02


def current_attempt() -> int:
    """Attempt number (1-based) of the job executing in this process."""
    try:
        return int(os.environ.get(_ATTEMPT_ENV, "1"))
    except ValueError:
        return 1


def current_worker() -> str:
    """Worker id executing this job ("serial" outside a pool worker)."""
    return os.environ.get(_WORKER_ENV, "serial")


@dataclass
class PoolOutcome:
    """What the pool learned about one job (no cache involvement here)."""

    value: Any = None
    ok: bool = False
    error: Optional[str] = None
    worker: str = ""
    wall_seconds: float = 0.0
    attempts: int = 1
    timed_out: bool = False
    crashes: int = 0
    resumed_from_checkpoint: bool = False


@dataclass
class PoolStats:
    """Utilization snapshot of the pool's last :meth:`run` call.

    ``busy_seconds`` maps worker id to wall time spent executing jobs;
    ``utilization`` divides that by the run's elapsed time (a worker pinned
    at 1.0 is the bottleneck; one near 0.0 is starved).  ``queue_high_water``
    is the deepest the ready queue ever got — sustained depth near the job
    count means the pool is under-provisioned for the sweep.
    """

    n_workers: int = 0
    jobs: int = 0
    elapsed_seconds: float = 0.0
    busy_seconds: Dict[str, float] = None  # type: ignore[assignment]
    dispatched: Dict[str, int] = None  # type: ignore[assignment]
    queue_high_water: int = 0
    respawns: int = 0

    def __post_init__(self) -> None:
        if self.busy_seconds is None:
            self.busy_seconds = {}
        if self.dispatched is None:
            self.dispatched = {}

    @property
    def utilization(self) -> Dict[str, float]:
        if self.elapsed_seconds <= 0.0:
            return {w: 0.0 for w in self.busy_seconds}
        return {
            w: min(busy / self.elapsed_seconds, 1.0)
            for w, busy in self.busy_seconds.items()
        }

    @property
    def mean_utilization(self) -> float:
        util = self.utilization
        return sum(util.values()) / len(util) if util else 0.0


def bind_pool_metrics(pool, registry, prefix: str = "farm/pool") -> None:
    """Publish a pool's :attr:`last_stats` as gauges under ``farm/*``.

    All bindings are volatile: pool utilization describes the host harness,
    not the simulated design, and legitimately varies run to run.
    """
    def stat(name):
        return lambda: getattr(pool.last_stats, name)

    registry.bind(f"{prefix}/workers", stat("n_workers"), volatile=True)
    registry.bind(f"{prefix}/jobs", stat("jobs"), volatile=True)
    registry.bind(f"{prefix}/elapsed_s", stat("elapsed_seconds"), volatile=True)
    registry.bind(
        f"{prefix}/queue_high_water", stat("queue_high_water"), volatile=True
    )
    registry.bind(f"{prefix}/respawns", stat("respawns"), volatile=True)
    registry.bind(
        f"{prefix}/mean_utilization",
        lambda: pool.last_stats.mean_utilization,
        volatile=True,
    )


def _execute(job: Job, attempt: int, worker: str) -> PoolOutcome:
    """Run one job in the current process, timing it and trapping errors."""
    os.environ[_ATTEMPT_ENV] = str(attempt)
    os.environ[_WORKER_ENV] = worker
    ckpt_path = getattr(job, "checkpoint_path", None)
    if ckpt_path:
        # Resumable job: expose the checkpoint contract through the env so
        # job code reaches it via ``repro.snapshot.store.job_checkpoint``
        # regardless of how deep in the call stack the simulation lives.
        from repro.snapshot.store import CKPT_EVERY_ENV, CKPT_PATH_ENV, consume_resumed_flag

        os.environ[CKPT_PATH_ENV] = ckpt_path
        os.environ[CKPT_EVERY_ENV] = str(getattr(job, "checkpoint_every", 0) or 0)
        consume_resumed_flag()  # drop stale state from a previous job
    t0 = time.perf_counter()
    try:
        fn = resolve_fn(job.fn)
        value = fn(*job.args, **job.kwargs)
        resumed = False
        if ckpt_path:
            from repro.snapshot.store import consume_resumed_flag

            resumed = consume_resumed_flag()
            try:  # success retires the checkpoint file
                os.unlink(ckpt_path)
            except OSError:
                pass
        return PoolOutcome(
            value=value,
            ok=True,
            worker=worker,
            wall_seconds=time.perf_counter() - t0,
            attempts=attempt,
            resumed_from_checkpoint=resumed,
        )
    except Exception as exc:  # noqa: BLE001 — job errors become data
        # Ship the traceback with the message: the supervisor (often on
        # another machine's terminal) is the only place the error is read.
        tb = traceback.format_exc(limit=20)
        if len(tb) > 4000:
            tb = "...\n" + tb[-4000:]
        return PoolOutcome(
            ok=False,
            error=f"{type(exc).__name__}: {exc}\n{tb.rstrip()}",
            worker=worker,
            wall_seconds=time.perf_counter() - t0,
            attempts=attempt,
        )
    finally:
        if ckpt_path:
            from repro.snapshot.store import CKPT_EVERY_ENV, CKPT_PATH_ENV

            os.environ.pop(CKPT_PATH_ENV, None)
            os.environ.pop(CKPT_EVERY_ENV, None)


def _worker_main(worker_id: str, inbox, outbox, stderr_path: Optional[str] = None) -> None:
    """Worker process body: execute payloads until the ``None`` sentinel.

    ``stderr_path`` redirects fd 2 so that whatever kills this process —
    a Python traceback that escapes ``_execute``, an extension-module abort,
    an OOM-killer note — survives for the supervisor's crash report.
    """
    if stderr_path is not None:
        try:
            fd = os.open(stderr_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
            os.dup2(fd, 2)
            os.close(fd)
        except OSError:
            pass  # diagnostics only; never fail the worker over them
    while True:
        item = inbox.get()
        if item is None:
            return
        seq, job, attempt = item
        outcome = _execute(job, attempt, worker_id)
        outbox.put((seq, outcome))


class SerialPool:
    """In-process execution with the :class:`WorkerPool` interface.

    Used when multiprocessing is unavailable or ``n_workers <= 1``.  Jobs
    run to completion in submission order; timeouts cannot be enforced on
    the current thread and are therefore advisory only (documented
    degradation, never wrong results).
    """

    n_workers = 1

    def __init__(
        self,
        default_timeout_s: Optional[float] = None,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
    ) -> None:
        self.default_timeout_s = default_timeout_s
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.last_stats = PoolStats(n_workers=1)

    def run(self, jobs: Sequence[Job]) -> List[PoolOutcome]:
        t0 = time.monotonic()
        outcomes = [_execute(job, 1, "serial") for job in jobs]
        stats = PoolStats(n_workers=1, jobs=len(jobs))
        stats.elapsed_seconds = time.monotonic() - t0
        stats.busy_seconds["serial"] = sum(o.wall_seconds for o in outcomes)
        stats.dispatched["serial"] = len(jobs)
        self.last_stats = stats
        return outcomes


@dataclass
class _Slot:
    """One worker process and its private queues."""

    worker_id: str
    process: Any
    inbox: Any
    outbox: Any
    seq: Optional[int] = None  # seq of the task currently assigned
    deadline: float = 0.0
    stderr_path: Optional[str] = None


@dataclass
class _Task:
    seq: int
    job: Job
    attempts: int = 0
    crashes: int = 0
    eligible_at: float = 0.0  # backoff gate for retries
    last_stderr: str = ""  # tail of the stderr of the last crashed attempt


def _payload_picklable(job: Job) -> bool:
    try:
        pickle.dumps((job.fn, job.args, job.kwargs))
        return True
    except Exception:
        return False


def multiprocessing_context():
    """The context used for workers: ``fork`` where available (it needs no
    re-import of job modules), else the platform default."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX platforms
        return multiprocessing.get_context()


def multiprocessing_available() -> bool:
    """True when this interpreter can actually spawn workers and queues."""
    try:
        ctx = multiprocessing_context()
        q = ctx.Queue()
        q.cancel_join_thread()
        q.close()
        return True
    except Exception:  # pragma: no cover — sandboxed /dev/shm etc.
        return False


class WorkerPool:
    """Shard jobs across worker processes with timeouts and crash retry."""

    def __init__(
        self,
        n_workers: int,
        default_timeout_s: Optional[float] = 300.0,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.default_timeout_s = default_timeout_s
        self.max_attempts = max(max_attempts, 1)
        self.backoff_base_s = backoff_base_s
        self._ctx = multiprocessing_context()
        self.last_stats = PoolStats(n_workers=n_workers)

    # ---------------------------------------------------------- lifecycle
    def _spawn(self, worker_id: str) -> _Slot:
        inbox = self._ctx.Queue()
        outbox = self._ctx.Queue()
        fd, stderr_path = tempfile.mkstemp(prefix=f"farm-{worker_id}-", suffix=".stderr")
        os.close(fd)
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, inbox, outbox, stderr_path),
            daemon=True,
        )
        process.start()
        return _Slot(worker_id, process, inbox, outbox, stderr_path=stderr_path)

    @staticmethod
    def _stderr_tail(slot: _Slot, max_chars: int = 2000) -> str:
        """Last ``max_chars`` of the worker's redirected stderr, if any."""
        if not slot.stderr_path:
            return ""
        try:
            with open(slot.stderr_path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                size = fh.tell()
                fh.seek(max(0, size - max_chars))
                return fh.read().decode("utf-8", "replace").strip()
        except OSError:
            return ""

    @staticmethod
    def _discard(slot: _Slot, kill: bool = False) -> None:
        if kill and slot.process.is_alive():
            slot.process.terminate()
            slot.process.join(timeout=2.0)
            if slot.process.is_alive():  # pragma: no cover — stubborn child
                slot.process.kill()
                slot.process.join(timeout=2.0)
        for q in (slot.inbox, slot.outbox):
            q.cancel_join_thread()
            q.close()
        if slot.stderr_path:
            try:
                os.unlink(slot.stderr_path)
            except OSError:
                pass

    # ---------------------------------------------------------------- run
    def run(self, jobs: Sequence[Job]) -> List[PoolOutcome]:
        outcomes: Dict[int, PoolOutcome] = {}
        tasks: Dict[int, _Task] = {}
        ready: deque = deque()  # seqs awaiting dispatch
        t0 = time.monotonic()
        stats = PoolStats(n_workers=self.n_workers, jobs=len(jobs))
        self.last_stats = stats

        for seq, job in enumerate(jobs):
            tasks[seq] = _Task(seq, job)
            if _payload_picklable(job):
                ready.append(seq)
            else:
                # Graceful degradation: closures and other unpicklable
                # payloads run in this process.
                outcomes[seq] = _execute(job, 1, "inline")
                out = outcomes[seq]
                stats.busy_seconds["inline"] = (
                    stats.busy_seconds.get("inline", 0.0) + out.wall_seconds
                )
                stats.dispatched["inline"] = stats.dispatched.get("inline", 0) + 1
        stats.queue_high_water = len(ready)

        if len(outcomes) == len(jobs):
            stats.elapsed_seconds = time.monotonic() - t0
            return [outcomes[seq] for seq in range(len(jobs))]

        slots = [self._spawn(f"w{i}") for i in range(min(self.n_workers, len(ready)))]
        next_worker = len(slots)

        try:
            while len(outcomes) < len(jobs):
                progressed = False

                # 1. Collect finished work first, so a result posted just
                #    before a clean worker exit is never lost.
                for slot in slots:
                    while True:
                        try:
                            seq, outcome = slot.outbox.get_nowait()
                        except Exception:
                            break
                        if slot.seq == seq:
                            slot.seq = None
                        if seq not in outcomes:
                            outcome.attempts = tasks[seq].attempts
                            outcome.crashes = tasks[seq].crashes
                            outcomes[seq] = outcome
                            stats.busy_seconds[outcome.worker] = (
                                stats.busy_seconds.get(outcome.worker, 0.0)
                                + outcome.wall_seconds
                            )
                        progressed = True

                # 2. Deadline and liveness policing.
                now = time.monotonic()
                for i, slot in enumerate(slots):
                    if slot.seq is None:
                        continue
                    task = tasks[slot.seq]
                    if not slot.process.is_alive():
                        # Crash mid-job: respawn the slot, retry with backoff.
                        tail = self._stderr_tail(slot)
                        if tail:
                            task.last_stderr = tail
                        self._discard(slot)
                        slots[i] = self._spawn(f"w{next_worker}")
                        next_worker += 1
                        stats.respawns += 1
                        task.crashes += 1
                        if task.attempts >= self._attempts_of(task.job):
                            error = f"worker crashed on all {task.attempts} attempts"
                            if task.last_stderr:
                                error += (
                                    "; last worker stderr:\n" + task.last_stderr
                                )
                            outcomes[task.seq] = PoolOutcome(
                                ok=False,
                                error=error,
                                worker=slot.worker_id,
                                attempts=task.attempts,
                                crashes=task.crashes,
                            )
                        else:
                            backoff = self.backoff_base_s * (2 ** (task.attempts - 1))
                            task.eligible_at = now + backoff
                            ready.append(task.seq)
                        progressed = True
                    elif now >= slot.deadline:
                        # Hung job: kill the worker and respawn the slot so
                        # siblings keep flowing.  A resumable job with a
                        # checkpoint on disk and attempts remaining is
                        # requeued (the retry resumes from the checkpoint,
                        # so its deadline only has to cover the *remaining*
                        # work); anything else fails immediately.
                        self._discard(slot, kill=True)
                        slots[i] = self._spawn(f"w{next_worker}")
                        next_worker += 1
                        stats.respawns += 1
                        timeout = self._timeout_of(task.job) or 0.0
                        ckpt = getattr(task.job, "checkpoint_path", None)
                        if (
                            ckpt
                            and os.path.exists(ckpt)
                            and task.attempts < self._attempts_of(task.job)
                        ):
                            backoff = self.backoff_base_s * (2 ** (task.attempts - 1))
                            task.eligible_at = now + backoff
                            ready.append(task.seq)
                        else:
                            outcomes[task.seq] = PoolOutcome(
                                ok=False,
                                error=f"timed out after {timeout:.1f}s",
                                worker=slot.worker_id,
                                wall_seconds=timeout,
                                attempts=task.attempts,
                                timed_out=True,
                                crashes=task.crashes,
                            )
                        progressed = True

                # 3. Hand eligible tasks to idle workers.
                now = time.monotonic()
                for slot in slots:
                    if slot.seq is not None or not ready:
                        continue
                    seq = self._pop_eligible(ready, tasks, now)
                    if seq is None:
                        continue
                    task = tasks[seq]
                    task.attempts += 1
                    slot.seq = seq
                    timeout = self._timeout_of(task.job)
                    slot.deadline = now + timeout if timeout else float("inf")
                    slot.inbox.put((seq, task.job, task.attempts))
                    stats.dispatched[slot.worker_id] = (
                        stats.dispatched.get(slot.worker_id, 0) + 1
                    )
                    progressed = True

                stats.queue_high_water = max(stats.queue_high_water, len(ready))
                if not progressed:
                    time.sleep(_POLL_S)
        finally:
            for slot in slots:
                try:
                    slot.inbox.put_nowait(None)
                except Exception:
                    pass
            for slot in slots:
                slot.process.join(timeout=1.0)
                self._discard(slot, kill=True)
            stats.elapsed_seconds = time.monotonic() - t0

        return [outcomes[seq] for seq in range(len(jobs))]

    # ------------------------------------------------------------- helpers
    def _timeout_of(self, job: Job) -> Optional[float]:
        return job.timeout_s if job.timeout_s is not None else self.default_timeout_s

    def _attempts_of(self, job: Job) -> int:
        return job.max_attempts if job.max_attempts is not None else self.max_attempts

    @staticmethod
    def _pop_eligible(ready: deque, tasks: Dict[int, _Task], now: float) -> Optional[int]:
        """Next seq whose backoff has elapsed; rotates still-cooling tasks."""
        for _ in range(len(ready)):
            seq = ready.popleft()
            if tasks[seq].eligible_at <= now:
                return seq
            ready.append(seq)
        return None
